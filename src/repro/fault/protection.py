"""Protection protocols for unreliable links.

Three schemes are selectable per run (plus ``"none"``):

``crc``
    Link-level detection + retransmission.  Each hop appends a CRC; on a
    detected error the receiver nacks and the sender retransmits, costing
    one link round-trip plus a turnaround per attempt.  Modeled inside
    :class:`repro.fault.injector.FaultChannel` as a retry loop whose
    failed attempts stretch the flit's arrival time (the wire serializes,
    so in-order delivery is preserved).  After ``max_link_retries``
    consecutive failures the hop gives up and forwards the corrupted flit
    (counted as a CRC give-up).

``e2e``
    End-to-end packet retry.  The source NIC keeps a retry buffer per
    outstanding transfer; destinations ack clean deliveries out-of-band
    (acks are priced by hop count in the energy model but do not contend
    for datapath bandwidth).  A transfer whose ack has not arrived within
    the timeout is reinjected with exponential backoff; after
    ``max_packet_retries`` the transfer is abandoned (counted as failed).
    This is the :class:`EndToEndTracker` below.

``reroute``
    ``crc`` plus link-disable: a link that gives up
    ``disable_threshold`` consecutive times is declared dead, removed
    from the routing graph, and traffic is rerouted around it via
    :class:`repro.fault.reroute.AdaptiveRoutingTable`.

All knobs live in the frozen :class:`ProtectionConfig` so a campaign
point is fully described by (fault model, protection config, seed).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError
from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology, NodeId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fault.injector import FaultStats

#: Selectable protection schemes, in increasing implementation cost.
PROTOCOLS: tuple[str, ...] = ("none", "crc", "e2e", "reroute")


@dataclass(frozen=True)
class ProtectionConfig:
    """Knobs for one protection scheme (frozen: hashable, picklable)."""

    protocol: str = "none"
    # --- link-level (crc / reroute) ---
    #: Retransmission attempts per hop before forwarding corrupted data.
    max_link_retries: int = 16
    #: Extra cycles per nack beyond the 2x link-latency round trip.
    nack_turnaround: int = 1
    #: Consecutive per-hop give-ups before reroute disables the link.
    disable_threshold: int = 4
    # --- end-to-end (e2e) ---
    #: Reinjections per transfer before declaring it failed.
    max_packet_retries: int = 8
    #: Fixed ack processing overhead on top of the hop-count flight time.
    ack_overhead_cycles: int = 4
    #: Base retry timeout; None derives one from mesh diameter at attach.
    timeout_cycles: int | None = None
    #: Timeout multiplier per successive retry (exponential backoff).
    backoff_factor: float = 2.0
    #: Cap on the backoff multiplier, as a multiple of the base timeout.
    max_backoff_scale: float = 8.0

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"protocol must be one of {PROTOCOLS}, got {self.protocol!r}"
            )
        if self.max_link_retries < 1:
            raise ConfigurationError("max_link_retries must be >= 1")
        if self.nack_turnaround < 0:
            raise ConfigurationError("nack_turnaround must be >= 0")
        if self.disable_threshold < 1:
            raise ConfigurationError("disable_threshold must be >= 1")
        if self.max_packet_retries < 0:
            raise ConfigurationError("max_packet_retries must be >= 0")
        if self.timeout_cycles is not None and self.timeout_cycles < 1:
            raise ConfigurationError("timeout_cycles must be >= 1")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1.0")

    @property
    def link_level(self) -> bool:
        """True when hops run CRC + retransmission."""
        return self.protocol in ("crc", "reroute")


@dataclass(frozen=True)
class TransferRecord:
    """One completed end-to-end transfer."""

    src: NodeId
    dests: frozenset[NodeId]
    first_inject: int
    completed: int
    retries: int

    @property
    def latency(self) -> int:
        return self.completed - self.first_inject


@dataclass
class _Transfer:
    """One logical end-to-end transfer (survives packet reinjection)."""

    src: NodeId
    dests: frozenset[NodeId]
    size_flits: int
    routing: str
    first_inject: int
    last_send: int
    pending: set[NodeId]
    retries: int = 0
    last_delivery: int = 0


class EndToEndTracker:
    """Source-side retry buffers + out-of-band ack plumbing for e2e.

    The tracker observes every packet offered to a NIC and every clean
    tail delivery.  Acks fly back out-of-band with a latency proportional
    to the hop distance; expired transfers are reinjected through the
    ``reinject`` callback (wired to ``Nic.offer`` by the fault layer).
    Duplicate deliveries — a retry racing its own late original — are
    deduplicated here and counted.
    """

    def __init__(
        self,
        config: ProtectionConfig,
        topology: MeshTopology,
        link_latency: int,
        stats: "FaultStats",
        reinject: Callable[[Packet], None],
    ) -> None:
        self.config = config
        self.topology = topology
        self.link_latency = link_latency
        self.stats = stats
        self.reinject = reinject
        # Per-hop flight time for acks: wire latency + one router cycle.
        self._hop_cycles = link_latency + 1
        if config.timeout_cycles is not None:
            self.base_timeout = config.timeout_cycles
        else:
            # Worst-case request path + ack path + queueing slack.
            diameter = topology.diameter
            self.base_timeout = 4 * diameter * self._hop_cycles + 32
        self._transfers: dict[int, _Transfer] = {}
        self._transfer_of_packet: dict[int, int] = {}
        self._next_tid = 0
        #: (due_cycle, seq, tid, dest, delivery_cycle) min-heap.
        self._acks: list[tuple[int, int, int, NodeId, int]] = []
        self._ack_seq = 0
        #: Bumps whenever the tracker acts; feeds the livelock signature.
        self.events = 0

    # --- hooks ------------------------------------------------------------------------

    def on_offer(self, packet: Packet, cycle: int) -> None:
        """Register a freshly generated packet as a new transfer."""
        if packet.packet_id in self._transfer_of_packet:
            return  # a reinjection we issued ourselves
        tid = self._next_tid
        self._next_tid += 1
        self._transfers[tid] = _Transfer(
            src=packet.src,
            dests=packet.dests,
            size_flits=packet.size_flits,
            routing=packet.routing,
            first_inject=cycle,
            last_send=cycle,
            pending=set(packet.dests),
        )
        self._transfer_of_packet[packet.packet_id] = tid

    def on_delivery(
        self, packet: Packet, dest: NodeId, cycle: int, corrupted: bool
    ) -> None:
        """A tail flit of ``packet`` ejected at ``dest``."""
        if corrupted:
            return  # receiver CRC rejects it; no ack, source will retry
        tid = self._transfer_of_packet.get(packet.packet_id)
        if tid is None:
            return
        transfer = self._transfers.get(tid)
        if transfer is None or dest not in transfer.pending:
            self.stats.duplicate_deliveries += 1
            return
        transfer.pending.discard(dest)
        transfer.last_delivery = cycle
        hops = self.topology.hop_distance(dest, transfer.src)
        due = cycle + hops * self._hop_cycles + self.config.ack_overhead_cycles
        heapq.heappush(self._acks, (due, self._ack_seq, tid, dest, cycle))
        self._ack_seq += 1
        self.stats.acks += 1
        self.stats.ack_hops += hops

    def on_unreachable(self, packet: Packet) -> None:
        """Give up on a transfer whose destination left the network."""
        tid = self._transfer_of_packet.get(packet.packet_id)
        if tid is not None and tid in self._transfers:
            del self._transfers[tid]
            self.stats.failed_transfers += 1
            self.events += 1

    def begin_cycle(self, cycle: int) -> None:
        """Process ack arrivals and retry timeouts due at ``cycle``."""
        while self._acks and self._acks[0][0] <= cycle:
            _due, _seq, tid, _dest, delivery_cycle = heapq.heappop(self._acks)
            self.events += 1
            transfer = self._transfers.get(tid)
            if transfer is None:
                continue
            if not transfer.pending:
                del self._transfers[tid]
                self.stats.completed_transfers += 1
                self.stats.transfer_records.append(
                    TransferRecord(
                        src=transfer.src,
                        dests=transfer.dests,
                        first_inject=transfer.first_inject,
                        completed=transfer.last_delivery,
                        retries=transfer.retries,
                    )
                )
        for tid in sorted(self._transfers):
            transfer = self._transfers[tid]
            if not transfer.pending:
                continue  # delivered; ack in flight
            if cycle - transfer.last_send < self._timeout(transfer.retries):
                continue
            self.events += 1
            if transfer.retries >= self.config.max_packet_retries:
                del self._transfers[tid]
                self.stats.failed_transfers += 1
                continue
            transfer.retries += 1
            transfer.last_send = cycle
            self.stats.packet_retries += 1
            packet = Packet(
                src=transfer.src,
                dests=frozenset(transfer.pending),
                size_flits=transfer.size_flits,
                inject_cycle=cycle,
                routing=transfer.routing,
            )
            self._transfer_of_packet[packet.packet_id] = tid
            self.reinject(packet)

    # --- drain bookkeeping ------------------------------------------------------------

    def busy(self) -> bool:
        return bool(self._transfers) or bool(self._acks)

    def next_event_cycle(self) -> int | None:
        """Earliest future cycle at which the tracker will act."""
        candidates = []
        if self._acks:
            candidates.append(self._acks[0][0])
        for transfer in self._transfers.values():
            if transfer.pending:
                candidates.append(
                    transfer.last_send + self._timeout(transfer.retries)
                )
        return min(candidates) if candidates else None

    def _timeout(self, retries: int) -> int:
        scale = min(
            self.config.backoff_factor**retries, self.config.max_backoff_scale
        )
        return int(math.ceil(self.base_timeout * scale))


__all__ = ["EndToEndTracker", "PROTOCOLS", "ProtectionConfig", "TransferRecord"]
