"""Fault-aware routing: shortest paths around disabled links.

:class:`AdaptiveRoutingTable` maintains per-destination next-hop tables
over the *alive* subset of a topology's links, recomputed whenever the
link-disable monitor kills a link.  On grid topologies (mesh,
concentrated mesh) tie-breaks prefer the port XY dimension-order
routing would take, so with no links disabled the table reproduces
:func:`repro.noc.routing.xy_route` exactly — the parity anchor that
keeps fault-free behavior bitwise unchanged.  Table-routed topologies
(torus, chiplet) instead delegate to
``Topology.build_routing_table(alive=...)``, which re-runs the
up*/down* construction over the surviving links — detours there keep
the same turn restrictions and stay deadlock-free.

Deadlock caveat (grids only): on an intact mesh the table *is* XY and
inherits its deadlock freedom.  With links disabled the detour paths
can in principle create channel-dependence cycles; the simulator's
livelock detection (bounded drain with a stall diagnostic) converts
that from a silent hang into a loud failure.  ``docs/FAULTS.md``
discusses the limitation.
"""

from __future__ import annotations

from collections import deque

from repro.noc.packet import Flit
from repro.noc.routing import route_ports, xy_route
from repro.noc.topology import NodeId, Port, Topology

_DIRECTIONS = (Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST)


class AdaptiveRoutingTable:
    """Next-hop routing over the alive links of a topology."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._alive: set[tuple[NodeId, Port]] = {
            (src, port) for src, port, _dst in topology.links()
        }
        self._disabled: list[tuple[NodeId, Port]] = []
        #: next_hop[dest][node] -> Port toward dest (LOCAL at dest itself).
        self._next_hop: dict[NodeId, dict[NodeId, Port]] = {}
        self._recompute()

    # --- link lifecycle ---------------------------------------------------------------

    @property
    def disabled_links(self) -> list[tuple[NodeId, Port]]:
        return list(self._disabled)

    def disable(self, src: NodeId, port: Port) -> None:
        """Remove a directed link and recompute every route."""
        if (src, port) in self._alive:
            self._alive.discard((src, port))
            self._disabled.append((src, port))
            self._recompute()

    # --- routing ----------------------------------------------------------------------

    def next_hop(self, node: NodeId, dest: NodeId) -> Port | None:
        """Port toward ``dest`` from ``node``; None when unreachable."""
        return self._next_hop[dest].get(node)

    def reachable(self, src: NodeId, dest: NodeId) -> bool:
        return src == dest or self.next_hop(src, dest) is not None

    def partition(
        self, topology: Topology, node: NodeId, flit: Flit
    ) -> dict[Port, frozenset[NodeId]]:
        """Drop-in :func:`repro.noc.routing.route_ports` replacement.

        Unicast flits follow the alive-link table; an unreachable
        destination maps to LOCAL, which the router treats as a counted
        discard (the escape hatch for partitions).  Multicast trees stay
        on the XY construction — fault campaigns drive unicast traffic.
        """
        if len(flit.dests) > 1:
            return route_ports(topology, node, flit)
        dest = next(iter(flit.dests))
        port = self.next_hop(node, dest)
        if port is None:
            return {Port.LOCAL: flit.dests}
        return {port: flit.dests}

    # --- table construction -----------------------------------------------------------

    def _recompute(self) -> None:
        if self.topology.table_routed:
            # Up*/down* topologies rebuild their own table over the
            # alive links: detours keep the turn restrictions, so the
            # recomputed routes stay deadlock-free by construction.
            self._next_hop = self.topology.build_routing_table(
                alive=self._alive
            )
            return
        nodes = self.topology.nodes()
        # Forward adjacency: node -> [(port, neighbor)] over alive links.
        adjacency: dict[NodeId, list[tuple[Port, NodeId]]] = {n: [] for n in nodes}
        predecessors: dict[NodeId, list[tuple[NodeId, Port]]] = {n: [] for n in nodes}
        for node in nodes:
            for port in _DIRECTIONS:
                if (node, port) not in self._alive:
                    continue
                neighbor = self.topology.neighbor(node, port)
                if neighbor is None:
                    continue
                adjacency[node].append((port, neighbor))
                predecessors[neighbor].append((node, port))
        self._next_hop = {}
        for dest in nodes:
            dist: dict[NodeId, int] = {dest: 0}
            frontier = deque([dest])
            while frontier:
                node = frontier.popleft()
                for upstream, _port in predecessors[node]:
                    if upstream not in dist:
                        dist[upstream] = dist[node] + 1
                        frontier.append(upstream)
            table: dict[NodeId, Port] = {dest: Port.LOCAL}
            for node in nodes:
                if node == dest or node not in dist:
                    continue
                candidates = [
                    port
                    for port, neighbor in adjacency[node]
                    if dist.get(neighbor) == dist[node] - 1
                ]
                preferred = xy_route(node, dest)
                table[node] = (
                    preferred if preferred in candidates else min(candidates)
                )
            self._next_hop[dest] = table


__all__ = ["AdaptiveRoutingTable"]
