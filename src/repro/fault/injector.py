"""Fault injection: per-link channels and the cross-layer fault layer.

:class:`FaultChannel` sits on one :class:`repro.noc.link.Link` and
mediates every traversal: it draws error events from the link's fault
state, runs the link-level CRC/retransmission loop when that protection
is active, marks surviving corruption on the flit, and flags whole
packets for drop-absorption at the far end when the link is severed.
Arrival times are kept strictly monotone per link (the wire serializes),
so retransmission delays never reorder a worm.

:class:`FaultLayer` owns the channels, the protection machinery
(:class:`repro.fault.protection.EndToEndTracker`,
:class:`repro.fault.reroute.AdaptiveRoutingTable`), and the
:class:`FaultStats` ledger.  ``FaultLayer(model, protection,
seed).attach(sim)`` wires everything into an existing
:class:`repro.noc.NocSimulator`; a simulator without a layer runs the
exact code paths it always did.

Flow-control safety: a dropped flit is *not* vanished mid-wire — that
would leak the upstream credit and the downstream VC grant and wedge the
network.  Instead the channel lets it arrive and the simulator absorbs
it at the far end, returning the credit (and releasing the VC on tails)
just as a normal buffer-write's lifecycle eventually would.  Drops are
decided at head flits and held sticky for the whole packet, so worms are
dropped atomically.

Determinism: every channel draws from an RNG seeded by
``derived_seed(seed, "fault/errors/<link token>")``, and fault states
advance by cycle number — so per-link fault counts depend only on
(model, seed, traffic), never on worker count or host.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.fault.models import FaultModel, LinkFaultState
from repro.fault.protection import EndToEndTracker, ProtectionConfig
from repro.fault.reroute import AdaptiveRoutingTable
from repro.noc.link import Link
from repro.noc.packet import Flit, Packet
from repro.noc.topology import NodeId, Port
from repro.runtime.seeds import derived_seed

_DIRECTIONS = (Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST)


@dataclass
class LinkFaultCounters:
    """Per-link fault ledger (the bitwise-reproducibility anchor)."""

    transmitted_flits: int = 0
    #: Raw faulty transmission attempts, including ones CRC repaired.
    faulty_attempts: int = 0
    #: Uncorrected corruptions that left this link on a flit.
    errors: int = 0
    #: Link-level retransmissions performed.
    retransmissions: int = 0
    #: Flits marked for drop-absorption at the far end.
    dropped_flits: int = 0
    #: Times the CRC retry loop hit its cap and forwarded corrupted data.
    giveups: int = 0
    #: Cycle the reroute monitor disabled this link (None = alive).
    disabled_at: int | None = None


@dataclass
class FaultStats:
    """Network-wide fault/protection ledger for one run."""

    raw_faults: int = 0
    flits_corrupted: int = 0
    flits_dropped: int = 0
    retransmissions: int = 0
    crc_giveups: int = 0
    links_disabled: int = 0
    #: Flits discarded because reroute found no alive path.
    undeliverable_flits: int = 0
    undeliverable_packets: int = 0
    # --- end-to-end protocol ---
    acks: int = 0
    ack_hops: int = 0
    packet_retries: int = 0
    completed_transfers: int = 0
    failed_transfers: int = 0
    duplicate_deliveries: int = 0
    #: One :class:`repro.fault.protection.TransferRecord` per completed
    #: end-to-end transfer.
    transfer_records: list = field(default_factory=list)
    per_link: dict[str, LinkFaultCounters] = field(default_factory=dict)

    def per_link_error_counts(self) -> dict[str, tuple[int, int]]:
        """token -> (faulty_attempts, attempts), sorted by token.

        ``attempts`` counts every traversal *including* link-level
        retransmissions — under CRC a flit can fail several times
        before crossing, so faulty attempts may exceed delivered flits
        but never the attempt count.  This is the (errors, trials)
        pairing campaigns feed to
        :func:`repro.mc.ber.ber_upper_bound_many` and the quantity the
        jobs-parity acceptance test compares bitwise.
        """
        return {
            token: (
                c.faulty_attempts,
                c.transmitted_flits + c.retransmissions,
            )
            for token, c in sorted(self.per_link.items())
        }


class FaultChannel:
    """Fault behavior of one link: errors, retries, drops, disable."""

    def __init__(
        self,
        layer: "FaultLayer",
        link: Link,
        out_port: Port,
        state: LinkFaultState,
        rng: np.random.Generator,
        protection: ProtectionConfig,
        flit_bits: int,
    ) -> None:
        self.layer = layer
        self.link = link
        #: Output port of the source router this link hangs off.
        self.out_port = out_port
        self.state = state
        self.rng = rng
        self.protection = protection
        self.flit_bits = flit_bits
        self.counters = LinkFaultCounters()
        #: Set by the reroute monitor: routing avoids this link, and the
        #: CRC retry loop stops burning energy on it.
        self.disabled = False
        self._consecutive_giveups = 0
        self._last_arrival = -1
        #: Packet ids mid-drop (head decided, tail not yet seen).
        self._dropping: set[int] = set()
        #: id() of in-flight flits the far end must absorb.
        self._absorbing: set[int] = set()

    # --- the wire ---------------------------------------------------------------------

    def transmit(self, link: Link, flit: Flit, cycle: int) -> tuple[int, Flit]:
        """Carry ``flit``; return (arrival cycle, flit as delivered)."""
        counters = self.counters
        counters.transmitted_flits += 1
        pid = flit.packet.packet_id

        # Whole-packet drops (severed wire without link-level protection;
        # with CRC the severed wire is detected per-flit and handled as a
        # guaranteed-faulty transmission below instead).
        if pid in self._dropping:
            if flit.is_tail:
                self._dropping.discard(pid)
            return self._drop(flit, cycle + link.latency)
        if (
            flit.is_head
            and not self.protection.link_level
            and self.state.drops(cycle)
        ):
            if not flit.is_tail:
                self._dropping.add(pid)
            return self._drop(flit, cycle + link.latency)

        stats = self.layer.stats
        delay = 0
        corrupted = False
        if self.protection.link_level and not self.disabled:
            # CRC + ack/nack: retry until clean or the per-hop cap; each
            # failed attempt costs a nack round trip + retransmission.
            failures = 0
            while failures < self.protection.max_link_retries:
                if not self._attempt_faulty(cycle):
                    break
                failures += 1
            gave_up = failures >= self.protection.max_link_retries
            if failures:
                counters.faulty_attempts += failures
                stats.raw_faults += failures
                retries = failures - 1 if gave_up else failures
                counters.retransmissions += retries
                stats.retransmissions += retries
                delay = retries * self._retry_rtt(link)
            if gave_up:
                corrupted = True
                counters.giveups += 1
                stats.crc_giveups += 1
                self._consecutive_giveups += 1
                self._maybe_disable(cycle)
            else:
                self._consecutive_giveups = 0
        else:
            if self._attempt_faulty(cycle):
                counters.faulty_attempts += 1
                stats.raw_faults += 1
                corrupted = True

        if corrupted:
            flit.corrupted = True
            counters.errors += 1
            stats.flits_corrupted += 1
            if len(flit.packet.dests) == 1:
                self.layer.mark_corrupted(pid)

        arrival = cycle + link.latency + delay
        if arrival <= self._last_arrival:
            arrival = self._last_arrival + 1  # the wire serializes
        self._last_arrival = arrival
        return arrival, flit

    def absorbs(self, flit: Flit) -> bool:
        """True when the far end must absorb (credit + discard) ``flit``."""
        key = id(flit)
        if key in self._absorbing:
            self._absorbing.discard(key)
            return True
        return False

    # --- helpers ----------------------------------------------------------------------

    def _attempt_faulty(self, cycle: int) -> bool:
        """Draw one transmission attempt from the link's fault state."""
        if self.protection.link_level and self.state.drops(cycle):
            # A severed wire under CRC: every attempt fails detection.
            return True
        p = self.state.flit_error_probability(cycle, self.flit_bits)
        return p > 0.0 and float(self.rng.random()) < p

    def _retry_rtt(self, link: Link) -> int:
        return 2 * link.latency + self.protection.nack_turnaround

    def _drop(self, flit: Flit, arrival: int) -> tuple[int, Flit]:
        self.counters.dropped_flits += 1
        self.layer.stats.flits_dropped += 1
        if arrival <= self._last_arrival:
            arrival = self._last_arrival + 1
        self._last_arrival = arrival
        self._absorbing.add(id(flit))
        return arrival, flit

    def _maybe_disable(self, cycle: int) -> None:
        if (
            self.protection.protocol != "reroute"
            or self.disabled
            or self._consecutive_giveups < self.protection.disable_threshold
        ):
            return
        self.disabled = True
        self.counters.disabled_at = cycle
        self.layer.stats.links_disabled += 1
        self.layer.on_link_disabled(self)


class FaultLayer:
    """Attaches a fault model + protection scheme to a NocSimulator."""

    def __init__(
        self,
        model: FaultModel,
        protection: ProtectionConfig | str | None = None,
        seed: int = 0,
        flit_bits: int = 64,
    ) -> None:
        if protection is None:
            protection = ProtectionConfig()
        elif isinstance(protection, str):
            protection = ProtectionConfig(protocol=protection)
        if flit_bits < 1:
            raise ConfigurationError(f"flit_bits must be >= 1, got {flit_bits}")
        self.model = model
        self.protection = protection
        self.seed = seed
        self.flit_bits = flit_bits
        self.stats = FaultStats()
        self.channels: dict[str, FaultChannel] = {}
        self.table: AdaptiveRoutingTable | None = None
        self.tracker: EndToEndTracker | None = None
        self.sim = None
        self._corrupted_packets: set[int] = set()

    # --- wiring -----------------------------------------------------------------------

    def attach(self, sim) -> "FaultLayer":
        """Wire this layer into ``sim``; returns self for chaining."""
        if self.sim is not None:
            raise ConfigurationError("fault layer is already attached")
        if getattr(sim, "fault_layer", None) is not None:
            raise ConfigurationError("simulator already has a fault layer")
        if self.protection.protocol == "reroute" and sim.config.routing != "xy":
            raise ConfigurationError(
                "adaptive reroute requires routing='xy' (the alive-link "
                "table replaces dimension-order routing wholesale)"
            )
        self.sim = sim
        tokens = [link.token for link in sim.links]
        states = self.model.make_states(tokens, self.seed)
        for link in sim.links:
            channel = FaultChannel(
                layer=self,
                link=link,
                out_port=self._link_direction(sim.topology, link),
                state=states[link.token],
                rng=np.random.default_rng(
                    derived_seed(self.seed, f"fault/errors/{link.token}")
                ),
                protection=self.protection,
                flit_bits=self.flit_bits,
            )
            link.channel = channel
            self.channels[link.token] = channel
            self.stats.per_link[link.token] = channel.counters
        for router in sim.routers.values():
            router.fault_layer = self
        if self.protection.protocol == "reroute":
            self.table = AdaptiveRoutingTable(sim.topology)
            for router in sim.routers.values():
                router.route_fn = self.table.partition
        if self.protection.protocol == "e2e":
            self.tracker = EndToEndTracker(
                self.protection,
                sim.topology,
                sim.config.link_latency,
                self.stats,
                self._reinject,
            )
        sim.fault_layer = self
        return self

    @staticmethod
    def _link_direction(topology, link: Link) -> Port:
        # Per-node ports, not the fixed compass set: chiplet gateways
        # and interface routers carry a sixth (vertical) port.
        for port in topology.node_ports(link.src):
            if topology.neighbor(link.src, port) == link.dst.node:
                return port
        raise ConfigurationError(f"link {link.token} joins non-neighbors")

    def _reinject(self, packet: Packet) -> None:
        assert self.sim is not None
        self.sim.nics[packet.src].offer(packet)

    # --- simulator hooks --------------------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        if self.tracker is not None:
            self.tracker.begin_cycle(cycle)

    def on_offer(self, packet: Packet, cycle: int) -> None:
        if self.tracker is not None:
            self.tracker.on_offer(packet, cycle)

    def on_delivery(
        self, flit: Flit, node: NodeId, cycle: int, corrupted: bool
    ) -> None:
        if self.tracker is not None:
            self.tracker.on_delivery(flit.packet, node, cycle, corrupted)

    def on_undeliverable(self, flit: Flit, node: NodeId) -> None:
        self.stats.undeliverable_flits += 1
        if flit.is_head:
            self.stats.undeliverable_packets += 1
        if self.tracker is not None:
            self.tracker.on_unreachable(flit.packet)

    def mark_corrupted(self, packet_id: int) -> None:
        self._corrupted_packets.add(packet_id)

    def packet_corrupted(self, packet: Packet) -> bool:
        return packet.packet_id in self._corrupted_packets

    def on_link_disabled(self, channel: FaultChannel) -> None:
        if self.table is not None:
            self.table.disable(channel.link.src, channel.out_port)

    # --- drain bookkeeping ------------------------------------------------------------

    def busy(self) -> bool:
        """True while protocol state still demands simulation cycles."""
        return self.tracker is not None and self.tracker.busy()

    def next_event_cycle(self) -> int | None:
        """Earliest future cycle the layer will act on its own."""
        return None if self.tracker is None else self.tracker.next_event_cycle()

    def progress_token(self) -> tuple[int, ...]:
        """Monotone counters for the simulator's livelock signature."""
        s = self.stats
        events = self.tracker.events if self.tracker is not None else 0
        return (
            events,
            s.flits_dropped,
            s.links_disabled,
            s.undeliverable_flits,
            s.failed_transfers,
        )


__all__ = ["FaultChannel", "FaultLayer", "FaultStats", "LinkFaultCounters"]
