"""Cross-layer fault injection and link reliability.

This package closes the loop the paper leaves open between its two
headline claims: the *circuit* claim (BER < 1e-9 at 0.8 V on a low-swing
SRLR link) and the *system* context (a mesh NoC assumed to have perfect
links).  It provides:

* **error sources** (:mod:`repro.fault.models`) — per-link fault models
  driven by the circuit layer: swing/corner-dependent BER derived through
  the same margin machinery as :mod:`repro.mc.ber`, supply-droop and
  crosstalk-burst episodes, and permanent link death.  Every link draws
  from its own content-addressed RNG stream
  (:func:`repro.runtime.seeds.derived_seed`), so campaigns are bitwise
  reproducible for any worker count.
* **injection** (:mod:`repro.fault.injector`) — a :class:`FaultLayer`
  that attaches to a :class:`repro.noc.NocSimulator`, corrupting or
  dropping flits on the wire per the active model.
* **protection** (:mod:`repro.fault.protection`,
  :mod:`repro.fault.reroute`) — CRC detection with link-level ack/nack
  retransmission, end-to-end packet retry with timeout/backoff, and
  link-disable with adaptive reroute around dead links.
* **accounting** (:mod:`repro.fault.energy`) — retransmissions, CRC
  logic and ack traffic priced through :mod:`repro.energy`, yielding the
  *effective* fJ/bit/mm of protected traffic.
* **campaigns** (:mod:`repro.fault.campaign`) — sweeps of raw BER x
  protection scheme over :class:`repro.runtime.ParallelExecutor`.

See ``docs/FAULTS.md`` for the model, protocol and reproducibility
details, and ``scripts/run_fault_campaign.py`` for the study CLI.
"""

from repro.fault.campaign import (
    EngineFallbackWarning,
    FaultCampaignConfig,
    FaultCampaignResult,
    FaultPointResult,
    format_fault_report,
    protection_crossover,
    run_fault_campaign,
)
from repro.fault.energy import (
    FaultEnergyReport,
    ProtectionCosts,
    price_fault_run,
)
from repro.fault.injector import FaultChannel, FaultLayer, FaultStats, LinkFaultCounters
from repro.fault.models import (
    FAULT_MODELS,
    CircuitBer,
    CompositeFault,
    CrosstalkBurst,
    DeadLinks,
    FaultModel,
    NoFaults,
    SupplyDroop,
    UniformBer,
    circuit_ber,
    make_fault_model,
)
from repro.fault.protection import PROTOCOLS, ProtectionConfig
from repro.fault.reroute import AdaptiveRoutingTable

__all__ = [
    "AdaptiveRoutingTable",
    "CircuitBer",
    "CompositeFault",
    "CrosstalkBurst",
    "DeadLinks",
    "EngineFallbackWarning",
    "FAULT_MODELS",
    "FaultCampaignConfig",
    "FaultCampaignResult",
    "FaultChannel",
    "FaultEnergyReport",
    "FaultLayer",
    "FaultModel",
    "FaultPointResult",
    "FaultStats",
    "LinkFaultCounters",
    "NoFaults",
    "PROTOCOLS",
    "ProtectionConfig",
    "ProtectionCosts",
    "SupplyDroop",
    "UniformBer",
    "circuit_ber",
    "format_fault_report",
    "make_fault_model",
    "price_fault_run",
    "protection_crossover",
    "run_fault_campaign",
]
