"""Per-link fault models: where the errors come from.

Each model is a small frozen dataclass (picklable, hashable, content
addressable) that materializes one *state* object per link.  States
answer two questions for every traversal:

* what is the probability that this flit arrives with at least one bit
  flipped (``flit_error_probability``), and
* is the link permanently dropping traffic right now (``drops``).

The probabilities are fed by the circuit layer where it matters:
:class:`CircuitBer` propagates a pulse through the calibrated SRLR link
at the requested swing/corner and converts the worst-stage sensing
margin into a BER with the same Q-factor extrapolation the paper (and
:func:`repro.mc.ber.q_factor_ber`) uses for its 1e-9 claim.

Determinism: states draw only from RNG streams derived with
:func:`repro.runtime.seeds.derived_seed` from ``(base_seed, link
token)``, and episodic models advance their schedules keyed by *cycle
number*, not call count — so a campaign's per-link error counts are
bitwise identical for any worker count and any traffic interleaving
that visits cycles in order.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.circuit.link import SRLRLink
from repro.circuit.srlr import robust_design
from repro.mc.ber import q_factor_ber
from repro.runtime.seeds import derived_seed
from repro.tech.corners import fixed_corners
from repro.tech.variation import corner_sample

#: Model keys accepted by :func:`make_fault_model`.
FAULT_MODELS = ("none", "uniform", "circuit", "droop", "burst", "dead")


def flit_error_probability(ber: float, flit_bits: int) -> float:
    """P(at least one of ``flit_bits`` bits flips) at a per-bit ``ber``.

    Uses ``-expm1(n*log1p(-ber))`` so BERs far below 1/n stay exact
    instead of cancelling to zero.
    """
    if not 0.0 <= ber <= 1.0:
        raise ConfigurationError(f"ber must lie in [0, 1], got {ber}")
    if flit_bits < 1:
        raise ConfigurationError(f"flit_bits must be >= 1, got {flit_bits}")
    if ber == 1.0:
        return 1.0
    return -math.expm1(flit_bits * math.log1p(-ber))


# --- per-link states --------------------------------------------------------------------


class LinkFaultState:
    """Fault behavior of one link under one model (default: fault-free)."""

    def flit_error_probability(self, cycle: int, flit_bits: int) -> float:
        return 0.0

    def drops(self, cycle: int) -> bool:
        """True when the link is permanently absorbing whole packets."""
        return False


class _ConstantBerState(LinkFaultState):
    def __init__(self, ber: float) -> None:
        self.ber = ber

    def flit_error_probability(self, cycle: int, flit_bits: int) -> float:
        return flit_error_probability(self.ber, flit_bits)


class _EpisodeState(LinkFaultState):
    """Base BER with exponential on/off episodes of elevated BER.

    The episode schedule is drawn lazily *in cycle order* from a
    dedicated RNG stream, so it depends only on ``(seed, link token)``
    — never on how many flits happened to traverse the link.
    """

    def __init__(
        self,
        base_ber: float,
        episode_ber: float,
        mean_interval: float,
        mean_duration: float,
        rng: np.random.Generator,
    ) -> None:
        self.base_ber = base_ber
        self.episode_ber = episode_ber
        self.mean_interval = mean_interval
        self.mean_duration = mean_duration
        self._rng = rng
        self._start = self._next_gap(0)
        self._end = self._start + self._next_duration()

    def _next_gap(self, after: int) -> int:
        return after + 1 + int(self._rng.exponential(self.mean_interval))

    def _next_duration(self) -> int:
        return 1 + int(self._rng.exponential(self.mean_duration))

    def _in_episode(self, cycle: int) -> bool:
        while cycle >= self._end:
            self._start = self._next_gap(self._end)
            self._end = self._start + self._next_duration()
        return cycle >= self._start

    def flit_error_probability(self, cycle: int, flit_bits: int) -> float:
        ber = self.episode_ber if self._in_episode(cycle) else self.base_ber
        return flit_error_probability(ber, flit_bits)


class _BurstState(LinkFaultState):
    """Per-traversal burst probability on top of a base BER."""

    def __init__(self, base_ber: float, burst_probability: float) -> None:
        self.base_ber = base_ber
        self.burst_probability = burst_probability

    def flit_error_probability(self, cycle: int, flit_bits: int) -> float:
        p = flit_error_probability(self.base_ber, flit_bits)
        return 1.0 - (1.0 - p) * (1.0 - self.burst_probability)


class _DeadState(LinkFaultState):
    """A link that fails permanently at ``fail_cycle``."""

    def __init__(self, fail_cycle: int, mode: str, base: LinkFaultState) -> None:
        self.fail_cycle = fail_cycle
        self.mode = mode
        self.base = base

    def flit_error_probability(self, cycle: int, flit_bits: int) -> float:
        if cycle >= self.fail_cycle and self.mode == "garbage":
            return 1.0
        return self.base.flit_error_probability(cycle, flit_bits)

    def drops(self, cycle: int) -> bool:
        return cycle >= self.fail_cycle and self.mode == "drop"


class _CompositeState(LinkFaultState):
    def __init__(self, states: list[LinkFaultState]) -> None:
        self.states = states

    def flit_error_probability(self, cycle: int, flit_bits: int) -> float:
        ok = 1.0
        for state in self.states:
            ok *= 1.0 - state.flit_error_probability(cycle, flit_bits)
        return 1.0 - ok

    def drops(self, cycle: int) -> bool:
        return any(state.drops(cycle) for state in self.states)


# --- models -----------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultModel:
    """Base model: no faults.  Subclasses override :meth:`make_state`."""

    @property
    def key(self) -> str:
        return "none"

    def make_state(self, token: str, base_seed: int) -> LinkFaultState:
        return LinkFaultState()

    def make_states(
        self, tokens: list[str], base_seed: int
    ) -> dict[str, LinkFaultState]:
        """One state per link token (override for cross-link models)."""
        return {token: self.make_state(token, base_seed) for token in tokens}

    def _rng(self, token: str, base_seed: int, purpose: str) -> np.random.Generator:
        return np.random.default_rng(
            derived_seed(base_seed, f"fault/{self.key}/{purpose}/{token}")
        )


@dataclass(frozen=True)
class NoFaults(FaultModel):
    """Explicit fault-free model (the parity/golden-regression anchor)."""


@dataclass(frozen=True)
class UniformBer(FaultModel):
    """A flat per-bit error rate on every link (the campaign sweep axis)."""

    ber: float = 1e-6

    def __post_init__(self) -> None:
        if not 0.0 <= self.ber <= 1.0:
            raise ConfigurationError(f"ber must lie in [0, 1], got {self.ber}")

    @property
    def key(self) -> str:
        return "uniform"

    def make_state(self, token: str, base_seed: int) -> LinkFaultState:
        return _ConstantBerState(self.ber)


@functools.lru_cache(maxsize=64)
def circuit_ber(
    swing: float,
    noise_sigma: float = 0.006,
    bit_period: float = 1.0 / 4.1e9,
    corner: str = "TT",
) -> float:
    """Per-bit error rate of the SRLR link at (swing, corner, rate).

    Propagates one pulse through the calibrated robust design at the
    requested far-end ``swing`` and global ``corner``, takes the *worst
    stage's* sensing margin (input swing minus the smallest swing that
    still trips the stage within its dwell), and converts margin to BER
    with the Gaussian Q-factor — the same extrapolation the paper uses
    to state BER < 1e-9 from a finite error count.  A pulse that dies
    before the last stage is a stuck link: BER 0.5.
    """
    if swing <= 0.0:
        raise ConfigurationError(f"swing must be positive, got {swing}")
    design = robust_design(nominal_swing=swing)
    corners = fixed_corners(design.tech)
    if corner not in corners:
        raise ConfigurationError(
            f"unknown corner {corner!r}; choose from {sorted(corners)}"
        )
    sample = corner_sample(design.tech, corners[corner])
    link = SRLRLink(design, sample)
    records = link.propagate_pulse(dwell_limit=bit_period)
    if len(records) < design.n_stages or not records[-1].fired:
        return 0.5
    margin = math.inf
    for stage, record in zip(link.stages, records):
        sensitivity = stage.sensitivity_swing(record.in_dwell)
        margin = min(margin, record.in_swing - sensitivity)
    if margin <= 0.0:
        return 0.5
    return min(q_factor_ber(margin, noise_sigma), 0.5)


@dataclass(frozen=True)
class CircuitBer(FaultModel):
    """Swing/corner-dependent BER derived from the circuit layer.

    ``noise_sigma`` is the aggregate received-voltage noise (thermal +
    supply + residual crosstalk) at speed; 6 mV against the calibrated
    design's ~50 mV worst-stage margin puts the nominal 300 mV link far
    below 1e-9 (the paper's regime), while reduced swings or the slow
    corner collapse the margin and climb into the measurable range.
    """

    swing: float = 0.30
    noise_sigma: float = 0.006
    bit_period: float = 1.0 / 4.1e9
    corner: str = "TT"

    @property
    def key(self) -> str:
        return "circuit"

    @property
    def ber(self) -> float:
        return circuit_ber(self.swing, self.noise_sigma, self.bit_period, self.corner)

    def make_state(self, token: str, base_seed: int) -> LinkFaultState:
        return _ConstantBerState(self.ber)


@dataclass(frozen=True)
class SupplyDroop(FaultModel):
    """Supply-droop episodes: intervals of collapsed margin, elevated BER.

    Episodes arrive per link with exponential inter-arrival
    (``mean_interval_cycles``) and exponential duration
    (``mean_duration_cycles``); during an episode the per-bit error rate
    is ``droop_ber`` instead of ``base_ber``.
    """

    base_ber: float = 1e-12
    droop_ber: float = 1e-3
    mean_interval_cycles: float = 400.0
    mean_duration_cycles: float = 40.0

    def __post_init__(self) -> None:
        for key in ("base_ber", "droop_ber"):
            value = getattr(self, key)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{key} must lie in [0, 1], got {value}")
        for key in ("mean_interval_cycles", "mean_duration_cycles"):
            if getattr(self, key) <= 0.0:
                raise ConfigurationError(f"{key} must be positive")

    @property
    def key(self) -> str:
        return "droop"

    def make_state(self, token: str, base_seed: int) -> LinkFaultState:
        return _EpisodeState(
            self.base_ber,
            self.droop_ber,
            self.mean_interval_cycles,
            self.mean_duration_cycles,
            self._rng(token, base_seed, "episodes"),
        )


@dataclass(frozen=True)
class CrosstalkBurst(FaultModel):
    """Aggressor-coupling bursts: a per-traversal chance the flit is hit.

    Unlike a per-bit BER, a crosstalk event couples into many bits of
    the parallel bus at once, so it is modeled as a flat per-flit
    corruption probability on top of ``base_ber``.
    """

    burst_probability: float = 1e-4
    base_ber: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ConfigurationError(
                f"burst_probability must lie in [0, 1], got {self.burst_probability}"
            )
        if not 0.0 <= self.base_ber <= 1.0:
            raise ConfigurationError(f"base_ber must lie in [0, 1], got {self.base_ber}")

    @property
    def key(self) -> str:
        return "burst"

    def make_state(self, token: str, base_seed: int) -> LinkFaultState:
        return _BurstState(self.base_ber, self.burst_probability)


@dataclass(frozen=True)
class DeadLinks(FaultModel):
    """Permanent link degradation: named or randomly chosen victims die.

    ``victims`` selects links by token (``"x,y->x,y"``); ``n_random``
    additionally kills that many links chosen by a content-addressed
    draw over the sorted token list.  ``mode`` is ``"garbage"`` (the
    wire delivers corrupted flits — a stuck driver) or ``"drop"`` (the
    receiver absorbs whole packets — a severed wire).
    """

    victims: tuple[str, ...] = ()
    n_random: int = 0
    fail_cycle: int = 0
    mode: str = "garbage"
    base_ber: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("garbage", "drop"):
            raise ConfigurationError(
                f"mode must be 'garbage' or 'drop', got {self.mode!r}"
            )
        if self.n_random < 0:
            raise ConfigurationError(f"n_random must be >= 0, got {self.n_random}")
        if self.fail_cycle < 0:
            raise ConfigurationError(f"fail_cycle must be >= 0, got {self.fail_cycle}")
        if not 0.0 <= self.base_ber <= 1.0:
            raise ConfigurationError(f"base_ber must lie in [0, 1], got {self.base_ber}")

    @property
    def key(self) -> str:
        return "dead"

    def make_states(
        self, tokens: list[str], base_seed: int
    ) -> dict[str, LinkFaultState]:
        victims = set(self.victims)
        unknown = victims - set(tokens)
        if unknown:
            raise ConfigurationError(f"unknown victim links: {sorted(unknown)}")
        if self.n_random:
            pool = sorted(set(tokens) - victims)
            if self.n_random > len(pool):
                raise ConfigurationError(
                    f"n_random={self.n_random} exceeds the {len(pool)} eligible links"
                )
            rng = np.random.default_rng(derived_seed(base_seed, "fault/dead/victims"))
            picks = rng.choice(len(pool), size=self.n_random, replace=False)
            victims.update(pool[i] for i in sorted(int(i) for i in picks))
        states: dict[str, LinkFaultState] = {}
        for token in tokens:
            base = _ConstantBerState(self.base_ber)
            if token in victims:
                states[token] = _DeadState(self.fail_cycle, self.mode, base)
            else:
                states[token] = base
        return states

    def make_state(self, token: str, base_seed: int) -> LinkFaultState:
        base = _ConstantBerState(self.base_ber)
        if token in self.victims:
            return _DeadState(self.fail_cycle, self.mode, base)
        return base


@dataclass(frozen=True)
class CompositeFault(FaultModel):
    """Independent composition of several fault sources."""

    models: tuple[FaultModel, ...] = ()

    def __post_init__(self) -> None:
        if not self.models:
            raise ConfigurationError("CompositeFault needs at least one model")

    @property
    def key(self) -> str:
        return "composite(" + ",".join(m.key for m in self.models) + ")"

    def make_states(
        self, tokens: list[str], base_seed: int
    ) -> dict[str, LinkFaultState]:
        per_model = [m.make_states(tokens, base_seed) for m in self.models]
        return {
            token: _CompositeState([states[token] for states in per_model])
            for token in tokens
        }

    def make_state(self, token: str, base_seed: int) -> LinkFaultState:
        return _CompositeState([m.make_state(token, base_seed) for m in self.models])


def make_fault_model(key: str, **kwargs) -> FaultModel:
    """Build a fault model by key (the CLI entry point)."""
    factories = {
        "none": NoFaults,
        "uniform": UniformBer,
        "circuit": CircuitBer,
        "droop": SupplyDroop,
        "burst": CrosstalkBurst,
        "dead": DeadLinks,
    }
    if key not in factories:
        raise ConfigurationError(
            f"unknown fault model {key!r}; choose from {FAULT_MODELS}"
        )
    return factories[key](**kwargs)


__all__ = [
    "FAULT_MODELS",
    "CircuitBer",
    "CompositeFault",
    "CrosstalkBurst",
    "DeadLinks",
    "FaultModel",
    "LinkFaultState",
    "NoFaults",
    "SupplyDroop",
    "UniformBer",
    "circuit_ber",
    "flit_error_probability",
    "make_fault_model",
]
