"""Pricing protection: what reliability costs in fJ/bit/mm.

The paper's 40.4 fJ/bit/mm is the energy of a *raw* traversal.  Once
links err, the honest figure of merit is the **effective** energy per
*useful* bit-mm: total energy spent — including CRC logic, nack/ack
signaling, retransmitted traversals and retry buffering — divided by the
bit-mm of payload that arrived intact.  This module layers those
protection overheads on top of :func:`repro.noc.power.price_stats`.

Overheads are expressed relative to the calibrated router energies so
they track the datapath choice (SRLR vs full swing) automatically:

* CRC generate/check logic switches a small fraction of the datapath
  energy at every hop while link-level protection is active;
* a retransmission re-drives the full flit over crossbar + wire, plus a
  narrow nack back-channel;
* an end-to-end ack is a short control packet priced per hop as a bit
  fraction of a flit traversal;
* e2e retry buffering writes every injected flit into the source-side
  retry buffer (same array energy as a router buffer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.energy.router import RouterPowerModel
from repro.fault.injector import FaultStats
from repro.fault.protection import ProtectionConfig
from repro.noc.power import NocEnergyReport, payload_pricing_active, price_stats
from repro.noc.stats import NocStats
from repro.noc.topology import Topology
from repro.units import FJ, MM


@dataclass(frozen=True)
class ProtectionCosts:
    """Relative energy costs of the protection machinery."""

    #: CRC generate + check logic per hop, as a fraction of the datapath
    #: flit energy (a 64-bit parallel CRC is small next to a 64x1mm bus).
    crc_fraction: float = 0.05
    #: Nack back-channel per retransmission, as a datapath fraction (a
    #: single-wire signal against a 64-bit bus).
    nack_fraction: float = 0.15
    #: Ack packet width for end-to-end protection, bits on the wire.
    ack_bits: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.crc_fraction <= 1.0:
            raise ConfigurationError(
                f"crc_fraction must lie in [0, 1], got {self.crc_fraction}"
            )
        if not 0.0 <= self.nack_fraction <= 1.0:
            raise ConfigurationError(
                f"nack_fraction must lie in [0, 1], got {self.nack_fraction}"
            )
        if self.ack_bits < 1:
            raise ConfigurationError(f"ack_bits must be >= 1, got {self.ack_bits}")


@dataclass(frozen=True)
class FaultEnergyReport:
    """Energy of one fault run: base network + protection overheads, joules."""

    base: NocEnergyReport
    crc: float
    retransmission: float
    ack: float
    retry_buffer: float
    #: Intact payload delivered in the measurement window, bit * mm.
    useful_bit_mm: float
    clean_deliveries: int
    #: Extra traversal energy of links longer than the 1 mm baseline
    #: (chiplet NoI links); 0.0 on uniform-length topologies.
    link_surcharge: float = 0.0

    @property
    def overhead(self) -> float:
        return (
            self.crc
            + self.retransmission
            + self.ack
            + self.retry_buffer
            + self.link_surcharge
        )

    @property
    def total(self) -> float:
        return self.base.total + self.overhead

    @property
    def overhead_fraction(self) -> float:
        return self.overhead / self.total if self.total > 0.0 else 0.0

    @property
    def effective_fj_per_bit_mm(self) -> float:
        """Total energy per intact delivered bit-mm, femtojoules.

        Infinite when nothing useful got through — the honest value for
        a link so broken the protection scheme cannot save it.
        """
        if self.useful_bit_mm <= 0.0:
            return float("inf")
        return self.total / self.useful_bit_mm / FJ


def price_fault_run(
    stats: NocStats,
    fault: FaultStats,
    topology: Topology,
    protection: ProtectionConfig,
    size_flits: int = 1,
    model: RouterPowerModel | None = None,
    costs: ProtectionCosts | None = None,
    datapath: str = "srlr",
    n_cycles: int | None = None,
    useful_deliveries: list[tuple] | None = None,
    links=None,
    coupling: bool = True,
) -> FaultEnergyReport:
    """Price a fault run: base event energy + protection overheads.

    ``size_flits`` is the (unicast) packet size the traffic generator
    used; deliveries are assumed unicast when converting to bit-mm (the
    fault campaign drives unicast traffic).  ``useful_deliveries``
    overrides the set of intact deliveries with explicit (src, dest)
    pairs — end-to-end campaigns use this because a retried packet's
    delivery record carries the retry's inject cycle and would fall
    outside the measurement window.  ``links`` (the simulator's link
    list) enables per-link length accounting: traversals of links with
    ``mm_scale != 1`` (chiplet NoI wires) pay a datapath surcharge
    proportional to the extra length.  When the run counted payload
    transitions (a payload-carrying workload), link pricing switches to
    the data-dependent model of :func:`repro.noc.power.price_stats` —
    which already folds ``mm_scale`` in per link, so the surcharge is
    skipped rather than double-counted; ``coupling=False`` drops the
    crosstalk term.
    """
    model = model or RouterPowerModel()
    costs = costs or ProtectionCosts()
    payload_active = payload_pricing_active(links)
    base = price_stats(
        stats,
        model,
        datapath=datapath,
        n_cycles=n_cycles,
        links=links,
        coupling=coupling,
    )
    e_dp = model.datapath_energy_per_flit(datapath)
    flit_bits = model.config.flit_bits

    crc = 0.0
    if protection.link_level:
        crc = costs.crc_fraction * e_dp * stats.link_traversals
    retransmission = fault.retransmissions * e_dp * (1.0 + costs.nack_fraction)
    ack = fault.ack_hops * (costs.ack_bits / flit_bits) * e_dp
    retry_buffer = 0.0
    if protection.protocol == "e2e":
        retry_buffer = model.buffer_energy_per_flit() * stats.injected_flits

    link_surcharge = 0.0
    if links is not None and not payload_active:
        # Datapath energy scales with wire length: each traversal of a
        # longer-than-baseline link pays the extra length's share.
        extra = sum(
            (link.mm_scale - 1.0) * link.traversals
            for link in links
            if link.mm_scale != 1.0
        )
        link_surcharge = extra * e_dp

    if useful_deliveries is None:
        useful_deliveries = [
            (record.src, record.dest) for record in stats.clean_measured()
        ]
    link_mm = model.config.link_length / MM
    useful_bit_mm = 0.0
    for src, dest in useful_deliveries:
        # route_mm = hops on uniform-length topologies (bitwise the old
        # hop_distance accounting); per-link scaled on chiplet NoC/NoI.
        hops = topology.route_mm(src, dest) if src is not None else 1
        useful_bit_mm += size_flits * flit_bits * hops * link_mm
    return FaultEnergyReport(
        base=base,
        crc=crc,
        retransmission=retransmission,
        ack=ack,
        retry_buffer=retry_buffer,
        useful_bit_mm=useful_bit_mm,
        clean_deliveries=len(useful_deliveries),
        link_surcharge=link_surcharge,
    )


__all__ = ["FaultEnergyReport", "ProtectionCosts", "price_fault_run"]
