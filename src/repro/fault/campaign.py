"""The fault campaign: effective fJ/bit/mm and goodput vs raw link BER.

One campaign sweeps a grid of (raw per-bit error rate) x (protection
scheme), running the cycle-level NoC under fault injection at each point
and reporting, per point:

* **goodput** — intact (packet, destination) deliveries per node per
  cycle in the measurement window (end-to-end points count *completed
  transfers*, since a retried packet's delivery record carries the retry
  injection cycle);
* **effective fJ/bit/mm** — total energy including protection overheads
  divided by intact payload bit-mm (:mod:`repro.fault.energy`);
* raw protocol counters and per-link Clopper-Pearson BER bounds
  (:func:`repro.mc.ber.ber_upper_bound_many`) recovered from the
  injected error counts — closing the loop back to the circuit-layer
  measurement methodology.

Reproducibility contract: every RNG stream is derived with
:func:`repro.runtime.seeds.derived_seed` from the campaign seed and a
content token (link identity, campaign point), so per-link fault counts
and all summary statistics are bitwise identical for ``--jobs 1`` and
``--jobs N``.  The worker is a module-level function over picklable
frozen configs, so :class:`repro.runtime.ParallelExecutor` runs it in
processes without a serial fallback.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.errors import ConfigurationError, LivelockError, WorkloadConfigError
from repro.fault.energy import ProtectionCosts, price_fault_run
from repro.fault.injector import FaultLayer
from repro.fault.models import UniformBer
from repro.fault.protection import PROTOCOLS, ProtectionConfig
from repro.mc.ber import ber_upper_bound_many
from repro.noc.simulator import ENGINES, EngineFallbackWarning, NocSimulator
from repro.noc.topology import TOPOLOGY_KINDS, Topology, build_topology
from repro.noc.trace import topology_spec, trace_file_hash
from repro.noc.traffic import PATTERNS
from repro.workload import (
    COLLECTIVES,
    PAYLOAD_MODES,
    WORKLOADS,
    build_traffic,
    load_trace_cached,
)
from repro.runtime import (
    CheckpointStore,
    ResilienceConfig,
    TaskFailure,
    open_checkpoint,
)
from repro.runtime.cache import content_key
from repro.runtime.executor import ParallelExecutor
from repro.runtime.seeds import derived_seed


@dataclass(frozen=True)
class FaultCampaignConfig:
    """Grid and simulation parameters of one fault campaign."""

    #: Topology class ("mesh", "cmesh", "torus", "chiplet"); ``k`` is
    #: the router-grid radix (the per-chiplet radix for "chiplet").
    topology: str = "mesh"
    k: int = 4
    #: Cores per router for topology="cmesh" (1 elsewhere).
    concentration: int = 1
    #: Chiplet grid for topology="chiplet" (1x1 elsewhere).
    chiplets_x: int = 1
    chiplets_y: int = 1
    #: NoI link length relative to 1 mm NoC links (chiplet only).
    noi_scale: float = 2.0
    injection_rate: float = 0.05
    pattern: str = "uniform"
    size_flits: int = 2
    warmup: int = 100
    measure: int = 400
    drain_limit: int = 20_000
    stall_window: int = 500
    bers: tuple[float, ...] = (1e-6, 1e-4, 1e-3, 1e-2)
    protocols: tuple[str, ...] = PROTOCOLS
    flit_bits: int = 64
    datapath: str = "srlr"
    seed: int = 7
    #: Cycle-loop implementation ("fast" or "reference"); both produce
    #: identical results — see tests/test_noc_fastsim_parity.py.  A
    #: multicast mix forces the reference engine (the fast engine is
    #: unicast-only) with an :class:`EngineFallbackWarning`.
    engine: str = "fast"
    #: Share of injected packets that are multicast (single-flit, random
    #: destination set of ``multicast_degree``); 0 keeps pure unicast.
    multicast_fraction: float = 0.0
    multicast_degree: int = 4
    #: Workload family (:data:`repro.workload.WORKLOADS`): the Bernoulli
    #: synthetics, Markov on/off bursts, multicast collectives, or a
    #: recorded trace replay.  Fields that do not apply to the selected
    #: workload must stay at their defaults — mixing refuses loudly with
    #: a :class:`~repro.errors.WorkloadConfigError`.
    workload: str = "synthetic"
    #: Trace file (JSON or text format) for workload="trace".  Campaign
    #: identity hashes the trace's *content*, not this path.
    trace_path: str | None = None
    #: Markov chain rates for workload="bursty": P(off->on), P(on->off).
    burst_on: float = 0.05
    burst_off: float = 0.15
    #: Collective mix for workload="collective": multicast share and
    #: destination-set construction ("row", "col", "random").
    collective_fraction: float = 0.25
    collective: str = "row"
    #: What bits flits carry (:data:`repro.workload.PAYLOAD_MODES`):
    #: "constant" keeps the worst-case per-bit price, "random" /
    #: "worst_case" switch link pricing to counted bit transitions.
    #: Traces carry their own recorded bits.
    payload_mode: str = "constant"
    #: Include the coupled-line Miller surcharge in data-dependent
    #: pricing; only meaningful when payload bits are being counted.
    coupling: bool = True

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ConfigurationError(f"k must be >= 2, got {self.k}")
        if self.topology not in TOPOLOGY_KINDS:
            raise ConfigurationError(
                f"topology must be one of {TOPOLOGY_KINDS}, "
                f"got {self.topology!r}"
            )
        # Build once to fail fast with the builder's named-parameter
        # errors (bad concentration, chiplet grid, noi_scale).
        topo = self.build_topology()
        if self.multicast_fraction > 0.0 and not topo.grid_endpoints:
            raise ConfigurationError(
                "multicast_fraction > 0 requires a grid-endpoint topology "
                f"(mesh, torus); got topology={self.topology!r}"
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if not 0.0 < self.injection_rate <= 1.0:
            raise ConfigurationError(
                f"injection_rate must lie in (0, 1], got {self.injection_rate}"
            )
        if self.pattern not in PATTERNS:
            raise ConfigurationError(
                f"unknown pattern {self.pattern!r}; choose from {PATTERNS}"
            )
        if not 0.0 <= self.multicast_fraction <= 1.0:
            raise ConfigurationError(
                f"multicast_fraction must lie in [0, 1], "
                f"got {self.multicast_fraction}"
            )
        if not self.bers:
            raise ConfigurationError("campaign needs at least one BER point")
        for ber in self.bers:
            if not 0.0 <= ber <= 1.0:
                raise ConfigurationError(f"ber must lie in [0, 1], got {ber}")
        unknown = set(self.protocols) - set(PROTOCOLS)
        if unknown or not self.protocols:
            raise ConfigurationError(
                f"protocols must be a non-empty subset of {PROTOCOLS}"
            )
        self._validate_workload(topo)

    def _validate_workload(self, topo: Topology) -> None:
        """Refuse workload/traffic field combinations that do not apply.

        Mirrors :func:`~repro.noc.topology.build_topology`'s named-flag
        guards: a knob the selected workload would silently ignore is a
        :class:`~repro.errors.WorkloadConfigError` naming the offending
        combination, never a quiet no-op.
        """
        if self.workload not in WORKLOADS:
            raise WorkloadConfigError(
                f"workload must be one of {WORKLOADS}, got {self.workload!r}"
            )
        if self.payload_mode not in PAYLOAD_MODES:
            raise WorkloadConfigError(
                f"payload_mode must be one of {PAYLOAD_MODES}, "
                f"got {self.payload_mode!r}"
            )
        if self.collective not in COLLECTIVES:
            raise WorkloadConfigError(
                f"collective must be one of {COLLECTIVES}, "
                f"got {self.collective!r}"
            )
        if self.trace_path is not None and self.workload != "trace":
            raise WorkloadConfigError(
                f"trace_path applies only to workload='trace' "
                f"(got workload={self.workload!r})"
            )
        if self.workload != "bursty" and (
            self.burst_on != 0.05 or self.burst_off != 0.15
        ):
            raise WorkloadConfigError(
                f"burst_on/burst_off=({self.burst_on}, {self.burst_off}) "
                f"apply only to workload='bursty' "
                f"(got workload={self.workload!r})"
            )
        if self.workload != "collective" and (
            self.collective_fraction != 0.25 or self.collective != "row"
        ):
            raise WorkloadConfigError(
                f"collective_fraction/collective=({self.collective_fraction}, "
                f"{self.collective!r}) apply only to workload='collective' "
                f"(got workload={self.workload!r})"
            )
        if self.workload == "bursty" and self.multicast_fraction != 0.0:
            raise WorkloadConfigError(
                f"workload='bursty' is unicast-only; "
                f"multicast_fraction={self.multicast_fraction} does not apply"
            )
        if self.workload == "collective" and self.multicast_fraction != 0.0:
            raise WorkloadConfigError(
                "workload='collective' mixes multicast via "
                f"collective_fraction; multicast_fraction="
                f"{self.multicast_fraction} does not apply"
            )
        if not self.coupling and self.payload_mode == "constant" and (
            self.workload != "trace"
        ):
            raise WorkloadConfigError(
                "coupling=False only affects data-dependent pricing; "
                "select payload_mode='random'/'worst_case' or a payload-"
                "carrying trace"
            )
        if self.workload == "trace":
            if self.trace_path is None:
                raise WorkloadConfigError("workload='trace' needs a trace_path")
            if self.payload_mode != "constant":
                raise WorkloadConfigError(
                    "trace replay carries its own recorded payload; "
                    f"payload_mode={self.payload_mode!r} does not apply"
                )
            knobs = (
                ("injection_rate", self.injection_rate, 0.05),
                ("pattern", self.pattern, "uniform"),
                ("size_flits", self.size_flits, 2),
                ("multicast_fraction", self.multicast_fraction, 0.0),
                ("multicast_degree", self.multicast_degree, 4),
            )
            offending = [
                f"{name}={value!r}"
                for name, value, default in knobs
                if value != default
            ]
            if offending:
                raise WorkloadConfigError(
                    "trace replay defines its own packet stream; generator "
                    f"knobs do not apply: {', '.join(offending)}"
                )
            trace = load_trace_cached(self.trace_path)
            if trace.topology != topo:
                raise WorkloadConfigError(
                    f"trace {self.trace_path} was recorded on "
                    f"{topology_spec(trace.topology)} but the campaign "
                    f"asks for {topology_spec(topo)}"
                )

    def build_topology(self) -> Topology:
        """The topology instance this campaign simulates over."""
        return build_topology(
            self.topology,
            self.k,
            concentration=self.concentration,
            chiplets_x=self.chiplets_x,
            chiplets_y=self.chiplets_y,
            noi_scale=self.noi_scale,
        )

    def describe(self) -> str:
        """Short human topology label for reports."""
        if self.topology == "cmesh":
            return f"{self.k}x{self.k} cmesh (c={self.concentration})"
        if self.topology == "chiplet":
            return (
                f"{self.chiplets_x}x{self.chiplets_y} chiplets of "
                f"{self.k}x{self.k} (NoI x{self.noi_scale:g})"
            )
        return f"{self.k}x{self.k} {self.topology}"

    def content_hash(self) -> str:
        """The content-hash identity of this campaign configuration.

        A trace campaign's identity follows the trace's *content*: the
        path is replaced by :func:`~repro.noc.trace.trace_file_hash`, so
        the same trace at two paths (or in two encodings) is the same
        campaign, and an edited trace file is a different one.
        """
        # v2: topology-class parameters joined the config identity.
        # v3: the workload axis joined; trace_path hashes by content.
        fields = asdict(self)
        if self.workload == "trace":
            fields["trace_path"] = trace_file_hash(self.trace_path)
        return content_key("fault-campaign/v3", fields)

    def workload_multicast_fraction(self) -> float:
        """The multicast share the selected workload will inject."""
        if self.multicast_fraction > 0.0:
            return self.multicast_fraction
        if self.workload == "collective":
            return self.collective_fraction
        if self.workload == "trace":
            return load_trace_cached(self.trace_path).multicast_fraction
        return 0.0

    def effective_engine(self, warn: bool = True) -> str:
        """The engine a point will actually run on.

        The fast engine is unicast-only and does not cover every
        topology class; a multicast mix or an unsupported topology
        falls back to the reference oracle.  The fallback is *loud* —
        an :class:`EngineFallbackWarning` naming the cause and the
        campaign's config hash — so a surprisingly slow campaign is
        attributable, never a bare silent reference-engine run.
        """
        multicast = self.workload_multicast_fraction()
        if self.engine == "fast" and multicast > 0.0:
            if warn:
                warnings.warn(
                    f"campaign {self.content_hash()[:16]}: engine='fast' "
                    f"does not support multicast traffic "
                    f"(workload={self.workload!r} injects a multicast "
                    f"fraction of {multicast:g}); "
                    f"falling back to the reference engine",
                    EngineFallbackWarning,
                    stacklevel=3,
                )
            return "reference"
        if (
            self.engine == "fast"
            and not self.build_topology().supports_fast_engine
        ):
            if warn:
                warnings.warn(
                    f"campaign {self.content_hash()[:16]}: engine='fast' "
                    f"does not support the {self.topology} topology; "
                    f"falling back to the reference engine",
                    EngineFallbackWarning,
                    stacklevel=3,
                )
            return "reference"
        return self.engine

    def tasks(self) -> list[tuple["FaultCampaignConfig", float, str]]:
        return [
            (self, ber, protocol)
            for ber in self.bers
            for protocol in self.protocols
        ]


@dataclass(frozen=True)
class FaultPointResult:
    """Summary of one (BER, protocol) campaign point.

    Deliberately free of packet ids and timestamps: every field is a
    pure function of (config, ber, protocol), which is what makes the
    jobs-parity acceptance test meaningful.
    """

    ber: float
    protocol: str
    delivered: int
    clean_delivered: int
    corrupted_delivered: int
    goodput: float
    avg_latency: float
    effective_fj_per_bit_mm: float
    overhead_fraction: float
    raw_faults: int
    retransmissions: int
    crc_giveups: int
    flits_dropped: int
    links_disabled: int
    undeliverable_packets: int
    packet_retries: int
    completed_transfers: int
    failed_transfers: int
    #: (link token, faulty attempts, transmitted flits), sorted by token.
    per_link_errors: tuple[tuple[str, int, int], ...]
    #: 95% Clopper-Pearson upper BER bound per link (same order).
    per_link_ber_bounds: tuple[float, ...]
    #: Set when the run aborted in a livelock; counters are partial.
    livelocked: bool = False


def _evaluate_point(
    task: tuple[FaultCampaignConfig, float, str]
) -> FaultPointResult:
    """Run one campaign point (module-level: picklable for workers)."""
    config, ber, protocol = task
    topology = config.build_topology()
    # The traffic stream is shared across protocols at a BER point (same
    # derived seed), so scheme comparisons see identical offered load.
    # The mesh token predates the topology zoo and stays unchanged so
    # mesh campaigns remain bitwise identical to their golden runs; the
    # synthetic tokens likewise predate the workload axis.
    if config.workload == "synthetic":
        if config.topology == "mesh":
            traffic_token = f"fault/campaign/traffic/{config.k}"
        else:
            traffic_token = (
                f"fault/campaign/traffic/{config.topology}/{config.k}"
            )
    else:
        traffic_token = (
            f"fault/campaign/traffic/{config.workload}/"
            f"{config.topology}/{config.k}"
        )
    sim_seed = derived_seed(config.seed, traffic_token)
    traffic = build_traffic(
        topology,
        config.workload,
        injection_rate=config.injection_rate,
        pattern=config.pattern,
        size_flits=config.size_flits,
        multicast_fraction=config.multicast_fraction,
        multicast_degree=config.multicast_degree,
        seed=sim_seed,
        burst_on=config.burst_on,
        burst_off=config.burst_off,
        collective_fraction=config.collective_fraction,
        collective=config.collective,
        trace_path=config.trace_path,
        payload_mode=config.payload_mode,
        flit_bits=config.flit_bits,
    )
    # warn=False: the campaign driver already warned once in the parent;
    # worker processes would emit invisible duplicates.
    sim = NocSimulator(
        topology,
        traffic=traffic,
        seed=sim_seed,
        engine=config.effective_engine(warn=False),
    )
    protection = ProtectionConfig(protocol=protocol)
    layer = FaultLayer(
        UniformBer(ber),
        protection,
        seed=derived_seed(config.seed, f"fault/campaign/ber/{ber:.9e}"),
        flit_bits=config.flit_bits,
    ).attach(sim)

    livelocked = False
    try:
        sim.run(
            warmup=config.warmup,
            measure=config.measure,
            drain_limit=config.drain_limit,
            stall_window=config.stall_window,
        )
    except LivelockError:
        livelocked = True

    stats, fstats = sim.stats, layer.stats
    window = config.measure
    # Goodput normalizes per *endpoint* (= per router on the flat mesh
    # and torus, per core elsewhere).
    n_nodes = len(topology.endpoints())

    if protocol == "e2e":
        # Completed transfers whose first injection fell in the window.
        records = [
            r
            for r in fstats.transfer_records
            if stats.measure_start <= r.first_inject < stats.measure_end
        ]
        clean = sum(len(r.dests) for r in records)
        latencies = [r.latency for r in records]
        useful = [(r.src, d) for r in records for d in r.dests]
    else:
        measured = stats.clean_measured()
        clean = len(measured)
        latencies = [r.latency for r in measured]
        useful = None

    report = price_fault_run(
        stats,
        fstats,
        sim.topology,
        protection,
        size_flits=config.size_flits,
        datapath=config.datapath,
        n_cycles=sim.cycle,
        useful_deliveries=useful,
        links=sim.links,
        coupling=config.coupling,
    )
    counts = fstats.per_link_error_counts()
    tokens = sorted(counts)
    errors = [counts[t][0] for t in tokens]
    transmitted = [max(counts[t][1], 1) for t in tokens]
    bounds = ber_upper_bound_many(errors, transmitted)
    return FaultPointResult(
        ber=ber,
        protocol=protocol,
        delivered=stats.delivered_count,
        clean_delivered=clean,
        corrupted_delivered=stats.corrupted_deliveries,
        goodput=clean / (window * n_nodes),
        avg_latency=(
            sum(latencies) / len(latencies) if latencies else float("nan")
        ),
        effective_fj_per_bit_mm=report.effective_fj_per_bit_mm,
        overhead_fraction=report.overhead_fraction,
        raw_faults=fstats.raw_faults,
        retransmissions=fstats.retransmissions,
        crc_giveups=fstats.crc_giveups,
        flits_dropped=fstats.flits_dropped,
        links_disabled=fstats.links_disabled,
        undeliverable_packets=fstats.undeliverable_packets,
        packet_retries=fstats.packet_retries,
        completed_transfers=fstats.completed_transfers,
        failed_transfers=fstats.failed_transfers,
        per_link_errors=tuple(
            (t, counts[t][0], counts[t][1]) for t in tokens
        ),
        per_link_ber_bounds=tuple(float(b) for b in bounds),
        livelocked=livelocked,
    )


def point_key(ber: float, protocol: str) -> str:
    """The checkpoint-record key of one campaign point."""
    return f"{ber!r}/{protocol}"


def point_payload(point: FaultPointResult) -> dict:
    """JSON checkpoint payload (floats round-trip exactly)."""
    return asdict(point)


def point_from_payload(payload: dict) -> FaultPointResult:
    fields = dict(payload)
    fields["per_link_errors"] = tuple(
        (str(t), int(e), int(n)) for t, e, n in fields["per_link_errors"]
    )
    fields["per_link_ber_bounds"] = tuple(
        float(b) for b in fields["per_link_ber_bounds"]
    )
    return FaultPointResult(**fields)


@dataclass(frozen=True)
class FaultCampaignResult:
    """All points of one campaign, in task order.

    Points whose simulation task exhausted its retry budget under a
    non-strict :class:`~repro.runtime.ResilienceConfig` are absent from
    ``points`` and recorded in ``failures`` instead (``point()`` raises
    for them).
    """

    config: FaultCampaignConfig
    points: tuple[FaultPointResult, ...]
    failures: tuple[TaskFailure, ...] = ()

    def point(self, ber: float, protocol: str) -> FaultPointResult:
        for p in self.points:
            if p.ber == ber and p.protocol == protocol:
                return p
        raise ConfigurationError(f"no campaign point ({ber}, {protocol!r})")

    def best_protocol(self, ber: float) -> str:
        """Protection scheme with the lowest effective energy at ``ber``."""
        candidates = [p for p in self.points if p.ber == ber]
        if not candidates:
            raise ConfigurationError(f"no campaign points at ber={ber}")
        return min(candidates, key=lambda p: p.effective_fj_per_bit_mm).protocol


def run_fault_campaign(
    config: FaultCampaignConfig | None = None,
    n_jobs: int | None = 1,
    executor: ParallelExecutor | None = None,
    resilience: ResilienceConfig | None = None,
    checkpoint: str | Path | CheckpointStore | None = None,
    resume: bool = False,
) -> FaultCampaignResult:
    """Evaluate the full (BER x protocol) grid, optionally in parallel.

    ``resilience`` opts points into the fault-tolerant task layer:
    timeouts, deterministic retries, worker-crash recovery, and (unless
    ``strict=True``) quarantine of points that exhaust their budget.
    ``checkpoint``/``resume`` persist each completed point to a
    crash-safe JSONL store bound to this exact campaign configuration —
    a campaign killed mid-run resumes to the bitwise result of an
    uninterrupted one, because every point's RNG streams derive only
    from (campaign seed, point identity).
    """
    config = config or FaultCampaignConfig()
    config.effective_engine()  # warn (once, in the parent) on a fallback
    tasks = config.tasks()
    store = open_checkpoint(
        checkpoint,
        {"kind": "fault-campaign/v3", "config": asdict(config)},
        resume,
    )
    done: dict[str, FaultPointResult] = {}
    if store is not None:
        done = {k: point_from_payload(p) for k, p in store.items()}
    pending = [
        (i, task)
        for i, task in enumerate(tasks)
        if point_key(task[1], task[2]) not in done
    ]

    computed: dict[int, FaultPointResult | TaskFailure] = {}
    if pending:
        executor = executor or ParallelExecutor(n_jobs=n_jobs, resilience=resilience)
        on_result = None
        if store is not None:

            def on_result(indices: list[int], block: list) -> None:
                for j, value in zip(indices, block):
                    if not isinstance(value, TaskFailure):
                        _, ber, protocol = pending[j][1]
                        store.append(point_key(ber, protocol), point_payload(value))

        results = executor.map(
            _evaluate_point, [task for _, task in pending], on_result=on_result
        )
        for (i, _), value in zip(pending, results):
            computed[i] = value
    if store is not None and not isinstance(checkpoint, CheckpointStore):
        store.close()

    points: list[FaultPointResult] = []
    failures: list[TaskFailure] = []
    for i, task in enumerate(tasks):
        value = done.get(point_key(task[1], task[2]), computed.get(i))
        if isinstance(value, TaskFailure):
            failures.append(
                TaskFailure(
                    index=i,
                    error_type=value.error_type,
                    message=value.message,
                    traceback=value.traceback,
                    attempts=value.attempts,
                    kind=value.kind,
                )
            )
        else:
            points.append(value)
    return FaultCampaignResult(
        config=config, points=tuple(points), failures=tuple(failures)
    )


def protection_crossover(
    result: FaultCampaignResult, a: str, b: str
) -> float | None:
    """Lowest swept BER at which scheme ``a`` beats ``b`` on energy.

    The headline comparison: raw links ("none") win at vanishing BER —
    protection is pure overhead — and lose once corrupted deliveries
    erode the useful bit-mm.  Returns None if ``a`` never wins.
    """
    for protocol in (a, b):
        if protocol not in result.config.protocols:
            raise ConfigurationError(f"{protocol!r} was not part of the campaign")
    for ber in sorted(result.config.bers):
        try:
            pa = result.point(ber, a)
            pb = result.point(ber, b)
        except ConfigurationError:
            # One side of the comparison was quarantined at this BER.
            continue
        if pa.effective_fj_per_bit_mm < pb.effective_fj_per_bit_mm:
            return ber
    return None


def format_fault_report(result: FaultCampaignResult) -> str:
    """Human-readable campaign table (the CLI's output)."""
    config = result.config
    lines = [
        f"fault campaign: {config.describe()}, "
        f"{config.pattern} @ {config.injection_rate} flits/node/cycle, "
        f"{config.size_flits}-flit packets, seed {config.seed}",
        "",
        f"{'BER':>9}  {'protocol':<8} {'goodput':>8} {'clean':>6} "
        f"{'eff fJ/b/mm':>11} {'ovhd':>5} {'retx':>6} {'giveup':>6} "
        f"{'drop':>5} {'dead':>4} {'retry':>5} {'fail':>4}",
    ]
    for p in result.points:
        eff = (
            f"{p.effective_fj_per_bit_mm:11.1f}"
            if p.effective_fj_per_bit_mm != float("inf")
            else f"{'inf':>11}"
        )
        flag = " LIVELOCK" if p.livelocked else ""
        lines.append(
            f"{p.ber:9.1e}  {p.protocol:<8} {p.goodput:8.4f} "
            f"{p.clean_delivered:6d} {eff} {p.overhead_fraction:5.2f} "
            f"{p.retransmissions:6d} {p.crc_giveups:6d} "
            f"{p.flits_dropped:5d} {p.links_disabled:4d} "
            f"{p.packet_retries:5d} {p.failed_transfers:4d}{flag}"
        )
    if result.failures:
        lines.append("")
        lines.append(f"{len(result.failures)} point(s) failed and were quarantined:")
        for failure in result.failures:
            lines.append(f"  {failure.summary()}")
    lines.append("")
    for ber in sorted(config.bers):
        if not any(p.ber == ber for p in result.points):
            lines.append(f"best protection at BER {ber:.1e}: n/a (all points failed)")
            continue
        lines.append(
            f"best protection at BER {ber:.1e}: {result.best_protocol(ber)}"
        )
    if "none" in config.protocols:
        for protocol in config.protocols:
            if protocol == "none":
                continue
            crossover = protection_crossover(result, protocol, "none")
            where = f"BER >= {crossover:.1e}" if crossover is not None else "never"
            lines.append(f"{protocol} beats raw links: {where}")
    return "\n".join(lines)


__all__ = [
    "EngineFallbackWarning",
    "FaultCampaignConfig",
    "FaultCampaignResult",
    "FaultPointResult",
    "format_fault_report",
    "point_from_payload",
    "point_key",
    "point_payload",
    "protection_crossover",
    "run_fault_campaign",
]
