"""repro — reproduction of Park et al., DATE 2013.

"40.4fJ/bit/mm Low-Swing On-Chip Signaling with Self-Resetting Logic
Repeaters Embedded within a Mesh NoC in 45nm SOI CMOS"

The package is organized bottom-up:

* :mod:`repro.tech` — process/device substrate (45 nm SOI, 90 nm bulk).
* :mod:`repro.wire` — RC interconnect physics and exact transients.
* :mod:`repro.circuit` — the SRLR itself: pulses, delay cells, drivers,
  bias generation, stages, links, PRBS test circuitry, sizing.
* :mod:`repro.mc` — Monte Carlo variation analysis and BER estimation.
* :mod:`repro.energy` — energy/power models, prior-work baselines, router.
* :mod:`repro.noc` — cycle-level mesh NoC simulator (the system context).
* :mod:`repro.fault` — cross-layer fault injection and link reliability:
  circuit-derived BER, protection protocols, effective-energy campaigns.
* :mod:`repro.analysis` — sweeps, report tables, per-experiment drivers.
* :mod:`repro.dse` — multi-objective design-space exploration (Pareto
  search with a resumable run store) over all of the above.

See DESIGN.md for the system inventory and the per-experiment index, and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

from repro.tech import Technology, tech_45nm_soi, tech_90nm_bulk

__all__ = ["Technology", "tech_45nm_soi", "tech_90nm_bulk", "__version__"]
