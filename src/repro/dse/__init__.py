"""Multi-objective design-space exploration over the SRLR models.

The subsystem that turns the repo's one-off trade-off checks (Fig. 8
frontier membership, Section II sizing sweeps) into a general search
engine:

* :mod:`repro.dse.space` — declarative parameter spaces (continuous /
  log / discrete, bounds, constraint expressions);
* :mod:`repro.dse.objectives` — picklable adapters exposing existing
  evaluators (link energy, bandwidth density, sensing margin, Monte
  Carlo yield) as named min/max objectives;
* :mod:`repro.dse.pareto` — dominance, non-dominated sorting, crowding
  distance, hypervolume;
* :mod:`repro.dse.strategies` — grid (shared with ``analysis.sweep``),
  Latin-hypercube and NSGA-II searches, all deterministic per seed;
* :mod:`repro.dse.engine` — the ask/evaluate/tell loop: parallel batch
  evaluation through :class:`repro.runtime.ParallelExecutor`,
  content-addressed per-candidate seeds, result-cache reuse;
* :mod:`repro.dse.store` — the crash-safe JSONL run store behind
  checkpoint/resume;
* :mod:`repro.dse.studies` — the paper's Fig. 8 and Section II claims
  re-cast as DSE studies;
* :mod:`repro.dse.report` — front tables and run summaries.

Entry points: ``scripts/run_dse.py`` on the command line,
:func:`run_dse` / the study functions as a library.  Semantics
(determinism across worker counts, resume equivalence, cache
interaction) are specified in docs/DSE.md.
"""

from repro.dse.engine import (
    DseEngine,
    DseResult,
    candidate_key,
    candidate_seed,
    run_dse,
)
from repro.dse.objectives import (
    Fig8Evaluator,
    InfeasibleDesign,
    NocTopologyEvaluator,
    NocWorkloadEvaluator,
    Objective,
    EVALUATORS,
    SizingEvaluator,
    Zdt1Evaluator,
    make_evaluator,
    infeasible_vector,
    signed_vector,
)
from repro.dse.pareto import (
    crowding_distance,
    dominates,
    hypervolume,
    non_dominated_sort,
    pareto_front_indices,
)
from repro.dse.report import format_front, format_report, format_summary
from repro.dse.space import (
    ParamSpace,
    Parameter,
    continuous,
    discrete,
    log,
    space_from_spec,
)
from repro.dse.store import EvalRecord, RunStore, StoreError, git_provenance
from repro.dse.strategies import (
    GridStrategy,
    LhsStrategy,
    Nsga2Strategy,
    SearchStrategy,
    make_strategy,
)
from repro.dse.studies import (
    Fig8Outcome,
    fig8_space,
    fig8_study,
    noc_topology_space,
    sizing_space,
    sizing_study,
    topology_study,
)

__all__ = [
    "DseEngine",
    "DseResult",
    "EvalRecord",
    "Fig8Evaluator",
    "Fig8Outcome",
    "GridStrategy",
    "InfeasibleDesign",
    "LhsStrategy",
    "NocTopologyEvaluator",
    "NocWorkloadEvaluator",
    "Nsga2Strategy",
    "Objective",
    "ParamSpace",
    "Parameter",
    "RunStore",
    "SearchStrategy",
    "EVALUATORS",
    "SizingEvaluator",
    "StoreError",
    "Zdt1Evaluator",
    "make_evaluator",
    "candidate_key",
    "candidate_seed",
    "continuous",
    "crowding_distance",
    "discrete",
    "dominates",
    "fig8_space",
    "fig8_study",
    "format_front",
    "format_report",
    "format_summary",
    "git_provenance",
    "hypervolume",
    "infeasible_vector",
    "log",
    "make_strategy",
    "noc_topology_space",
    "non_dominated_sort",
    "pareto_front_indices",
    "run_dse",
    "signed_vector",
    "sizing_space",
    "sizing_study",
    "space_from_spec",
    "topology_study",
]
