"""The paper's trade-off claims re-cast as design-space explorations.

Two studies, each a one-call wrapper binding a :class:`ParamSpace`, an
objective adapter and a search strategy:

* :func:`fig8_study` — Fig. 8's claim that the SRLR operating point sits
  on the energy / bandwidth-density Pareto frontier.  Instead of only
  checking the published point against four published comparators (what
  ``e6_fig8_energy_density`` does), the DSE searches the SRLR's *own*
  design neighborhood — swing and wire pitch — under the Fig. 6 yield
  gate, then asks whether any reachable design dominates the paper's
  configuration once the Table I comparators join the pool.
* :func:`sizing_study` — Section II's sizing derivation as a search over
  M1/M2 widths, swing and driver scale, with the paper's M1/M2-ratio
  sensitivity rule as an explicit space constraint.

Both return the full :class:`~repro.dse.engine.DseResult`, so callers
can inspect every evaluated candidate, not just the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.srlr import DEFAULT_NOMINAL_SWING
from repro.dse import space as sp
from repro.dse.engine import DseEngine, DseResult, candidate_key, candidate_seed
from repro.dse.objectives import (
    Fig8Evaluator,
    NocTopologyEvaluator,
    SizingEvaluator,
    signed_vector,
)
from repro.dse.pareto import pareto_front_indices
from repro.dse.store import RunStore
from repro.dse.strategies import Nsga2Strategy, SearchStrategy
from repro.energy.baselines import table1_designs
from repro.runtime import ResultCache

#: The paper's published SRLR configuration on the Fig. 8 axes.
PAPER_SWING = DEFAULT_NOMINAL_SWING
PAPER_PITCH_UM = 0.6


def fig8_space() -> sp.ParamSpace:
    """Swing and wire pitch around the paper's operating point."""
    return sp.ParamSpace(
        parameters=(
            sp.continuous("nominal_swing", 0.27, 0.36),
            sp.log("wire_pitch_um", 0.45, 1.2),
        )
    )


def sizing_space() -> sp.ParamSpace:
    """Section II sizing variables, with the M1/M2 sensitivity rule.

    The paper: "the size ratio of M1/M2 should be designed to allow
    enough SRLR input sensitivity" — encoded here as a hard constraint
    on the width ratio, so the search never spends simulations on
    keeper-dominated repeaters that could not sense the swing at all.
    """
    return sp.ParamSpace(
        parameters=(
            sp.log("m1_width_um", 2.0, 10.0),
            sp.discrete("m2_width_um", (0.15, 0.2, 0.3)),
            sp.continuous("nominal_swing", 0.28, 0.35),
            sp.continuous("driver_scale", 0.6, 1.8),
        ),
        constraints=("m1_width_um >= 10.0 * m2_width_um",),
    )


def noc_topology_space(menu_size: int = 4) -> sp.ParamSpace:
    """Topology family index plus injection rate (the E24 load axis).

    ``topology_index`` is discrete over the
    :meth:`~repro.dse.objectives.NocTopologyEvaluator.menu` entries;
    the rate stays below the flat mesh's uniform-random saturation
    point so most candidates finish their drain phase.
    """
    return sp.ParamSpace(
        parameters=(
            sp.discrete("topology_index", tuple(range(menu_size))),
            sp.continuous("injection_rate", 0.01, 0.30),
        )
    )


def topology_study(
    strategy: SearchStrategy | None = None,
    base_seed: int = 2013,
    n_jobs: int | None = 1,
    k: int = 4,
    cache: ResultCache | None = None,
    store: RunStore | None = None,
    resume: bool = False,
    progress=None,
) -> DseResult:
    """The topology family's latency/goodput trade as a search.

    Small by construction (four topologies x a load axis) — a grid
    strategy covers it exactly; the default NSGA-II just matches the
    other studies' driver shape.
    """
    strategy = strategy or Nsga2Strategy(population=12, generations=4)
    engine = DseEngine(
        space=noc_topology_space(),
        evaluator=NocTopologyEvaluator(k=k),
        strategy=strategy,
        base_seed=base_seed,
        n_jobs=n_jobs,
        cache=cache,
        store=store,
        progress=progress,
    )
    return engine.run(resume=resume)


@dataclass(frozen=True)
class Fig8Outcome:
    """The DSE result plus the paper-claim verdict."""

    result: DseResult
    paper_point: dict[str, float]  # the paper config's measured objectives
    baselines: dict[str, dict[str, float]]  # published Table I points
    paper_on_front: bool  # non-dominated vs searched designs + baselines
    beats_baseline_density: bool  # highest density in the whole pool

    def verdict(self) -> str:
        return (
            f"SRLR config on the computed Pareto front: {self.paper_on_front}; "
            f"highest bandwidth density in the pool: {self.beats_baseline_density}"
        )


def _paper_params() -> dict[str, float]:
    return {"nominal_swing": PAPER_SWING, "wire_pitch_um": PAPER_PITCH_UM}


def fig8_study(
    strategy: SearchStrategy | None = None,
    base_seed: int = 2013,
    n_jobs: int | None = 1,
    mc_runs: int = 40,
    cache: ResultCache | None = None,
    store: RunStore | None = None,
    resume: bool = False,
    progress=None,
) -> Fig8Outcome:
    """Search the SRLR neighborhood and test the Fig. 8 frontier claim.

    The paper configuration is injected into the search pool (evaluated
    through the exact same adapter, seed scheme and yield gate as every
    other candidate), the Table I comparators join at their published
    points, and the claim check is plain dominance over the union.
    """
    strategy = strategy or Nsga2Strategy(population=16, generations=6)
    evaluator = Fig8Evaluator(mc_runs=mc_runs)
    engine = DseEngine(
        space=fig8_space(),
        evaluator=evaluator,
        strategy=strategy,
        base_seed=base_seed,
        n_jobs=n_jobs,
        cache=cache,
        store=store,
        progress=progress,
    )
    result = engine.run(resume=resume)

    # The paper's own configuration, through the same evaluation path
    # (reusing the search's record if the strategy happened to visit it).
    paper = _paper_params()
    seed = candidate_seed(base_seed, paper)
    key = candidate_key(evaluator, paper, seed)
    record = next((r for r in result.records if r.key == key), None)
    if record is None:
        # Raises InfeasibleDesign if the paper point fails its own yield
        # gate — that would falsify the reproduction, not the candidate.
        paper_point = evaluator(paper, seed)
    elif record.feasible:
        paper_point = dict(record.objectives)
    else:
        raise AssertionError(
            f"the paper's own configuration failed the yield gate: {record.reason}"
        )

    # Pool = searched feasible candidates + published Table I points.
    baselines = {
        d.key: {
            "energy_fj_per_bit_per_cm": d.energy_fj_per_bit_per_cm,
            "bandwidth_density_gbps_per_um": d.bandwidth_density_gbps_per_um,
        }
        for d in table1_designs()
        if d.key != "this_work"
    }
    objectives = evaluator.objectives
    pool = [signed_vector(objectives, paper_point)]
    pool += [signed_vector(objectives, r.objectives) for r in result.front]
    pool += [signed_vector(objectives, b) for b in baselines.values()]
    front_indices = set(pareto_front_indices(pool))
    paper_on_front = 0 in front_indices

    paper_density = paper_point["bandwidth_density_gbps_per_um"]
    beats_baseline_density = all(
        paper_density > b["bandwidth_density_gbps_per_um"] for b in baselines.values()
    )
    return Fig8Outcome(
        result=result,
        paper_point=paper_point,
        baselines=baselines,
        paper_on_front=paper_on_front,
        beats_baseline_density=beats_baseline_density,
    )


def sizing_study(
    strategy: SearchStrategy | None = None,
    base_seed: int = 2013,
    n_jobs: int | None = 1,
    mc_runs: int = 0,
    cache: ResultCache | None = None,
    store: RunStore | None = None,
    resume: bool = False,
    progress=None,
) -> DseResult:
    """Section II's swing/energy/margin sizing trade as a search."""
    strategy = strategy or Nsga2Strategy(population=16, generations=6)
    engine = DseEngine(
        space=sizing_space(),
        evaluator=SizingEvaluator(mc_runs=mc_runs),
        strategy=strategy,
        base_seed=base_seed,
        n_jobs=n_jobs,
        cache=cache,
        store=store,
        progress=progress,
    )
    return engine.run(resume=resume)


__all__ = [
    "Fig8Outcome",
    "PAPER_PITCH_UM",
    "PAPER_SWING",
    "fig8_space",
    "fig8_study",
    "noc_topology_space",
    "sizing_space",
    "sizing_study",
    "topology_study",
]
