"""Search strategies: grid, Latin-hypercube, NSGA-II.

A strategy is an ask/tell iterator over candidate batches:

* :meth:`reset(space, base_seed)` — arm it for one search;
* :meth:`ask()` — the next batch of candidates (``None`` when done);
* :meth:`tell(batch, signed)` — the evaluated minimization vectors for
  the batch just asked (aligned by position).

Strategies are deterministic: for a fixed ``(space, base_seed)`` and
fixed objective values the sequence of asked batches is always the same.
The engine leans on this for resume — a restarted search *re-asks* the
identical candidates and replays their stored objectives, so an
interrupted run converges to exactly the front an uninterrupted one
would have found.

The grid strategy enumerates candidates through the same
:func:`repro.analysis.sweep.grid_points` cartesian product that
:func:`~repro.analysis.sweep.sweep_grid` uses — one grid implementation
in the repo, whichever layer asks for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.dse.pareto import crowding_distance, non_dominated_sort
from repro.dse.space import ParamSpace, lhs_unit
from repro.errors import ConfigurationError

Candidate = dict[str, float]


@runtime_checkable
class SearchStrategy(Protocol):
    """The ask/tell contract the engine drives."""

    def reset(self, space: ParamSpace, base_seed: int) -> None: ...

    def ask(self) -> list[Candidate] | None: ...

    def tell(
        self, batch: list[Candidate], signed: list[tuple[float, ...]]
    ) -> None: ...

    def describe(self) -> dict: ...


@dataclass
class GridStrategy:
    """Exhaustive cartesian grid — one batch, then done.

    ``levels`` is points per axis (int, or ``{name: int}``); discrete
    parameters always enumerate their full choice set.  Candidate order
    is the row-major order of :func:`repro.analysis.sweep.grid_points`.
    """

    levels: int | dict[str, int] = 3
    _space: ParamSpace | None = field(default=None, repr=False)
    _asked: bool = field(default=False, repr=False)

    def reset(self, space: ParamSpace, base_seed: int) -> None:
        self._space = space
        self._asked = False

    def ask(self) -> list[Candidate] | None:
        if self._asked:
            return None
        self._asked = True
        return self._space.grid(self.levels)

    def tell(self, batch, signed) -> None:
        pass

    def describe(self) -> dict:
        levels = self.levels
        return {"name": "grid", "levels": levels if isinstance(levels, int) else dict(levels)}


@dataclass
class LhsStrategy:
    """One space-filling Latin-hypercube batch of ``n_samples`` candidates."""

    n_samples: int = 32
    _space: ParamSpace | None = field(default=None, repr=False)
    _rng: np.random.Generator | None = field(default=None, repr=False)
    _asked: bool = field(default=False, repr=False)

    def reset(self, space: ParamSpace, base_seed: int) -> None:
        self._space = space
        self._rng = np.random.default_rng(np.random.SeedSequence([base_seed, 0x1A5]))
        self._asked = False

    def ask(self) -> list[Candidate] | None:
        if self._asked:
            return None
        self._asked = True
        return self._space.sample_lhs(self.n_samples, self._rng)

    def tell(self, batch, signed) -> None:
        pass

    def describe(self) -> dict:
        return {"name": "lhs", "n_samples": self.n_samples}


@dataclass
class Nsga2Strategy:
    """NSGA-II: elitist evolutionary multi-objective search.

    The classic loop (Deb 2002): a Latin-hypercube initial population;
    each generation breeds ``population`` offspring by binary-tournament
    selection on (rank, crowding distance), simulated-binary crossover
    and polynomial mutation in the unit cube; parents and offspring are
    merged and the best ``population`` survive by non-dominated rank,
    ties broken by crowding.  Infeasible candidates arrive as all-``inf``
    vectors, which dominance naturally ranks last.

    Every random draw comes from one generator seeded by ``base_seed``
    and consumed in a fixed order, so the candidate sequence depends only
    on ``(space, base_seed)`` and the objective values told back.
    """

    population: int = 24
    generations: int = 10
    crossover_prob: float = 0.9
    crossover_eta: float = 15.0
    mutation_prob: float | None = None  # default 1/dimension
    mutation_eta: float = 20.0

    _space: ParamSpace | None = field(default=None, repr=False)
    _rng: np.random.Generator | None = field(default=None, repr=False)
    _generation: int = field(default=0, repr=False)
    _parents: np.ndarray | None = field(default=None, repr=False)  # unit vectors
    _parent_objs: list[tuple[float, ...]] | None = field(default=None, repr=False)
    _pending: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.population < 4 or self.population % 2:
            raise ConfigurationError(
                f"population must be even and >= 4, got {self.population}"
            )
        if self.generations < 1:
            raise ConfigurationError(
                f"generations must be >= 1, got {self.generations}"
            )

    def reset(self, space: ParamSpace, base_seed: int) -> None:
        self._space = space
        self._rng = np.random.default_rng(
            np.random.SeedSequence([base_seed, 0x75A2])
        )
        self._generation = 0
        self._parents = None
        self._parent_objs = None
        self._pending = None

    def ask(self) -> list[Candidate] | None:
        if self._generation >= self.generations:
            return None
        if self._parents is None:
            self._pending = lhs_unit(self._rng, self.population, self._space.dimension)
        else:
            self._pending = self._breed()
        return [self._space.decode(row) for row in self._pending]

    def tell(self, batch, signed) -> None:
        if self._pending is None:
            raise ConfigurationError("tell() without a pending ask()")
        if len(signed) != len(self._pending):
            raise ConfigurationError(
                f"told {len(signed)} results for {len(self._pending)} candidates"
            )
        if self._parents is None:
            pool = self._pending
            pool_objs = list(signed)
        else:
            pool = np.vstack([self._parents, self._pending])
            pool_objs = [*self._parent_objs, *signed]
        survivors = self._select(pool_objs)
        self._parents = pool[survivors]
        self._parent_objs = [pool_objs[i] for i in survivors]
        self._pending = None
        self._generation += 1

    # --- NSGA-II internals ------------------------------------------------------------

    def _select(self, objs: list[tuple[float, ...]]) -> list[int]:
        """Environmental selection: best ``population`` of the pool."""
        fronts = non_dominated_sort(objs)
        chosen: list[int] = []
        for front in fronts:
            if len(chosen) + len(front) <= self.population:
                chosen.extend(front)
            else:
                crowd = crowding_distance(objs, front)
                # Fill the remainder by descending crowding; index breaks
                # ties deterministically.
                rest = sorted(front, key=lambda i: (-crowd[i], i))
                chosen.extend(rest[: self.population - len(chosen)])
            if len(chosen) >= self.population:
                break
        return chosen

    def _tournament(self, rank: dict[int, int], crowd: dict[int, float]) -> int:
        i, j = self._rng.integers(0, self.population, size=2)
        i, j = int(i), int(j)
        if rank[i] != rank[j]:
            return i if rank[i] < rank[j] else j
        if crowd[i] != crowd[j]:
            return i if crowd[i] > crowd[j] else j
        return min(i, j)

    def _breed(self) -> np.ndarray:
        fronts = non_dominated_sort(self._parent_objs)
        rank = {i: r for r, front in enumerate(fronts) for i in front}
        crowd: dict[int, float] = {}
        for front in fronts:
            crowd.update(crowding_distance(self._parent_objs, front))
        children: list[np.ndarray] = []
        while len(children) < self.population:
            a = self._parents[self._tournament(rank, crowd)]
            b = self._parents[self._tournament(rank, crowd)]
            c1, c2 = self._sbx(a, b)
            children.append(self._mutate(c1))
            children.append(self._mutate(c2))
        return np.vstack(children[: self.population])

    def _sbx(self, a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Simulated binary crossover, clipped to the unit cube."""
        c1, c2 = a.copy(), b.copy()
        if self._rng.random() > self.crossover_prob:
            return c1, c2
        for k in range(len(a)):
            if self._rng.random() > 0.5 or abs(a[k] - b[k]) < 1e-14:
                continue
            u = self._rng.random()
            if u <= 0.5:
                beta = (2.0 * u) ** (1.0 / (self.crossover_eta + 1.0))
            else:
                beta = (1.0 / (2.0 * (1.0 - u))) ** (1.0 / (self.crossover_eta + 1.0))
            x1, x2 = min(a[k], b[k]), max(a[k], b[k])
            c1[k] = 0.5 * ((x1 + x2) - beta * (x2 - x1))
            c2[k] = 0.5 * ((x1 + x2) + beta * (x2 - x1))
        return np.clip(c1, 0.0, 1.0), np.clip(c2, 0.0, 1.0)

    def _mutate(self, x: np.ndarray) -> np.ndarray:
        """Polynomial mutation, clipped to the unit cube."""
        pm = self.mutation_prob
        if pm is None:
            pm = 1.0 / len(x)
        y = x.copy()
        for k in range(len(x)):
            if self._rng.random() >= pm:
                continue
            u = self._rng.random()
            if u < 0.5:
                delta = (2.0 * u) ** (1.0 / (self.mutation_eta + 1.0)) - 1.0
            else:
                delta = 1.0 - (2.0 * (1.0 - u)) ** (1.0 / (self.mutation_eta + 1.0))
            y[k] = y[k] + delta
        return np.clip(y, 0.0, 1.0)

    def describe(self) -> dict:
        return {
            "name": "nsga2",
            "population": self.population,
            "generations": self.generations,
            "crossover_prob": self.crossover_prob,
            "crossover_eta": self.crossover_eta,
            "mutation_prob": self.mutation_prob,
            "mutation_eta": self.mutation_eta,
        }


def make_strategy(name: str, **options) -> SearchStrategy:
    """Build a strategy by CLI name (``grid`` | ``lhs`` | ``nsga2``)."""
    builders = {"grid": GridStrategy, "lhs": LhsStrategy, "nsga2": Nsga2Strategy}
    if name not in builders:
        raise ConfigurationError(
            f"unknown strategy {name!r}; expected one of {sorted(builders)}"
        )
    return builders[name](**options)


__all__ = [
    "GridStrategy",
    "LhsStrategy",
    "Nsga2Strategy",
    "SearchStrategy",
    "make_strategy",
]
