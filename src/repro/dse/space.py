"""Declarative design-space descriptions for multi-objective search.

A :class:`ParamSpace` names the free variables of a study — continuous,
log-scaled or discrete, each with bounds — plus optional *constraints*:
boolean expressions over the parameter names (``"m1_width_um >= 10 *
m2_width_um"``) evaluated on every candidate before it is spent on a
simulation.  Constraints are plain strings so that a space serializes
losslessly into the run store and hashes stably into cache keys.

Search strategies operate on the **unit cube**: every candidate is a
vector in ``[0, 1]^d`` that :meth:`ParamSpace.decode` maps to physical
values (linear, log10 or index interpolation per parameter kind).  The
decode is the single source of truth for rounding/snapping, so a grid
point, an LHS sample and an NSGA-II offspring all land on identical
physical values when they coincide in the cube — which is what makes the
content-addressed evaluation cache and run-store replay effective.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.sweep import grid_points
from repro.errors import ConfigurationError

#: Parameter kinds understood by the space.
PARAM_KINDS = ("continuous", "log", "discrete")

#: Names usable inside constraint expressions besides the parameters.
_CONSTRAINT_HELPERS = {"abs": abs, "min": min, "max": max, "math": math}


@dataclass(frozen=True)
class Parameter:
    """One axis of a design space.

    Use the :func:`continuous`, :func:`log` and :func:`discrete`
    constructors rather than instantiating directly.
    """

    name: str
    kind: str
    lower: float = 0.0
    upper: float = 0.0
    choices: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ConfigurationError(
                f"parameter name {self.name!r} must be a valid identifier"
                " (it is used in constraint expressions)"
            )
        if self.kind not in PARAM_KINDS:
            raise ConfigurationError(
                f"unknown parameter kind {self.kind!r}; expected {PARAM_KINDS}"
            )
        if self.kind == "discrete":
            if len(self.choices) < 1:
                raise ConfigurationError(f"{self.name}: discrete needs choices")
        else:
            if not self.lower < self.upper:
                raise ConfigurationError(
                    f"{self.name}: need lower < upper, got [{self.lower}, {self.upper}]"
                )
            if self.kind == "log" and self.lower <= 0.0:
                raise ConfigurationError(
                    f"{self.name}: log parameters need a positive lower bound"
                )

    # --- unit-cube mapping ------------------------------------------------------------

    def from_unit(self, u: float) -> float:
        """Map ``u`` in [0, 1] to a physical value (the snapping point)."""
        u = min(1.0, max(0.0, float(u)))
        if self.kind == "continuous":
            return self.lower + u * (self.upper - self.lower)
        if self.kind == "log":
            lo, hi = math.log10(self.lower), math.log10(self.upper)
            return 10.0 ** (lo + u * (hi - lo))
        index = min(len(self.choices) - 1, int(u * len(self.choices)))
        return self.choices[index]

    def to_unit(self, value: float) -> float:
        """Inverse of :meth:`from_unit` (discrete: the choice's bin center)."""
        if self.kind == "continuous":
            return (float(value) - self.lower) / (self.upper - self.lower)
        if self.kind == "log":
            lo, hi = math.log10(self.lower), math.log10(self.upper)
            return (math.log10(float(value)) - lo) / (hi - lo)
        try:
            index = self.choices.index(float(value))
        except ValueError:
            raise ConfigurationError(
                f"{self.name}: {value!r} is not one of {self.choices}"
            ) from None
        return (index + 0.5) / len(self.choices)

    def grid(self, levels: int) -> list[float]:
        """``levels`` representative values (discrete: all choices)."""
        if self.kind == "discrete":
            return list(self.choices)
        if levels < 2:
            raise ConfigurationError(f"levels must be >= 2, got {levels}")
        return [self.from_unit(i / (levels - 1)) for i in range(levels)]

    def spec(self) -> dict:
        """JSON-serializable description (round-trips via :func:`param_from_spec`)."""
        if self.kind == "discrete":
            return {"name": self.name, "kind": self.kind, "choices": list(self.choices)}
        return {
            "name": self.name,
            "kind": self.kind,
            "lower": self.lower,
            "upper": self.upper,
        }


def continuous(name: str, lower: float, upper: float) -> Parameter:
    """A linearly-interpolated bounded real parameter."""
    return Parameter(name=name, kind="continuous", lower=float(lower), upper=float(upper))


def log(name: str, lower: float, upper: float) -> Parameter:
    """A log10-interpolated bounded real parameter (decades sampled evenly)."""
    return Parameter(name=name, kind="log", lower=float(lower), upper=float(upper))


def discrete(name: str, choices: Sequence[float]) -> Parameter:
    """A parameter restricted to an explicit set of values."""
    return Parameter(name=name, kind="discrete", choices=tuple(float(c) for c in choices))


def param_from_spec(spec: Mapping) -> Parameter:
    """Rebuild a :class:`Parameter` from :meth:`Parameter.spec` output."""
    kind = spec["kind"]
    if kind == "discrete":
        return discrete(spec["name"], spec["choices"])
    return Parameter(
        name=spec["name"], kind=kind, lower=float(spec["lower"]), upper=float(spec["upper"])
    )


def lhs_unit(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    """An ``n x d`` Latin-hypercube sample of the unit cube.

    Each dimension is stratified into ``n`` equal bins, one point per
    bin, with independently shuffled bin assignments per dimension —
    deterministic for a given generator state.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    u = np.empty((n, d))
    for j in range(d):
        bins = rng.permutation(n)
        u[:, j] = (bins + rng.random(n)) / n
    return u


@dataclass(frozen=True)
class ParamSpace:
    """Named parameters plus constraint expressions over their values."""

    parameters: tuple[Parameter, ...]
    constraints: tuple[str, ...] = ()
    _compiled: tuple = field(default=(), repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.parameters:
            raise ConfigurationError("a ParamSpace needs at least one parameter")
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate parameter names in {names}")
        compiled = []
        for expr in self.constraints:
            try:
                compiled.append(compile(expr, f"<constraint {expr!r}>", "eval"))
            except SyntaxError as exc:
                raise ConfigurationError(f"bad constraint {expr!r}: {exc}") from exc
        object.__setattr__(self, "_compiled", tuple(compiled))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.parameters)

    @property
    def dimension(self) -> int:
        return len(self.parameters)

    # --- candidate handling -----------------------------------------------------------

    def decode(self, unit: Sequence[float]) -> dict[str, float]:
        """Map a unit-cube vector to a physical ``{name: value}`` candidate."""
        if len(unit) != self.dimension:
            raise ConfigurationError(
                f"expected {self.dimension} coordinates, got {len(unit)}"
            )
        return {p.name: p.from_unit(u) for p, u in zip(self.parameters, unit)}

    def encode(self, params: Mapping[str, float]) -> list[float]:
        """Map a physical candidate back into the unit cube."""
        return [p.to_unit(params[p.name]) for p in self.parameters]

    def validate(self, params: Mapping[str, float]) -> None:
        """Raise unless ``params`` names exactly this space's parameters."""
        if set(params) != set(self.names):
            raise ConfigurationError(
                f"candidate keys {sorted(params)} != space parameters {sorted(self.names)}"
            )

    def feasible(self, params: Mapping[str, float]) -> bool:
        """Whether every constraint expression holds at ``params``."""
        namespace = {**_CONSTRAINT_HELPERS, **params}
        for expr, code in zip(self.constraints, self._compiled):
            try:
                if not eval(code, {"__builtins__": {}}, namespace):
                    return False
            except Exception as exc:
                raise ConfigurationError(
                    f"constraint {expr!r} failed to evaluate at {dict(params)}: {exc}"
                ) from exc
        return True

    # --- candidate generation ---------------------------------------------------------

    def grid(self, levels: int | Mapping[str, int] = 3) -> list[dict[str, float]]:
        """Cartesian grid candidates (via the shared :func:`grid_points`).

        ``levels`` is the per-axis point count — one integer for all
        axes or a ``{name: levels}`` mapping; discrete axes always use
        their full choice set.  Constraint-violating cells are dropped.
        """
        axes: dict[str, list[float]] = {}
        for p in self.parameters:
            n = levels.get(p.name, 3) if isinstance(levels, Mapping) else levels
            axes[p.name] = p.grid(n)
        return [point for point in grid_points(axes) if self.feasible(point)]

    def sample_lhs(
        self, n: int, rng: np.random.Generator
    ) -> list[dict[str, float]]:
        """``n`` Latin-hypercube candidates (constraint violators included:
        the engine records them as infeasible rather than silently
        resampling, keeping the sample size — and the rng stream —
        independent of the constraint set)."""
        return [self.decode(row) for row in lhs_unit(rng, n, self.dimension)]

    # --- serialization ----------------------------------------------------------------

    def spec(self) -> dict:
        """JSON-serializable description (round-trips via :func:`space_from_spec`)."""
        return {
            "parameters": [p.spec() for p in self.parameters],
            "constraints": list(self.constraints),
        }


def space_from_spec(spec: Mapping) -> ParamSpace:
    """Rebuild a :class:`ParamSpace` from :meth:`ParamSpace.spec` output."""
    return ParamSpace(
        parameters=tuple(param_from_spec(p) for p in spec["parameters"]),
        constraints=tuple(spec.get("constraints", ())),
    )


__all__ = [
    "PARAM_KINDS",
    "ParamSpace",
    "Parameter",
    "continuous",
    "discrete",
    "lhs_unit",
    "log",
    "param_from_spec",
    "space_from_spec",
]
