"""The DSE engine: strategy loop, parallel evaluation, replay, caching.

:class:`DseEngine` drives a :class:`~repro.dse.strategies.SearchStrategy`
through ask/evaluate/tell rounds.  Each asked batch is resolved in three
tiers, cheapest first:

1. **store replay** — the run store already holds this candidate (a
   resumed search, or a strategy re-proposing a known point);
2. **result cache** — an optional cross-run
   :class:`~repro.runtime.ResultCache` entry under the same content key;
3. **evaluation** — remaining candidates fan out together through one
   :class:`~repro.runtime.ParallelExecutor` map.

A candidate's identity is ``content_key(evaluator, params, seed)`` where
the seed itself derives from ``(base_seed, params)`` via
:func:`repro.runtime.derived_seed`.  Identity therefore depends only on
*what* is evaluated — never on worker count, batch composition or which
run first met the candidate — which is what makes three different
executions interchangeable: a fresh run, a cache-warm run and a resumed
run all produce bitwise-identical records and therefore identical
fronts.

Constraint-infeasible candidates are recorded without spending a
simulation; model-rejected ones (:class:`InfeasibleDesign`) are recorded
with the rejection reason.  Both enter the strategy as all-``inf``
vectors and can never appear in the reported front.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.dse.objectives import (
    InfeasibleDesign,
    Objective,
    infeasible_vector,
    signed_vector,
)
from repro.dse.pareto import hypervolume, pareto_front_indices
from repro.dse.space import ParamSpace
from repro.dse.store import EvalRecord, RunStore
from repro.dse.strategies import SearchStrategy
from repro.errors import ConfigurationError
from repro.runtime import (
    MISS,
    ParallelExecutor,
    ResultCache,
    content_key,
    derived_seed,
    stable_token,
)


def candidate_key(evaluator, params: dict[str, float], seed: int) -> str:
    """The content identity of one evaluation (store + cache key)."""
    return content_key("dse-eval/v1", evaluator, params, seed)


def candidate_seed(base_seed: int, params: dict[str, float]) -> int:
    """The deterministic per-candidate seed (content-addressed)."""
    return derived_seed(base_seed, stable_token(params))


def _evaluate_task(task: tuple) -> tuple[dict[str, float], str]:
    """Worker body: ``(metrics, infeasible_reason)`` for one candidate.

    Module-level so candidate batches can cross process boundaries; the
    result depends only on the task tuple.
    """
    evaluator, params, seed = task
    try:
        return evaluator(params, seed), ""
    except InfeasibleDesign as exc:
        return {}, str(exc) or "infeasible"


@dataclass
class DseResult:
    """Everything one search produced."""

    space: ParamSpace
    objectives: tuple[Objective, ...]
    records: list[EvalRecord]  # evaluation order, unique per candidate
    front: list[EvalRecord]  # feasible non-dominated records
    generations: int
    n_evaluated: int  # computed fresh this run
    n_replayed: int  # served from the run store
    n_cache_hits: int  # served from the cross-run result cache
    elapsed: float

    def signed_front(self) -> list[tuple[float, ...]]:
        """The front as minimization vectors (objective order)."""
        return [signed_vector(self.objectives, r.objectives) for r in self.front]

    def front_hypervolume(self, reference: tuple[float, ...] | None = None) -> float:
        """Hypervolume of the front; auto-reference = nadir + 10% span."""
        signed = self.signed_front()
        if not signed:
            return 0.0
        if reference is None:
            lo = [min(v[m] for v in signed) for m in range(len(self.objectives))]
            hi = [max(v[m] for v in signed) for m in range(len(self.objectives))]
            reference = tuple(
                h + 0.1 * max(h - l, 1e-12) for l, h in zip(lo, hi)
            )
        return hypervolume(signed, reference)


@dataclass
class DseEngine:
    """One configured search: space + evaluator + strategy + runtime."""

    space: ParamSpace
    evaluator: object  # picklable callable with .objectives
    strategy: SearchStrategy
    base_seed: int = 2013
    n_jobs: int | None = 1
    executor: ParallelExecutor | None = None
    cache: ResultCache | None = None
    store: RunStore | None = None
    progress: object | None = None  # callable(generation, n_new, n_total)
    _by_key: dict[str, EvalRecord] = field(default_factory=dict, repr=False)
    _order: list[str] = field(default_factory=list, repr=False)

    def run_config(self) -> dict:
        """The configuration a run store binds to (resume compatibility)."""
        return {
            "space": self.space.spec(),
            "evaluator": stable_token(self.evaluator),
            "objectives": [
                {"name": o.name, "sense": o.sense} for o in self.evaluator.objectives
            ],
            "strategy": self.strategy.describe(),
            "base_seed": self.base_seed,
        }

    def run(self, resume: bool = False) -> DseResult:
        """Execute the search to completion and report the front.

        ``resume=True`` continues a store written by an identical
        configuration: the strategy loop replays deterministically, so
        stored candidates short-circuit and only missing work runs.
        """
        t_start = time.perf_counter()
        executor = self.executor or ParallelExecutor(n_jobs=self.n_jobs)
        if self.store is not None:
            self.store.begin(self.run_config(), resume=resume)
        self._by_key.clear()
        self._order.clear()
        n_evaluated = n_replayed = cache_hits_before = 0
        if self.cache is not None:
            cache_hits_before = self.cache.hits
        self.strategy.reset(self.space, self.base_seed)
        generation = 0
        while True:
            batch = self.strategy.ask()
            if batch is None:
                break
            if not batch:
                raise ConfigurationError(
                    "strategy asked an empty batch; return None to finish"
                )
            records, fresh, replayed = self._resolve_batch(
                batch, generation, executor
            )
            n_evaluated += fresh
            n_replayed += replayed
            signed = [
                signed_vector(self.evaluator.objectives, r.objectives)
                if r.feasible
                else infeasible_vector(self.evaluator.objectives)
                for r in records
            ]
            self.strategy.tell(batch, signed)
            if self.progress is not None:
                self.progress(generation, fresh, len(self._order))
            generation += 1
        records = [self._by_key[k] for k in self._order]
        front = self._front_of(records)
        return DseResult(
            space=self.space,
            objectives=tuple(self.evaluator.objectives),
            records=records,
            front=front,
            generations=generation,
            n_evaluated=n_evaluated,
            n_replayed=n_replayed,
            n_cache_hits=(
                self.cache.hits - cache_hits_before if self.cache is not None else 0
            ),
            elapsed=time.perf_counter() - t_start,
        )

    # --- batch resolution -------------------------------------------------------------

    def _resolve_batch(
        self,
        batch: list[dict[str, float]],
        generation: int,
        executor: ParallelExecutor,
    ) -> tuple[list[EvalRecord], int, int]:
        """Records for one asked batch: replayed, cached or computed."""
        resolved: list[EvalRecord | None] = [None] * len(batch)
        pending: list[tuple[int, str, dict[str, float], int]] = []
        replayed = 0
        for i, params in enumerate(batch):
            self.space.validate(params)
            seed = candidate_seed(self.base_seed, params)
            key = candidate_key(self.evaluator, params, seed)
            record = self._by_key.get(key)
            if record is None and self.store is not None:
                record = self.store.get(key)
                if record is not None:
                    replayed += 1
            if record is not None:
                resolved[i] = record
                continue
            if not self.space.feasible(params):
                resolved[i] = EvalRecord(
                    key=key,
                    generation=generation,
                    index=i,
                    params=params,
                    seed=seed,
                    feasible=False,
                    objectives={},
                    reason="violates space constraints",
                )
                continue
            pending.append((i, key, params, seed))

        fresh = self._evaluate_pending(pending, generation, resolved, executor)
        records: list[EvalRecord] = []
        for record in resolved:
            assert record is not None
            records.append(record)
            if record.key not in self._by_key:
                self._by_key[record.key] = record
                self._order.append(record.key)
                if self.store is not None:
                    self.store.append(record)
        return records, fresh, replayed

    def _evaluate_pending(
        self,
        pending: list[tuple[int, str, dict[str, float], int]],
        generation: int,
        resolved: list[EvalRecord | None],
        executor: ParallelExecutor,
    ) -> int:
        """Fill ``resolved`` slots for candidates that need real work."""
        # Consult the cross-run cache first, and evaluate each distinct
        # key once even if a batch repeats a candidate.
        tasks: dict[str, tuple] = {}
        for i, key, params, seed in pending:
            if self.cache is not None and key not in tasks:
                value = self.cache.get(key)
                if value is not MISS:
                    metrics, reason = value
                    resolved[i] = self._record(
                        key, generation, i, params, seed, metrics, reason
                    )
                    continue
            tasks.setdefault(key, (self.evaluator, params, seed))
        unique = [
            (key, task) for key, task in tasks.items()
        ]
        outcomes: dict[str, tuple[dict[str, float], str, float]] = {}
        if unique:
            t0 = time.perf_counter()
            results = executor.map(_evaluate_task, [task for _, task in unique])
            per_task = (time.perf_counter() - t0) / len(unique)
            for (key, _), (metrics, reason) in zip(unique, results):
                outcomes[key] = (metrics, reason, per_task)
                if self.cache is not None:
                    self.cache.put(key, (metrics, reason))
        fresh = len(outcomes)
        for i, key, params, seed in pending:
            if resolved[i] is not None:
                continue
            if key in outcomes:
                metrics, reason, elapsed = outcomes[key]
                resolved[i] = self._record(
                    key, generation, i, params, seed, metrics, reason, elapsed
                )
            else:
                # A batch-internal duplicate whose first copy came from
                # the cache: reuse whatever the earlier slot resolved to.
                twin = next(
                    r for r in resolved if r is not None and r.key == key
                )
                resolved[i] = twin
        return fresh

    def _record(
        self,
        key: str,
        generation: int,
        index: int,
        params: dict[str, float],
        seed: int,
        metrics: dict[str, float],
        reason: str,
        elapsed: float = 0.0,
    ) -> EvalRecord:
        return EvalRecord(
            key=key,
            generation=generation,
            index=index,
            params=params,
            seed=seed,
            feasible=not reason,
            objectives={k: float(v) for k, v in metrics.items()},
            reason=reason,
            elapsed=elapsed,
        )

    # --- front ------------------------------------------------------------------------

    def _front_of(self, records: list[EvalRecord]) -> list[EvalRecord]:
        feasible = [r for r in records if r.feasible]
        if not feasible:
            return []
        signed = [
            signed_vector(self.evaluator.objectives, r.objectives) for r in feasible
        ]
        front = [feasible[i] for i in pareto_front_indices(signed)]
        # Present the front along the first objective for stable reading.
        first = self.evaluator.objectives[0]
        return sorted(front, key=lambda r: first.signed(r.objectives[first.name]))


def run_dse(
    space: ParamSpace,
    evaluator,
    strategy: SearchStrategy,
    base_seed: int = 2013,
    n_jobs: int | None = 1,
    cache: ResultCache | None = None,
    store: RunStore | None = None,
    resume: bool = False,
    progress=None,
) -> DseResult:
    """One-call search: build a :class:`DseEngine` and run it."""
    engine = DseEngine(
        space=space,
        evaluator=evaluator,
        strategy=strategy,
        base_seed=base_seed,
        n_jobs=n_jobs,
        cache=cache,
        store=store,
        progress=progress,
    )
    return engine.run(resume=resume)


__all__ = [
    "DseEngine",
    "DseResult",
    "candidate_key",
    "candidate_seed",
    "run_dse",
]
