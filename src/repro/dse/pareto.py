"""Pareto machinery: dominance, non-dominated sorting, crowding, hypervolume.

All functions operate on **minimization** vectors — objective adapters
negate maximized quantities before anything reaches this module (see
:meth:`repro.dse.objectives.Objective.signed`).  Non-finite coordinates
are legal (infeasible candidates carry ``+inf``) and behave naturally
under dominance: any finite point dominates them.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import ConfigurationError

Vector = Sequence[float]


def dominates(a: Vector, b: Vector) -> bool:
    """Pareto dominance for minimization: ``a`` <= everywhere, < somewhere."""
    if len(a) != len(b):
        raise ConfigurationError(f"dimension mismatch: {len(a)} vs {len(b)}")
    not_worse = all(x <= y for x, y in zip(a, b))
    return not_worse and any(x < y for x, y in zip(a, b))


def non_dominated_sort(points: Sequence[Vector]) -> list[list[int]]:
    """Fast non-dominated sort: fronts of indices, best (rank 0) first.

    Deb's O(M N^2) algorithm; the index order *within* each front follows
    the input order, so the sort is deterministic for a fixed input.
    """
    n = len(points)
    dominated_by: list[list[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: list[list[int]] = [[]]
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(points[i], points[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(points[j], points[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    for i in range(n):
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = fronts[0]
    while current:
        next_front: list[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        if next_front:
            next_front.sort()
            fronts.append(next_front)
        current = next_front
    return fronts


def pareto_front_indices(points: Sequence[Vector]) -> list[int]:
    """Indices of the non-dominated points (rank-0 front), input order."""
    if not points:
        return []
    return non_dominated_sort(points)[0]


def crowding_distance(points: Sequence[Vector], indices: Sequence[int]) -> dict[int, float]:
    """NSGA-II crowding distance of the points named by ``indices``.

    Boundary points of every objective get ``inf``; interior points sum
    their normalized neighbor gaps.  Degenerate spans (all equal, or
    non-finite objectives from infeasible candidates) contribute zero
    rather than NaN, so selection stays total-orderable.
    """
    distance = {i: 0.0 for i in indices}
    if len(indices) <= 2:
        return {i: math.inf for i in indices}
    n_objectives = len(points[indices[0]])
    for m in range(n_objectives):
        ordered = sorted(indices, key=lambda i: points[i][m])
        lo, hi = points[ordered[0]][m], points[ordered[-1]][m]
        span = hi - lo
        distance[ordered[0]] = distance[ordered[-1]] = math.inf
        if not math.isfinite(span) or span <= 0.0:
            continue
        for k in range(1, len(ordered) - 1):
            gap = points[ordered[k + 1]][m] - points[ordered[k - 1]][m]
            distance[ordered[k]] += gap / span
    return distance


def hypervolume(points: Sequence[Vector], reference: Vector) -> float:
    """Hypervolume dominated by ``points`` up to the ``reference`` point.

    The standard quality indicator for a front: the Lebesgue measure of
    the region dominated by at least one point and bounded above by the
    reference.  Points not strictly better than the reference in every
    objective contribute nothing.  Computed exactly by recursive slicing
    on the first objective (fine for the front sizes a DSE run produces).
    """
    if not points:
        return 0.0
    d = len(reference)
    for p in points:
        if len(p) != d:
            raise ConfigurationError(
                f"point dimension {len(p)} != reference dimension {d}"
            )
    clipped = [tuple(p) for p in points if all(x < r for x, r in zip(p, reference))]
    if not clipped:
        return 0.0
    front = [clipped[i] for i in pareto_front_indices(clipped)]
    return _hv_recursive(sorted(set(front)), tuple(reference))


def _hv_recursive(front: list[tuple[float, ...]], reference: tuple[float, ...]) -> float:
    """Hypervolume of a mutually non-dominated, sorted, de-duplicated front."""
    if len(reference) == 1:
        return reference[0] - min(p[0] for p in front)
    # Slice along the first objective: between consecutive f0 values the
    # attained region is the (d-1)-dimensional union of every point at or
    # left of the slice.
    volume = 0.0
    for i, point in enumerate(front):
        width = (front[i + 1][0] if i + 1 < len(front) else reference[0]) - point[0]
        if width <= 0.0:
            continue
        tails = [p[1:] for p in front[: i + 1]]
        sub_front = [tails[j] for j in pareto_front_indices(tails)]
        volume += width * _hv_recursive(sorted(set(sub_front)), reference[1:])
    return volume


__all__ = [
    "crowding_distance",
    "dominates",
    "hypervolume",
    "non_dominated_sort",
    "pareto_front_indices",
]
