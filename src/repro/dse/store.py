"""Crash-safe, resumable run store for design-space searches.

One JSONL file per search: a header line carrying the run configuration
(space spec, strategy, seed, objectives) plus git provenance, then one
line per completed evaluation, flushed and fsynced as it lands.  The
format is chosen for *crash semantics*, not elegance:

* a process killed mid-write leaves at most one truncated final line,
  which :meth:`RunStore.load` drops (and physically truncates before the
  next append, so the file never contains a spliced line);
* every record is keyed by the same content hash the evaluation cache
  uses, so a resumed search replays completed candidates bit-for-bit and
  recomputes only what is missing — the search loop itself is
  deterministic, which is what makes replay equivalent to never having
  crashed (see docs/DSE.md for the argument);
* a resume against a store written by a *different* configuration is
  refused loudly instead of silently mixing incompatible records.

Floats survive the JSON round-trip exactly (``repr`` round-trips IEEE
doubles; ``inf``/``nan`` use the JSON extensions Python emits natively),
so replayed objectives are bitwise identical to freshly computed ones.
"""

from __future__ import annotations

import json
import os
import subprocess
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.errors import ConfigurationError
from repro.runtime import content_key

#: Bumped when the line format changes incompatibly.
STORE_VERSION = 1


class StoreError(ConfigurationError):
    """The run store refuses an unsafe operation (mismatch, clobber, ...)."""


@dataclass(frozen=True)
class EvalRecord:
    """One completed candidate evaluation."""

    key: str  # content hash of (evaluator, params, seed)
    generation: int
    index: int  # position within its generation's batch
    params: dict[str, float]
    seed: int
    feasible: bool
    objectives: dict[str, float]  # named metric values ({} when infeasible)
    reason: str = ""  # why infeasible (empty when feasible)
    elapsed: float = 0.0


def git_provenance(cwd: str | Path | None = None) -> dict:
    """Best-effort git description of the code that produced a run."""
    def _run(*args: str) -> str | None:
        try:
            out = subprocess.run(
                ["git", *args],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return out.stdout.strip() if out.returncode == 0 else None

    commit = _run("rev-parse", "HEAD")
    status = _run("status", "--porcelain")
    return {
        "commit": commit,
        "dirty": bool(status) if status is not None else None,
    }


def run_config_key(config: dict) -> str:
    """The identity hash of a run configuration (what resume checks)."""
    return content_key("dse-run-config/v1", json.dumps(config, sort_keys=True))


class RunStore:
    """Append-only JSONL store of one search's evaluations.

    Usage::

        store = RunStore(path)
        store.begin(config, resume=False)   # writes the header
        store.append(record)                # durable immediately
        record = store.get(key)             # replay lookup
        store.close()

    ``begin(config, resume=True)`` loads an existing file instead,
    verifies its header matches ``config``, truncates any torn final
    line, and positions for appending.
    """

    def __init__(self, path: str | Path, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.header: dict | None = None
        self._records: dict[str, EvalRecord] = {}
        self._order: list[str] = []
        self._fh = None
        self._good_bytes = 0

    # --- reading ----------------------------------------------------------------------

    def load(self) -> None:
        """Parse the file, keeping every intact record.

        A truncated or corrupt *final* line is the expected crash residue
        and is dropped silently (the byte offset of the last good line is
        remembered so :meth:`begin` can truncate it away).  Corruption
        *before* the end means the tail of the file cannot be trusted;
        everything after the bad line is dropped with a warning.
        """
        self.header = None
        self._records.clear()
        self._order.clear()
        self._good_bytes = 0
        data = self.path.read_bytes()
        offset = 0
        # A record is durable only once its terminating newline is on
        # disk, so anything after the last newline is crash residue —
        # even if it happens to parse — and is dropped.
        complete = data.split(b"\n")[:-1]
        for i, raw in enumerate(complete):
            end = offset + len(raw) + 1
            try:
                payload = json.loads(raw.decode())
                kind = payload["kind"]
                if kind == "header":
                    if self.header is not None:
                        raise ValueError("duplicate header")
                    if payload.get("version") != STORE_VERSION:
                        raise StoreError(
                            f"store version {payload.get('version')} != {STORE_VERSION}"
                        )
                    self.header = payload
                elif kind == "eval":
                    record = EvalRecord(
                        key=payload["key"],
                        generation=int(payload["generation"]),
                        index=int(payload["index"]),
                        params={k: float(v) for k, v in payload["params"].items()},
                        seed=int(payload["seed"]),
                        feasible=bool(payload["feasible"]),
                        objectives={
                            k: float(v) for k, v in payload["objectives"].items()
                        },
                        reason=payload.get("reason", ""),
                        elapsed=float(payload.get("elapsed", 0.0)),
                    )
                    if record.key not in self._records:
                        self._order.append(record.key)
                    self._records[record.key] = record
                else:
                    raise ValueError(f"unknown record kind {kind!r}")
            except StoreError:
                raise
            except Exception as exc:
                dropped = len(complete) - i - 1
                warnings.warn(
                    f"{self.path}: corrupt record on line {i + 1} ({exc}); "
                    f"dropping it and the {dropped} lines after it",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            offset = end
            self._good_bytes = offset
        if self.header is None and self._records:
            raise StoreError(f"{self.path}: has records but no header line")

    # --- writing ----------------------------------------------------------------------

    def begin(self, config: dict, resume: bool = False) -> None:
        """Open for appending: fresh header, or verified resume."""
        exists = self.path.exists() and self.path.stat().st_size > 0
        if exists and not resume:
            raise StoreError(
                f"{self.path} already holds a run; pass resume=True to continue"
                " it (or choose another path)"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if exists:
            self.load()
            if self.header is None:
                raise StoreError(f"{self.path}: no intact header to resume from")
            if self.header.get("config_key") != run_config_key(config):
                raise StoreError(
                    f"{self.path} was written by a different run configuration;"
                    " refusing to mix records (use a fresh store path)"
                )
            self._fh = open(self.path, "r+b")
            self._fh.truncate(self._good_bytes)
            self._fh.seek(self._good_bytes)
        else:
            self.header = {
                "kind": "header",
                "version": STORE_VERSION,
                "config": config,
                "config_key": run_config_key(config),
                "git": git_provenance(),
            }
            self._fh = open(self.path, "wb")
            self._write_line(self.header)

    def append(self, record: EvalRecord) -> None:
        """Durably persist one evaluation (idempotent per key)."""
        if self._fh is None:
            raise StoreError("store is not open; call begin() first")
        if record.key in self._records:
            return
        self._records[record.key] = record
        self._order.append(record.key)
        self._write_line({"kind": "eval", **asdict(record)})

    def _write_line(self, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True).encode() + b"\n"
        self._fh.write(line)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._good_bytes += len(line)

    # --- lookup -----------------------------------------------------------------------

    def get(self, key: str) -> EvalRecord | None:
        return self._records.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[EvalRecord]:
        """All records in first-seen order."""
        return [self._records[k] for k in self._order]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "EvalRecord",
    "RunStore",
    "STORE_VERSION",
    "StoreError",
    "git_provenance",
    "run_config_key",
]
