"""Crash-safe, resumable run store for design-space searches.

One JSONL file per search: a header line carrying the run configuration
(space spec, strategy, seed, objectives) plus git provenance, then one
line per completed evaluation, flushed and fsynced as it lands.  The
format is chosen for *crash semantics*, not elegance:

* a process killed mid-write leaves at most one truncated final line,
  which :meth:`RunStore.load` drops (and physically truncates before the
  next append, so the file never contains a spliced line);
* every record is keyed by the same content hash the evaluation cache
  uses, so a resumed search replays completed candidates bit-for-bit and
  recomputes only what is missing — the search loop itself is
  deterministic, which is what makes replay equivalent to never having
  crashed (see docs/DSE.md for the argument);
* a resume against a store written by a *different* configuration is
  refused loudly instead of silently mixing incompatible records.

Floats survive the JSON round-trip exactly (``repr`` round-trips IEEE
doubles; ``inf``/``nan`` use the JSON extensions Python emits natively),
so replayed objectives are bitwise identical to freshly computed ones.

The file-level plumbing (fsync-per-record, torn-tail truncation,
config-mismatch refusal) is the shared
:class:`repro.runtime.checkpoint.JsonlCheckpointBase`, which the other
long-running campaigns (Monte Carlo, sweeps, fault campaigns) use
through the generic :class:`~repro.runtime.CheckpointStore`; this module
keeps the DSE's richer :class:`EvalRecord` line format on top of it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from repro.errors import CheckpointError
from repro.runtime import content_key
from repro.runtime.checkpoint import JsonlCheckpointBase, git_provenance

#: Bumped when the line format changes incompatibly.
STORE_VERSION = 1


class StoreError(CheckpointError):
    """The run store refuses an unsafe operation (mismatch, clobber, ...)."""


@dataclass(frozen=True)
class EvalRecord:
    """One completed candidate evaluation."""

    key: str  # content hash of (evaluator, params, seed)
    generation: int
    index: int  # position within its generation's batch
    params: dict[str, float]
    seed: int
    feasible: bool
    objectives: dict[str, float]  # named metric values ({} when infeasible)
    reason: str = ""  # why infeasible (empty when feasible)
    elapsed: float = 0.0


def run_config_key(config: dict) -> str:
    """The identity hash of a run configuration (what resume checks)."""
    return content_key("dse-run-config/v1", json.dumps(config, sort_keys=True))


class RunStore(JsonlCheckpointBase):
    """Append-only JSONL store of one search's evaluations.

    Usage::

        store = RunStore(path)
        store.begin(config, resume=False)   # writes the header
        store.append(record)                # durable immediately
        record = store.get(key)             # replay lookup
        store.close()

    ``begin(config, resume=True)`` loads an existing file instead,
    verifies its header matches ``config``, truncates any torn final
    line, and positions for appending.
    """

    VERSION = STORE_VERSION
    RECORD_KIND = "eval"
    CONFIG_NAMESPACE = "dse-run-config/v1"
    error_cls = StoreError

    def _decode_record(self, payload: dict) -> tuple[str, EvalRecord]:
        record = EvalRecord(
            key=payload["key"],
            generation=int(payload["generation"]),
            index=int(payload["index"]),
            params={k: float(v) for k, v in payload["params"].items()},
            seed=int(payload["seed"]),
            feasible=bool(payload["feasible"]),
            objectives={k: float(v) for k, v in payload["objectives"].items()},
            reason=payload.get("reason", ""),
            elapsed=float(payload.get("elapsed", 0.0)),
        )
        return record.key, record

    def _encode_record(self, key: str, record: EvalRecord) -> dict:
        return asdict(record)

    def append(self, record: EvalRecord) -> None:
        """Durably persist one evaluation (idempotent per key)."""
        self._append_obj(record.key, record)

    def get(self, key: str) -> EvalRecord | None:
        return super().get(key)

    @property
    def records(self) -> list[EvalRecord]:
        """All records in first-seen order."""
        return super().records


__all__ = [
    "EvalRecord",
    "RunStore",
    "STORE_VERSION",
    "StoreError",
    "git_provenance",
    "run_config_key",
]
