"""Objective adapters: existing evaluators as DSE-searchable objectives.

An **evaluator** is a picklable callable ``(params, seed) -> metrics``
exposing an ``objectives`` tuple naming which of its returned metrics
are optimized and in which sense.  Evaluators are frozen dataclasses of
primitives, so they cross process boundaries for parallel candidate
batches and hash stably into cache keys; candidates a physical model
rejects raise :class:`InfeasibleDesign` and are recorded as infeasible
rather than crashing the search.

Provided adapters:

* :class:`Fig8Evaluator` — the paper's Fig. 8 axes: 10 mm link-traversal
  energy (min) vs bandwidth density (max) over (swing, wire pitch), with
  the Fig. 6 Monte Carlo yield criterion as the feasibility gate.
* :class:`SizingEvaluator` — the Section II sizing trade: energy/bit/mm
  (min) vs worst-stage sensing margin (max) over (M1/M2 widths, swing,
  driver scale), optionally adding die failure probability (min).
* :class:`Zdt1Evaluator` — an analytic benchmark with a known Pareto
  front (``f2 = 1 - sqrt(f1)``), for tests and strategy benchmarking.
* :class:`NocTopologyEvaluator` — measured latency vs per-endpoint
  goodput across the topology family (mesh, cmesh, torus, chiplet)
  at a matched endpoint budget, with injection rate as the load axis.
* :class:`NocWorkloadEvaluator` — data-dependent effective fJ/bit/mm
  vs goodput across the workload family (uniform/transpose synthetics,
  bursty, collective, optional trace replay), flits carrying
  ``payload_mode`` bits so link energy is transition-counted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar

from repro.circuit.diagnostics import stage_margins
from repro.circuit.driver import NMOSDriver
from repro.circuit.link import SRLRLink
from repro.circuit.prbs import PrbsGenerator, worst_case_patterns
from repro.circuit.srlr import robust_design
from repro.energy.link_energy import srlr_link_energy
from repro.energy.router import RouterPowerModel
from repro.errors import ConfigurationError, LivelockError
from repro.mc import run_monte_carlo
from repro.noc.power import price_stats
from repro.noc.simulator import NocSimulator
from repro.noc.topology import Topology, build_topology
from repro.noc.traffic import SyntheticTraffic
from repro.tech.technology import tech_45nm_soi
from repro.units import FJ, MM, UM
from repro.wire.rc import WireGeometry
from repro.workload import PAYLOAD_MODES, build_traffic


class InfeasibleDesign(Exception):
    """The physical model rejects this candidate (not a bug: a bad design)."""


@dataclass(frozen=True)
class Objective:
    """One optimized quantity: a metric name plus its sense and unit."""

    name: str
    sense: str = "min"
    unit: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("min", "max"):
            raise ConfigurationError(
                f"objective sense must be 'min' or 'max', got {self.sense!r}"
            )

    def signed(self, value: float) -> float:
        """The value as a minimization coordinate (maximized => negated)."""
        return float(value) if self.sense == "min" else -float(value)

    def unsigned(self, signed_value: float) -> float:
        """Inverse of :meth:`signed`."""
        return float(signed_value) if self.sense == "min" else -float(signed_value)


def signed_vector(
    objectives: tuple[Objective, ...], metrics: dict[str, float]
) -> tuple[float, ...]:
    """``metrics`` projected onto the objectives as a minimization vector."""
    missing = [o.name for o in objectives if o.name not in metrics]
    if missing:
        raise ConfigurationError(
            f"evaluator metrics {sorted(metrics)} are missing objectives {missing}"
        )
    return tuple(o.signed(metrics[o.name]) for o in objectives)


def infeasible_vector(objectives: tuple[Objective, ...]) -> tuple[float, ...]:
    """The all-``+inf`` minimization vector (dominated by any feasible point)."""
    return tuple(math.inf for _ in objectives)


def _stress_pattern() -> list[int]:
    return PrbsGenerator(7).bits(96) + worst_case_patterns()


@dataclass(frozen=True)
class Fig8Evaluator:
    """Energy vs bandwidth density of one SRLR design point (Fig. 8 axes).

    Parameters searched: ``nominal_swing`` [V] and ``wire_pitch_um``.
    Tighter pitch raises density (``rate / pitch``) but also coupling
    capacitance — more energy per bit and a weaker received pulse; lower
    swing saves energy but erodes the sensing margin.  Feasibility is the
    paper's own yield criterion (Fig. 6): a ``mc_runs``-die Monte Carlo
    must show a failure probability at or below ``max_error_probability``
    (the paper's selected 0.30 V swing measures ~0.14 at scale), seeded
    from the candidate's deterministic seed.  Without the gate the search
    would crown dead designs: a pulse attenuated to nothing draws almost
    no supply charge and looks spectacularly "efficient".
    """

    data_rate: float = 4.1e9
    activity: float = 0.5
    mc_runs: int = 40
    max_error_probability: float = 0.17
    bit_period: float = 1.0 / 4.1e9

    objectives: ClassVar[tuple[Objective, ...]] = (
        Objective("energy_fj_per_bit_per_cm", "min", "fJ/bit/cm"),
        Objective("bandwidth_density_gbps_per_um", "max", "Gb/s/um"),
    )

    def __call__(self, params: dict[str, float], seed: int) -> dict[str, float]:
        tech = tech_45nm_soi()
        geometry = WireGeometry.from_pitch(params["wire_pitch_um"] * UM)
        try:
            design = robust_design(
                tech, nominal_swing=params["nominal_swing"], wire_geometry=geometry
            )
        except ConfigurationError as exc:
            raise InfeasibleDesign(f"sizing solver: {exc}") from exc
        link = SRLRLink(design)
        if not link.transmit(_stress_pattern(), self.bit_period).ok:
            raise InfeasibleDesign("typical-corner die fails the stress pattern")
        error_probability = 0.0
        if self.mc_runs > 0:
            mc = run_monte_carlo(design, n_runs=self.mc_runs, base_seed=seed)
            error_probability = mc.error_probability
            if error_probability > self.max_error_probability:
                raise InfeasibleDesign(
                    f"die failure probability {error_probability:.3f} exceeds the"
                    f" {self.max_error_probability} yield gate"
                )
        report = srlr_link_energy(design, self.data_rate, self.activity)
        return {
            "energy_fj_per_bit_per_cm": report.fj_per_bit_per_cm,
            "bandwidth_density_gbps_per_um": report.bandwidth_density_gbps_per_um,
            "energy_fj_per_bit_per_mm": report.fj_per_bit_per_mm,
            "error_probability": error_probability,
            "power_uw": report.power * 1e6,
        }


@dataclass(frozen=True)
class SizingEvaluator:
    """The Section II sizing trade: energy vs worst-stage sensing margin.

    Parameters searched: ``m1_width_um``, ``m2_width_um`` (sense/keeper
    sizing — the paper's M1/M2 ratio constraint lives in the space),
    ``nominal_swing`` [V] and ``driver_scale`` (the Section II driver
    width search).  The margin objective is the minimum over all stages
    of received swing minus the stage's sensitivity floor at the typical
    corner; ``mc_runs > 0`` appends the Fig. 6 die failure probability as
    a third objective.
    """

    mc_runs: int = 0
    bit_period: float = 1.0 / 4.1e9

    _base_objectives: ClassVar[tuple[Objective, ...]] = (
        Objective("energy_fj_per_bit_per_mm", "min", "fJ/bit/mm"),
        Objective("min_margin_mv", "max", "mV"),
    )

    @property
    def objectives(self) -> tuple[Objective, ...]:
        if self.mc_runs > 0:
            return (*self._base_objectives, Objective("error_probability", "min"))
        return self._base_objectives

    def __call__(self, params: dict[str, float], seed: int) -> dict[str, float]:
        tech = tech_45nm_soi()
        base = NMOSDriver()
        scale = params.get("driver_scale", 1.0)
        try:
            design = robust_design(
                tech,
                nominal_swing=params["nominal_swing"],
                driver=NMOSDriver(
                    width_up=base.width_up * scale, width_down=base.width_down * scale
                ),
                m1_width=params["m1_width_um"] * UM,
                m2_width=params.get("m2_width_um", 0.2) * UM,
            )
        except ConfigurationError as exc:
            raise InfeasibleDesign(f"sizing solver: {exc}") from exc
        link = SRLRLink(design)
        if not link.transmit(_stress_pattern(), self.bit_period).ok:
            raise InfeasibleDesign("typical-corner die fails the stress pattern")
        report = srlr_link_energy(design)
        metrics = {
            "energy_fj_per_bit_per_mm": report.fj_per_bit_per_mm,
            "min_margin_mv": min(stage_margins(link)) * 1000.0,
            "energy_fj_per_bit_per_cm": report.fj_per_bit_per_cm,
        }
        if self.mc_runs > 0:
            mc = run_monte_carlo(design, n_runs=self.mc_runs, base_seed=seed)
            metrics["error_probability"] = mc.error_probability
        return metrics


@dataclass(frozen=True)
class Zdt1Evaluator:
    """The ZDT1 analytic benchmark (known front ``f2 = 1 - sqrt(f1)``).

    Expects parameters named ``x0 .. x{d-1}`` in [0, 1].  Deterministic
    and trivially cheap: the workhorse of the DSE test suite and of
    strategy comparisons, where simulation cost would drown the signal.
    """

    dimension: int = 4

    objectives: ClassVar[tuple[Objective, ...]] = (
        Objective("f1", "min"),
        Objective("f2", "min"),
    )

    def __call__(self, params: dict[str, float], seed: int) -> dict[str, float]:
        x = [params[f"x{i}"] for i in range(self.dimension)]
        f1 = x[0]
        g = 1.0 + 9.0 * sum(x[1:]) / max(1, self.dimension - 1)
        return {"f1": f1, "f2": g * (1.0 - math.sqrt(f1 / g))}


@dataclass(frozen=True)
class NocTopologyEvaluator:
    """Latency vs goodput across the NoC topology family (E24 recast).

    Parameters searched: ``topology_index`` — a discrete index into
    :meth:`menu`, which holds the four family members at a matched
    endpoint budget (flat ``k x k`` mesh, concentrated mesh with four
    cores per router, ``k x k`` torus, and a 2x2-chiplet NoC/NoI) — and
    ``injection_rate`` in packets per endpoint per cycle.  Each
    candidate runs a short uniform-random unicast simulation on the
    exact cycle-level engines (the SoA fast engine wherever the
    topology supports it), so the trade-off surface is measured, not
    modeled.  A network driven past saturation that livelocks the drain
    phase is recorded as an infeasible candidate rather than crashing
    the search; ``wire_energy_j`` rides along as a non-objective metric
    for per-topology energy comparisons.
    """

    k: int = 4
    warmup: int = 100
    measure: int = 400
    pattern: str = "uniform"
    size_flits: int = 1

    objectives: ClassVar[tuple[Objective, ...]] = (
        Objective("average_latency_cycles", "min", "cycles"),
        Objective("throughput_per_endpoint", "max", "pkt/endpoint/cycle"),
    )

    def __post_init__(self) -> None:
        if self.k < 4 or self.k % 2:
            raise ConfigurationError(
                "NocTopologyEvaluator needs an even k >= 4 so every family"
                f" member exists at a matched endpoint budget, got {self.k}"
            )
        if self.warmup < 0 or self.measure < 1:
            raise ConfigurationError(
                f"need warmup >= 0 and measure >= 1, got "
                f"({self.warmup}, {self.measure})"
            )

    def menu(self) -> tuple[Topology, ...]:
        """The searchable topologies, index-aligned with ``topology_index``."""
        return (
            build_topology("mesh", self.k),
            build_topology("cmesh", self.k // 2, concentration=4),
            build_topology("torus", self.k),
            build_topology(
                "chiplet", self.k // 2, chiplets_x=2, chiplets_y=2
            ),
        )

    def __call__(self, params: dict[str, float], seed: int) -> dict[str, float]:
        index = int(round(params["topology_index"]))
        menu = self.menu()
        if not 0 <= index < len(menu):
            raise ConfigurationError(
                f"topology_index must lie in [0, {len(menu) - 1}], got {index}"
            )
        topology = menu[index]
        traffic = SyntheticTraffic(
            topology,
            float(params["injection_rate"]),
            self.pattern,
            size_flits=self.size_flits,
            seed=seed,
        )
        engine = "fast" if topology.supports_fast_engine else "reference"
        sim = NocSimulator(topology, traffic=traffic, seed=seed, engine=engine)
        try:
            sim.run(warmup=self.warmup, measure=self.measure)
        except LivelockError as exc:
            raise InfeasibleDesign(
                f"{topology.kind} saturated at rate "
                f"{params['injection_rate']:.3f}: {exc}"
            ) from exc
        stats = sim.stats
        if not stats.clean_measured():
            raise InfeasibleDesign(
                f"{topology.kind}: no deliveries in the measurement window"
            )
        report = price_stats(stats, RouterPowerModel())
        return {
            "average_latency_cycles": stats.average_latency,
            "throughput_per_endpoint": stats.throughput(
                len(topology.endpoints())
            ),
            "wire_energy_j": report.total,
            "link_traversals": float(stats.link_traversals),
            "topology_index": float(index),
        }


@dataclass(frozen=True)
class NocWorkloadEvaluator:
    """Data-dependent fJ/bit/mm vs goodput across the workload family.

    Parameters searched: ``workload_index`` — a discrete index into
    :meth:`menu`, which holds the workload family on a flat ``k x k``
    mesh (uniform and transpose synthetics, Markov on/off bursts, a
    row-collective multicast mix, plus replay of ``trace_path`` when
    one is given) — and ``injection_rate`` in packets per node per
    cycle.  Flits carry ``payload_mode`` bits, so links are priced by
    the counted-transition + crosstalk-coupling model of
    docs/WORKLOADS.md rather than the constant per-bit worst case: the
    searcher measures that different workloads cost different energy
    per *delivered* bit-mm, not just different latency.  Trace replay
    ignores ``injection_rate`` (the trace fixes its own schedule) and
    keeps its recorded payload bits.
    """

    k: int = 4
    warmup: int = 100
    measure: int = 400
    size_flits: int = 1
    payload_mode: str = "random"
    coupling: bool = True
    trace_path: str | None = None

    objectives: ClassVar[tuple[Objective, ...]] = (
        Objective("energy_fj_per_bit_mm", "min", "fJ/bit/mm"),
        Objective("throughput_per_endpoint", "max", "pkt/endpoint/cycle"),
    )

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ConfigurationError(
                f"NocWorkloadEvaluator needs k >= 2, got {self.k}"
            )
        if self.warmup < 0 or self.measure < 1:
            raise ConfigurationError(
                f"need warmup >= 0 and measure >= 1, got "
                f"({self.warmup}, {self.measure})"
            )
        if self.payload_mode not in PAYLOAD_MODES:
            raise ConfigurationError(
                f"payload_mode must be one of {PAYLOAD_MODES}, "
                f"got {self.payload_mode!r}"
            )

    def menu(self) -> tuple[str, ...]:
        """The searchable workloads, index-aligned with ``workload_index``."""
        base = ("uniform", "transpose", "bursty", "collective")
        return base + (("trace",) if self.trace_path else ())

    def __call__(self, params: dict[str, float], seed: int) -> dict[str, float]:
        index = int(round(params["workload_index"]))
        menu = self.menu()
        if not 0 <= index < len(menu):
            raise ConfigurationError(
                f"workload_index must lie in [0, {len(menu) - 1}], got {index}"
            )
        name = menu[index]
        topology = build_topology("mesh", self.k)
        rate = float(params["injection_rate"])
        common = dict(size_flits=self.size_flits, seed=seed,
                      payload_mode=self.payload_mode)
        if name == "trace":
            traffic = build_traffic(
                topology, "trace", trace_path=self.trace_path
            )
        elif name in ("bursty", "collective"):
            traffic = build_traffic(
                topology, name, injection_rate=rate, **common
            )
        else:
            traffic = build_traffic(
                topology, "synthetic", injection_rate=rate, pattern=name,
                **common,
            )
        engine = "fast" if traffic.multicast_fraction == 0.0 else "reference"
        sim = NocSimulator(topology, traffic=traffic, seed=seed, engine=engine)
        try:
            sim.run(warmup=self.warmup, measure=self.measure)
        except LivelockError as exc:
            raise InfeasibleDesign(
                f"{name} saturated at rate {rate:.3f}: {exc}"
            ) from exc
        stats = sim.stats
        clean = stats.clean_measured()
        if not clean:
            raise InfeasibleDesign(
                f"{name}: no deliveries in the measurement window"
            )
        model = RouterPowerModel()
        report = price_stats(
            stats, model, links=sim.links, coupling=self.coupling
        )
        flit_bits = model.config.flit_bits
        link_mm = model.config.link_length / MM
        if name == "trace":
            # Trace packets vary in size; bill delivered bit-mm at the
            # trace's mean packet size (DeliveryRecord carries no size).
            size = sum(e.size_flits for e in traffic.entries) / len(
                traffic.entries
            )
        else:
            size = float(self.size_flits)
        useful_bit_mm = 0.0
        for rec in clean:
            hops = (
                topology.route_mm(rec.src, rec.dest)
                if rec.src is not None
                else 1
            )
            useful_bit_mm += size * flit_bits * hops * link_mm
        return {
            "energy_fj_per_bit_mm": report.total / useful_bit_mm / FJ,
            "throughput_per_endpoint": stats.throughput(
                len(topology.endpoints())
            ),
            "average_latency_cycles": stats.average_latency,
            "payload_transitions": float(
                sum(link.payload_transitions for link in sim.links)
            ),
            "coupling_events": float(
                sum(link.coupling_events for link in sim.links)
            ),
            "workload_index": float(index),
        }


#: Named evaluator classes submittable by JSON configs (the campaign
#: service and other front ends that cannot ship arbitrary callables
#: reference evaluators by name + keyword arguments).
EVALUATORS = {
    "fig8": Fig8Evaluator,
    "sizing": SizingEvaluator,
    "zdt1": Zdt1Evaluator,
    "noc_topology": NocTopologyEvaluator,
    "noc_workload": NocWorkloadEvaluator,
}


def make_evaluator(name: str, **kwargs):
    """Instantiate a registered evaluator from its name and kwargs."""
    if name not in EVALUATORS:
        raise ConfigurationError(
            f"unknown evaluator {name!r}; choose from {sorted(EVALUATORS)}"
        )
    return EVALUATORS[name](**kwargs)


__all__ = [
    "EVALUATORS",
    "Fig8Evaluator",
    "InfeasibleDesign",
    "NocTopologyEvaluator",
    "NocWorkloadEvaluator",
    "Objective",
    "SizingEvaluator",
    "Zdt1Evaluator",
    "infeasible_vector",
    "make_evaluator",
    "signed_vector",
]
