"""Human-readable reporting for DSE results."""

from __future__ import annotations

from repro.analysis.report import format_kv, format_table
from repro.dse.engine import DseResult
from repro.dse.store import EvalRecord


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "nan"
    if abs(value) >= 1000 or (0 < abs(value) < 0.01):
        return f"{value:.3g}"
    return f"{value:.4g}"


def format_front(result: DseResult, title: str = "Pareto front") -> str:
    """The non-dominated set as a table: parameters, then objectives."""
    names = list(result.space.names)
    objective_headers = [
        f"{o.name} [{o.unit}] ({o.sense})" if o.unit else f"{o.name} ({o.sense})"
        for o in result.objectives
    ]
    rows = [
        [
            *(_fmt(r.params[n]) for n in names),
            *(_fmt(r.objectives[o.name]) for o in result.objectives),
        ]
        for r in result.front
    ]
    if not rows:
        return f"{title}: empty (no feasible candidates)"
    return format_table([*names, *objective_headers], rows, title=title)


def format_summary(result: DseResult) -> str:
    """Run accounting: evaluations, replay/cache reuse, front quality."""
    n_infeasible = sum(1 for r in result.records if not r.feasible)
    pairs = [
        ("candidates", len(result.records)),
        ("generations", result.generations),
        ("evaluated fresh", result.n_evaluated),
        ("replayed from store", result.n_replayed),
        ("cache hits", result.n_cache_hits),
        ("infeasible", n_infeasible),
        ("front size", len(result.front)),
        ("front hypervolume", f"{result.front_hypervolume():.6g}"),
        ("elapsed [s]", f"{result.elapsed:.2f}"),
    ]
    return format_kv("DSE run summary", pairs)


def format_record(record: EvalRecord) -> str:
    """One candidate on one line (diagnostics, failure listings)."""
    params = ", ".join(f"{k}={_fmt(v)}" for k, v in sorted(record.params.items()))
    if not record.feasible:
        return f"[{record.key[:8]}] {params} -> infeasible: {record.reason}"
    objs = ", ".join(f"{k}={_fmt(v)}" for k, v in sorted(record.objectives.items()))
    return f"[{record.key[:8]}] {params} -> {objs}"


def format_report(result: DseResult, title: str = "Design-space exploration") -> str:
    """Summary plus front table (the CLI's default output)."""
    return f"{format_summary(result)}\n\n{format_front(result, title=title)}"


__all__ = ["format_front", "format_record", "format_report", "format_summary"]
