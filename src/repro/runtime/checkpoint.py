"""Crash-safe JSONL checkpoint stores for long-running campaigns.

Generalizes the machinery the design-space run store
(:mod:`repro.dse.store`) proved out, so *every* campaign — Monte Carlo,
sweeps, fault campaigns, searches — can gain ``checkpoint=``/``resume=``
with identical crash semantics:

* one header line binds the file to a run configuration (via a content
  hash), then one line per completed unit of work, flushed and fsynced
  as it lands — a process killed at any instant (``SIGKILL``, OOM,
  Ctrl-C) leaves at most one truncated final line;
* :meth:`JsonlCheckpointBase.load` drops a torn or corrupt *final* line
  silently (the expected crash residue) and physically truncates it
  before the next append; corruption earlier in the file drops the
  untrustworthy tail with a warning;
* resuming against a file written by a *different* configuration is
  refused loudly (:class:`repro.errors.CheckpointError`) instead of
  silently mixing records;
* floats survive the JSON round-trip exactly (``repr`` round-trips IEEE
  doubles), so replayed results are bitwise identical to freshly
  computed ones — which, combined with content-addressed per-task seeds
  (:mod:`repro.runtime.seeds`), is what makes an interrupted-and-resumed
  campaign converge to the exact result of an uninterrupted one.

:class:`JsonlCheckpointBase` carries the shared plumbing;
:class:`CheckpointStore` is the generic key->payload instantiation used
by ``run_monte_carlo``, ``sweep``/``sweep_grid`` and
``run_fault_campaign``; the DSE's :class:`~repro.dse.store.RunStore`
subclasses the base with its richer record type.
"""

from __future__ import annotations

import functools
import json
import os
import subprocess
import warnings
from pathlib import Path
from typing import Any

from repro.errors import CheckpointError
from repro.runtime.cache import content_key, stable_token

#: Bumped when the line format changes incompatibly.
CHECKPOINT_VERSION = 1


def git_provenance(cwd: str | Path | None = None) -> dict:
    """Best-effort git description of the code that produced a run."""
    def _run(*args: str) -> str | None:
        try:
            out = subprocess.run(
                ["git", *args],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return out.stdout.strip() if out.returncode == 0 else None

    commit = _run("rev-parse", "HEAD")
    status = _run("status", "--porcelain")
    return {
        "commit": commit,
        "dirty": bool(status) if status is not None else None,
    }


def callable_token(fn: Any) -> str:
    """A best-effort stable identity string for an evaluator callable.

    Used in checkpoint *configurations* (the resume-compatibility check),
    not in per-record keys: two runs whose evaluators tokenize
    differently refuse to share a store.  Covers plain functions (module
    + qualname), ``functools.partial`` (recursing into bound arguments)
    and stateful evaluator objects (via :func:`stable_token`).
    """
    if isinstance(fn, functools.partial):
        bound = tuple(sorted(fn.keywords.items())) if fn.keywords else ()
        return (
            f"partial({callable_token(fn.func)},"
            f" args={stable_token(fn.args)}, kwargs={stable_token(bound)})"
        )
    name = getattr(fn, "__qualname__", None) or type(fn).__qualname__
    module = getattr(fn, "__module__", None) or "?"
    try:
        state = stable_token(fn)
    except TypeError:
        state = ""
    return f"{module}:{name}:{state}"


class JsonlCheckpointBase:
    """Shared append-only JSONL store plumbing (see module docstring).

    Subclasses set :attr:`RECORD_KIND` / :attr:`CONFIG_NAMESPACE` /
    :attr:`error_cls` and implement ``_decode_record`` /
    ``_encode_record`` for their record type.
    """

    VERSION = CHECKPOINT_VERSION
    RECORD_KIND = "record"
    CONFIG_NAMESPACE = "checkpoint-config/v1"
    error_cls: type[CheckpointError] = CheckpointError

    def __init__(self, path: str | Path, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.header: dict | None = None
        self._records: dict[str, Any] = {}
        self._order: list[str] = []
        self._fh = None
        self._good_bytes = 0

    # --- record codec (subclass hooks) ------------------------------------------------

    def _decode_record(self, payload: dict) -> tuple[str, Any]:
        """``(key, object)`` from one parsed record line."""
        raise NotImplementedError

    def _encode_record(self, key: str, obj: Any) -> dict:
        """The JSON body (sans ``kind``) for one record line."""
        raise NotImplementedError

    @classmethod
    def config_key(cls, config: dict) -> str:
        """The identity hash of a run configuration (what resume checks)."""
        return content_key(cls.CONFIG_NAMESPACE, json.dumps(config, sort_keys=True))

    # --- reading ----------------------------------------------------------------------

    def load(self) -> None:
        """Parse the file, keeping every intact record.

        A truncated or corrupt *final* line is the expected crash residue
        and is dropped silently (the byte offset of the last good line is
        remembered so :meth:`begin` can truncate it away).  Corruption
        *before* the end means the tail of the file cannot be trusted;
        everything after the bad line is dropped with a warning.
        """
        self.header = None
        self._records.clear()
        self._order.clear()
        self._good_bytes = 0
        data = self.path.read_bytes()
        offset = 0
        # A record is durable only once its terminating newline is on
        # disk, so anything after the last newline is crash residue —
        # even if it happens to parse — and is dropped.
        complete = data.split(b"\n")[:-1]
        for i, raw in enumerate(complete):
            end = offset + len(raw) + 1
            try:
                payload = json.loads(raw.decode())
                kind = payload["kind"]
                if kind == "header":
                    if self.header is not None:
                        raise ValueError("duplicate header")
                    if payload.get("version") != self.VERSION:
                        raise self.error_cls(
                            f"store version {payload.get('version')} != {self.VERSION}"
                        )
                    self.header = payload
                elif kind == self.RECORD_KIND:
                    key, obj = self._decode_record(payload)
                    if key not in self._records:
                        self._order.append(key)
                    self._records[key] = obj
                else:
                    raise ValueError(f"unknown record kind {kind!r}")
            except CheckpointError:
                raise
            except Exception as exc:
                dropped = len(complete) - i - 1
                warnings.warn(
                    f"{self.path}: corrupt record on line {i + 1} ({exc}); "
                    f"dropping it and the {dropped} lines after it",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            offset = end
            self._good_bytes = offset
        if self.header is None and self._records:
            raise self.error_cls(f"{self.path}: has records but no header line")

    # --- writing ----------------------------------------------------------------------

    def begin(self, config: dict, resume: bool = False) -> None:
        """Open for appending: fresh header, or verified resume."""
        exists = self.path.exists() and self.path.stat().st_size > 0
        if exists and not resume:
            raise self.error_cls(
                f"{self.path} already holds a run; pass resume=True to continue"
                " it (or choose another path)"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if exists:
            self.load()
            if self.header is None:
                raise self.error_cls(
                    f"{self.path}: no intact header to resume from"
                )
            if self.header.get("config_key") != self.config_key(config):
                raise self.error_cls(
                    f"{self.path} was written by a different run configuration;"
                    " refusing to mix records (use a fresh store path)"
                )
            self._fh = open(self.path, "r+b")
            self._fh.truncate(self._good_bytes)
            self._fh.seek(self._good_bytes)
        else:
            self.header = {
                "kind": "header",
                "version": self.VERSION,
                "config": config,
                "config_key": self.config_key(config),
                "git": git_provenance(),
            }
            self._fh = open(self.path, "wb")
            self._write_line(self.header)

    def _append_obj(self, key: str, obj: Any) -> None:
        """Durably persist one record (idempotent per key)."""
        if self._fh is None:
            raise self.error_cls("store is not open; call begin() first")
        if key in self._records:
            return
        self._records[key] = obj
        self._order.append(key)
        self._write_line({"kind": self.RECORD_KIND, **self._encode_record(key, obj)})

    def _write_line(self, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True).encode() + b"\n"
        self._fh.write(line)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._good_bytes += len(line)

    # --- lookup -----------------------------------------------------------------------

    def get(self, key: str) -> Any:
        return self._records.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> list[str]:
        """All record keys in first-seen order."""
        return list(self._order)

    @property
    def records(self) -> list[Any]:
        """All records in first-seen order."""
        return [self._records[k] for k in self._order]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CheckpointStore(JsonlCheckpointBase):
    """The generic campaign checkpoint: string key -> JSON payload dict.

    Usage::

        store = CheckpointStore(path)
        store.begin(config, resume=False)   # writes the header
        store.append(key, payload)          # durable immediately
        payload = store.get(key)            # replay lookup
        store.close()

    ``begin(config, resume=True)`` loads an existing file instead,
    verifies its header matches ``config``, truncates any torn final
    line, and positions for appending.
    """

    RECORD_KIND = "record"
    CONFIG_NAMESPACE = "campaign-checkpoint/v1"

    def _decode_record(self, payload: dict) -> tuple[str, Any]:
        return str(payload["key"]), payload["payload"]

    def _encode_record(self, key: str, obj: Any) -> dict:
        return {"key": key, "payload": obj}

    def append(self, key: str, payload: Any) -> None:
        """Durably persist one completed unit of work (idempotent per key).

        ``payload`` must be JSON-serializable; floats round-trip exactly.
        """
        self._append_obj(key, payload)

    def items(self) -> list[tuple[str, Any]]:
        """(key, payload) pairs in first-seen order."""
        return [(k, self._records[k]) for k in self._order]


def open_checkpoint(
    checkpoint: str | Path | CheckpointStore | None,
    config: dict,
    resume: bool,
) -> CheckpointStore | None:
    """Campaign-side helper: coerce a path into an open store.

    ``None`` passes through (checkpointing off); an already-open store is
    ``begin``-ed against ``config``; a path is wrapped first.
    """
    if checkpoint is None:
        return None
    store = (
        checkpoint
        if isinstance(checkpoint, CheckpointStore)
        else CheckpointStore(checkpoint)
    )
    store.begin(config, resume=resume)
    return store


__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "JsonlCheckpointBase",
    "callable_token",
    "git_provenance",
    "open_checkpoint",
]
