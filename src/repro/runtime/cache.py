"""Opt-in on-disk result cache for expensive Monte Carlo blocks.

Entries are keyed by a SHA-256 content hash of a *stable token* of the
inputs (design parameters, stress pattern, seeds, ...), so a re-run with
identical physics skips the computation while any parameter change — a
different swing, pattern, seed stream or die count — changes the key and
recomputes.  Values are pickled to ``<root>/<key[:2]>/<key>.pkl`` via an
atomic rename; a corrupted or truncated entry reads as a miss (and is
deleted), never as a crash or a wrong result.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any

import numpy as np

#: Returned by :meth:`ResultCache.get` on a miss (``None`` is a valid value).
MISS = object()


def stable_token(obj: Any) -> str:
    """A deterministic, content-only string for hashing cache keys.

    Covers the input shapes the repo caches over: primitives, sequences,
    mappings, dataclasses (by class name + field tokens, recursively) and
    numpy scalars/arrays.  Other objects fall back to their class name
    plus sorted instance ``__dict__`` — and anything whose default
    ``repr`` would leak a memory address is rejected loudly rather than
    producing an unstable key.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return f"{type(obj).__name__}:{obj!r}"
    if isinstance(obj, float):
        return f"float:{obj.hex()}"
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return stable_token(obj.item())
    if isinstance(obj, np.ndarray):
        return f"ndarray:{obj.dtype}:{obj.shape}:{obj.tobytes().hex()}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={stable_token(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__qualname__}({fields})"
    if isinstance(obj, (list, tuple)):
        inner = ",".join(stable_token(v) for v in obj)
        return f"{type(obj).__name__}[{inner}]"
    if isinstance(obj, (set, frozenset)):
        inner = ",".join(sorted(stable_token(v) for v in obj))
        return f"{type(obj).__name__}{{{inner}}}"
    if isinstance(obj, dict):
        inner = ",".join(
            f"{stable_token(k)}:{stable_token(v)}"
            for k, v in sorted(obj.items(), key=lambda kv: stable_token(kv[0]))
        )
        return f"dict{{{inner}}}"
    state = getattr(obj, "__dict__", None)
    if state is not None:
        inner = ",".join(
            f"{k}={stable_token(v)}" for k, v in sorted(state.items())
        )
        return f"{type(obj).__qualname__}<{inner}>"
    raise TypeError(f"cannot build a stable cache token for {type(obj)!r}")


def content_key(*parts: Any) -> str:
    """SHA-256 hex digest of the stable tokens of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        h.update(stable_token(part).encode())
        h.update(b"\x1f")
    return h.hexdigest()


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """One snapshot of a :class:`ResultCache`: disk contents + counters.

    ``entries``/``total_bytes``/``oldest_age``/``newest_age`` describe
    what is on disk right now (shared across every process using the
    cache root); the counters (``hits``/``misses``/``corrupt``/
    ``put_errors``) belong to the inspecting process only.
    """

    root: str
    entries: int
    total_bytes: int
    oldest_age: float
    newest_age: float
    hits: int
    misses: int
    corrupt: int
    put_errors: int

    def describe(self) -> str:
        age = (
            f", ages {self.newest_age:.0f}s..{self.oldest_age:.0f}s"
            if self.entries
            else ""
        )
        return (
            f"cache at {self.root}: {self.entries} entries, "
            f"{self.total_bytes} bytes{age}; this process: "
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.corrupt} corrupt, {self.put_errors} failed writes"
        )


class ResultCache:
    """A small content-addressed pickle store with hit/miss accounting."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.put_errors = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`.

        A corrupted entry (truncated pickle, wrong type, unreadable file)
        counts as a miss; the bad file is removed so the recomputed value
        can be stored cleanly.
        """
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
            stored_key, value = payload["key"], payload["value"]
            if stored_key != key:
                raise ValueError("cache entry key mismatch")
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except Exception:
            self.corrupt += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return MISS
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically (write + rename).

        A failed write (unpicklable value, full or read-only disk) never
        leaves a ``.tmp`` file behind and never aborts the campaign that
        tried to cache: the failure is swallowed, counted in
        :attr:`put_errors`, and reported by :meth:`summary` — the cache
        is an accelerator, so losing a store only costs a recompute.
        ``KeyboardInterrupt``/``SystemExit`` still propagate (after the
        temp-file cleanup) so Ctrl-C stays responsive.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump({"key": key, "value": value}, fh, protocol=4)
            os.replace(tmp, path)
        except BaseException as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            self.put_errors += 1
            if not isinstance(exc, Exception):
                raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def _entries(self) -> list[Path]:
        return [p for p in self.root.glob("??/*.pkl") if p.is_file()]

    def stats(self, now: float | None = None) -> CacheStats:
        """Inspect the cache: on-disk entry count/bytes/ages + counters.

        Entries written by *other* processes count too (the store is
        shared); the hit/miss/put-error counters are this process's own.
        """
        now = time.time() if now is None else now
        sizes: list[int] = []
        ages: list[float] = []
        for path in self._entries():
            try:
                st = path.stat()
            except OSError:
                continue  # pruned or replaced under us
            sizes.append(st.st_size)
            ages.append(max(0.0, now - st.st_mtime))
        return CacheStats(
            root=str(self.root),
            entries=len(sizes),
            total_bytes=sum(sizes),
            oldest_age=max(ages, default=0.0),
            newest_age=min(ages, default=0.0),
            hits=self.hits,
            misses=self.misses,
            corrupt=self.corrupt,
            put_errors=self.put_errors,
        )

    def prune(self, max_age: float, now: float | None = None) -> int:
        """Delete entries not modified within the last ``max_age`` seconds.

        Returns how many entries were removed.  Concurrent readers are
        safe: a pruned entry simply reads as a miss and is recomputed.
        ``max_age=0`` empties the cache.
        """
        if max_age < 0.0:
            raise ValueError(f"max_age must be >= 0, got {max_age}")
        now = time.time() if now is None else now
        removed = 0
        for path in self._entries():
            try:
                if now - path.stat().st_mtime >= max_age:
                    path.unlink()
                    removed += 1
            except OSError:
                continue  # someone else pruned it first
        return removed

    def summary(self) -> str:
        put_note = (
            f", {self.put_errors} failed writes" if self.put_errors else ""
        )
        return (
            f"cache at {self.root}: {self.hits} hits, {self.misses} misses"
            f" ({self.corrupt} corrupt entries discarded{put_note})"
        )


__all__ = ["MISS", "CacheStats", "ResultCache", "content_key", "stable_token"]
