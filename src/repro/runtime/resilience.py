"""Fault tolerance for the parallel task layer.

The campaigns behind the paper's statistical claims (Monte Carlo yield,
swing sweeps, fault campaigns) run for minutes to hours under
:class:`~repro.runtime.ParallelExecutor`.  Without this module a single
hung task, a worker killed by the OOM killer, or a transient exception
loses the entire run.  :class:`ResilienceConfig` opts a ``map`` into:

* **per-task soft timeouts** — each task runs under a ``SIGALRM`` timer
  inside the worker; expiry raises :class:`repro.errors.TaskTimeoutError`
  and counts as a failed attempt;
* **deterministic bounded retries** — a failed attempt is re-run up to
  ``max_retries`` times with exponential backoff.  Tasks carry their own
  content-addressed seeds (:mod:`repro.runtime.seeds`), so a retry
  re-evaluates exactly the same pure function of the item and the final
  results are bitwise identical to a clean run;
* **quarantine** — a task that exhausts its attempts yields a structured
  :class:`TaskFailure` record in its result slot instead of aborting the
  campaign (``strict=True`` restores abort-on-failure).

The executor adds the parts that need the parent process: a watchdog
that hard-kills chunks whose workers hang past the soft timeout (e.g.
blocked signals, stuck C code) and ``BrokenProcessPool`` recovery that
respawns the pool and re-enqueues only the in-flight work — see
:meth:`repro.runtime.ParallelExecutor.map` and docs/RESILIENCE.md.

Everything here that crosses a process boundary (the config, the
outcome, the failure record) is a plain picklable dataclass.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError, TaskTimeoutError

#: Failure categories carried by :attr:`TaskFailure.kind`.
FAILURE_KINDS = ("exception", "timeout", "crash", "hang")


@dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its retry budget.

    Placed in the task's result slot (quarantine mode) so the rest of the
    campaign survives; consumers decide whether a hole is tolerable.
    """

    index: int  # position within the mapped items
    error_type: str  # exception class name ("WorkerCrashError" for crashes)
    message: str
    traceback: str  # formatted worker-side traceback ("" for crashes/hangs)
    attempts: int  # total attempts spent, crashes included
    kind: str  # one of FAILURE_KINDS

    def summary(self) -> str:
        return (
            f"task {self.index} failed after {self.attempts} attempt(s)"
            f" [{self.kind}]: {self.error_type}: {self.message}"
        )


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the fault-tolerant execution path.

    Parameters
    ----------
    timeout:
        Soft per-task wall-clock budget in seconds, enforced by
        ``SIGALRM`` inside the worker (``None`` disables).  Platforms
        without ``SIGALRM`` fall back to the watchdog alone.
    hard_timeout:
        Per-task budget after which the parent watchdog assumes the
        worker is unrecoverably hung and kills the pool.  Defaults to
        ``4 * timeout``; a chunk of ``n`` tasks gets ``n *`` this budget.
    max_retries:
        Extra attempts after the first, per task.  Worker-side failures
        (exception, soft timeout) and parent-side ones (crash, hang)
        draw from the same budget.
    backoff_base / backoff_factor / backoff_max:
        Attempt ``k`` (1-based) sleeps
        ``min(backoff_max, backoff_base * backoff_factor**(k-1))`` before
        retrying.  Deterministic — no jitter — so retried runs stay
        reproducible.
    strict:
        ``True`` restores abort-the-campaign semantics: the first task
        to exhaust its budget raises instead of quarantining.
    watchdog_poll:
        Parent-side poll interval while hard deadlines are armed.
    """

    timeout: float | None = None
    hard_timeout: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    strict: bool = False
    watchdog_poll: float = 0.05

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0.0:
            raise ConfigurationError(f"timeout must be positive, got {self.timeout}")
        if self.hard_timeout is not None and self.hard_timeout <= 0.0:
            raise ConfigurationError(
                f"hard_timeout must be positive, got {self.hard_timeout}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0.0 or self.backoff_max < 0.0:
            raise ConfigurationError("backoff budgets must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.watchdog_poll <= 0.0:
            raise ConfigurationError(
                f"watchdog_poll must be positive, got {self.watchdog_poll}"
            )

    @property
    def max_attempts(self) -> int:
        """Total attempts a task may spend (first try + retries)."""
        return self.max_retries + 1

    def backoff(self, attempt: int) -> float:
        """Sleep before retrying after ``attempt`` failed attempts."""
        return min(self.backoff_max, self.backoff_base * self.backoff_factor ** (attempt - 1))

    def hard_limit(self) -> float | None:
        """Per-task hard (watchdog) budget in seconds, or ``None``."""
        if self.hard_timeout is not None:
            return self.hard_timeout
        if self.timeout is not None:
            return 4.0 * self.timeout
        return None


@dataclass(frozen=True)
class TaskOutcome:
    """Worker-side result envelope: a value or a structured failure."""

    index: int
    attempts: int
    timeouts: int = 0
    value: Any = None
    failure: TaskFailure | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


@contextmanager
def soft_deadline(seconds: float | None):
    """Raise :class:`TaskTimeoutError` in this thread after ``seconds``.

    A no-op when ``seconds`` is ``None``, when the platform lacks
    ``SIGALRM`` (Windows), or off the main thread (where Python cannot
    deliver signals) — the parent watchdog remains the backstop.
    """
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expire(signum, frame):
        raise TaskTimeoutError(f"task exceeded its {seconds}s soft timeout")

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_one_resilient(
    fn: Callable[[Any], Any],
    index: int,
    item: Any,
    config: ResilienceConfig,
    prior_attempts: int = 0,
) -> TaskOutcome:
    """Evaluate one task under the retry/timeout policy.

    ``prior_attempts`` carries attempts already burned by worker crashes
    or hangs, so a task re-enqueued after a pool respawn keeps one
    unified budget.  ``fn(item)`` must be a pure function of ``item``
    (tasks carry their own seeds), which is what makes a retried run
    bitwise identical to a clean one.
    """
    attempts = prior_attempts
    timeouts = 0
    while True:
        attempts += 1
        try:
            with soft_deadline(config.timeout):
                value = fn(item)
            return TaskOutcome(index=index, attempts=attempts, timeouts=timeouts, value=value)
        except Exception as exc:
            timed_out = isinstance(exc, TaskTimeoutError)
            if timed_out:
                timeouts += 1
            if attempts >= config.max_attempts:
                failure = TaskFailure(
                    index=index,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    traceback=traceback.format_exc(),
                    attempts=attempts,
                    kind="timeout" if timed_out else "exception",
                )
                return TaskOutcome(
                    index=index, attempts=attempts, timeouts=timeouts, failure=failure
                )
        time.sleep(config.backoff(attempts))


def run_chunk_resilient(
    fn: Callable[[Any], Any],
    indexed: list[tuple[int, Any, int]],
    config: ResilienceConfig,
) -> list[TaskOutcome]:
    """Worker-side body: ``(index, item, prior_attempts)`` triples in,
    one :class:`TaskOutcome` per task out, order preserved."""
    return [
        run_one_resilient(fn, index, item, config, prior)
        for index, item, prior in indexed
    ]


__all__ = [
    "FAILURE_KINDS",
    "ResilienceConfig",
    "TaskFailure",
    "TaskOutcome",
    "run_chunk_resilient",
    "run_one_resilient",
    "soft_deadline",
]
