"""Parallel execution runtime: executor, seed streams, metrics, cache.

The subsystem behind ``run_monte_carlo(..., n_jobs=...)`` and
``sweep(..., n_jobs=...)``: an order-preserving chunked process-pool
executor whose results are independent of worker count, deterministic
per-task seed streams, lightweight progress metrics, and an opt-in
on-disk result cache keyed by a content hash of the inputs.
"""

from repro.runtime.cache import MISS, ResultCache, content_key, stable_token
from repro.runtime.executor import (
    ParallelExecutor,
    SerialFallbackWarning,
    resolve_n_jobs,
)
from repro.runtime.metrics import ChunkRecord, ProgressHook, RunMetrics, print_progress
from repro.runtime.seeds import (
    SEED_SCHEMES,
    derived_seed,
    make_seeds,
    sequential_seeds,
    spawned_seeds,
)

__all__ = [
    "MISS",
    "ChunkRecord",
    "ParallelExecutor",
    "ProgressHook",
    "ResultCache",
    "RunMetrics",
    "SEED_SCHEMES",
    "SerialFallbackWarning",
    "content_key",
    "derived_seed",
    "make_seeds",
    "print_progress",
    "resolve_n_jobs",
    "sequential_seeds",
    "spawned_seeds",
    "stable_token",
]
