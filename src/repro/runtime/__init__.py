"""Parallel execution runtime: executor, seeds, metrics, cache, resilience.

The subsystem behind ``run_monte_carlo(..., n_jobs=...)`` and
``sweep(..., n_jobs=...)``: an order-preserving chunked process-pool
executor whose results are independent of worker count, deterministic
per-task seed streams, lightweight progress metrics, an opt-in on-disk
result cache keyed by a content hash of the inputs, a fault-tolerant
task layer (timeouts, deterministic retries, worker-crash recovery,
poison-task quarantine — :mod:`repro.runtime.resilience`), and
crash-safe JSONL checkpoint stores that give every long-running
campaign ``checkpoint=``/``resume=`` (:mod:`repro.runtime.checkpoint`).
"""

from repro.runtime.cache import (
    MISS,
    CacheStats,
    ResultCache,
    content_key,
    stable_token,
)
from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    JsonlCheckpointBase,
    callable_token,
    git_provenance,
    open_checkpoint,
)
from repro.runtime.executor import (
    ParallelExecutor,
    ResultHook,
    SerialFallbackWarning,
    resolve_n_jobs,
)
from repro.runtime.metrics import ChunkRecord, ProgressHook, RunMetrics, print_progress
from repro.runtime.resilience import (
    FAILURE_KINDS,
    ResilienceConfig,
    TaskFailure,
    TaskOutcome,
)
from repro.runtime.seeds import (
    SEED_SCHEMES,
    derived_seed,
    make_seeds,
    sequential_seeds,
    spawned_seeds,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CacheStats",
    "CheckpointStore",
    "ChunkRecord",
    "FAILURE_KINDS",
    "JsonlCheckpointBase",
    "MISS",
    "ParallelExecutor",
    "ProgressHook",
    "ResilienceConfig",
    "ResultCache",
    "ResultHook",
    "RunMetrics",
    "SEED_SCHEMES",
    "SerialFallbackWarning",
    "TaskFailure",
    "TaskOutcome",
    "callable_token",
    "content_key",
    "derived_seed",
    "git_provenance",
    "make_seeds",
    "open_checkpoint",
    "print_progress",
    "resolve_n_jobs",
    "sequential_seeds",
    "spawned_seeds",
    "stable_token",
]
