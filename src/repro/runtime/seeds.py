"""Deterministic per-task seed streams for parallel execution.

Two schemes cover the repo's needs:

* ``sequential_seeds`` — the paper's legacy scheme (``base_seed + i``).
  It is what the serial Monte Carlo engine has always used, so keeping it
  as the default makes the parallel path *bitwise identical* to the
  serial reference and lets individual failing dies be replayed by their
  integer seed.
* ``spawned_seeds`` — collision-resistant streams derived through
  :class:`numpy.random.SeedSequence.spawn`.  Unlike ``base_seed + i``,
  children of different base seeds can never collide with each other
  (adjacent base seeds share almost all of their sequential streams),
  which matters when many design points run side by side.

Both schemes depend only on ``(base_seed, task_index)`` — never on the
worker that happens to execute the task — so any ``n_jobs``, any chunking
and any completion order produce the same per-task randomness.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigurationError

#: Seed schemes accepted by the Monte Carlo engine.
SEED_SCHEMES = ("sequential", "spawn")


def sequential_seeds(base_seed: int, n: int) -> list[int]:
    """The legacy ``base_seed + i`` stream (paper-parity default)."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    return [base_seed + i for i in range(n)]


def spawned_seeds(base_seed: int, n: int) -> list[int]:
    """``n`` collision-resistant integer seeds via ``SeedSequence.spawn``.

    Each child sequence is reduced to one 64-bit word so the result can
    be stored in :class:`~repro.mc.engine.McRun.seed` and replayed with
    ``np.random.default_rng(seed)`` exactly like a legacy seed.
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(child.generate_state(2, np.uint64)[0]) for child in children]


def derived_seed(base_seed: int, token: str) -> int:
    """One 64-bit seed derived from ``(base_seed, token)``.

    Content-addressed rather than positional: the same token always maps
    to the same seed under a given base seed, no matter when (or in which
    order) it is requested.  This is what lets a resumed design-space
    search replay stored evaluations bit-for-bit — a candidate's
    randomness depends only on *what* it is, not on where in the search
    it was first proposed.
    """
    digest = hashlib.sha256(token.encode()).digest()
    words = [int.from_bytes(digest[i : i + 4], "big") for i in range(0, 16, 4)]
    ss = np.random.SeedSequence([base_seed & 0xFFFFFFFF, *words])
    return int(ss.generate_state(2, np.uint64)[0])


def make_seeds(base_seed: int, n: int, scheme: str = "sequential") -> list[int]:
    """Per-task integer seeds under the named scheme."""
    if scheme == "sequential":
        return sequential_seeds(base_seed, n)
    if scheme == "spawn":
        return spawned_seeds(base_seed, n)
    raise ConfigurationError(
        f"unknown seed scheme {scheme!r}; expected one of {SEED_SCHEMES}"
    )


__all__ = [
    "SEED_SCHEMES",
    "derived_seed",
    "make_seeds",
    "sequential_seeds",
    "spawned_seeds",
]
