"""The parallel task executor behind Monte Carlo runs and sweeps.

:class:`ParallelExecutor` fans an order-preserving ``map`` over worker
processes.  The contract that everything else in the repo leans on:

* **Determinism** — results depend only on ``(fn, items)``, never on
  ``n_jobs``, chunking, completion order, retries or crash/respawn
  boundaries.  Tasks carry their own seeds (see
  :mod:`repro.runtime.seeds`); the executor merely schedules them.
* **Serial reference** — ``n_jobs=1`` runs the exact in-process loop
  ``[fn(x) for x in items]``, byte for byte the pre-runtime behavior.
* **Graceful degradation** — if the function or items cannot cross a
  process boundary (closures, lambdas, local classes), the executor
  falls back to the serial path instead of crashing mid-experiment.  The
  degradation is *loud*: a :class:`SerialFallbackWarning` is emitted,
  the metrics carry :attr:`RunMetrics.fallback_reason`, and the executor
  counts every occurrence in :attr:`ParallelExecutor.serial_fallbacks`,
  so a large sweep cannot quietly lose its parallelism.
* **Fault tolerance (opt-in)** — with a
  :class:`~repro.runtime.ResilienceConfig` attached, tasks run under
  per-task soft timeouts and bounded deterministic retries inside the
  workers, a parent-side watchdog kills and respawns the pool when a
  chunk hangs past its hard deadline, ``BrokenProcessPool`` (a worker
  killed by the OS) respawns the pool and re-enqueues only the in-flight
  work, and a task that exhausts its budget yields a structured
  :class:`~repro.runtime.TaskFailure` in its result slot instead of
  aborting the campaign (``strict=True`` restores abort semantics).
  See docs/RESILIENCE.md.

Chunking amortizes pickling: items are split into ``chunk_size`` blocks
(auto-sized to ~4 chunks per worker) and each block round-trips to a
worker as one task.  An optional ``on_result`` callback receives each
completed chunk's ``(global indices, results)`` as it lands — the hook
the crash-safe checkpoint stores (:mod:`repro.runtime.checkpoint`) use
to persist progress incrementally.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from collections import deque
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    ConfigurationError,
    ExecutionError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.runtime.metrics import ProgressHook, RunMetrics
from repro.runtime.resilience import (
    ResilienceConfig,
    TaskFailure,
    TaskOutcome,
    run_chunk_resilient,
    run_one_resilient,
)

#: ``on_result`` callback: (global item indices, their results), called
#: once per completed chunk, in completion order.
ResultHook = Callable[[list[int], list[Any]], None]


class SerialFallbackWarning(RuntimeWarning):
    """A parallel map degraded to the serial path (unpicklable work)."""


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count.

    ``None``, ``0`` and negative values mean "all cores"; positive values
    are taken literally.
    """
    if n_jobs is None or n_jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return n_jobs


def _run_chunk(fn: Callable[[Any], Any], chunk: list[Any]) -> list[Any]:
    """Worker-side body: evaluate one chunk, preserving item order."""
    return [fn(item) for item in chunk]


def _is_picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


@dataclass
class _ChunkTask:
    """One unit of in-flight work on the resilient path."""

    indices: tuple[int, ...]  # global item positions
    attempts: dict[int, int]  # per-item attempts already burned


@dataclass
class ParallelExecutor:
    """Order-preserving parallel ``map`` with progress metrics.

    Parameters
    ----------
    n_jobs:
        Worker processes.  ``1`` (default) is the exact serial path;
        ``None``/``0``/negative use every core.
    chunk_size:
        Items per worker task; ``None`` auto-sizes to ~4 chunks/worker.
    progress:
        Optional hook called with the live :class:`RunMetrics` after
        every completed chunk.
    resilience:
        Optional :class:`~repro.runtime.ResilienceConfig` enabling
        timeouts, retries, crash recovery and quarantine.  ``None``
        (default) is the exact legacy behavior: the first worker
        exception (or worker death) propagates.
    """

    n_jobs: int | None = 1
    chunk_size: int | None = None
    progress: ProgressHook | None = None
    resilience: ResilienceConfig | None = None
    #: Metrics of the most recent ``map`` call.
    last_metrics: RunMetrics | None = field(default=None, repr=False)
    #: How many ``map`` calls requested processes but degraded to serial.
    serial_fallbacks: int = 0
    #: Total pool kill+respawn cycles across this executor's lifetime.
    pool_respawns: int = 0

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        on_result: ResultHook | None = None,
    ) -> list[Any]:
        """``[fn(x) for x in items]``, possibly across processes.

        With :attr:`resilience` set and ``strict=False``, slots whose
        task exhausted its retry budget hold a
        :class:`~repro.runtime.TaskFailure` instead of a value.
        """
        items = list(items)
        n_jobs = resolve_n_jobs(self.n_jobs)
        use_processes = n_jobs > 1 and len(items) > 1
        fallback_reason = None
        if use_processes and not (_is_picklable(fn) and _is_picklable(items)):
            # A closure or local object cannot cross the process
            # boundary; degrade to the serial reference path — but say so
            # loudly rather than quietly losing the parallelism.
            use_processes = False
            name = getattr(fn, "__qualname__", None) or repr(fn)
            fallback_reason = (
                f"evaluator {name!r} (or its items) cannot be pickled across"
                f" a process boundary; ran serially despite n_jobs={n_jobs}"
            )
            self.serial_fallbacks += 1
            warnings.warn(fallback_reason, SerialFallbackWarning, stacklevel=2)

        metrics = RunMetrics(
            total_tasks=len(items),
            n_jobs=n_jobs if use_processes else 1,
            backend="process" if use_processes else "serial",
            fallback_reason=fallback_reason,
        )
        self.last_metrics = metrics
        if self.resilience is not None:
            if use_processes:
                results = self._map_processes_resilient(
                    fn, items, metrics, n_jobs, on_result
                )
            else:
                results = self._map_serial_resilient(fn, items, metrics, on_result)
        elif not use_processes:
            results = self._map_serial(fn, items, metrics, on_result)
        else:
            results = self._map_processes(fn, items, metrics, n_jobs, on_result)
        metrics.finish()
        return results

    # --- legacy backends --------------------------------------------------------------

    def _chunks(self, items: list[Any], n_jobs: int) -> list[list[Any]]:
        size = self._chunk_span(len(items), n_jobs)
        return [items[i : i + size] for i in range(0, len(items), size)]

    def _chunk_span(self, n_items: int, n_jobs: int) -> int:
        size = self.chunk_size
        if size is None:
            size = max(1, n_items // (4 * n_jobs) + (n_items % (4 * n_jobs) > 0))
        elif size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {size}")
        return size

    def _map_serial(
        self,
        fn: Callable[[Any], Any],
        items: list[Any],
        metrics: RunMetrics,
        on_result: ResultHook | None,
    ) -> list[Any]:
        results = []
        chunks = self._chunks(items, 1) if items else []
        start = 0
        for chunk in chunks:
            t0 = time.perf_counter()
            block = [fn(item) for item in chunk]
            results.extend(block)
            if on_result is not None:
                on_result(list(range(start, start + len(chunk))), block)
            start += len(chunk)
            metrics.note_chunk(len(chunk), time.perf_counter() - t0)
            if self.progress is not None:
                self.progress(metrics)
        return results

    def _map_processes(
        self,
        fn: Callable[[Any], Any],
        items: list[Any],
        metrics: RunMetrics,
        n_jobs: int,
        on_result: ResultHook | None,
    ) -> list[Any]:
        chunks = self._chunks(items, n_jobs)
        starts: list[int] = []
        offset = 0
        for chunk in chunks:
            starts.append(offset)
            offset += len(chunk)
        results: list[list[Any] | None] = [None] * len(chunks)
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(chunks))) as pool:
            submitted = {}
            for idx, chunk in enumerate(chunks):
                future = pool.submit(_run_chunk, fn, chunk)
                submitted[future] = (idx, len(chunk), time.perf_counter())
            pending = set(submitted)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    idx, n_tasks, t0 = submitted[future]
                    results[idx] = future.result()
                    if on_result is not None:
                        on_result(
                            list(range(starts[idx], starts[idx] + n_tasks)),
                            results[idx],
                        )
                    metrics.note_chunk(n_tasks, time.perf_counter() - t0)
                    if self.progress is not None:
                        self.progress(metrics)
        flat: list[Any] = []
        for block in results:
            assert block is not None
            flat.extend(block)
        return flat

    # --- resilient backends -----------------------------------------------------------

    def _map_serial_resilient(
        self,
        fn: Callable[[Any], Any],
        items: list[Any],
        metrics: RunMetrics,
        on_result: ResultHook | None,
    ) -> list[Any]:
        """In-process resilient path: soft timeouts + retries + quarantine.

        Worker death cannot be survived here (there is no worker), so the
        watchdog/respawn machinery does not apply; everything else —
        including bitwise parity with the process path — does.
        """
        config = self.resilience
        assert config is not None
        results: list[Any] = []
        chunks = self._chunks(items, 1) if items else []
        start = 0
        for chunk in chunks:
            t0 = time.perf_counter()
            outcomes = [
                run_one_resilient(fn, start + j, item, config)
                for j, item in enumerate(chunk)
            ]
            block = [self._settle(out, metrics, config) for out in outcomes]
            results.extend(block)
            if on_result is not None:
                on_result(list(range(start, start + len(chunk))), block)
            start += len(chunk)
            metrics.note_chunk(
                len(chunk),
                time.perf_counter() - t0,
                n_failures=sum(1 for out in outcomes if not out.ok),
            )
            if self.progress is not None:
                self.progress(metrics)
        return results

    def _settle(
        self,
        outcome: TaskOutcome,
        metrics: RunMetrics,
        config: ResilienceConfig,
        prior_attempts: int = 0,
    ) -> Any:
        """Turn one worker outcome into a result-slot value (or raise).

        ``prior_attempts`` were burned by earlier crashes/hangs and were
        already counted as retries at re-enqueue time; only the
        worker-side extras are new here.
        """
        metrics.note_resilience(
            retries=max(0, outcome.attempts - 1 - prior_attempts),
            timeouts=outcome.timeouts,
            quarantined=0 if outcome.ok else 1,
        )
        if outcome.ok:
            return outcome.value
        failure = outcome.failure
        if config.strict:
            raise self._strict_error(failure)
        return failure

    @staticmethod
    def _strict_error(failure: TaskFailure) -> ExecutionError:
        detail = failure.summary()
        if failure.traceback:
            detail += "\n" + failure.traceback
        if failure.kind == "timeout":
            return TaskTimeoutError(detail)
        if failure.kind in ("crash", "hang"):
            return WorkerCrashError(detail)
        return ExecutionError(detail)

    def _map_processes_resilient(
        self,
        fn: Callable[[Any], Any],
        items: list[Any],
        metrics: RunMetrics,
        n_jobs: int,
        on_result: ResultHook | None,
    ) -> list[Any]:
        config = self.resilience
        assert config is not None
        n = len(items)
        results: list[Any] = [None] * n
        filled = [False] * n

        size = self._chunk_span(n, n_jobs)
        queue: deque[_ChunkTask] = deque(
            _ChunkTask(tuple(range(i, min(i + size, n))), {})
            for i in range(0, n, size)
        )
        #: Singleton tasks suspected of crashing/hanging a worker.  They
        #: run *alone* (nothing else in flight) so the next pool break
        #: implicates exactly one task — innocents never burn retry
        #: budget for a neighbor's crash.
        probation: deque[_ChunkTask] = deque()
        max_workers = min(n_jobs, len(queue))
        hard = config.hard_limit()
        pool = ProcessPoolExecutor(max_workers=max_workers)
        # future -> (task, submit time, hard deadline or None)
        inflight: dict[Any, tuple[_ChunkTask, float, float | None]] = {}

        def submit_one(task: _ChunkTask) -> None:
            payload = [
                (i, items[i], task.attempts.get(i, 0)) for i in task.indices
            ]
            future = pool.submit(run_chunk_resilient, fn, payload, config)
            now = time.monotonic()
            deadline = now + hard * len(task.indices) if hard is not None else None
            inflight[future] = (task, now, deadline)

        def submit_ready() -> None:
            # Suspects run strictly alone; normal work is capped at the
            # worker count so a chunk's hard deadline starts ticking
            # roughly when it starts running, not while it sits in the
            # pool's internal queue.
            if probation:
                if not inflight:
                    submit_one(probation.popleft())
                return
            while queue and len(inflight) < max_workers:
                submit_one(queue.popleft())

        def demote(task: _ChunkTask) -> None:
            """Split a task implicated in an *ambiguous* pool break into
            uncharged probation singletons: nobody is convicted until a
            task crashes or hangs while running alone."""
            for i in task.indices:
                if not filled[i]:
                    probation.append(_ChunkTask((i,), {i: task.attempts.get(i, 0)}))

        def requeue_failed(task: _ChunkTask, kind: str) -> None:
            """A task *definitively* died or hung (it was running alone):
            charge the attempt and re-probation it, or quarantine once
            the budget is gone."""
            error_type = "WorkerCrashError" if kind == "crash" else "TaskTimeoutError"
            message = (
                "worker process died while running this task"
                if kind == "crash"
                else "worker hung past the hard (watchdog) deadline"
            )
            for i in task.indices:
                if filled[i]:
                    continue
                attempts = task.attempts.get(i, 0) + 1
                if attempts >= config.max_attempts:
                    failure = TaskFailure(
                        index=i,
                        error_type=error_type,
                        message=message,
                        traceback="",
                        attempts=attempts,
                        kind=kind,
                    )
                    metrics.note_resilience(quarantined=1)
                    if config.strict:
                        raise self._strict_error(failure)
                    results[i] = failure
                    filled[i] = True
                    if on_result is not None:
                        on_result([i], [failure])
                    metrics.note_chunk(1, 0.0, n_failures=1)
                    if self.progress is not None:
                        self.progress(metrics)
                else:
                    metrics.note_resilience(retries=1)
                    probation.append(_ChunkTask((i,), {i: attempts}))

        def respawn_pool() -> None:
            nonlocal pool
            _kill_pool(pool)
            pool = ProcessPoolExecutor(max_workers=max_workers)
            self.pool_respawns += 1
            metrics.note_respawn()

        try:
            submit_ready()
            while inflight or queue or probation:
                if not inflight:
                    submit_ready()
                    continue
                timeout = config.watchdog_poll if hard is not None else None
                done, _ = wait(
                    set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )
                crashed_tasks: list[_ChunkTask] = []
                for future in done:
                    task, t0, _deadline = inflight.pop(future)
                    try:
                        outcomes = future.result()
                    except BrokenProcessPool:
                        crashed_tasks.append(task)
                        continue
                    block = []
                    n_failures = 0
                    indices = []
                    for outcome in outcomes:
                        value = self._settle(
                            outcome,
                            metrics,
                            config,
                            prior_attempts=task.attempts.get(outcome.index, 0),
                        )
                        results[outcome.index] = value
                        filled[outcome.index] = True
                        indices.append(outcome.index)
                        block.append(value)
                        if not outcome.ok:
                            n_failures += 1
                    if on_result is not None:
                        on_result(indices, block)
                    metrics.note_chunk(
                        len(outcomes), time.perf_counter() - t0, n_failures=n_failures
                    )
                    if self.progress is not None:
                        self.progress(metrics)
                if crashed_tasks:
                    # A dead worker breaks every in-flight future, not
                    # just its own, and nothing says which task killed
                    # it.  Only a singleton that was running alone is
                    # convicted outright; everything else goes to
                    # probation to be rerun in isolation.
                    crashed_tasks.extend(task for task, _, _ in inflight.values())
                    inflight.clear()
                    respawn_pool()
                    if len(crashed_tasks) == 1 and len(crashed_tasks[0].indices) == 1:
                        requeue_failed(crashed_tasks[0], kind="crash")
                    else:
                        for task in crashed_tasks:
                            demote(task)
                elif hard is not None:
                    now = time.monotonic()
                    expired = [
                        future
                        for future, (_, _, deadline) in inflight.items()
                        if deadline is not None and now > deadline
                    ]
                    if expired:
                        expired_tasks = [inflight[f][0] for f in expired]
                        survivors = [
                            task
                            for future, (task, _, _) in inflight.items()
                            if future not in expired
                        ]
                        inflight.clear()
                        respawn_pool()
                        for task in expired_tasks:
                            # The deadline identifies the future exactly,
                            # but inside a multi-item chunk the hanging
                            # item is unknown — isolate before charging.
                            if len(task.indices) == 1:
                                requeue_failed(task, kind="hang")
                            else:
                                demote(task)
                        # Innocent bystanders of the pool kill restart
                        # without losing budget.
                        for task in survivors:
                            queue.append(task)
                submit_ready()
        finally:
            _kill_pool(pool)

        assert all(filled)
        return results


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Force a pool down *now*, hung workers included.

    ``shutdown()`` alone waits politely for running tasks; a hung worker
    would stall the watchdog forever.  Killing the worker processes first
    (via the executor's internal process table — there is no public API)
    makes shutdown immediate.
    """
    for proc in list(getattr(pool, "_processes", {}).values() or []):
        try:
            proc.kill()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


__all__ = [
    "ParallelExecutor",
    "ResultHook",
    "SerialFallbackWarning",
    "resolve_n_jobs",
]
