"""The parallel task executor behind Monte Carlo runs and sweeps.

:class:`ParallelExecutor` fans an order-preserving ``map`` over worker
processes.  The contract that everything else in the repo leans on:

* **Determinism** — results depend only on ``(fn, items)``, never on
  ``n_jobs``, chunking or completion order.  Tasks carry their own seeds
  (see :mod:`repro.runtime.seeds`); the executor merely schedules them.
* **Serial reference** — ``n_jobs=1`` runs the exact in-process loop
  ``[fn(x) for x in items]``, byte for byte the pre-runtime behavior.
* **Graceful degradation** — if the function or items cannot cross a
  process boundary (closures, lambdas, local classes), the executor
  falls back to the serial path instead of crashing mid-experiment.  The
  degradation is *loud*: a :class:`SerialFallbackWarning` is emitted,
  the metrics carry :attr:`RunMetrics.fallback_reason`, and the executor
  counts every occurrence in :attr:`ParallelExecutor.serial_fallbacks`,
  so a large sweep cannot quietly lose its parallelism.

Chunking amortizes pickling: items are split into ``chunk_size`` blocks
(auto-sized to ~4 chunks per worker) and each block round-trips to a
worker as one task.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.runtime.metrics import ProgressHook, RunMetrics


class SerialFallbackWarning(RuntimeWarning):
    """A parallel map degraded to the serial path (unpicklable work)."""


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count.

    ``None``, ``0`` and negative values mean "all cores"; positive values
    are taken literally.
    """
    if n_jobs is None or n_jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return n_jobs


def _run_chunk(fn: Callable[[Any], Any], chunk: list[Any]) -> list[Any]:
    """Worker-side body: evaluate one chunk, preserving item order."""
    return [fn(item) for item in chunk]


def _is_picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


@dataclass
class ParallelExecutor:
    """Order-preserving parallel ``map`` with progress metrics.

    Parameters
    ----------
    n_jobs:
        Worker processes.  ``1`` (default) is the exact serial path;
        ``None``/``0``/negative use every core.
    chunk_size:
        Items per worker task; ``None`` auto-sizes to ~4 chunks/worker.
    progress:
        Optional hook called with the live :class:`RunMetrics` after
        every completed chunk.
    """

    n_jobs: int | None = 1
    chunk_size: int | None = None
    progress: ProgressHook | None = None
    #: Metrics of the most recent ``map`` call.
    last_metrics: RunMetrics | None = field(default=None, repr=False)
    #: How many ``map`` calls requested processes but degraded to serial.
    serial_fallbacks: int = 0

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """``[fn(x) for x in items]``, possibly across processes."""
        items = list(items)
        n_jobs = resolve_n_jobs(self.n_jobs)
        use_processes = n_jobs > 1 and len(items) > 1
        fallback_reason = None
        if use_processes and not (_is_picklable(fn) and _is_picklable(items)):
            # A closure or local object cannot cross the process
            # boundary; degrade to the serial reference path — but say so
            # loudly rather than quietly losing the parallelism.
            use_processes = False
            name = getattr(fn, "__qualname__", None) or repr(fn)
            fallback_reason = (
                f"evaluator {name!r} (or its items) cannot be pickled across"
                f" a process boundary; ran serially despite n_jobs={n_jobs}"
            )
            self.serial_fallbacks += 1
            warnings.warn(fallback_reason, SerialFallbackWarning, stacklevel=2)

        metrics = RunMetrics(
            total_tasks=len(items),
            n_jobs=n_jobs if use_processes else 1,
            backend="process" if use_processes else "serial",
            fallback_reason=fallback_reason,
        )
        self.last_metrics = metrics
        if not use_processes:
            results = self._map_serial(fn, items, metrics)
        else:
            results = self._map_processes(fn, items, metrics, n_jobs)
        metrics.finish()
        return results

    # --- backends ---------------------------------------------------------------------

    def _chunks(self, items: list[Any], n_jobs: int) -> list[list[Any]]:
        size = self.chunk_size
        if size is None:
            size = max(1, len(items) // (4 * n_jobs) + (len(items) % (4 * n_jobs) > 0))
        elif size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {size}")
        return [items[i : i + size] for i in range(0, len(items), size)]

    def _map_serial(
        self, fn: Callable[[Any], Any], items: list[Any], metrics: RunMetrics
    ) -> list[Any]:
        results = []
        chunks = self._chunks(items, 1) if items else []
        for chunk in chunks:
            t0 = time.perf_counter()
            results.extend(fn(item) for item in chunk)
            metrics.note_chunk(len(chunk), time.perf_counter() - t0)
            if self.progress is not None:
                self.progress(metrics)
        return results

    def _map_processes(
        self,
        fn: Callable[[Any], Any],
        items: list[Any],
        metrics: RunMetrics,
        n_jobs: int,
    ) -> list[Any]:
        chunks = self._chunks(items, n_jobs)
        results: list[list[Any] | None] = [None] * len(chunks)
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(chunks))) as pool:
            submitted = {}
            for idx, chunk in enumerate(chunks):
                future = pool.submit(_run_chunk, fn, chunk)
                submitted[future] = (idx, len(chunk), time.perf_counter())
            pending = set(submitted)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    idx, n_tasks, t0 = submitted[future]
                    results[idx] = future.result()
                    metrics.note_chunk(n_tasks, time.perf_counter() - t0)
                    if self.progress is not None:
                        self.progress(metrics)
        flat: list[Any] = []
        for block in results:
            assert block is not None
            flat.extend(block)
        return flat


__all__ = ["ParallelExecutor", "SerialFallbackWarning", "resolve_n_jobs"]
