"""Execution metrics and progress hooks for the parallel runtime.

The executor records one :class:`ChunkRecord` per completed chunk and
aggregates them into a :class:`RunMetrics`.  A progress hook — any
callable taking the :class:`RunMetrics` — is invoked after every chunk,
which is what the benchmarks and ``scripts/run_all_experiments.py`` use
to report throughput while long Monte Carlo blocks run.
"""

from __future__ import annotations

import sys
import time
from collections.abc import Callable
from dataclasses import dataclass, field

#: A progress hook receives the live metrics after each completed chunk.
ProgressHook = Callable[["RunMetrics"], None]


@dataclass(frozen=True)
class ChunkRecord:
    """Timing of one completed chunk of tasks."""

    index: int
    n_tasks: int
    elapsed: float
    n_failures: int = 0

    @property
    def throughput(self) -> float:
        """Tasks per second inside this chunk."""
        if self.elapsed <= 0.0:
            return float("inf")
        return self.n_tasks / self.elapsed


@dataclass
class RunMetrics:
    """Aggregate progress of one ``ParallelExecutor.map`` call."""

    total_tasks: int = 0
    completed_tasks: int = 0
    failed_tasks: int = 0
    #: Extra attempts spent re-running failed tasks (resilient path).
    retries: int = 0
    #: Soft (in-worker) timeout expiries, successful-after-retry included.
    timeouts: int = 0
    #: Times the process pool had to be killed and respawned (worker
    #: death or watchdog-detected hang).
    pool_respawns: int = 0
    #: Tasks that exhausted their retry budget and yielded a
    #: :class:`~repro.runtime.TaskFailure` record instead of a value.
    quarantined: int = 0
    n_jobs: int = 1
    backend: str = "serial"
    #: Why a parallel request degraded to the serial path (``None`` when
    #: the requested backend actually ran).
    fallback_reason: str | None = None
    started_at: float = field(default_factory=time.perf_counter)
    wall_time: float = 0.0
    chunks: list[ChunkRecord] = field(default_factory=list)
    cache_hit: bool = False

    def note_chunk(self, n_tasks: int, elapsed: float, n_failures: int = 0) -> ChunkRecord:
        record = ChunkRecord(
            index=len(self.chunks),
            n_tasks=n_tasks,
            elapsed=elapsed,
            n_failures=n_failures,
        )
        self.chunks.append(record)
        self.completed_tasks += n_tasks
        self.failed_tasks += n_failures
        self.wall_time = time.perf_counter() - self.started_at
        return record

    def note_resilience(
        self, retries: int = 0, timeouts: int = 0, quarantined: int = 0
    ) -> None:
        """Accumulate resilient-path counters (see field docs above)."""
        self.retries += retries
        self.timeouts += timeouts
        self.quarantined += quarantined

    def note_respawn(self) -> None:
        self.pool_respawns += 1

    def finish(self) -> None:
        self.wall_time = time.perf_counter() - self.started_at

    @property
    def throughput(self) -> float:
        """Overall tasks per second so far."""
        if self.wall_time <= 0.0:
            return float("inf")
        return self.completed_tasks / self.wall_time

    @property
    def fraction_done(self) -> float:
        if self.total_tasks <= 0:
            return 1.0
        return self.completed_tasks / self.total_tasks

    def summary(self) -> str:
        fallback = (
            f", serial fallback: {self.fallback_reason}"
            if self.fallback_reason
            else ""
        )
        resilience = ""
        if self.retries or self.timeouts or self.pool_respawns or self.quarantined:
            resilience = (
                f" [{self.retries} retries, {self.timeouts} timeouts,"
                f" {self.pool_respawns} respawns, {self.quarantined} quarantined]"
            )
        return (
            f"{self.completed_tasks}/{self.total_tasks} tasks"
            f" ({self.backend}, n_jobs={self.n_jobs})"
            f" in {self.wall_time:.2f}s"
            f" ({self.throughput:.1f} tasks/s, {self.failed_tasks} failed)"
            f"{resilience}{fallback}"
        )


def print_progress(metrics: RunMetrics, stream=None) -> None:
    """A minimal progress hook: one status line per completed chunk."""
    stream = stream or sys.stderr
    print(f"\r[runtime] {metrics.summary()}", end="", file=stream, flush=True)
    if metrics.completed_tasks >= metrics.total_tasks:
        print(file=stream)


__all__ = ["ChunkRecord", "ProgressHook", "RunMetrics", "print_progress"]
