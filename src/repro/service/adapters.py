"""Campaign adapters: existing workloads re-expressed as task rows.

Each adapter turns one campaign *kind* — a JSON-serializable
configuration a client can submit over the wire — into the three
operations the service needs:

* :meth:`CampaignAdapter.expand` — decompose the config into task rows
  ``(task_key, task_index, spec)``.  Keys reuse the same identities the
  single-process checkpoint stores write (die-block indices for Monte
  Carlo, grid-cell indices for sweeps, ``point_key(ber, protocol)`` for
  fault campaigns, ``candidate_key`` for DSE batches), so the service is
  a drop-in multi-process generalization of ``checkpoint=``/``resume=``.
* :meth:`CampaignAdapter.run_task` — execute one task row to a JSON
  payload.  Every payload is a pure function of (config, spec): RNG
  streams are content-addressed exactly as in the in-process drivers,
  which is what makes a campaign completed by 1 worker or 8 crashing
  workers merge to bitwise-identical results.
* :meth:`CampaignAdapter.merge` — reassemble the committed payloads into
  the same result object the in-process driver returns
  (:class:`~repro.mc.engine.McResult`,
  :class:`~repro.analysis.sweep.GridResult`,
  :class:`~repro.fault.campaign.FaultCampaignResult`, ...), bitwise
  equal to a single-process run of the same configuration.  Floats
  survive the JSON round-trip exactly (``repr`` round-trips IEEE
  doubles) — the same guarantee :mod:`repro.runtime.checkpoint` relies
  on.

Because configs must be JSON, evaluators and designs are referenced *by
name* through registries (:data:`DESIGNS`, :data:`GRID_EVALUATORS`,
:data:`repro.dse.objectives.EVALUATORS`) rather than shipped as
pickled callables — a submission is data, never code.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Callable

from repro.analysis.sweep import GridResult, collect_metrics, grid_points
from repro.circuit.srlr import robust_design, straightforward_design
from repro.dse.engine import candidate_key, candidate_seed
from repro.dse.objectives import InfeasibleDesign, make_evaluator
from repro.energy.link_energy import srlr_link_energy
from repro.errors import ConfigurationError, ServiceError
from repro.fault.campaign import (
    FaultCampaignConfig,
    FaultCampaignResult,
    _evaluate_point,
    point_from_payload,
    point_key,
    point_payload,
)
from repro.noc.trace import trace_file_hash
from repro.mc.engine import (
    McResult,
    default_stress_pattern,
    run_from_payload,
    run_payload,
    simulate_die,
)
from repro.runtime.seeds import make_seeds

#: Named link designs submittable by JSON configs.
DESIGNS: dict[str, Callable] = {
    "robust": robust_design,
    "straightforward": straightforward_design,
}


@dataclass(frozen=True)
class TaskSpec:
    """One expanded task row: identity, order, and its JSON spec."""

    key: str
    index: int
    spec: dict


class CampaignAdapter:
    """Interface of one campaign kind (see module docstring)."""

    kind: str = ""

    def canonical_config(self, config: dict) -> dict:
        """Validate ``config`` and return its canonical (default-filled)
        form — the form whose content hash is the campaign identity."""
        raise NotImplementedError

    def expand(self, config: dict) -> list[TaskSpec]:
        raise NotImplementedError

    def run_task(self, config: dict, spec: dict) -> dict:
        raise NotImplementedError

    def merge(self, config: dict, payloads: dict[str, dict]) -> Any:
        raise NotImplementedError

    def describe_result(self, result: Any) -> str:
        """A short human-readable summary for the results CLI."""
        raise NotImplementedError


# --- Monte Carlo ----------------------------------------------------------------------


class MonteCarloAdapter(CampaignAdapter):
    """``run_monte_carlo`` as a campaign: dies in fixed seed blocks.

    Config keys: ``design`` (a :data:`DESIGNS` name), ``design_kwargs``,
    ``n_runs``, ``base_seed``, ``seed_scheme``, ``bit_period``,
    ``local_enabled``, ``pattern`` (explicit bit list; default is the
    paper's stress pattern) and ``block_size`` (dies per task row).
    """

    kind = "monte_carlo"

    def canonical_config(self, config: dict) -> dict:
        config = dict(config)
        design = config.setdefault("design", "robust")
        if design not in DESIGNS:
            raise ConfigurationError(
                f"unknown design {design!r}; choose from {sorted(DESIGNS)}"
            )
        config.setdefault("design_kwargs", {})
        n_runs = int(config.setdefault("n_runs", 1000))
        if n_runs < 1:
            raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
        config["n_runs"] = n_runs
        config.setdefault("base_seed", 2013)
        config.setdefault("seed_scheme", "sequential")
        config.setdefault("bit_period", 1.0 / 4.1e9)
        config.setdefault("local_enabled", True)
        pattern = config.setdefault("pattern", None)
        if pattern is None:
            config["pattern"] = default_stress_pattern()
        config["pattern"] = [int(b) for b in config["pattern"]]
        block = int(config.setdefault("block_size", 16))
        if block < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {block}")
        config["block_size"] = block
        # Fail early on an invalid design, not at first task execution.
        self._design(config)
        return config

    @staticmethod
    def _design(config: dict):
        return DESIGNS[config["design"]](**config["design_kwargs"])

    @staticmethod
    def _seeds(config: dict) -> list[int]:
        return make_seeds(
            config["base_seed"], config["n_runs"], config["seed_scheme"]
        )

    def expand(self, config: dict) -> list[TaskSpec]:
        seeds = self._seeds(config)
        block = config["block_size"]
        tasks = []
        for index, start in enumerate(range(0, len(seeds), block)):
            chunk = seeds[start : start + block]
            tasks.append(
                TaskSpec(
                    key=f"dies/{start}-{start + len(chunk)}",
                    index=index,
                    spec={"start": start, "seeds": chunk},
                )
            )
        return tasks

    def run_task(self, config: dict, spec: dict) -> dict:
        design = self._design(config)
        pattern = tuple(config["pattern"])
        runs = [
            simulate_die(
                int(seed),
                design,
                pattern,
                config["bit_period"],
                config["local_enabled"],
            )
            for seed in spec["seeds"]
        ]
        return {"runs": [run_payload(r) for r in runs]}

    def merge(self, config: dict, payloads: dict[str, dict]) -> McResult:
        runs = []
        for task in self.expand(config):
            payload = payloads.get(task.key)
            if payload is None:
                raise ServiceError(
                    f"campaign incomplete: task {task.key} has no result"
                )
            runs.extend(run_from_payload(p) for p in payload["runs"])
        return McResult(design=self._design(config), runs=runs)

    def describe_result(self, result: McResult) -> str:
        return (
            f"{result.n_runs} dies, {result.n_failures} failing, "
            f"error probability {result.error_probability:.4f}"
        )


# --- parameter-grid sweeps ------------------------------------------------------------


def _poly_objective(point: dict[str, float]) -> dict[str, float]:
    """A cheap analytic grid evaluator (tests, smokes, demos)."""
    values = [point[k] for k in sorted(point)]
    return {
        "sum_sq": float(sum(v * v for v in values)),
        "geom": float(math.prod(1.0 + abs(v) for v in values)),
    }


def _srlr_energy_objective(point: dict[str, float]) -> dict[str, float]:
    """Link energy/rate of a robust SRLR design at a (swing) grid point."""
    design = robust_design(nominal_swing=point["nominal_swing"])
    report = srlr_link_energy(design)
    return {
        "fj_per_bit_mm": float(report.fj_per_bit_per_mm),
        "mw": float(report.power * 1e3),
    }


#: Named grid evaluators submittable by JSON configs.  Values are
#: module-level callables ``point -> metrics`` (picklable, so workers
#: can also fan them through a ParallelExecutor).
GRID_EVALUATORS: dict[str, Callable[[dict], dict]] = {
    "poly": _poly_objective,
    "srlr_energy": _srlr_energy_objective,
}


class SweepGridAdapter(CampaignAdapter):
    """``analysis.sweep_grid`` as a campaign: one task per grid cell.

    Config keys: ``parameters`` (axis name -> values) and ``evaluator``
    (a :data:`GRID_EVALUATORS` name).  The merged result is the same
    :class:`GridResult` ``sweep_grid(parameters, evaluator)`` returns.
    """

    kind = "sweep_grid"

    def canonical_config(self, config: dict) -> dict:
        config = dict(config)
        name = config.get("evaluator")
        if name not in GRID_EVALUATORS:
            raise ConfigurationError(
                f"unknown grid evaluator {name!r}; "
                f"choose from {sorted(GRID_EVALUATORS)}"
            )
        parameters = config.get("parameters")
        if not isinstance(parameters, dict) or not parameters:
            raise ConfigurationError("parameters must be a non-empty mapping")
        config["parameters"] = {
            str(k): [float(v) for v in vs] for k, vs in parameters.items()
        }
        grid_points(config["parameters"])  # validates the axes
        return config

    def expand(self, config: dict) -> list[TaskSpec]:
        points = grid_points(config["parameters"])
        return [
            TaskSpec(key=str(i), index=i, spec={"point": point})
            for i, point in enumerate(points)
        ]

    def run_task(self, config: dict, spec: dict) -> dict:
        evaluate = GRID_EVALUATORS[config["evaluator"]]
        point = {k: float(v) for k, v in spec["point"].items()}
        return {"metrics": evaluate(point)}

    def merge(self, config: dict, payloads: dict[str, dict]) -> GridResult:
        points = grid_points(config["parameters"])
        evaluated = []
        for i, _point in enumerate(points):
            payload = payloads.get(str(i))
            if payload is None:
                raise ServiceError(
                    f"campaign incomplete: grid cell {i} has no result"
                )
            evaluated.append(payload["metrics"])
        return GridResult(
            parameters=tuple(config["parameters"]),
            points=tuple(points),
            metrics=collect_metrics(points, evaluated),
        )

    def describe_result(self, result: GridResult) -> str:
        return (
            f"{len(result.points)} grid cells over "
            f"{', '.join(result.parameters)}; "
            f"metrics: {', '.join(sorted(result.metrics))}"
        )


# --- fault campaigns ------------------------------------------------------------------


class FaultCampaignAdapter(CampaignAdapter):
    """``run_fault_campaign`` as a campaign: one task per (BER, protocol).

    The config is ``asdict(FaultCampaignConfig)``; task keys are the
    exact :func:`repro.fault.campaign.point_key` identities the JSONL
    checkpoint path writes, and payloads use the same codec — the merged
    :class:`FaultCampaignResult` is bitwise equal to the single-process
    driver's.
    """

    kind = "fault"

    def canonical_config(self, config: dict) -> dict:
        cfg = self._config(config)
        canonical = asdict(cfg)
        if cfg.workload == "trace":
            # Campaign identity follows the trace's *content*: an edited
            # trace file under the same path is a different campaign and
            # refuses to attach, exactly like any other config change.
            canonical["trace_hash"] = trace_file_hash(cfg.trace_path)
        return canonical

    @staticmethod
    def _config(config: dict) -> FaultCampaignConfig:
        fields = dict(config)
        fields.pop("trace_hash", None)
        for name in ("bers", "protocols"):
            if name in fields:
                fields[name] = tuple(fields[name])
        return FaultCampaignConfig(**fields)

    def expand(self, config: dict) -> list[TaskSpec]:
        cfg = self._config(config)
        return [
            TaskSpec(
                key=point_key(ber, protocol),
                index=i,
                spec={"ber": ber, "protocol": protocol},
            )
            for i, (_cfg, ber, protocol) in enumerate(cfg.tasks())
        ]

    def run_task(self, config: dict, spec: dict) -> dict:
        cfg = self._config(config)
        point = _evaluate_point((cfg, float(spec["ber"]), str(spec["protocol"])))
        return point_payload(point)

    def merge(self, config: dict, payloads: dict[str, dict]) -> FaultCampaignResult:
        cfg = self._config(config)
        points = []
        for _cfg, ber, protocol in cfg.tasks():
            payload = payloads.get(point_key(ber, protocol))
            if payload is None:
                raise ServiceError(
                    f"campaign incomplete: point ({ber}, {protocol!r}) "
                    "has no result"
                )
            points.append(point_from_payload(payload))
        return FaultCampaignResult(config=cfg, points=tuple(points))

    def describe_result(self, result: FaultCampaignResult) -> str:
        best = {
            ber: result.best_protocol(ber) for ber in sorted(result.config.bers)
        }
        return (
            f"{len(result.points)} points; best protection per BER: "
            + ", ".join(f"{ber:.1e}->{p}" for ber, p in best.items())
        )


# --- DSE candidate batches ------------------------------------------------------------


@dataclass(frozen=True)
class DseBatchRecord:
    """One evaluated candidate of a DSE batch campaign."""

    key: str
    params: dict
    seed: int
    metrics: dict
    reason: str  # "" when feasible, else the InfeasibleDesign message

    @property
    def feasible(self) -> bool:
        return not self.reason


@dataclass(frozen=True)
class DseBatchResult:
    """All candidates of one batch, in submission order."""

    evaluator: str
    records: tuple[DseBatchRecord, ...]

    @property
    def n_feasible(self) -> int:
        return sum(1 for r in self.records if r.feasible)


class DseBatchAdapter(CampaignAdapter):
    """A fixed batch of DSE candidate evaluations as a campaign.

    Config keys: ``evaluator`` (a :data:`repro.dse.objectives.EVALUATORS`
    name), ``evaluator_kwargs``, ``candidates`` (a list of param dicts —
    e.g. one NSGA-II generation) and ``base_seed``.  Task keys and seeds
    are the engine's own ``candidate_key``/``candidate_seed`` content
    identities, so service-evaluated candidates are interchangeable with
    engine-evaluated ones.
    """

    kind = "dse_batch"

    def canonical_config(self, config: dict) -> dict:
        config = dict(config)
        config.setdefault("evaluator_kwargs", {})
        config.setdefault("base_seed", 2013)
        self._evaluator(config)  # fail early on an unknown evaluator
        candidates = config.get("candidates")
        if not isinstance(candidates, list) or not candidates:
            raise ConfigurationError("candidates must be a non-empty list")
        config["candidates"] = [
            {str(k): float(v) for k, v in params.items()} for params in candidates
        ]
        return config

    @staticmethod
    def _evaluator(config: dict):
        return make_evaluator(
            config.get("evaluator", ""), **config["evaluator_kwargs"]
        )

    def expand(self, config: dict) -> list[TaskSpec]:
        evaluator = self._evaluator(config)
        tasks = []
        for i, params in enumerate(config["candidates"]):
            seed = candidate_seed(config["base_seed"], params)
            tasks.append(
                TaskSpec(
                    key=candidate_key(evaluator, params, seed),
                    index=i,
                    spec={"params": params, "seed": seed},
                )
            )
        return tasks

    def run_task(self, config: dict, spec: dict) -> dict:
        evaluator = self._evaluator(config)
        params = {str(k): float(v) for k, v in spec["params"].items()}
        try:
            metrics = evaluator(params, int(spec["seed"]))
            return {"metrics": {k: float(v) for k, v in metrics.items()},
                    "reason": ""}
        except InfeasibleDesign as exc:
            return {"metrics": {}, "reason": str(exc)}

    def merge(self, config: dict, payloads: dict[str, dict]) -> DseBatchResult:
        records = []
        for task in self.expand(config):
            payload = payloads.get(task.key)
            if payload is None:
                raise ServiceError(
                    f"campaign incomplete: candidate {task.index} "
                    f"({task.key[:16]}) has no result"
                )
            records.append(
                DseBatchRecord(
                    key=task.key,
                    params=task.spec["params"],
                    seed=task.spec["seed"],
                    metrics=payload["metrics"],
                    reason=payload["reason"],
                )
            )
        return DseBatchResult(
            evaluator=config["evaluator"], records=tuple(records)
        )

    def describe_result(self, result: DseBatchResult) -> str:
        return (
            f"{len(result.records)} candidates through {result.evaluator!r}, "
            f"{result.n_feasible} feasible"
        )


#: The campaign-kind registry.
ADAPTERS: dict[str, CampaignAdapter] = {
    adapter.kind: adapter
    for adapter in (
        MonteCarloAdapter(),
        SweepGridAdapter(),
        FaultCampaignAdapter(),
        DseBatchAdapter(),
    )
}


def get_adapter(kind: str) -> CampaignAdapter:
    if kind not in ADAPTERS:
        raise ServiceError(
            f"unknown campaign kind {kind!r}; choose from {sorted(ADAPTERS)}"
        )
    return ADAPTERS[kind]


__all__ = [
    "ADAPTERS",
    "CampaignAdapter",
    "DESIGNS",
    "DseBatchAdapter",
    "DseBatchRecord",
    "DseBatchResult",
    "FaultCampaignAdapter",
    "GRID_EVALUATORS",
    "MonteCarloAdapter",
    "SweepGridAdapter",
    "TaskSpec",
    "get_adapter",
]
