"""The campaign database: SQLite-backed task queue with worker leasing.

One database file holds any number of **campaigns** (a Monte Carlo run,
a parameter-grid sweep, a DSE candidate batch, a fault campaign — see
:mod:`repro.service.adapters`), each decomposed into **task rows** at
submission time.  N worker processes — on this machine or any machine
sharing the file — pull open rows, execute them, and write results
back.  This is the multi-user, multi-machine generalization of the
single-process JSONL checkpoint stores
(:class:`repro.runtime.checkpoint.JsonlCheckpointBase`): same content-
hash configuration identity, same exact-float JSON payloads, same
bitwise-deterministic replay semantics.

Identity
--------
A campaign is identified by a user-facing *name* and a content hash of
its canonical configuration (``config_key``, the same
``content_key(namespace, canonical-json)`` construction as
``JsonlCheckpointBase.config_key``).  Resubmitting a byte-identical
configuration under the same name attaches to the existing rows (a pure
no-op once all tasks are done); submitting a *changed* configuration
under an existing name raises :class:`repro.errors.CampaignMismatchError`
instead of silently mixing task rows — exactly the checkpoint refusal
semantics.

Leasing protocol
----------------
Workers never mark rows in-progress optimistically; they **lease** them:

* :meth:`CampaignDB.lease` atomically (``BEGIN IMMEDIATE``) claims up to
  ``n`` rows that are ``open`` *or* ``leased`` with an expired lease,
  setting ``lease_owner``/``lease_expires`` and bumping ``attempts``;
* workers extend their leases with :meth:`heartbeat` while computing —
  a SIGKILLed worker simply stops heartbeating and its rows return to
  the queue when the lease expires, with nothing to clean up;
* :meth:`complete` commits a result only while the caller still owns a
  live lease on the row (or the row expired un-released): the guarded
  ``UPDATE ... WHERE status='leased' AND lease_owner=?`` makes
  double completion impossible — when a slow worker's lease expired and
  the row was re-leased or completed by someone else, its late commit
  is rejected and reported as lost.

Because every task payload is a pure function of (campaign config, task
spec) with content-addressed RNG seeds, a lost race loses no
information: the committed payload is byte-identical to the rejected
one, which is what makes a campaign completed by 1 worker or 8 crashing
workers merge to identical results.

All timestamps are wall-clock (`time.time()`); they sequence leases and
diagnostics only and never influence computed results.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CampaignMismatchError, ServiceError
from repro.runtime.cache import content_key

#: Bumped when the schema changes incompatibly.
SCHEMA_VERSION = 1

#: Namespace of campaign configuration content hashes (the service-side
#: analogue of ``JsonlCheckpointBase.CONFIG_NAMESPACE``).
CONFIG_NAMESPACE = "campaign-service/v1"

#: Task row lifecycle.
TASK_STATUSES = ("open", "leased", "done", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    name       TEXT UNIQUE NOT NULL,
    kind       TEXT NOT NULL,
    config_key TEXT NOT NULL,
    config     TEXT NOT NULL,
    created    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS tasks (
    campaign_id   INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    task_key      TEXT NOT NULL,
    task_index    INTEGER NOT NULL,
    spec          TEXT NOT NULL,
    status        TEXT NOT NULL DEFAULT 'open'
                  CHECK (status IN ('open', 'leased', 'done', 'failed')),
    attempts      INTEGER NOT NULL DEFAULT 0,
    lease_owner   TEXT,
    lease_expires REAL,
    result        TEXT,
    error         TEXT,
    completed_by  TEXT,
    completed_at  REAL,
    PRIMARY KEY (campaign_id, task_key)
);
CREATE INDEX IF NOT EXISTS idx_tasks_claimable
    ON tasks (status, lease_expires);
CREATE TABLE IF NOT EXISTS workers (
    worker_id        TEXT PRIMARY KEY,
    started          REAL NOT NULL,
    last_seen        REAL NOT NULL,
    tasks_done       INTEGER NOT NULL DEFAULT 0,
    tasks_failed     INTEGER NOT NULL DEFAULT 0,
    cache_hits       INTEGER NOT NULL DEFAULT 0,
    cache_misses     INTEGER NOT NULL DEFAULT 0,
    cache_put_errors INTEGER NOT NULL DEFAULT 0
);
"""


def canonical_config_json(config: dict) -> str:
    """The canonical byte form of a configuration (sorted-key JSON)."""
    return json.dumps(config, sort_keys=True)


def campaign_config_key(kind: str, config: dict) -> str:
    """Content-hash identity of a campaign (kind + canonical config)."""
    return content_key(CONFIG_NAMESPACE, kind, canonical_config_json(config))


@dataclass(frozen=True)
class SubmitReceipt:
    """What :meth:`CampaignDB.submit` did."""

    campaign_id: int
    name: str
    kind: str
    config_key: str
    created: bool  # False: attached to an existing identical campaign
    n_tasks: int
    n_done: int


@dataclass(frozen=True)
class LeasedTask:
    """One claimed task row, ready to execute."""

    campaign_id: int
    campaign_name: str
    kind: str
    config: dict
    config_key: str
    task_key: str
    task_index: int
    spec: dict
    attempts: int
    lease_expires: float


@dataclass(frozen=True)
class CampaignStatus:
    """Per-campaign row counts for the status report."""

    campaign_id: int
    name: str
    kind: str
    config_key: str
    n_tasks: int
    n_open: int
    n_leased: int
    n_done: int
    n_failed: int

    @property
    def complete(self) -> bool:
        return self.n_done == self.n_tasks


@dataclass(frozen=True)
class WorkerStatus:
    """One worker's heartbeat row (incl. its ResultCache counters)."""

    worker_id: str
    started: float
    last_seen: float
    tasks_done: int
    tasks_failed: int
    cache_hits: int
    cache_misses: int
    cache_put_errors: int


class CampaignDB:
    """One handle on the campaign database (not thread-safe: one handle
    per thread — SQLite's WAL mode handles cross-process concurrency).
    """

    def __init__(self, path: str | Path, timeout: float = 30.0) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # isolation_level=None: autocommit, so BEGIN IMMEDIATE below
        # delimits write transactions explicitly.
        self._conn = sqlite3.connect(
            self.path, timeout=timeout, isolation_level=None
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._init_schema()

    def _init_schema(self) -> None:
        # executescript manages its own transaction boundaries, so it
        # runs outside _write(); the DDL is idempotent (IF NOT EXISTS).
        self._conn.executescript(_SCHEMA)
        with self._write():
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value)"
                " VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
        if int(row["value"]) != SCHEMA_VERSION:
            raise ServiceError(
                f"{self.path}: schema version {row['value']} != "
                f"{SCHEMA_VERSION}; migrate or use a fresh database"
            )

    def _write(self):
        """An immediate write transaction (serializes against other writers)."""
        return _WriteTransaction(self._conn)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --- submission -------------------------------------------------------------------

    def submit(
        self,
        name: str,
        kind: str,
        config: dict,
        tasks: list[tuple[str, int, dict]],
        now: float | None = None,
    ) -> SubmitReceipt:
        """Create a campaign (or attach to an identical existing one).

        ``tasks`` is the adapter's expansion: ``(task_key, task_index,
        spec)`` triples.  Attaching inserts any *missing* task rows
        (normally none) and never touches existing rows — completed work
        is never recomputed.  A changed config under an existing name
        raises :class:`CampaignMismatchError`.
        """
        now = time.time() if now is None else now
        config_key = campaign_config_key(kind, config)
        with self._write():
            row = self._conn.execute(
                "SELECT id, kind, config_key FROM campaigns WHERE name=?",
                (name,),
            ).fetchone()
            if row is not None:
                if row["config_key"] != config_key or row["kind"] != kind:
                    raise CampaignMismatchError(
                        f"campaign {name!r} already exists with config "
                        f"{row['config_key'][:16]} (kind {row['kind']}); "
                        f"refusing to attach config {config_key[:16]} "
                        f"(kind {kind}) — submit under a new name"
                    )
                campaign_id = row["id"]
                created = False
            else:
                cursor = self._conn.execute(
                    "INSERT INTO campaigns (name, kind, config_key, config,"
                    " created) VALUES (?, ?, ?, ?, ?)",
                    (name, kind, config_key, canonical_config_json(config), now),
                )
                campaign_id = cursor.lastrowid
                created = True
            self._conn.executemany(
                "INSERT OR IGNORE INTO tasks (campaign_id, task_key,"
                " task_index, spec) VALUES (?, ?, ?, ?)",
                [
                    (campaign_id, key, index, canonical_config_json(spec))
                    for key, index, spec in tasks
                ],
            )
            counts = self._conn.execute(
                "SELECT COUNT(*) AS n,"
                " SUM(CASE WHEN status='done' THEN 1 ELSE 0 END) AS done"
                " FROM tasks WHERE campaign_id=?",
                (campaign_id,),
            ).fetchone()
        return SubmitReceipt(
            campaign_id=campaign_id,
            name=name,
            kind=kind,
            config_key=config_key,
            created=created,
            n_tasks=counts["n"],
            n_done=counts["done"] or 0,
        )

    # --- leasing ----------------------------------------------------------------------

    def lease(
        self,
        worker_id: str,
        n: int = 1,
        lease_seconds: float = 60.0,
        campaign: str | None = None,
        now: float | None = None,
    ) -> list[LeasedTask]:
        """Atomically claim up to ``n`` executable task rows.

        Claimable rows are ``open`` ones plus ``leased`` ones whose lease
        expired (their worker died or stalled past its heartbeat) —
        re-leasing bumps ``attempts``.  Rows are claimed in (campaign,
        task_index) order so early tasks finish first.
        """
        if n < 1:
            raise ServiceError(f"lease size must be >= 1, got {n}")
        now = time.time() if now is None else now
        where = "(t.status='open' OR (t.status='leased' AND t.lease_expires < ?))"
        args: list = [now]
        if campaign is not None:
            where += " AND c.name=?"
            args.append(campaign)
        with self._write():
            rows = self._conn.execute(
                f"""
                SELECT t.rowid AS rid, t.campaign_id, t.task_key,
                       t.task_index, t.spec, t.attempts,
                       c.name, c.kind, c.config, c.config_key
                FROM tasks t JOIN campaigns c ON c.id = t.campaign_id
                WHERE {where}
                ORDER BY t.campaign_id, t.task_index
                LIMIT ?
                """,
                (*args, n),
            ).fetchall()
            expires = now + lease_seconds
            leased: list[LeasedTask] = []
            for row in rows:
                self._conn.execute(
                    "UPDATE tasks SET status='leased', lease_owner=?,"
                    " lease_expires=?, attempts=attempts+1 WHERE rowid=?",
                    (worker_id, expires, row["rid"]),
                )
                leased.append(
                    LeasedTask(
                        campaign_id=row["campaign_id"],
                        campaign_name=row["name"],
                        kind=row["kind"],
                        config=json.loads(row["config"]),
                        config_key=row["config_key"],
                        task_key=row["task_key"],
                        task_index=row["task_index"],
                        spec=json.loads(row["spec"]),
                        attempts=row["attempts"] + 1,
                        lease_expires=expires,
                    )
                )
        return leased

    def heartbeat(
        self,
        worker_id: str,
        held: list[tuple[int, str]],
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> int:
        """Extend the caller's live leases on ``held`` (campaign_id,
        task_key) rows; returns how many were actually extended (a row
        re-leased by someone else after an expiry is *not* — the caller
        should treat it as lost).  Also refreshes the worker's
        ``last_seen``.
        """
        now = time.time() if now is None else now
        extended = 0
        with self._write():
            for campaign_id, task_key in held:
                cursor = self._conn.execute(
                    "UPDATE tasks SET lease_expires=? WHERE campaign_id=?"
                    " AND task_key=? AND status='leased' AND lease_owner=?",
                    (now + lease_seconds, campaign_id, task_key, worker_id),
                )
                extended += cursor.rowcount
            self._conn.execute(
                "INSERT INTO workers (worker_id, started, last_seen)"
                " VALUES (?, ?, ?) ON CONFLICT(worker_id)"
                " DO UPDATE SET last_seen=excluded.last_seen",
                (worker_id, now, now),
            )
        return extended

    def leased_keys(self, worker_id: str) -> list[tuple[int, str]]:
        """The ``(campaign_id, task_key)`` rows this worker currently
        holds leases on (expired or not — ownership lapses only when
        another worker re-leases the row)."""
        rows = self._conn.execute(
            "SELECT campaign_id, task_key FROM tasks"
            " WHERE status='leased' AND lease_owner=?"
            " ORDER BY campaign_id, task_index",
            (worker_id,),
        ).fetchall()
        return [(int(r["campaign_id"]), str(r["task_key"])) for r in rows]

    def release(self, worker_id: str) -> int:
        """Return all of the caller's live leases to the open queue
        (graceful shutdown; a SIGKILLed worker relies on expiry instead).
        """
        with self._write():
            cursor = self._conn.execute(
                "UPDATE tasks SET status='open', lease_owner=NULL,"
                " lease_expires=NULL WHERE status='leased' AND lease_owner=?",
                (worker_id,),
            )
        return cursor.rowcount

    # --- completion -------------------------------------------------------------------

    def complete(
        self,
        worker_id: str,
        campaign_id: int,
        task_key: str,
        payload: dict,
        now: float | None = None,
    ) -> bool:
        """Commit one task result; returns whether the commit won.

        The guarded UPDATE transitions ``leased -> done`` only while the
        caller is still the lease owner, so two workers that raced on an
        expired lease can never both commit: the loser gets ``False``
        (and, results being bitwise-deterministic, lost nothing).
        """
        now = time.time() if now is None else now
        with self._write():
            cursor = self._conn.execute(
                "UPDATE tasks SET status='done', result=?, error=NULL,"
                " lease_owner=NULL, lease_expires=NULL, completed_by=?,"
                " completed_at=? WHERE campaign_id=? AND task_key=?"
                " AND status='leased' AND lease_owner=?",
                (
                    canonical_config_json(payload),
                    worker_id,
                    now,
                    campaign_id,
                    task_key,
                    worker_id,
                ),
            )
        return cursor.rowcount == 1

    def fail(
        self,
        worker_id: str,
        campaign_id: int,
        task_key: str,
        error: str,
        max_attempts: int = 3,
        now: float | None = None,
    ) -> str:
        """Record a task failure: requeue it, or park it as ``failed``.

        Returns ``"requeued"`` (attempts budget left — the row goes back
        to ``open`` for any worker), ``"failed"`` (budget exhausted), or
        ``"lost"`` (the caller no longer owned the lease — someone else
        already claimed or completed the row).
        """
        with self._write():
            row = self._conn.execute(
                "SELECT attempts FROM tasks WHERE campaign_id=? AND"
                " task_key=? AND status='leased' AND lease_owner=?",
                (campaign_id, task_key, worker_id),
            ).fetchone()
            if row is None:
                return "lost"
            if row["attempts"] >= max_attempts:
                self._conn.execute(
                    "UPDATE tasks SET status='failed', error=?,"
                    " lease_owner=NULL, lease_expires=NULL"
                    " WHERE campaign_id=? AND task_key=?",
                    (error, campaign_id, task_key),
                )
                return "failed"
            self._conn.execute(
                "UPDATE tasks SET status='open', error=?, lease_owner=NULL,"
                " lease_expires=NULL WHERE campaign_id=? AND task_key=?",
                (error, campaign_id, task_key),
            )
            return "requeued"

    def retry_failed(self, name: str) -> int:
        """Requeue every ``failed`` row of a campaign; returns the count."""
        campaign_id = self._campaign_id(name)
        with self._write():
            cursor = self._conn.execute(
                "UPDATE tasks SET status='open', error=NULL, attempts=0"
                " WHERE campaign_id=? AND status='failed'",
                (campaign_id,),
            )
        return cursor.rowcount

    # --- worker accounting ------------------------------------------------------------

    def record_worker(
        self,
        worker_id: str,
        tasks_done: int = 0,
        tasks_failed: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
        cache_put_errors: int = 0,
        now: float | None = None,
    ) -> None:
        """Accumulate a worker's progress counters (absolute deltas)."""
        now = time.time() if now is None else now
        with self._write():
            self._conn.execute(
                "INSERT INTO workers (worker_id, started, last_seen,"
                " tasks_done, tasks_failed, cache_hits, cache_misses,"
                " cache_put_errors) VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
                " ON CONFLICT(worker_id) DO UPDATE SET"
                " last_seen=excluded.last_seen,"
                " tasks_done=tasks_done+excluded.tasks_done,"
                " tasks_failed=tasks_failed+excluded.tasks_failed,"
                " cache_hits=cache_hits+excluded.cache_hits,"
                " cache_misses=cache_misses+excluded.cache_misses,"
                " cache_put_errors=cache_put_errors+excluded.cache_put_errors",
                (
                    worker_id,
                    now,
                    now,
                    tasks_done,
                    tasks_failed,
                    cache_hits,
                    cache_misses,
                    cache_put_errors,
                ),
            )

    # --- inspection -------------------------------------------------------------------

    def _campaign_id(self, name: str) -> int:
        row = self._conn.execute(
            "SELECT id FROM campaigns WHERE name=?", (name,)
        ).fetchone()
        if row is None:
            raise ServiceError(f"no campaign named {name!r} in {self.path}")
        return row["id"]

    def campaign(self, name: str) -> tuple[int, str, dict]:
        """``(campaign_id, kind, config)`` of a campaign by name."""
        row = self._conn.execute(
            "SELECT id, kind, config FROM campaigns WHERE name=?", (name,)
        ).fetchone()
        if row is None:
            raise ServiceError(f"no campaign named {name!r} in {self.path}")
        return row["id"], row["kind"], json.loads(row["config"])

    def campaign_names(self) -> list[str]:
        rows = self._conn.execute(
            "SELECT name FROM campaigns ORDER BY id"
        ).fetchall()
        return [r["name"] for r in rows]

    def status(self, name: str | None = None) -> list[CampaignStatus]:
        where, args = ("WHERE c.name=?", (name,)) if name else ("", ())
        rows = self._conn.execute(
            f"""
            SELECT c.id, c.name, c.kind, c.config_key,
                   COUNT(t.task_key) AS n,
                   SUM(CASE WHEN t.status='open'   THEN 1 ELSE 0 END) AS n_open,
                   SUM(CASE WHEN t.status='leased' THEN 1 ELSE 0 END) AS n_leased,
                   SUM(CASE WHEN t.status='done'   THEN 1 ELSE 0 END) AS n_done,
                   SUM(CASE WHEN t.status='failed' THEN 1 ELSE 0 END) AS n_failed
            FROM campaigns c LEFT JOIN tasks t ON t.campaign_id = c.id
            {where} GROUP BY c.id ORDER BY c.id
            """,
            args,
        ).fetchall()
        if name is not None and not rows:
            raise ServiceError(f"no campaign named {name!r} in {self.path}")
        return [
            CampaignStatus(
                campaign_id=r["id"],
                name=r["name"],
                kind=r["kind"],
                config_key=r["config_key"],
                n_tasks=r["n"],
                n_open=r["n_open"] or 0,
                n_leased=r["n_leased"] or 0,
                n_done=r["n_done"] or 0,
                n_failed=r["n_failed"] or 0,
            )
            for r in rows
        ]

    def workers(self) -> list[WorkerStatus]:
        rows = self._conn.execute(
            "SELECT * FROM workers ORDER BY worker_id"
        ).fetchall()
        return [
            WorkerStatus(
                worker_id=r["worker_id"],
                started=r["started"],
                last_seen=r["last_seen"],
                tasks_done=r["tasks_done"],
                tasks_failed=r["tasks_failed"],
                cache_hits=r["cache_hits"],
                cache_misses=r["cache_misses"],
                cache_put_errors=r["cache_put_errors"],
            )
            for r in rows
        ]

    def payloads(self, name: str) -> dict[str, dict]:
        """All committed result payloads of a campaign, keyed by task key."""
        campaign_id = self._campaign_id(name)
        rows = self._conn.execute(
            "SELECT task_key, result FROM tasks WHERE campaign_id=?"
            " AND status='done' ORDER BY task_index",
            (campaign_id,),
        ).fetchall()
        return {r["task_key"]: json.loads(r["result"]) for r in rows}

    def incomplete_count(self, campaign: str | None = None) -> int:
        """Rows still runnable or running (``open``/``leased``), i.e. not
        yet settled as ``done`` or ``failed``."""
        if campaign is None:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM tasks"
                " WHERE status IN ('open', 'leased')"
            ).fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM tasks t"
                " JOIN campaigns c ON c.id = t.campaign_id"
                " WHERE t.status IN ('open', 'leased') AND c.name=?",
                (campaign,),
            ).fetchone()
        return row["n"]

    def task_errors(self, name: str) -> list[tuple[str, str]]:
        """``(task_key, error)`` of every ``failed`` row of a campaign."""
        campaign_id = self._campaign_id(name)
        rows = self._conn.execute(
            "SELECT task_key, error FROM tasks WHERE campaign_id=?"
            " AND status='failed' ORDER BY task_index",
            (campaign_id,),
        ).fetchall()
        return [(r["task_key"], r["error"] or "") for r in rows]


class _WriteTransaction:
    """``BEGIN IMMEDIATE`` .. ``COMMIT``/``ROLLBACK`` as a context manager."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def __enter__(self) -> sqlite3.Connection:
        self._conn.execute("BEGIN IMMEDIATE")
        return self._conn

    def __exit__(self, exc_type, *exc_info) -> None:
        if exc_type is None:
            self._conn.execute("COMMIT")
        else:
            self._conn.execute("ROLLBACK")


def default_worker_id() -> str:
    """``host:pid`` — unique per live worker process."""
    return f"{os.uname().nodename}:{os.getpid()}"


__all__ = [
    "CONFIG_NAMESPACE",
    "CampaignDB",
    "CampaignStatus",
    "LeasedTask",
    "SCHEMA_VERSION",
    "SubmitReceipt",
    "TASK_STATUSES",
    "WorkerStatus",
    "campaign_config_key",
    "canonical_config_json",
    "default_worker_id",
]
