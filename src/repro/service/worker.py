"""The campaign worker: lease, heartbeat, execute, commit, repeat.

``scripts/run_worker.py`` runs one of these per process; any number of
them — across machines sharing the database file — drain the same
queue.  The loop:

1. :meth:`CampaignDB.lease` claims a task row (open, or expired-lease);
2. a daemon heartbeat thread extends the lease every
   ``lease_seconds / 3`` while the task computes, so long tasks never
   expire under a live worker — and a SIGKILLed worker's rows return to
   the queue one lease period later with no cleanup;
3. the task executes through :class:`repro.runtime.ParallelExecutor`
   with a :class:`repro.runtime.ResilienceConfig` — the same soft
   timeouts, deterministic retries and quarantine semantics every
   in-process campaign uses;
4. :meth:`CampaignDB.complete` commits the payload under the lease-owner
   guard (a lost race after an expiry is counted, not an error — the
   winner's payload is byte-identical), or :meth:`CampaignDB.fail`
   requeues/parks a task that exhausted its budget.

An optional shared :class:`repro.runtime.ResultCache` short-circuits
tasks whose ``(kind, campaign config hash, task key)`` content identity
was already computed — by this worker, a previous campaign, or another
process entirely.  Cache counters (including ``put_errors``) are
accumulated into the database's ``workers`` table so ``service.py
status`` can surface them fleet-wide.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.runtime import (
    MISS,
    ParallelExecutor,
    ResilienceConfig,
    ResultCache,
    TaskFailure,
    content_key,
)
from repro.service.adapters import get_adapter
from repro.service.db import CampaignDB, LeasedTask, default_worker_id


def execute_task(item: tuple[str, dict, dict]) -> dict:
    """Run one ``(kind, config, spec)`` task row (module-level: picklable,
    so the executor can ship it to worker sub-processes if asked to)."""
    kind, config, spec = item
    return get_adapter(kind).run_task(config, spec)


def task_cache_key(task: LeasedTask) -> str:
    """Content identity of one task's payload in a shared ResultCache."""
    return content_key(
        "service-task/v1", task.kind, task.config_key, task.task_key
    )


@dataclass
class WorkerReport:
    """What one :func:`run_worker` invocation did."""

    worker_id: str
    tasks_done: int = 0
    tasks_failed: int = 0
    lost_races: int = 0
    cache_hits: int = 0
    failures: list[str] = field(default_factory=list)


class _Heartbeat:
    """Daemon thread extending the worker's live leases (own DB handle —
    SQLite connections are not shared across threads)."""

    def __init__(self, db_path, worker_id: str, lease_seconds: float) -> None:
        self._db_path = db_path
        self._worker_id = worker_id
        self._lease_seconds = lease_seconds
        self._interval = max(0.1, lease_seconds / 3.0)
        self._lock = threading.Lock()
        self._held: set[tuple[int, str]] = set()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def hold(self, campaign_id: int, task_key: str) -> None:
        with self._lock:
            self._held.add((campaign_id, task_key))

    def drop(self, campaign_id: int, task_key: str) -> None:
        with self._lock:
            self._held.discard((campaign_id, task_key))

    def _run(self) -> None:
        db = CampaignDB(self._db_path)
        try:
            while not self._stop.wait(self._interval):
                with self._lock:
                    held = list(self._held)
                db.heartbeat(self._worker_id, held, self._lease_seconds)
        finally:
            db.close()


def run_worker(
    db_path,
    worker_id: str | None = None,
    lease_seconds: float = 60.0,
    poll_seconds: float = 0.5,
    campaign: str | None = None,
    max_tasks: int | None = None,
    drain: bool = False,
    max_attempts: int = 3,
    resilience: ResilienceConfig | None = None,
    cache: ResultCache | None = None,
    n_jobs: int | None = 1,
) -> WorkerReport:
    """Pull and execute tasks until stopped (see module docstring).

    ``drain=True`` exits once every task row (of ``campaign``, or of the
    whole database) is settled — it keeps polling while rows are leased
    elsewhere, so a drain-mode worker outlives a crashed peer and picks
    up its expired leases.  ``max_tasks`` bounds the number of leases
    this call executes (testing / fair-share).  ``resilience`` defaults
    to the stock :class:`ResilienceConfig` (2 deterministic in-process
    retries, no timeout); DB-level ``attempts`` (``max_attempts``) guard
    the queue on top of that.
    """
    worker_id = worker_id or default_worker_id()
    resilience = resilience or ResilienceConfig()
    executor = ParallelExecutor(n_jobs=n_jobs, resilience=resilience)
    report = WorkerReport(worker_id=worker_id)
    db = CampaignDB(db_path)
    heartbeat = _Heartbeat(db_path, worker_id, lease_seconds)
    heartbeat.start()
    db.record_worker(worker_id)  # announce before the first lease
    try:
        while max_tasks is None or report.tasks_done + report.tasks_failed < max_tasks:
            leased = db.lease(
                worker_id, n=1, lease_seconds=lease_seconds, campaign=campaign
            )
            if not leased:
                if drain and db.incomplete_count(campaign) == 0:
                    break
                # Nothing claimable right now: new campaigns may arrive,
                # or a dead peer's leases may expire — keep polling.
                time.sleep(poll_seconds)
                continue
            task = leased[0]
            heartbeat.hold(task.campaign_id, task.task_key)
            try:
                _execute_one(task, db, executor, cache, report, max_attempts)
            finally:
                heartbeat.drop(task.campaign_id, task.task_key)
    finally:
        heartbeat.stop()
        db.release(worker_id)
        db.record_worker(
            worker_id,
            cache_hits=cache.hits if cache else 0,
            cache_misses=cache.misses if cache else 0,
            cache_put_errors=cache.put_errors if cache else 0,
        )
        db.close()
    return report


def _execute_one(
    task: LeasedTask,
    db: CampaignDB,
    executor: ParallelExecutor,
    cache: ResultCache | None,
    report: WorkerReport,
    max_attempts: int,
) -> None:
    payload = MISS
    if cache is not None:
        payload = cache.get(task_cache_key(task))
        if payload is not MISS:
            report.cache_hits += 1
    if payload is MISS:
        value = executor.map(
            execute_task, [(task.kind, task.config, task.spec)]
        )[0]
        if isinstance(value, TaskFailure):
            outcome = db.fail(
                report.worker_id,
                task.campaign_id,
                task.task_key,
                value.summary(),
                max_attempts=max_attempts,
            )
            if outcome == "lost":
                report.lost_races += 1
            else:
                report.tasks_failed += 1
                report.failures.append(f"{task.task_key}: {value.summary()}")
                db.record_worker(report.worker_id, tasks_failed=1)
            return
        payload = value
        if cache is not None:
            cache.put(task_cache_key(task), payload)
    if db.complete(
        report.worker_id, task.campaign_id, task.task_key, payload
    ):
        report.tasks_done += 1
        db.record_worker(report.worker_id, tasks_done=1)
    else:
        # Our lease expired and another worker claimed or completed the
        # row; its committed payload is byte-identical to ours, so the
        # race loses nothing (see db.py module docstring).
        report.lost_races += 1


__all__ = ["WorkerReport", "execute_task", "run_worker", "task_cache_key"]
