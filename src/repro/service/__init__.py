"""The campaign service: a queue-backed experiment database.

The multi-user, multi-machine generalization of the single-process
execution stack: campaigns (Monte Carlo runs, parameter-grid sweeps,
fault campaigns, DSE candidate batches) land as task rows in a shared
SQLite database (WAL mode), N independent worker processes lease and
execute them under a heartbeat + lease-expiry protocol, and a thin CLI
submits work and merges results.

Layers:

* :mod:`repro.service.db` — the store: campaigns with content-hash
  configuration identity (resubmitting an identical config is a no-op;
  a changed config refuses to attach), atomically leased task rows,
  worker heartbeat accounting;
* :mod:`repro.service.adapters` — existing workloads re-expressed as
  task generators + mergers whose output is bitwise identical to the
  in-process drivers (``run_monte_carlo``, ``sweep_grid``,
  ``run_fault_campaign``, DSE candidate evaluation);
* :mod:`repro.service.worker` — the lease/execute/commit loop, run
  through the :class:`repro.runtime.ParallelExecutor` resilience layer,
  with an optional shared :class:`repro.runtime.ResultCache`;
* :mod:`repro.service.cli` — ``submit | status | results |
  retry-failed`` (``scripts/service.py``; workers start via
  ``scripts/run_worker.py``).

Determinism contract: every task payload is a pure function of
(campaign config, task spec) with content-addressed RNG seeds, and
completion is guarded so racing workers can never both commit — a
campaign executed by 1 worker or 8 crashing workers merges to results
bitwise identical to the single-process path.  See docs/SERVICE.md.
"""

from repro.service.adapters import (
    ADAPTERS,
    CampaignAdapter,
    DESIGNS,
    DseBatchAdapter,
    DseBatchRecord,
    DseBatchResult,
    FaultCampaignAdapter,
    GRID_EVALUATORS,
    MonteCarloAdapter,
    SweepGridAdapter,
    TaskSpec,
    get_adapter,
)
from repro.service.db import (
    CONFIG_NAMESPACE,
    CampaignDB,
    CampaignStatus,
    LeasedTask,
    SCHEMA_VERSION,
    SubmitReceipt,
    TASK_STATUSES,
    WorkerStatus,
    campaign_config_key,
    canonical_config_json,
    default_worker_id,
)
from repro.service.worker import (
    WorkerReport,
    execute_task,
    run_worker,
    task_cache_key,
)

__all__ = [
    "ADAPTERS",
    "CONFIG_NAMESPACE",
    "CampaignAdapter",
    "CampaignDB",
    "CampaignStatus",
    "DESIGNS",
    "DseBatchAdapter",
    "DseBatchRecord",
    "DseBatchResult",
    "FaultCampaignAdapter",
    "GRID_EVALUATORS",
    "LeasedTask",
    "MonteCarloAdapter",
    "SCHEMA_VERSION",
    "SubmitReceipt",
    "SweepGridAdapter",
    "TASK_STATUSES",
    "TaskSpec",
    "WorkerReport",
    "WorkerStatus",
    "campaign_config_key",
    "canonical_config_json",
    "default_worker_id",
    "execute_task",
    "get_adapter",
    "run_worker",
    "task_cache_key",
]
