"""The campaign-service command line: submit / status / results / retry.

``scripts/service.py`` is the thin entry point; the logic lives here so
tests can drive it in-process.  Subcommands:

* ``submit`` — validate a JSON config through its adapter, expand it to
  task rows, and create (or idempotently attach to) a campaign;
* ``status`` — per-campaign row counts, worker heartbeats (including
  each worker's ResultCache counters — ``put_errors`` surfaces failed
  cache writes fleet-wide), and optionally the on-disk stats of a
  shared cache directory;
* ``results`` — merge committed payloads into the in-process result
  object and print the adapter's summary (optionally the raw payloads
  as JSON);
* ``retry-failed`` — requeue every parked ``failed`` row of a campaign.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.errors import ReproError
from repro.noc.topology import TOPOLOGY_KINDS
from repro.runtime import ResultCache
from repro.service.adapters import ADAPTERS, get_adapter
from repro.service.db import CampaignDB
from repro.workload import COLLECTIVES, PAYLOAD_MODES, WORKLOADS


def _load_config(arg: str) -> dict:
    """``--config`` accepts a JSON file path, ``-`` (stdin), or an
    inline JSON object string."""
    if arg == "-":
        return json.load(sys.stdin)
    if arg.lstrip().startswith("{"):
        return json.loads(arg)
    return json.loads(Path(arg).read_text())


#: submit-time topology overlay flags -> FaultCampaignConfig field names.
_TOPOLOGY_FLAGS = {
    "topology": "topology",
    "concentration": "concentration",
    "chiplets_x": "chiplets_x",
    "chiplets_y": "chiplets_y",
    "noi_scale": "noi_scale",
}

#: submit-time workload overlay flags -> FaultCampaignConfig field names.
_WORKLOAD_FLAGS = {
    "workload": "workload",
    "trace_path": "trace_path",
    "burst_on": "burst_on",
    "burst_off": "burst_off",
    "collective_fraction": "collective_fraction",
    "collective": "collective",
    "payload_mode": "payload_mode",
}


def _overlay_fault_flags(args: argparse.Namespace, config: dict) -> dict:
    """Fold topology/workload overlay flags into a fault campaign config.

    The flags are sugar over editing the JSON; they only make sense for
    campaign kinds whose config is a ``FaultCampaignConfig``, so any
    other kind rejects them loudly rather than silently dropping them.
    """
    flags = {**_TOPOLOGY_FLAGS, **_WORKLOAD_FLAGS}
    overlay = {
        field: getattr(args, flag)
        for flag, field in flags.items()
        if getattr(args, flag, None) is not None
    }
    if getattr(args, "no_coupling", False):
        overlay["coupling"] = False
    if not overlay:
        return config
    if args.kind != "fault":
        names = ", ".join(
            "--" + flag.replace("_", "-")
            for flag in (*flags, "no_coupling")
            if (
                getattr(args, flag, False)
                if flag == "no_coupling"
                else getattr(args, flag, None) is not None
            )
        )
        raise ReproError(
            f"{names}: topology/workload flags apply only to --kind fault "
            f"campaigns, not {args.kind!r}"
        )
    return {**config, **overlay}


def cmd_submit(args: argparse.Namespace) -> int:
    adapter = get_adapter(args.kind)
    config = adapter.canonical_config(
        _overlay_fault_flags(args, _load_config(args.config))
    )
    tasks = [(t.key, t.index, t.spec) for t in adapter.expand(config)]
    with CampaignDB(args.db) as db:
        receipt = db.submit(args.name, args.kind, config, tasks)
    verb = "created" if receipt.created else "attached to"
    print(
        f"{verb} campaign {receipt.name!r} [{receipt.kind}] "
        f"config {receipt.config_key[:16]}: "
        f"{receipt.n_tasks} tasks, {receipt.n_done} already done"
    )
    return 0


def _age(now: float, then: float) -> str:
    return f"{max(0.0, now - then):.0f}s ago"


def cmd_status(args: argparse.Namespace) -> int:
    with CampaignDB(args.db) as db:
        campaigns = db.status(args.name)
        workers = db.workers()
    print(f"{'campaign':<24} {'kind':<12} {'config':<10} "
          f"{'tasks':>5} {'open':>5} {'lease':>5} {'done':>5} {'fail':>5}")
    for c in campaigns:
        print(f"{c.name:<24} {c.kind:<12} {c.config_key[:8]:<10} "
              f"{c.n_tasks:>5} {c.n_open:>5} {c.n_leased:>5} "
              f"{c.n_done:>5} {c.n_failed:>5}"
              + ("  COMPLETE" if c.complete else ""))
    if workers:
        now = time.time()
        print()
        print(f"{'worker':<28} {'last seen':<12} {'done':>5} {'fail':>5} "
              f"{'c-hit':>6} {'c-miss':>6} {'c-puterr':>8}")
        for w in workers:
            print(f"{w.worker_id:<28} {_age(now, w.last_seen):<12} "
                  f"{w.tasks_done:>5} {w.tasks_failed:>5} "
                  f"{w.cache_hits:>6} {w.cache_misses:>6} "
                  f"{w.cache_put_errors:>8}")
        put_errors = sum(w.cache_put_errors for w in workers)
        if put_errors:
            print(f"warning: {put_errors} failed cache write(s) across the "
                  "fleet (results were still committed; the cache entries "
                  "were lost)")
    if args.cache:
        print()
        print(ResultCache(args.cache).stats().describe())
    return 0


def cmd_results(args: argparse.Namespace) -> int:
    with CampaignDB(args.db) as db:
        _id, kind, config = db.campaign(args.name)
        status = db.status(args.name)[0]
        payloads = db.payloads(args.name)
        errors = db.task_errors(args.name)
    if args.json:
        Path(args.json).write_text(
            json.dumps(payloads, sort_keys=True, indent=1)
        )
        print(f"wrote {len(payloads)} payload(s) to {args.json}")
    if not status.complete:
        print(
            f"campaign {args.name!r} is incomplete: {status.n_done}/"
            f"{status.n_tasks} done ({status.n_open} open, "
            f"{status.n_leased} leased, {status.n_failed} failed)",
            file=sys.stderr,
        )
        for key, error in errors:
            print(f"  failed {key}: {error}", file=sys.stderr)
        return 1
    adapter = get_adapter(kind)
    result = adapter.merge(config, payloads)
    print(f"campaign {args.name!r} [{kind}]: {adapter.describe_result(result)}")
    return 0


def cmd_retry_failed(args: argparse.Namespace) -> int:
    with CampaignDB(args.db) as db:
        n = db.retry_failed(args.name)
    print(f"requeued {n} failed task(s) of campaign {args.name!r}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="service.py",
        description="Submit campaigns to, and inspect, the shared "
        "campaign database (docs/SERVICE.md).",
    )
    parser.add_argument("--db", required=True, metavar="PATH",
                        help="campaign database file (created on first use)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("submit", help="create or attach to a campaign")
    p.add_argument("--name", required=True, help="campaign name (unique)")
    p.add_argument("--kind", required=True, choices=sorted(ADAPTERS),
                   help="campaign kind")
    p.add_argument("--config", required=True, metavar="JSON",
                   help="config: a JSON file path, '-' for stdin, or an "
                   "inline JSON object")
    topo = p.add_argument_group(
        "topology overlays (fault campaigns only)",
        "override the config's topology fields without editing the JSON",
    )
    topo.add_argument("--topology", default=None,
                      choices=sorted(TOPOLOGY_KINDS),
                      help="topology family for the fault campaign")
    topo.add_argument("--concentration", type=int, default=None,
                      metavar="C", help="cores per router (cmesh)")
    topo.add_argument("--chiplets-x", type=int, default=None, metavar="N",
                      help="chiplet grid width (chiplet)")
    topo.add_argument("--chiplets-y", type=int, default=None, metavar="N",
                      help="chiplet grid height (chiplet)")
    topo.add_argument("--noi-scale", type=float, default=None, metavar="X",
                      help="NoI link length multiplier (chiplet)")
    work = p.add_argument_group(
        "workload overlays (fault campaigns only)",
        "override the config's workload fields without editing the JSON",
    )
    work.add_argument("--workload", default=None,
                      choices=sorted(WORKLOADS),
                      help="workload family for the fault campaign")
    work.add_argument("--trace-path", default=None, metavar="FILE",
                      help="trace file to replay (workload=trace)")
    work.add_argument("--burst-on", type=float, default=None, metavar="P",
                      help="Markov P(off->on) per cycle (bursty)")
    work.add_argument("--burst-off", type=float, default=None, metavar="P",
                      help="Markov P(on->off) per cycle (bursty)")
    work.add_argument("--collective-fraction", type=float, default=None,
                      metavar="F", help="multicast share (collective)")
    work.add_argument("--collective", default=None,
                      choices=sorted(COLLECTIVES),
                      help="collective destination set (collective)")
    work.add_argument("--payload-mode", default=None,
                      choices=sorted(PAYLOAD_MODES),
                      help="what bits flits carry (data-dependent energy)")
    work.add_argument("--no-coupling", action="store_true",
                      help="drop the crosstalk coupling term from "
                      "data-dependent link pricing")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("status", help="row counts and worker heartbeats")
    p.add_argument("--name", default=None, help="restrict to one campaign")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="also show the on-disk stats of this shared "
                   "ResultCache directory")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser("results", help="merge and summarize a campaign")
    p.add_argument("--name", required=True)
    p.add_argument("--json", default=None, metavar="OUT",
                   help="also dump the raw task payloads to this file")
    p.set_defaults(func=cmd_results)

    p = sub.add_parser("retry-failed", help="requeue parked failed tasks")
    p.add_argument("--name", required=True)
    p.set_defaults(func=cmd_retry_failed)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


__all__ = ["build_parser", "main"]
