"""Bit-error-rate estimation with statistical confidence.

The paper's measurement claim is "BER less than 1e-9" — the standard
statement that an error counter saw zero (or few) errors over enough bits
to bound the rate.  This module provides that machinery: long-run BER
measurement of a link at a noise level, and Clopper-Pearson exact
confidence bounds for zero/low error counts.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError
from repro.circuit.link import SRLRLink
from repro.circuit.prbs import PrbsGenerator


def ber_upper_bound(errors: int, transmitted: int, confidence: float = 0.95) -> float:
    """Clopper-Pearson upper confidence bound on the bit error rate.

    With zero observed errors this reduces to the familiar
    ``-ln(1-confidence)/n`` rule (~3/n at 95%).
    """
    if transmitted <= 0:
        raise ConfigurationError(f"transmitted must be positive, got {transmitted}")
    if not 0 <= errors <= transmitted:
        raise ConfigurationError("errors must lie in [0, transmitted]")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must lie in (0, 1), got {confidence}")
    if errors == transmitted:
        return 1.0
    return float(stats.beta.ppf(confidence, errors + 1, transmitted - errors))


def ber_upper_bound_many(
    errors: np.ndarray | Sequence[int],
    transmitted: np.ndarray | Sequence[int],
    confidence: float = 0.95,
) -> np.ndarray:
    """Vectorized :func:`ber_upper_bound` over arrays of (errors, transmitted).

    One ``scipy.stats.beta.ppf`` call bounds every link of a fault
    campaign at once instead of one Python-level call per link; the
    results match the scalar function exactly (same special case for
    ``errors == transmitted``).
    """
    errors = np.asarray(errors, dtype=np.int64)
    transmitted = np.asarray(transmitted, dtype=np.int64)
    if errors.shape != transmitted.shape:
        raise ConfigurationError(
            f"shape mismatch: errors {errors.shape} vs transmitted "
            f"{transmitted.shape}"
        )
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must lie in (0, 1), got {confidence}")
    if errors.size == 0:
        return np.empty(errors.shape, dtype=np.float64)
    if np.any(transmitted <= 0):
        raise ConfigurationError("transmitted must be positive")
    if np.any(errors < 0) or np.any(errors > transmitted):
        raise ConfigurationError("errors must lie in [0, transmitted]")
    saturated = errors == transmitted
    # Neutral arguments where saturated keep beta.ppf finite; the result
    # there is overwritten with the exact value 1.0.
    a = np.where(saturated, 1, errors + 1).astype(np.float64)
    b = np.where(saturated, 1, transmitted - errors).astype(np.float64)
    bounds = stats.beta.ppf(confidence, a, b)
    return np.where(saturated, 1.0, bounds)


@dataclass(frozen=True)
class BerMeasurement:
    """Outcome of a long PRBS error-count run."""

    transmitted: int
    errors: int
    confidence: float = 0.95

    @property
    def observed_ber(self) -> float:
        return self.errors / self.transmitted if self.transmitted else 0.0

    @property
    def upper_bound(self) -> float:
        return ber_upper_bound(self.errors, self.transmitted, self.confidence)

    def meets(self, target: float) -> bool:
        """True when the measured upper bound is below ``target``."""
        return self.upper_bound < target


def measure_ber(
    link: SRLRLink,
    bit_period: float,
    n_bits: int = 100_000,
    noise_sigma: float = 0.004,
    prbs_order: int = 15,
    chunk: int = 1024,
    seed: int = 45,
    confidence: float = 0.95,
) -> BerMeasurement:
    """Run PRBS traffic through ``link`` and count errors.

    Mirrors the on-chip test setup: a PRBS generator feeds the link and a
    comparator counts mismatches.  ``noise_sigma`` is the per-bit received
    voltage noise (thermal + supply); without it a working behavioral link
    would measure exactly zero errors and BER would be a trivial bound.

    Bits are processed in chunks so each chunk's residual-state transient
    is realistic while memory stays bounded.
    """
    if n_bits < 1:
        raise ConfigurationError(f"n_bits must be >= 1, got {n_bits}")
    if chunk < 1:
        raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
    rng = np.random.default_rng(seed)
    gen = PrbsGenerator(prbs_order)
    remaining = n_bits
    errors = 0
    while remaining > 0:
        n = min(chunk, remaining)
        bits = gen.bits(n)
        outcome = link.transmit(bits, bit_period, noise_sigma=noise_sigma, rng=rng)
        errors += outcome.n_errors
        remaining -= n
    return BerMeasurement(transmitted=n_bits, errors=errors, confidence=confidence)


def ber_vs_rate(
    link: SRLRLink,
    rates: list[float],
    n_bits: int = 20_000,
    noise_sigma: float = 0.004,
    seed: int = 45,
) -> list[tuple[float, BerMeasurement]]:
    """BER waterfall: measure the link across data rates.

    Reproduces the bathtub behind "up to 4.1 Gb/s with BER < 1e-9": below
    the maximum rate errors vanish; above it the repeaters' reset dead time
    and ISI make the BER climb steeply.
    """
    out = []
    for rate in rates:
        if rate <= 0.0:
            raise ConfigurationError(f"rates must be positive, got {rate}")
        out.append(
            (rate, measure_ber(link, 1.0 / rate, n_bits, noise_sigma, seed=seed))
        )
    return out


def q_factor_ber(margin: float, noise_sigma: float) -> float:
    """Analytic Gaussian-noise BER for a voltage ``margin`` (Q-function).

    Complements the Monte Carlo measurement: for a swing margin m and
    noise sigma s, BER = Q(m/s).  Used to extrapolate below what counting
    can resolve (the standard practice for 1e-9-class claims).
    """
    if noise_sigma <= 0.0:
        raise ConfigurationError(
            f"noise_sigma must be positive, got {noise_sigma}"
        )
    q = margin / noise_sigma
    return 0.5 * math.erfc(q / math.sqrt(2.0))


__all__ = [
    "BerMeasurement",
    "ber_upper_bound",
    "ber_upper_bound_many",
    "ber_vs_rate",
    "measure_ber",
    "q_factor_ber",
]
