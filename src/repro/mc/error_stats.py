"""Error-pattern statistics: bursts, spacing, and coding implications.

A BER number alone hides *how* errors arrive.  The model exposes real
structure: noise-induced errors cluster (a corrupted pulse perturbs the
residual baseline its neighbors ride on, so one hit begets another),
while overspeed drops are isolated and near-periodic (each lost pulse is
followed by a successful one once the self-reset clears).  Burst
structure decides whether simple parity/retry protection suffices at the
NoC level or interleaving is needed — the practical question downstream
of the paper's BER < 1e-9 claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.circuit.link import SRLRLink
from repro.circuit.prbs import PrbsGenerator


@dataclass(frozen=True)
class ErrorStats:
    """Structure of the error process observed over one long run."""

    transmitted: int
    errors: int
    n_bursts: int
    max_burst: int
    mean_burst: float
    #: Fraction of errors that are isolated single-bit events.
    isolated_fraction: float

    @property
    def ber(self) -> float:
        return self.errors / self.transmitted if self.transmitted else 0.0

    @property
    def bursty(self) -> bool:
        """True when a meaningful share of errors arrive clustered."""
        return self.isolated_fraction < 0.9 and self.n_bursts > 0


def burst_lengths(error_positions: list[int], gap: int = 1) -> list[int]:
    """Group error bit-positions into bursts separated by > ``gap`` bits."""
    if gap < 1:
        raise ConfigurationError(f"gap must be >= 1, got {gap}")
    if not error_positions:
        return []
    positions = sorted(error_positions)
    bursts = [1]
    for prev, cur in zip(positions, positions[1:]):
        if cur - prev <= gap:
            bursts[-1] += 1
        else:
            bursts.append(1)
    return bursts


def collect_error_stats(
    link: SRLRLink,
    bit_period: float,
    n_bits: int = 50_000,
    noise_sigma: float = 0.01,
    chunk: int = 512,
    seed: int = 77,
    burst_gap: int = 1,
) -> ErrorStats:
    """Transmit long PRBS traffic and characterize the error structure."""
    if n_bits < chunk or chunk < 8:
        raise ConfigurationError("need n_bits >= chunk >= 8")
    rng = np.random.default_rng(seed)
    gen = PrbsGenerator(15)
    positions: list[int] = []
    sent_total = 0
    while sent_total < n_bits:
        bits = gen.bits(chunk)
        outcome = link.transmit(bits, bit_period, noise_sigma=noise_sigma, rng=rng)
        for i, (a, b) in enumerate(zip(outcome.sent, outcome.received)):
            if a != b:
                positions.append(sent_total + i)
        sent_total += chunk
    bursts = burst_lengths(positions, burst_gap)
    isolated = sum(1 for b in bursts if b == 1)
    return ErrorStats(
        transmitted=sent_total,
        errors=len(positions),
        n_bursts=len(bursts),
        max_burst=max(bursts) if bursts else 0,
        mean_burst=float(np.mean(bursts)) if bursts else 0.0,
        isolated_fraction=(isolated / len(bursts)) if bursts else 1.0,
    )


def compare_error_structure(
    link: SRLRLink,
    noise_rate: float = 4.1e9,
    overspeed_rate: float = 6.5e9,
    n_bits: int = 20_000,
    noise_sigma: float = 0.035,
) -> dict[str, ErrorStats]:
    """The two error regimes side by side.

    ``noise``: at the rated speed with exaggerated voltage noise — errors
    cluster through the residual-baseline coupling.  ``overspeed``:
    beyond the reset dead time — drops are isolated, spaced by the
    recovery period.
    """
    noise = collect_error_stats(
        link, 1.0 / noise_rate, n_bits=n_bits, noise_sigma=noise_sigma
    )
    overspeed = collect_error_stats(
        link, 1.0 / overspeed_rate, n_bits=n_bits, noise_sigma=0.004
    )
    return {"noise": noise, "overspeed": overspeed}


__all__ = ["ErrorStats", "burst_lengths", "collect_error_stats", "compare_error_structure"]
