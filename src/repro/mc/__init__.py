"""Monte Carlo variation analysis and BER estimation."""

from repro.mc.ber import (
    BerMeasurement,
    ber_upper_bound,
    ber_upper_bound_many,
    ber_vs_rate,
    measure_ber,
    q_factor_ber,
)
from repro.mc.error_stats import (
    ErrorStats,
    burst_lengths,
    collect_error_stats,
    compare_error_structure,
)
from repro.mc.engine import (
    ImmunityRatio,
    McResult,
    McRun,
    default_stress_pattern,
    immunity_ratio,
    run_monte_carlo,
    simulate_die,
)
from repro.mc.yield_analysis import (
    SwingSweep,
    SwingSweepPoint,
    design_variants,
    sweep_swing,
)

__all__ = [
    "BerMeasurement",
    "ErrorStats",
    "ImmunityRatio",
    "simulate_die",
    "burst_lengths",
    "collect_error_stats",
    "compare_error_structure",
    "McResult",
    "McRun",
    "SwingSweep",
    "SwingSweepPoint",
    "ber_upper_bound",
    "ber_upper_bound_many",
    "ber_vs_rate",
    "default_stress_pattern",
    "design_variants",
    "immunity_ratio",
    "measure_ber",
    "q_factor_ber",
    "run_monte_carlo",
]
