"""Monte Carlo engine over SRLR link designs.

Reproduces the paper's 1000-run Monte Carlo methodology (Fig. 6): each run
draws one die — a global (die-to-die) corner shared by every device plus
independent local mismatch per device — instantiates the link on that die,
transmits a stress pattern, and records whether any bit failed.

The per-die failure *probability* (fraction of dies that cannot carry the
pattern error-free) is the paper's "error probability" axis; "process
variation immunity" is its reciprocal ratio between designs.

Dies are independent, so the engine fans them across worker processes via
:class:`repro.runtime.ParallelExecutor`.  Each die's randomness depends
only on its own integer seed, so any ``n_jobs`` produces results
*identical* to the serial reference (``n_jobs=1``), and an opt-in
:class:`repro.runtime.ResultCache` can skip whole blocks whose inputs
hash to an already-computed entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.circuit.link import SRLRLink
from repro.circuit.prbs import PrbsGenerator, worst_case_patterns
from repro.circuit.srlr import SRLRDesignParams
from repro.runtime import (
    MISS,
    CheckpointStore,
    ParallelExecutor,
    ProgressHook,
    ResilienceConfig,
    ResultCache,
    TaskFailure,
    content_key,
    make_seeds,
    open_checkpoint,
)
from repro.tech.variation import monte_carlo_sample


def default_stress_pattern(n_prbs: int = 127) -> list[int]:
    """The measurement pattern: PRBS7 traffic plus the '11110' stressors."""
    return PrbsGenerator(7).bits(n_prbs) + worst_case_patterns()


@dataclass(frozen=True)
class McRun:
    """One die's outcome."""

    seed: int
    ok: bool
    n_errors: int
    stuck: bool
    dvth_n: float
    dvth_p: float


@dataclass
class McResult:
    """Aggregate over all dies of one design point."""

    design: SRLRDesignParams
    runs: list[McRun] = field(default_factory=list)
    #: Dies whose *simulation task* exhausted its retry budget under a
    #: non-strict :class:`~repro.runtime.ResilienceConfig` (not signaling
    #: failures — those are ordinary ``runs`` with ``ok=False``).  Empty
    #: on the default strict-less path.
    failures: list[TaskFailure] = field(default_factory=list)

    @property
    def n_task_failures(self) -> int:
        return len(self.failures)

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def n_failures(self) -> int:
        return sum(1 for r in self.runs if not r.ok)

    @property
    def error_probability(self) -> float:
        """Fraction of dies failing the stress pattern (Fig. 6 y-axis)."""
        if not self.runs:
            return 0.0
        return self.n_failures / self.n_runs

    def failure_seeds(self) -> list[int]:
        return [r.seed for r in self.runs if not r.ok]


def simulate_die(
    seed: int,
    design: SRLRDesignParams,
    pattern: tuple[int, ...],
    bit_period: float,
    local_enabled: bool,
) -> McRun:
    """Draw one die by its seed, transmit the pattern, record the outcome.

    Module-level (not a closure) so a :class:`ParallelExecutor` can ship
    it to worker processes; the result depends only on the arguments.
    """
    sample = monte_carlo_sample(design.tech, seed, local_enabled=local_enabled)
    link = SRLRLink(design, sample)
    outcome = link.transmit(list(pattern), bit_period)
    return McRun(
        seed=seed,
        ok=outcome.ok,
        n_errors=outcome.n_errors,
        stuck=outcome.stuck,
        dvth_n=sample.global_corner.dvth_n,
        dvth_p=sample.global_corner.dvth_p,
    )


def run_payload(run: McRun) -> dict:
    """The JSON checkpoint payload of one die (floats round-trip exactly)."""
    return {
        "seed": run.seed,
        "ok": run.ok,
        "n_errors": run.n_errors,
        "stuck": run.stuck,
        "dvth_n": run.dvth_n,
        "dvth_p": run.dvth_p,
    }


def run_from_payload(payload: dict) -> McRun:
    return McRun(
        seed=int(payload["seed"]),
        ok=bool(payload["ok"]),
        n_errors=int(payload["n_errors"]),
        stuck=bool(payload["stuck"]),
        dvth_n=float(payload["dvth_n"]),
        dvth_p=float(payload["dvth_p"]),
    )


def run_monte_carlo(
    design: SRLRDesignParams,
    n_runs: int = 1000,
    bit_period: float = 1.0 / 4.1e9,
    pattern: list[int] | None = None,
    base_seed: int = 2013,
    local_enabled: bool = True,
    seed_scheme: str = "sequential",
    n_jobs: int | None = 1,
    executor: ParallelExecutor | None = None,
    cache: ResultCache | None = None,
    progress: ProgressHook | None = None,
    resilience: ResilienceConfig | None = None,
    checkpoint: str | Path | CheckpointStore | None = None,
    resume: bool = False,
) -> McResult:
    """Monte Carlo yield analysis of one link design.

    Each run's seed comes from a deterministic per-task stream (the
    default ``sequential`` scheme is the paper's ``base_seed + i``, so
    individual failing dies can be reproduced exactly; ``spawn`` derives
    collision-resistant seeds through ``SeedSequence.spawn``).
    ``local_enabled=False`` restricts variation to global corners only
    (useful for ablating the two variation scales).

    ``n_jobs`` (or a pre-built ``executor``) fans the dies across worker
    processes; results are identical for every worker count.  ``cache``
    (a :class:`~repro.runtime.ResultCache`) skips the whole block when an
    entry keyed by (design, pattern, seeds, ...) already exists.

    ``resilience`` opts the dies into the fault-tolerant task layer
    (per-die timeouts, deterministic retries, worker-crash recovery);
    with ``strict=False``, dies whose task exhausted its budget land in
    :attr:`McResult.failures` instead of aborting the campaign.

    ``checkpoint`` (a path or open :class:`~repro.runtime.CheckpointStore`)
    persists each die durably as it completes; ``resume=True`` replays a
    partially-written store — bound to this exact campaign configuration
    — and computes only the missing dies, so a run killed at any instant
    converges to the bitwise result of an uninterrupted one.  Every die
    depends only on its own seed, which is why replayed and recomputed
    dies mix freely.
    """
    if n_runs < 1:
        raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
    if bit_period <= 0.0:
        raise ConfigurationError(f"bit_period must be positive, got {bit_period}")
    pattern = default_stress_pattern() if pattern is None else pattern
    seeds = make_seeds(base_seed, n_runs, seed_scheme)

    campaign_key = content_key(
        "run_monte_carlo/v1",
        design,
        tuple(pattern),
        bit_period,
        tuple(seeds),
        local_enabled,
    )
    if cache is not None:
        cached = cache.get(campaign_key)
        if cached is not MISS:
            return McResult(design=design, runs=list(cached))

    store = open_checkpoint(
        checkpoint, {"kind": "run_monte_carlo/v1", "campaign": campaign_key}, resume
    )
    try:
        return _run_campaign(
            design, seeds, pattern, bit_period, local_enabled, n_runs,
            n_jobs, executor, cache, progress, resilience,
            store, campaign_key,
        )
    finally:
        # Each record was fsynced as it landed, so closing here (even on
        # KeyboardInterrupt mid-campaign) never loses completed dies.
        if store is not None and not isinstance(checkpoint, CheckpointStore):
            store.close()


def _run_campaign(
    design: SRLRDesignParams,
    seeds: list[int],
    pattern: list[int],
    bit_period: float,
    local_enabled: bool,
    n_runs: int,
    n_jobs: int | None,
    executor: ParallelExecutor | None,
    cache: ResultCache | None,
    progress: ProgressHook | None,
    resilience: ResilienceConfig | None,
    store: CheckpointStore | None,
    campaign_key: str,
) -> McResult:
    done: dict[int, McRun] = {}
    if store is not None:
        done = {int(k): run_from_payload(p) for k, p in store.items()}
    pending = [(i, seed) for i, seed in enumerate(seeds) if i not in done]

    computed: dict[int, McRun | TaskFailure] = {}
    if pending:
        worker = partial(
            simulate_die,
            design=design,
            pattern=tuple(pattern),
            bit_period=bit_period,
            local_enabled=local_enabled,
        )
        executor = executor or ParallelExecutor(
            n_jobs=n_jobs, progress=progress, resilience=resilience
        )

        on_result = None
        if store is not None:

            def on_result(indices: list[int], values: list) -> None:
                # Persist each die as its chunk lands; a TaskFailure is
                # never checkpointed — a resumed run retries it.
                for j, value in zip(indices, values):
                    if not isinstance(value, TaskFailure):
                        store.append(str(pending[j][0]), run_payload(value))

        values = executor.map(worker, [seed for _, seed in pending], on_result=on_result)
        for (i, _), value in zip(pending, values):
            computed[i] = value

    runs: list[McRun] = []
    failures: list[TaskFailure] = []
    for i in range(n_runs):
        value = done.get(i, computed.get(i))
        if isinstance(value, TaskFailure):
            # Re-point the record at the die index (the executor saw
            # only the pending subset).
            failures.append(
                TaskFailure(
                    index=i,
                    error_type=value.error_type,
                    message=value.message,
                    traceback=value.traceback,
                    attempts=value.attempts,
                    kind=value.kind,
                )
            )
        else:
            runs.append(value)
    result = McResult(design=design, runs=runs, failures=failures)
    if cache is not None and not failures:
        cache.put(campaign_key, result.runs)
    return result


class ImmunityRatio(float):
    """The immunity ratio plus how it was obtained.

    Behaves as a plain ``float`` (every existing call site keeps working)
    while exposing whether the value is exact or only a *lower bound* —
    the contender never failed, so one pseudo-failure of probability
    ``1 / (2 * n_runs)`` was substituted to keep the ratio finite.
    """

    is_lower_bound: bool
    pseudo_failure_probability: float | None

    def __new__(
        cls,
        value: float,
        is_lower_bound: bool = False,
        pseudo_failure_probability: float | None = None,
    ) -> "ImmunityRatio":
        self = super().__new__(cls, value)
        self.is_lower_bound = is_lower_bound
        self.pseudo_failure_probability = pseudo_failure_probability
        return self

    def __getnewargs__(self):
        # float's default pickling bypasses our __new__; route the extra
        # state through it so cached/pickled ratios keep their flags.
        return (float(self), self.is_lower_bound, self.pseudo_failure_probability)

    def describe(self) -> str:
        bound = ">=" if self.is_lower_bound else "="
        note = (
            f" (lower bound: contender never failed; pseudo-failure "
            f"p={self.pseudo_failure_probability:.2e} substituted)"
            if self.is_lower_bound
            else ""
        )
        return f"immunity {bound} {float(self):.2f}x{note}"


def immunity_ratio(reference: McResult, contender: McResult) -> ImmunityRatio:
    """Process-variation immunity of ``contender`` relative to ``reference``.

    The paper reports the robust SRLR achieving "about 3.7 times higher
    process variation immunity" than the straightforward design at the
    selected swing: the ratio of failure probabilities (reference over
    contender).  When the contender never fails the ratio is unbounded by
    the data; the returned value substitutes one pseudo-failure of
    probability ``1/(2*n_runs)`` and flags itself as a lower bound via
    :attr:`ImmunityRatio.is_lower_bound` instead of doing so silently.
    """
    p_ref = reference.error_probability
    p_new = contender.error_probability
    if p_ref == 0.0 and p_new == 0.0:
        return ImmunityRatio(1.0)
    if p_ref == 0.0:
        return ImmunityRatio(0.0)
    if p_new == 0.0:
        pseudo = 1.0 / (2 * max(contender.n_runs, 1))
        return ImmunityRatio(
            p_ref / pseudo, is_lower_bound=True, pseudo_failure_probability=pseudo
        )
    return ImmunityRatio(p_ref / p_new)


__all__ = [
    "ImmunityRatio",
    "McResult",
    "McRun",
    "default_stress_pattern",
    "immunity_ratio",
    "run_from_payload",
    "run_monte_carlo",
    "run_payload",
    "simulate_die",
]
