"""Monte Carlo engine over SRLR link designs.

Reproduces the paper's 1000-run Monte Carlo methodology (Fig. 6): each run
draws one die — a global (die-to-die) corner shared by every device plus
independent local mismatch per device — instantiates the link on that die,
transmits a stress pattern, and records whether any bit failed.

The per-die failure *probability* (fraction of dies that cannot carry the
pattern error-free) is the paper's "error probability" axis; "process
variation immunity" is its reciprocal ratio between designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.circuit.link import SRLRLink
from repro.circuit.prbs import PrbsGenerator, worst_case_patterns
from repro.circuit.srlr import SRLRDesignParams
from repro.tech.variation import monte_carlo_sample


def default_stress_pattern(n_prbs: int = 127) -> list[int]:
    """The measurement pattern: PRBS7 traffic plus the '11110' stressors."""
    return PrbsGenerator(7).bits(n_prbs) + worst_case_patterns()


@dataclass(frozen=True)
class McRun:
    """One die's outcome."""

    seed: int
    ok: bool
    n_errors: int
    stuck: bool
    dvth_n: float
    dvth_p: float


@dataclass
class McResult:
    """Aggregate over all dies of one design point."""

    design: SRLRDesignParams
    runs: list[McRun] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def n_failures(self) -> int:
        return sum(1 for r in self.runs if not r.ok)

    @property
    def error_probability(self) -> float:
        """Fraction of dies failing the stress pattern (Fig. 6 y-axis)."""
        if not self.runs:
            return 0.0
        return self.n_failures / self.n_runs

    def failure_seeds(self) -> list[int]:
        return [r.seed for r in self.runs if not r.ok]


def run_monte_carlo(
    design: SRLRDesignParams,
    n_runs: int = 1000,
    bit_period: float = 1.0 / 4.1e9,
    pattern: list[int] | None = None,
    base_seed: int = 2013,
    local_enabled: bool = True,
) -> McResult:
    """Monte Carlo yield analysis of one link design.

    Each run uses seed ``base_seed + i`` so individual failing dies can be
    reproduced exactly.  ``local_enabled=False`` restricts variation to
    global corners only (useful for ablating the two variation scales).
    """
    if n_runs < 1:
        raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
    if bit_period <= 0.0:
        raise ConfigurationError(f"bit_period must be positive, got {bit_period}")
    pattern = default_stress_pattern() if pattern is None else pattern
    result = McResult(design=design)
    for i in range(n_runs):
        seed = base_seed + i
        sample = monte_carlo_sample(
            design.tech, seed, local_enabled=local_enabled
        )
        link = SRLRLink(design, sample)
        outcome = link.transmit(pattern, bit_period)
        result.runs.append(
            McRun(
                seed=seed,
                ok=outcome.ok,
                n_errors=outcome.n_errors,
                stuck=outcome.stuck,
                dvth_n=sample.global_corner.dvth_n,
                dvth_p=sample.global_corner.dvth_p,
            )
        )
    return result


def immunity_ratio(reference: McResult, contender: McResult) -> float:
    """Process-variation immunity of ``contender`` relative to ``reference``.

    The paper reports the robust SRLR achieving "about 3.7 times higher
    process variation immunity" than the straightforward design at the
    selected swing: the ratio of failure probabilities (reference over
    contender).  When the contender never fails, one pseudo-failure is
    assumed so the ratio stays finite (a lower bound).
    """
    p_ref = reference.error_probability
    p_new = contender.error_probability
    if p_ref == 0.0 and p_new == 0.0:
        return 1.0
    if p_ref == 0.0:
        return 0.0
    if p_new == 0.0:
        p_new = 1.0 / (2 * max(contender.n_runs, 1))
    return p_ref / p_new


__all__ = [
    "McResult",
    "McRun",
    "default_stress_pattern",
    "immunity_ratio",
    "run_monte_carlo",
]
