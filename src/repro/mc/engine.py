"""Monte Carlo engine over SRLR link designs.

Reproduces the paper's 1000-run Monte Carlo methodology (Fig. 6): each run
draws one die — a global (die-to-die) corner shared by every device plus
independent local mismatch per device — instantiates the link on that die,
transmits a stress pattern, and records whether any bit failed.

The per-die failure *probability* (fraction of dies that cannot carry the
pattern error-free) is the paper's "error probability" axis; "process
variation immunity" is its reciprocal ratio between designs.

Dies are independent, so the engine fans them across worker processes via
:class:`repro.runtime.ParallelExecutor`.  Each die's randomness depends
only on its own integer seed, so any ``n_jobs`` produces results
*identical* to the serial reference (``n_jobs=1``), and an opt-in
:class:`repro.runtime.ResultCache` can skip whole blocks whose inputs
hash to an already-computed entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.errors import ConfigurationError
from repro.circuit.link import SRLRLink
from repro.circuit.prbs import PrbsGenerator, worst_case_patterns
from repro.circuit.srlr import SRLRDesignParams
from repro.runtime import (
    MISS,
    ParallelExecutor,
    ProgressHook,
    ResultCache,
    content_key,
    make_seeds,
)
from repro.tech.variation import monte_carlo_sample


def default_stress_pattern(n_prbs: int = 127) -> list[int]:
    """The measurement pattern: PRBS7 traffic plus the '11110' stressors."""
    return PrbsGenerator(7).bits(n_prbs) + worst_case_patterns()


@dataclass(frozen=True)
class McRun:
    """One die's outcome."""

    seed: int
    ok: bool
    n_errors: int
    stuck: bool
    dvth_n: float
    dvth_p: float


@dataclass
class McResult:
    """Aggregate over all dies of one design point."""

    design: SRLRDesignParams
    runs: list[McRun] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def n_failures(self) -> int:
        return sum(1 for r in self.runs if not r.ok)

    @property
    def error_probability(self) -> float:
        """Fraction of dies failing the stress pattern (Fig. 6 y-axis)."""
        if not self.runs:
            return 0.0
        return self.n_failures / self.n_runs

    def failure_seeds(self) -> list[int]:
        return [r.seed for r in self.runs if not r.ok]


def simulate_die(
    seed: int,
    design: SRLRDesignParams,
    pattern: tuple[int, ...],
    bit_period: float,
    local_enabled: bool,
) -> McRun:
    """Draw one die by its seed, transmit the pattern, record the outcome.

    Module-level (not a closure) so a :class:`ParallelExecutor` can ship
    it to worker processes; the result depends only on the arguments.
    """
    sample = monte_carlo_sample(design.tech, seed, local_enabled=local_enabled)
    link = SRLRLink(design, sample)
    outcome = link.transmit(list(pattern), bit_period)
    return McRun(
        seed=seed,
        ok=outcome.ok,
        n_errors=outcome.n_errors,
        stuck=outcome.stuck,
        dvth_n=sample.global_corner.dvth_n,
        dvth_p=sample.global_corner.dvth_p,
    )


def run_monte_carlo(
    design: SRLRDesignParams,
    n_runs: int = 1000,
    bit_period: float = 1.0 / 4.1e9,
    pattern: list[int] | None = None,
    base_seed: int = 2013,
    local_enabled: bool = True,
    seed_scheme: str = "sequential",
    n_jobs: int | None = 1,
    executor: ParallelExecutor | None = None,
    cache: ResultCache | None = None,
    progress: ProgressHook | None = None,
) -> McResult:
    """Monte Carlo yield analysis of one link design.

    Each run's seed comes from a deterministic per-task stream (the
    default ``sequential`` scheme is the paper's ``base_seed + i``, so
    individual failing dies can be reproduced exactly; ``spawn`` derives
    collision-resistant seeds through ``SeedSequence.spawn``).
    ``local_enabled=False`` restricts variation to global corners only
    (useful for ablating the two variation scales).

    ``n_jobs`` (or a pre-built ``executor``) fans the dies across worker
    processes; results are identical for every worker count.  ``cache``
    (a :class:`~repro.runtime.ResultCache`) skips the whole block when an
    entry keyed by (design, pattern, seeds, ...) already exists.
    """
    if n_runs < 1:
        raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
    if bit_period <= 0.0:
        raise ConfigurationError(f"bit_period must be positive, got {bit_period}")
    pattern = default_stress_pattern() if pattern is None else pattern
    seeds = make_seeds(base_seed, n_runs, seed_scheme)

    key = None
    if cache is not None:
        key = content_key(
            "run_monte_carlo/v1",
            design,
            tuple(pattern),
            bit_period,
            tuple(seeds),
            local_enabled,
        )
        cached = cache.get(key)
        if cached is not MISS:
            return McResult(design=design, runs=list(cached))

    worker = partial(
        simulate_die,
        design=design,
        pattern=tuple(pattern),
        bit_period=bit_period,
        local_enabled=local_enabled,
    )
    executor = executor or ParallelExecutor(n_jobs=n_jobs, progress=progress)
    runs = executor.map(worker, seeds)
    result = McResult(design=design, runs=runs)
    if cache is not None and key is not None:
        cache.put(key, result.runs)
    return result


class ImmunityRatio(float):
    """The immunity ratio plus how it was obtained.

    Behaves as a plain ``float`` (every existing call site keeps working)
    while exposing whether the value is exact or only a *lower bound* —
    the contender never failed, so one pseudo-failure of probability
    ``1 / (2 * n_runs)`` was substituted to keep the ratio finite.
    """

    is_lower_bound: bool
    pseudo_failure_probability: float | None

    def __new__(
        cls,
        value: float,
        is_lower_bound: bool = False,
        pseudo_failure_probability: float | None = None,
    ) -> "ImmunityRatio":
        self = super().__new__(cls, value)
        self.is_lower_bound = is_lower_bound
        self.pseudo_failure_probability = pseudo_failure_probability
        return self

    def __getnewargs__(self):
        # float's default pickling bypasses our __new__; route the extra
        # state through it so cached/pickled ratios keep their flags.
        return (float(self), self.is_lower_bound, self.pseudo_failure_probability)

    def describe(self) -> str:
        bound = ">=" if self.is_lower_bound else "="
        note = (
            f" (lower bound: contender never failed; pseudo-failure "
            f"p={self.pseudo_failure_probability:.2e} substituted)"
            if self.is_lower_bound
            else ""
        )
        return f"immunity {bound} {float(self):.2f}x{note}"


def immunity_ratio(reference: McResult, contender: McResult) -> ImmunityRatio:
    """Process-variation immunity of ``contender`` relative to ``reference``.

    The paper reports the robust SRLR achieving "about 3.7 times higher
    process variation immunity" than the straightforward design at the
    selected swing: the ratio of failure probabilities (reference over
    contender).  When the contender never fails the ratio is unbounded by
    the data; the returned value substitutes one pseudo-failure of
    probability ``1/(2*n_runs)`` and flags itself as a lower bound via
    :attr:`ImmunityRatio.is_lower_bound` instead of doing so silently.
    """
    p_ref = reference.error_probability
    p_new = contender.error_probability
    if p_ref == 0.0 and p_new == 0.0:
        return ImmunityRatio(1.0)
    if p_ref == 0.0:
        return ImmunityRatio(0.0)
    if p_new == 0.0:
        pseudo = 1.0 / (2 * max(contender.n_runs, 1))
        return ImmunityRatio(
            p_ref / pseudo, is_lower_bound=True, pseudo_failure_probability=pseudo
        )
    return ImmunityRatio(p_ref / p_new)


__all__ = [
    "ImmunityRatio",
    "McResult",
    "McRun",
    "default_stress_pattern",
    "immunity_ratio",
    "run_monte_carlo",
    "simulate_die",
]
