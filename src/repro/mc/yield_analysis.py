"""Swing sweeps of Monte Carlo error probability: the Fig. 6 experiment.

Fig. 6 plots error probability (from 1000-run Monte Carlo) against swing
voltage for SRLR design variants.  This module sweeps the nominal far-end
swing, rebuilding each design at every swing point, and collects the error
probabilities — plus the per-technique ablation variants (NMOS vs inverter
driver, alternating vs single delay cells, adaptive vs fixed swing) that
decompose the robust design's advantage.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.circuit.bias import FixedSwingReference, fixed_for_amplitude
from repro.circuit.delay_cell import single_plan
from repro.circuit.srlr import (
    SRLRDesignParams,
    _nmos_amplitude_for_swing,
    robust_design,
    straightforward_design,
)
from repro.mc.engine import McResult, run_monte_carlo
from repro.runtime import ParallelExecutor, ProgressHook, ResultCache
from repro.tech.technology import Technology, tech_45nm_soi


def design_variants(
    tech: Technology | None = None, nominal_swing: float | None = None
) -> dict[str, SRLRDesignParams]:
    """The Fig. 6 contenders plus single-technique ablations.

    Keys:

    * ``robust`` — NMOS driver + alternating delay cells + adaptive swing
      (the paper's proposed design);
    * ``straightforward`` — inverter driver + single delay cell + fixed
      swing (the paper's baseline);
    * ``no_alternating`` — robust with single delay cells;
    * ``no_adaptive`` — robust with a fixed Vref rail;
    * ``no_nmos_driver`` — straightforward driver/reference but with
      alternating delay cells (isolates the driver's contribution).
    """
    tech = tech or tech_45nm_soi()
    kwargs = {} if nominal_swing is None else {"nominal_swing": nominal_swing}
    robust = robust_design(tech, **kwargs)
    straightforward = straightforward_design(tech, **kwargs)
    # Fixed reference delivering the same nominal amplitude as the robust
    # design's adaptive reference does at TT.
    amplitude = _nmos_amplitude_for_swing(
        tech,
        nominal_swing if nominal_swing is not None else 0.27,
        robust.driver,
        robust.segment_length,
    )
    return {
        "robust": robust,
        "straightforward": straightforward,
        "no_alternating": dataclasses.replace(robust, delay_plan=single_plan()),
        "no_adaptive": dataclasses.replace(
            robust, swing_reference=fixed_for_amplitude(tech, amplitude)
        ),
        "no_nmos_driver": dataclasses.replace(
            straightforward, delay_plan=robust.delay_plan
        ),
    }


@dataclass
class SwingSweepPoint:
    """Monte Carlo outcomes of every design variant at one swing value."""

    swing: float
    results: dict[str, McResult] = field(default_factory=dict)

    def error_probability(self, variant: str) -> float:
        return self.results[variant].error_probability


@dataclass
class SwingSweep:
    """The full Fig. 6 dataset: error probability vs swing per variant."""

    points: list[SwingSweepPoint] = field(default_factory=list)

    @property
    def swings(self) -> list[float]:
        return [p.swing for p in self.points]

    def series(self, variant: str) -> list[float]:
        return [p.error_probability(variant) for p in self.points]

    def variants(self) -> list[str]:
        return sorted(self.points[0].results) if self.points else []


def sweep_swing(
    swings: list[float],
    variants: list[str] | None = None,
    n_runs: int = 1000,
    bit_period: float = 1.0 / 4.1e9,
    tech: Technology | None = None,
    base_seed: int = 2013,
    n_jobs: int | None = 1,
    executor: ParallelExecutor | None = None,
    cache: ResultCache | None = None,
    progress: ProgressHook | None = None,
) -> SwingSweep:
    """Monte Carlo error probability over a swing sweep (Fig. 6).

    ``variants`` defaults to the two headline designs; pass the ablation
    keys from :func:`design_variants` for the decomposition study.  The
    same seed sequence is used at every (swing, variant) point so the
    comparison is paired: every design faces the same set of dies.

    ``n_jobs``/``executor``/``cache``/``progress`` are forwarded to every
    underlying :func:`run_monte_carlo` block (the dies parallelize; the
    sweep order stays deterministic regardless of worker count).
    """
    if not swings:
        raise ConfigurationError("swings must not be empty")
    variants = variants or ["robust", "straightforward"]
    executor = executor or ParallelExecutor(n_jobs=n_jobs, progress=progress)
    sweep = SwingSweep()
    for swing in swings:
        if swing <= 0.0:
            raise ConfigurationError(f"swing must be positive, got {swing}")
        designs = design_variants(tech, nominal_swing=swing)
        unknown = set(variants) - set(designs)
        if unknown:
            raise ConfigurationError(f"unknown design variants: {sorted(unknown)}")
        point = SwingSweepPoint(swing=swing)
        for key in variants:
            point.results[key] = run_monte_carlo(
                designs[key],
                n_runs=n_runs,
                bit_period=bit_period,
                base_seed=base_seed,
                executor=executor,
                cache=cache,
            )
        sweep.points.append(point)
    return sweep


__all__ = ["SwingSweep", "SwingSweepPoint", "design_variants", "sweep_swing"]
