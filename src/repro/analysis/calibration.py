"""Calibration transparency: anchored constants vs emergent results.

A reproduction built on behavioral models owes its readers a clear
boundary between (a) the handful of constants *calibrated* against the
paper's pinned numbers and (b) everything that then *emerges* from the
models.  This module prints that boundary and verifies, at import-free
runtime, that the emergent headline numbers still land where
EXPERIMENTS.md records them — a drift alarm for future model edits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_kv, format_table
from repro.circuit import SRLRLink, robust_design
from repro.circuit.srlr import DEFAULT_NOMINAL_SWING
from repro.energy import RouterPowerModel, srlr_link_energy
from repro.mc.engine import default_stress_pattern
from repro.units import GBPS, MM, MW

#: The calibration anchors: each row is (constant, value, what it was
#: anchored to).  Everything not listed here is an emergent result.
CALIBRATION_ANCHORS: list[tuple[str, str, str]] = [
    ("wire R", "350 Ohm/mm", "45 nm intermediate-metal copper at 0.3 um width"),
    ("wire C", "0.22 fF/um (ground+2x coupling)", "headline 40.4 fJ/bit/mm at the 0.6 um pitch"),
    ("wire pitch", "0.6 um", "6.83 Gb/s/um at 4.1 Gb/s (exact)"),
    ("device k_drive", "550 A/m at 1 V overdrive", "45 nm-class on-current"),
    ("Vth (n/p)", "0.32 / 0.30 V", "45 nm-class standard cells"),
    ("M1 low-Vt offset", "-80 mV", "sensing at ~0.3 V swings"),
    ("nominal far-end swing", f"{DEFAULT_NOMINAL_SWING} V", "Fig. 6 'selected swing': ~3.7x immunity separation point"),
    ("delay cell", "6 buffers x 26 ps", "Wx ~156 ps inside the 244 ps UI"),
    ("reset recovery", "30 ps", "max data rate in the 4-5 Gb/s band"),
    ("buffer energy/bit", "120 fJ", "router buffers 38.8 mW"),
    ("control energy/flit", "0.9 pJ + 0.7 mW static", "router control 5.2 mW"),
    ("SRLR area", "47.9 um^2", "die photo (exact)"),
    ("bias power", "587 uW", "Section IV (exact)"),
    ("global sigma(Vth)", "30 mV", "die-to-die variation, 45 nm-class"),
    ("Pelgrom A_vt", "3.5 mV*um", "45 nm-class mismatch"),
]


@dataclass(frozen=True)
class CalibrationCheck:
    """One emergent quantity with its expected band."""

    name: str
    value: float
    lo: float
    hi: float

    @property
    def ok(self) -> bool:
        return self.lo <= self.value <= self.hi


def calibration_checks() -> list[CalibrationCheck]:
    """Measure the emergent headline quantities against their bands."""
    link = SRLRLink(robust_design())
    report = srlr_link_energy()
    pattern = default_stress_pattern()
    rate = link.max_data_rate(pattern)
    router = RouterPowerModel().power_breakdown(1.0, "srlr")
    area = RouterPowerModel().area_breakdown()
    return [
        CalibrationCheck("energy [fJ/bit/mm]", report.fj_per_bit_per_mm, 35.0, 46.0),
        CalibrationCheck("max rate [Gb/s]", rate / GBPS, 4.1, 5.5),
        CalibrationCheck("link power [mW]", report.power / MW, 1.4, 1.9),
        CalibrationCheck(
            "BW density [Gb/s/um]", report.bandwidth_density_gbps_per_um, 6.82, 6.84
        ),
        CalibrationCheck("router datapath [mW]", router.datapath / MW, 11.0, 14.5),
        CalibrationCheck("datapath area frac", area.datapath_fraction, 0.15, 0.21),
    ]


def calibration_report() -> str:
    """Render the anchors table plus the live emergent-value checks."""
    anchors = format_table(
        ["constant", "value", "anchored to"],
        CALIBRATION_ANCHORS,
        title="Calibration anchors (everything else is emergent)",
    )
    checks = calibration_checks()
    live = format_table(
        ["emergent quantity", "measured", "band", "ok"],
        [
            [c.name, f"{c.value:.3g}", f"[{c.lo:g}, {c.hi:g}]", c.ok]
            for c in checks
        ],
        title="Live drift check",
    )
    return anchors + "\n\n" + live


__all__ = ["CALIBRATION_ANCHORS", "CalibrationCheck", "calibration_checks", "calibration_report"]
