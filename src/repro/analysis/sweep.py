"""Generic parameter-sweep helpers used by benches and examples."""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.runtime import ParallelExecutor, ProgressHook


@dataclass(frozen=True)
class SweepResult:
    """A 1-D sweep: parameter values and the metric(s) at each."""

    parameter: str
    values: tuple[float, ...]
    metrics: dict[str, tuple[float, ...]]

    def series(self, metric: str) -> list[tuple[float, float]]:
        if metric not in self.metrics:
            raise ConfigurationError(
                f"unknown metric {metric!r}; have {sorted(self.metrics)}"
            )
        return list(zip(self.values, self.metrics[metric]))

    def rows(self) -> list[list[float]]:
        """Table rows: one per parameter value, metrics in sorted key order."""
        keys = sorted(self.metrics)
        return [
            [v, *(self.metrics[k][i] for k in keys)]
            for i, v in enumerate(self.values)
        ]

    def headers(self) -> list[str]:
        return [self.parameter, *sorted(self.metrics)]


def sweep(
    parameter: str,
    values: Sequence[float],
    evaluate: Callable[[float], dict[str, float]],
    n_jobs: int | None = 1,
    executor: ParallelExecutor | None = None,
    progress: ProgressHook | None = None,
) -> SweepResult:
    """Evaluate ``evaluate`` at each value; collect named metrics.

    Every call must return the same metric keys; a missing or extra key
    indicates a bug in the evaluator and raises.

    ``n_jobs`` (or a pre-built ``executor``) distributes the points
    across worker processes.  Results are ordered and validated by value
    position, identically for every worker count; evaluators that cannot
    cross a process boundary (closures) silently run on the serial path.
    """
    if not values:
        raise ConfigurationError("values must not be empty")
    executor = executor or ParallelExecutor(n_jobs=n_jobs, progress=progress)
    evaluated = executor.map(evaluate, list(values))
    collected: dict[str, list[float]] = {}
    keys: set[str] | None = None
    for value, metrics in zip(values, evaluated):
        if keys is None:
            keys = set(metrics)
            for k in keys:
                collected[k] = []
        elif set(metrics) != keys:
            raise ConfigurationError(
                f"evaluator returned keys {sorted(metrics)} at {value}, "
                f"expected {sorted(keys)}"
            )
        for k, v in metrics.items():
            collected[k].append(float(v))
    return SweepResult(
        parameter=parameter,
        values=tuple(float(v) for v in values),
        metrics={k: tuple(v) for k, v in collected.items()},
    )


__all__ = ["SweepResult", "sweep"]
