"""Generic parameter-sweep helpers used by benches, examples and the DSE.

:func:`sweep` is the classic 1-D sweep; :func:`sweep_grid` is its
N-dimensional generalization over a full cartesian product.  Both fan
their evaluations through :class:`repro.runtime.ParallelExecutor`, and
:func:`grid_points` — the one grid enumeration in the repo — is shared
with :class:`repro.dse.strategies.GridStrategy` so grid semantics cannot
drift between sweeps and design-space searches.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.runtime import ParallelExecutor, ProgressHook


@dataclass(frozen=True)
class SweepResult:
    """A 1-D sweep: parameter values and the metric(s) at each."""

    parameter: str
    values: tuple[float, ...]
    metrics: dict[str, tuple[float, ...]]

    def series(self, metric: str) -> list[tuple[float, float]]:
        if metric not in self.metrics:
            raise ConfigurationError(
                f"unknown metric {metric!r}; have {sorted(self.metrics)}"
            )
        return list(zip(self.values, self.metrics[metric]))

    def rows(self) -> list[list[float]]:
        """Table rows: one per parameter value, metrics in sorted key order."""
        keys = sorted(self.metrics)
        return [
            [v, *(self.metrics[k][i] for k in keys)]
            for i, v in enumerate(self.values)
        ]

    def headers(self) -> list[str]:
        return [self.parameter, *sorted(self.metrics)]


def sweep(
    parameter: str,
    values: Sequence[float],
    evaluate: Callable[[float], dict[str, float]],
    n_jobs: int | None = 1,
    executor: ParallelExecutor | None = None,
    progress: ProgressHook | None = None,
) -> SweepResult:
    """Evaluate ``evaluate`` at each value; collect named metrics.

    Every call must return the same metric keys; a missing or extra key
    indicates a bug in the evaluator and raises.

    ``n_jobs`` (or a pre-built ``executor``) distributes the points
    across worker processes.  Results are ordered and validated by value
    position, identically for every worker count; evaluators that cannot
    cross a process boundary (closures) run on the serial path and emit a
    :class:`repro.runtime.SerialFallbackWarning` saying so.
    """
    if not values:
        raise ConfigurationError("values must not be empty")
    executor = executor or ParallelExecutor(n_jobs=n_jobs, progress=progress)
    evaluated = executor.map(evaluate, list(values))
    return SweepResult(
        parameter=parameter,
        values=tuple(float(v) for v in values),
        metrics=_collect_metrics(values, evaluated),
    )


def _collect_metrics(
    labels: Sequence[object], evaluated: Sequence[Mapping[str, float]]
) -> dict[str, tuple[float, ...]]:
    """Transpose per-point metric dicts into named series, validating keys."""
    collected: dict[str, list[float]] = {}
    keys: set[str] | None = None
    for label, metrics in zip(labels, evaluated):
        if keys is None:
            keys = set(metrics)
            for k in keys:
                collected[k] = []
        elif set(metrics) != keys:
            raise ConfigurationError(
                f"evaluator returned keys {sorted(metrics)} at {label}, "
                f"expected {sorted(keys)}"
            )
        for k, v in metrics.items():
            collected[k].append(float(v))
    return {k: tuple(v) for k, v in collected.items()}


def grid_points(
    parameters: Mapping[str, Sequence[float]],
) -> list[dict[str, float]]:
    """The full cartesian product of named axes, in row-major order.

    The first axis varies slowest, the last fastest (like nested loops in
    declaration order).  This is the single grid enumeration shared by
    :func:`sweep_grid` and the DSE grid strategy.
    """
    if not parameters:
        raise ConfigurationError("parameters must not be empty")
    for name, values in parameters.items():
        if not values:
            raise ConfigurationError(f"axis {name!r} has no values")
    names = list(parameters)
    return [
        {name: float(v) for name, v in zip(names, combo)}
        for combo in itertools.product(*(parameters[n] for n in names))
    ]


@dataclass(frozen=True)
class GridResult:
    """An N-D sweep: one point (a named-parameter dict) per grid cell."""

    parameters: tuple[str, ...]
    points: tuple[dict[str, float], ...]
    metrics: dict[str, tuple[float, ...]]

    def series(self, metric: str) -> list[tuple[dict[str, float], float]]:
        if metric not in self.metrics:
            raise ConfigurationError(
                f"unknown metric {metric!r}; have {sorted(self.metrics)}"
            )
        return list(zip(self.points, self.metrics[metric]))

    def rows(self) -> list[list[float]]:
        """Table rows: parameter values in axis order, then sorted metrics."""
        keys = sorted(self.metrics)
        return [
            [*(point[p] for p in self.parameters), *(self.metrics[k][i] for k in keys)]
            for i, point in enumerate(self.points)
        ]

    def headers(self) -> list[str]:
        return [*self.parameters, *sorted(self.metrics)]


def sweep_grid(
    parameters: Mapping[str, Sequence[float]],
    evaluate: Callable[[dict[str, float]], dict[str, float]],
    n_jobs: int | None = 1,
    executor: ParallelExecutor | None = None,
    progress: ProgressHook | None = None,
) -> GridResult:
    """Evaluate ``evaluate`` at every point of a cartesian grid.

    ``parameters`` maps axis names to their values; ``evaluate`` receives
    one ``{name: value}`` dict per grid cell and returns named metrics
    (the same keys at every point, as in :func:`sweep`).  Points are
    enumerated by :func:`grid_points` and fanned through the executor —
    results are ordered and identical for every worker count.
    """
    points = grid_points(parameters)
    executor = executor or ParallelExecutor(n_jobs=n_jobs, progress=progress)
    evaluated = executor.map(evaluate, points)
    return GridResult(
        parameters=tuple(parameters),
        points=tuple(points),
        metrics=_collect_metrics(points, evaluated),
    )


__all__ = ["GridResult", "SweepResult", "grid_points", "sweep", "sweep_grid"]
