"""Generic parameter-sweep helpers used by benches, examples and the DSE.

:func:`sweep` is the classic 1-D sweep; :func:`sweep_grid` is its
N-dimensional generalization over a full cartesian product.  Both fan
their evaluations through :class:`repro.runtime.ParallelExecutor`, and
:func:`grid_points` — the one grid enumeration in the repo — is shared
with :class:`repro.dse.strategies.GridStrategy` so grid semantics cannot
drift between sweeps and design-space searches.

Both sweeps also speak the resilient-execution dialect: ``resilience=``
opts points into timeouts/retries/quarantine (a quarantined point fills
its metric slots with ``nan`` and lands in ``result.failures``), and
``checkpoint=``/``resume=`` persist each completed point durably so an
interrupted sweep resumes to the bitwise result of an uninterrupted one
(see docs/RESILIENCE.md).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError, ExecutionError
from repro.runtime import (
    CheckpointStore,
    ParallelExecutor,
    ProgressHook,
    ResilienceConfig,
    TaskFailure,
    callable_token,
    open_checkpoint,
)


@dataclass(frozen=True)
class SweepResult:
    """A 1-D sweep: parameter values and the metric(s) at each."""

    parameter: str
    values: tuple[float, ...]
    metrics: dict[str, tuple[float, ...]]
    #: Points whose evaluation exhausted its retry budget (non-strict
    #: resilience); their slots in every series hold ``nan``.
    failures: tuple[TaskFailure, ...] = ()

    def series(self, metric: str) -> list[tuple[float, float]]:
        if metric not in self.metrics:
            raise ConfigurationError(
                f"unknown metric {metric!r}; have {sorted(self.metrics)}"
            )
        return list(zip(self.values, self.metrics[metric]))

    def rows(self) -> list[list[float]]:
        """Table rows: one per parameter value, metrics in sorted key order."""
        keys = sorted(self.metrics)
        return [
            [v, *(self.metrics[k][i] for k in keys)]
            for i, v in enumerate(self.values)
        ]

    def headers(self) -> list[str]:
        return [self.parameter, *sorted(self.metrics)]


def sweep(
    parameter: str,
    values: Sequence[float],
    evaluate: Callable[[float], dict[str, float]],
    n_jobs: int | None = 1,
    executor: ParallelExecutor | None = None,
    progress: ProgressHook | None = None,
    resilience: ResilienceConfig | None = None,
    checkpoint: str | Path | CheckpointStore | None = None,
    resume: bool = False,
) -> SweepResult:
    """Evaluate ``evaluate`` at each value; collect named metrics.

    Every call must return the same metric keys; a missing or extra key
    indicates a bug in the evaluator and raises.

    ``n_jobs`` (or a pre-built ``executor``) distributes the points
    across worker processes.  Results are ordered and validated by value
    position, identically for every worker count; evaluators that cannot
    cross a process boundary (closures) run on the serial path and emit a
    :class:`repro.runtime.SerialFallbackWarning` saying so.

    ``checkpoint``/``resume`` persist completed points to a crash-safe
    JSONL store and replay them on restart; ``resilience`` opts points
    into the fault-tolerant task layer (see module docstring).
    """
    if not values:
        raise ConfigurationError("values must not be empty")
    config = {
        "kind": "sweep/v1",
        "parameter": parameter,
        "values": [float(v) for v in values],
        "evaluator": callable_token(evaluate),
    }
    evaluated, failures = _evaluate_points(
        list(values),
        evaluate,
        config,
        n_jobs=n_jobs,
        executor=executor,
        progress=progress,
        resilience=resilience,
        checkpoint=checkpoint,
        resume=resume,
    )
    return SweepResult(
        parameter=parameter,
        values=tuple(float(v) for v in values),
        metrics=collect_metrics(values, evaluated),
        failures=tuple(failures),
    )


def _evaluate_points(
    points: list,
    evaluate: Callable,
    config: dict,
    n_jobs: int | None,
    executor: ParallelExecutor | None,
    progress: ProgressHook | None,
    resilience: ResilienceConfig | None,
    checkpoint: str | Path | CheckpointStore | None,
    resume: bool,
) -> tuple[list, list[TaskFailure]]:
    """Shared sweep body: checkpoint replay + resilient parallel map.

    Returns the per-point results in point order (metric dicts, with
    :class:`TaskFailure` in quarantined slots) plus the failure records.
    """
    store = open_checkpoint(checkpoint, config, resume)
    done: dict[int, dict] = {}
    if store is not None:
        done = {int(k): p for k, p in store.items()}
    pending = [(i, point) for i, point in enumerate(points) if i not in done]

    computed: dict[int, object] = {}
    if pending:
        executor = executor or ParallelExecutor(
            n_jobs=n_jobs, progress=progress, resilience=resilience
        )
        on_result = None
        if store is not None:

            def on_result(indices: list[int], block: list) -> None:
                for j, value in zip(indices, block):
                    if not isinstance(value, TaskFailure):
                        store.append(str(pending[j][0]), value)

        results = executor.map(
            evaluate, [point for _, point in pending], on_result=on_result
        )
        for (i, _), value in zip(pending, results):
            computed[i] = value
    if store is not None and not isinstance(checkpoint, CheckpointStore):
        store.close()

    evaluated: list = []
    failures: list[TaskFailure] = []
    for i in range(len(points)):
        value = done.get(i, computed.get(i))
        if isinstance(value, TaskFailure):
            value = TaskFailure(
                index=i,
                error_type=value.error_type,
                message=value.message,
                traceback=value.traceback,
                attempts=value.attempts,
                kind=value.kind,
            )
            failures.append(value)
        evaluated.append(value)
    return evaluated, failures


def collect_metrics(
    labels: Sequence[object], evaluated: Sequence[object]
) -> dict[str, tuple[float, ...]]:
    """Transpose per-point metric dicts into named series, validating keys.

    A :class:`TaskFailure` slot (quarantined point) contributes ``nan``
    for every metric; a sweep where *every* point failed has no metric
    keys to report and raises.
    """
    keys: set[str] | None = None
    for metrics in evaluated:
        if not isinstance(metrics, TaskFailure):
            keys = set(metrics)
            break
    if keys is None:
        raise ExecutionError(
            "every sweep point failed"
            + (
                f"; first: {evaluated[0].summary()}"
                if evaluated and isinstance(evaluated[0], TaskFailure)
                else ""
            )
        )
    collected: dict[str, list[float]] = {k: [] for k in keys}
    for label, metrics in zip(labels, evaluated):
        if isinstance(metrics, TaskFailure):
            for k in keys:
                collected[k].append(math.nan)
            continue
        if set(metrics) != keys:
            raise ConfigurationError(
                f"evaluator returned keys {sorted(metrics)} at {label}, "
                f"expected {sorted(keys)}"
            )
        for k, v in metrics.items():
            collected[k].append(float(v))
    return {k: tuple(v) for k, v in collected.items()}


def grid_points(
    parameters: Mapping[str, Sequence[float]],
) -> list[dict[str, float]]:
    """The full cartesian product of named axes, in row-major order.

    The first axis varies slowest, the last fastest (like nested loops in
    declaration order).  This is the single grid enumeration shared by
    :func:`sweep_grid` and the DSE grid strategy.
    """
    if not parameters:
        raise ConfigurationError("parameters must not be empty")
    for name, values in parameters.items():
        if not values:
            raise ConfigurationError(f"axis {name!r} has no values")
    names = list(parameters)
    return [
        {name: float(v) for name, v in zip(names, combo)}
        for combo in itertools.product(*(parameters[n] for n in names))
    ]


@dataclass(frozen=True)
class GridResult:
    """An N-D sweep: one point (a named-parameter dict) per grid cell."""

    parameters: tuple[str, ...]
    points: tuple[dict[str, float], ...]
    metrics: dict[str, tuple[float, ...]]
    #: Cells whose evaluation exhausted its retry budget (``nan`` slots).
    failures: tuple[TaskFailure, ...] = ()

    def series(self, metric: str) -> list[tuple[dict[str, float], float]]:
        if metric not in self.metrics:
            raise ConfigurationError(
                f"unknown metric {metric!r}; have {sorted(self.metrics)}"
            )
        return list(zip(self.points, self.metrics[metric]))

    def rows(self) -> list[list[float]]:
        """Table rows: parameter values in axis order, then sorted metrics."""
        keys = sorted(self.metrics)
        return [
            [*(point[p] for p in self.parameters), *(self.metrics[k][i] for k in keys)]
            for i, point in enumerate(self.points)
        ]

    def headers(self) -> list[str]:
        return [*self.parameters, *sorted(self.metrics)]


def sweep_grid(
    parameters: Mapping[str, Sequence[float]],
    evaluate: Callable[[dict[str, float]], dict[str, float]],
    n_jobs: int | None = 1,
    executor: ParallelExecutor | None = None,
    progress: ProgressHook | None = None,
    resilience: ResilienceConfig | None = None,
    checkpoint: str | Path | CheckpointStore | None = None,
    resume: bool = False,
) -> GridResult:
    """Evaluate ``evaluate`` at every point of a cartesian grid.

    ``parameters`` maps axis names to their values; ``evaluate`` receives
    one ``{name: value}`` dict per grid cell and returns named metrics
    (the same keys at every point, as in :func:`sweep`).  Points are
    enumerated by :func:`grid_points` and fanned through the executor —
    results are ordered and identical for every worker count.  The
    ``resilience``/``checkpoint``/``resume`` knobs match :func:`sweep`.
    """
    points = grid_points(parameters)
    config = {
        "kind": "sweep_grid/v1",
        "parameters": {k: [float(v) for v in vs] for k, vs in parameters.items()},
        "evaluator": callable_token(evaluate),
    }
    evaluated, failures = _evaluate_points(
        points,
        evaluate,
        config,
        n_jobs=n_jobs,
        executor=executor,
        progress=progress,
        resilience=resilience,
        checkpoint=checkpoint,
        resume=resume,
    )
    return GridResult(
        parameters=tuple(parameters),
        points=tuple(points),
        metrics=collect_metrics(points, evaluated),
        failures=tuple(failures),
    )


__all__ = [
    "GridResult",
    "SweepResult",
    "collect_metrics",
    "grid_points",
    "sweep",
    "sweep_grid",
]
