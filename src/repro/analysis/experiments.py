"""One driver per paper table/figure (the per-experiment index of DESIGN.md).

Every function returns an :class:`ExperimentResult`: structured data plus
a rendered text report.  The benchmarks call these with default (fast)
parameters; EXPERIMENTS.md records the outcomes against the paper's
numbers.  Experiment ids follow DESIGN.md:

=====  ==============================================================
E1     Fig. 4 — SRLR waveforms
E2     Eq. (1)/(2) — pulse-width drift across stages at skewed corners
E3     Section III-B — driver failure modes
E4     Fig. 6 — Monte Carlo error probability vs swing
E5     Section IV — headline link metrics
E6     Fig. 8 — energy vs bandwidth density plane
E7     Table I — comparison of silicon-proven interconnects
E8     Section IV — bias generator overhead
E9     Section IV — router power/area split
E10    Section I — mesh NoC power breakdowns
E11    Section II — multicast-for-free
E12    ablation — robustness technique decomposition
E13    ablation — sizing sweeps (segment length, swing, driver)
E14    NoC-level — latency/throughput/energy under traffic
E15    extension — crosstalk robustness of the single-ended wires
E16    extension — router pipeline bypass (buffer power mitigation)
E17    extension — the 64-bit parallel SRLR datapath (skew, bus yield)
E18    extension — temperature tracking of the adaptive swing scheme
E19    extension — system studies: chip power, mesh-vs-Clos, serialization
E20    extension — O1TURN adaptive routing vs XY under adversarial traffic
E21    extension — technology scaling: the datapath share grows with nodes
E22    extension — repeaterless/equalized links vs repeating, simulated
=====  ==============================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.analysis.report import format_kv, format_table
from repro.circuit import (
    NMOSDriver,
    SRLRLink,
    alternating_plan,
    robust_design,
    single_plan,
    straightforward_design,
    stage_waveforms,
    waveform_table,
)
from repro.circuit.bias import fixed_for_amplitude
from repro.circuit.srlr import DEFAULT_NOMINAL_SWING, _nmos_amplitude_for_swing
from repro.energy import (
    RouterPowerModel,
    bias_overhead,
    full_swing_link_energy,
    srlr_link_energy,
    table1_designs,
    this_work,
)
from repro.energy.router import PUBLISHED_NOC_BREAKDOWNS, datapath_share
from repro.mc import (
    default_stress_pattern,
    design_variants,
    immunity_ratio,
    measure_ber,
    q_factor_ber,
    run_monte_carlo,
    sweep_swing,
)
from repro.noc import (
    MeshTopology,
    NocConfig,
    NocSimulator,
    SyntheticTraffic,
    multicast_tree_links,
    price_stats,
    tap_destinations,
    unicast_path_hops,
)
from repro.tech import GlobalCorner, corner_sample, tech_45nm_soi
from repro.units import GBPS, MM, MW, PS, UM


@dataclass
class ExperimentResult:
    """Structured outcome of one experiment."""

    experiment_id: str
    title: str
    data: dict[str, Any] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


# --------------------------------------------------------------------------- E1


def e1_fig4_waveforms(stage_index: int = 3, n_rows: int = 24) -> ExperimentResult:
    """Fig. 4: IN / node X / OUT waveforms of one repeater."""
    link = SRLRLink(robust_design())
    wf = stage_waveforms(link, stage_index)
    rows = waveform_table(wf, n_rows)
    text = format_table(
        ["t [ps]", "IN [V]", "node X [V]", "OUT [V]"],
        [[f"{r[0]:.0f}", f"{r[1]:.3f}", f"{r[2]:.3f}", f"{r[3]:.3f}"] for r in rows],
        title=f"E1 / Fig. 4 — SRLR waveforms (stage {stage_index})",
    )
    data = {
        "in_peak": float(np.max(wf.v_in)),
        "out_peak": float(np.max(wf.v_out)),
        "x_standby": float(wf.v_x[0]),
        "out_width_ps": wf.out_width / PS,
        "rows": rows,
    }
    summary = format_kv(
        "Fig. 4 checkpoints",
        [
            ("IN peak (low swing) [V]", data["in_peak"]),
            ("OUT peak (full swing) [V]", data["out_peak"]),
            ("X standby = Vdd - Vth [V]", data["x_standby"]),
            ("OUT width [ps]", data["out_width_ps"]),
        ],
    )
    return ExperimentResult("E1", "Fig. 4 SRLR waveforms", data, text + "\n\n" + summary)


# --------------------------------------------------------------------------- E2


def e2_pulse_width_dynamics(
    corner_shifts: tuple[float, ...] = (0.0, 0.014, 0.016, 0.018),
    n_stages: int = 10,
) -> ExperimentResult:
    """Eq. (1)/(2): per-stage output pulse widths under global corners.

    Uses a fixed (non-adaptive) swing reference so the corner shift is
    uncompensated, exposing the drift the delay-cell design must survive:
    the single-cell design's widths shrink monotonically (Eq. (1)) until
    the pulse dies; the alternating design decays more slowly ("takes
    more stages to saturate", Section III-A).
    """
    tech = tech_45nm_soi()
    amplitude = _nmos_amplitude_for_swing(
        tech, DEFAULT_NOMINAL_SWING, NMOSDriver(), 1 * MM
    )
    fixed = fixed_for_amplitude(tech, amplitude)

    def profile(plan, dv: float) -> list[float | None]:
        design = dataclasses.replace(
            robust_design(n_stages=n_stages),
            delay_plan=plan,
            swing_reference=fixed,
        )
        sample = corner_sample(tech, GlobalCorner("drift", dv, dv))
        records = SRLRLink(design, sample).propagate_pulse(dwell_limit=1 / 4.1e9)
        widths: list[float | None] = [
            (r.out_width / PS if r.fired else None) for r in records
        ]
        widths += [None] * (n_stages - len(widths))
        return widths

    rows = []
    data: dict[str, Any] = {"profiles": {}}
    for dv in corner_shifts:
        single = profile(single_plan(), dv)
        alt = profile(alternating_plan(), dv)
        data["profiles"][dv] = {"single": single, "alternating": alt}
        rows.append(
            [f"+{dv*1000:.0f} mV", "single"]
            + [("-" if w is None else f"{w:.0f}") for w in single]
        )
        rows.append(
            [f"+{dv*1000:.0f} mV", "alternating"]
            + [("-" if w is None else f"{w:.0f}") for w in alt]
        )
    headers = ["dVth(global)", "delay cells"] + [f"W{n}" for n in range(n_stages)]
    text = format_table(
        headers,
        rows,
        title="E2 / Eq.(1) — output pulse width [ps] per stage (fixed Vref)",
    )
    # Quantify the "more stages to saturate" claim at the strongest shift
    # that still lets stage 0 fire.
    last = corner_shifts[-1]
    s_alive = sum(1 for w in data["profiles"][last]["single"] if w is not None)
    a_alive = sum(1 for w in data["profiles"][last]["alternating"] if w is not None)
    data["stages_alive_single"] = s_alive
    data["stages_alive_alternating"] = a_alive
    text += (
        f"\n\nAt dVth=+{last*1000:.0f} mV the single design propagates "
        f"{s_alive} stages, the alternating design {a_alive}."
    )
    return ExperimentResult("E2", "Pulse-width drift (Eq. 1/2)", data, text)


# --------------------------------------------------------------------------- E3


def e3_driver_modes(
    shifts: tuple[float, ...] = (-0.075, -0.045, 0.0, 0.045, 0.075),
    bit_rate: float = 4.1e9,
) -> ExperimentResult:
    """Section III-B: corner-plane failure maps of the two drivers.

    The inverter-driver design fails in two regions of the (dVth_n,
    dVth_p) plane — weak PMOS (insufficient swing) and strong PMOS / weak
    NMOS (the '11110' residual failure) — while the NMOS driver's plane
    collapses to a single weak-NMOS edge, insensitive to dVth_p.
    """
    tech = tech_45nm_soi()
    pattern = default_stress_pattern()
    variants = design_variants(tech)
    designs = {
        "nmos (fixed Vref)": variants["no_adaptive"],
        "nmos + adaptive": variants["robust"],
        "inverter": straightforward_design(tech),
    }
    maps: dict[str, list[str]] = {}
    fail_counts: dict[str, int] = {}
    for key, design in designs.items():
        grid_rows = []
        fails = 0
        for dvp in shifts:
            row = ""
            for dvn in shifts:
                sample = corner_sample(tech, GlobalCorner("map", dvn, dvp))
                outcome = SRLRLink(design, sample).transmit(pattern, 1.0 / bit_rate)
                ok = outcome.ok
                fails += 0 if ok else 1
                row += "." if ok else "X"
            grid_rows.append(row)
        maps[key] = grid_rows
        fail_counts[key] = fails
    lines = [
        "E3 / Section III-B — corner-plane pass maps",
        f"(rows: dVth_p from {shifts[0]:+.3f} V to {shifts[-1]:+.3f} V; "
        f"columns: dVth_n likewise; '.' pass, 'X' fail)",
        "",
    ]
    for key in designs:
        lines.append(f"{key} driver:")
        for dvp, row in zip(shifts, maps[key]):
            lines.append(f"  dvp={dvp:+.3f}  {row}")
        lines.append("")
    # The paper's point is about failure *modes*: the NMOS driver's map
    # should be a dVth_p-independent band (one mode: weak NMOS), while the
    # inverter's map varies with dVth_p (two modes).  Quantify both.
    nmos_rows = set(maps["nmos (fixed Vref)"])
    inverter_rows = set(maps["inverter"])
    lines.append(
        f"distinct failure rows across dVth_p: nmos {len(nmos_rows)} "
        f"(single weak-NMOS mode) vs inverter {len(inverter_rows)} "
        f"(PMOS-dependent modes)"
    )
    lines.append(
        "failing corners: "
        + ", ".join(f"{k}: {v}/{len(shifts)**2}" for k, v in fail_counts.items())
    )
    data = {"maps": maps, "fail_counts": fail_counts, "shifts": shifts}
    return ExperimentResult("E3", "Driver failure modes", data, "\n".join(lines))


# --------------------------------------------------------------------------- E4


def e4_fig6_montecarlo(
    swings: tuple[float, ...] = (0.27, 0.285, 0.30, 0.315, 0.33),
    n_runs: int = 1000,
    n_jobs: int | None = 1,
    cache=None,
    progress=None,
) -> ExperimentResult:
    """Fig. 6: Monte Carlo error probability vs swing, both designs.

    The immunity ratio at the selected (default) swing reproduces the
    paper's "about 3.7 times higher process variation immunity".
    ``n_jobs``/``cache``/``progress`` go to the parallel runtime; results
    are identical for every worker count.
    """
    result = sweep_swing(
        list(swings),
        ["robust", "straightforward"],
        n_runs=n_runs,
        n_jobs=n_jobs,
        cache=cache,
        progress=progress,
    )
    rows = []
    for point in result.points:
        rows.append(
            [
                f"{point.swing*1000:.0f} mV",
                f"{point.error_probability('straightforward'):.3f}",
                f"{point.error_probability('robust'):.3f}",
            ]
        )
    text = format_table(
        ["nominal swing", "straightforward P(err)", "robust P(err)"],
        rows,
        title=f"E4 / Fig. 6 — {n_runs}-run Monte Carlo error probability",
    )
    # Immunity at the selected swing (nearest to the default).
    selected = min(swings, key=lambda s: abs(s - DEFAULT_NOMINAL_SWING))
    point = result.points[list(swings).index(selected)]
    ratio = immunity_ratio(
        point.results["straightforward"], point.results["robust"]
    )
    bound_note = " (lower bound)" if ratio.is_lower_bound else ""
    text += (
        f"\n\nSelected swing {selected*1000:.0f} mV: immunity ratio "
        f"{ratio:.2f}x{bound_note} (paper: ~3.7x)"
    )
    data = {
        "sweep": result,
        "selected_swing": selected,
        "immunity_ratio": ratio,
    }
    return ExperimentResult("E4", "Fig. 6 Monte Carlo", data, text)


# --------------------------------------------------------------------------- E5


def e5_headline(n_ber_bits: int = 50_000, noise_sigma: float = 0.004) -> ExperimentResult:
    """Section IV headline: rate, energy, density, BER, latency at TT."""
    design = robust_design()
    link = SRLRLink(design)
    pattern = default_stress_pattern()
    max_rate = link.max_data_rate(pattern)
    report = srlr_link_energy(design)
    fs = full_swing_link_energy(design)
    ber = measure_ber(link, 1.0 / 4.1e9, n_bits=n_ber_bits, noise_sigma=noise_sigma)
    # Analytic extrapolation of the BER from the worst-stage margin, the
    # standard way 1e-9-class claims are supported.  The binding margin at
    # speed is the *rate-limited* sensing floor: the trip must complete in
    # the slack the unit interval leaves after the self-reset (Wx +
    # recovery), which is far tighter than the DC sensitivity floor.
    bit_period = 1.0 / 4.1e9
    margin = min(
        DEFAULT_NOMINAL_SWING
        - s.sensitivity_swing(
            max(bit_period - s.wx - design.reset_recovery, 10 * PS)
        )
        for s in link.stages
    )
    ber_extrapolated = q_factor_ber(max(margin, 0.0), noise_sigma)
    latency = link.latency()
    pairs = [
        ("max data rate [Gb/s] (paper 4.1)", max_rate / GBPS),
        ("energy [fJ/bit/mm] (paper 40.4)", report.fj_per_bit_per_mm),
        ("energy [fJ/bit/cm] (paper 404)", report.fj_per_bit_per_cm),
        ("link power @4.1G [mW] (paper 1.66)", report.power / MW),
        ("bandwidth density [Gb/s/um] (paper 6.83)", report.bandwidth_density_gbps_per_um),
        ("BER observed (errors/bits)", f"{ber.errors}/{ber.transmitted}"),
        ("BER 95% upper bound", ber.upper_bound),
        ("BER Q-factor extrapolation (paper <1e-9)", ber_extrapolated),
        ("10mm latency [ps]", latency / PS),
        ("full-swing baseline [fJ/bit/mm]", fs.fj_per_bit_per_mm),
        ("low-swing saving vs full swing", fs.fj_per_bit_per_mm / report.fj_per_bit_per_mm),
    ]
    text = format_kv("E5 / Section IV — headline link metrics (TT)", pairs)
    data = {
        "max_rate": max_rate,
        "energy_report": report,
        "ber": ber,
        "ber_extrapolated": ber_extrapolated,
        "latency": latency,
        "full_swing": fs,
    }
    return ExperimentResult("E5", "Headline metrics", data, text)


# --------------------------------------------------------------------------- E6


def e6_fig8_energy_density() -> ExperimentResult:
    """Fig. 8: 1 cm link-traversal energy vs bandwidth density plane."""
    designs = table1_designs()
    # Replace the published this-work row with our simulated energy.
    designs[-1] = this_work(srlr_link_energy().fj_per_bit_per_cm)
    rows = []
    curves: dict[str, list[tuple[float, float]]] = {}
    for d in designs:
        curves[d.key] = d.energy_curve()
        rows.append(
            [
                d.citation,
                f"{d.bandwidth_density_gbps_per_um:.3f}",
                f"{d.energy_fj_per_bit_per_cm:.0f}",
                d.signaling,
            ]
        )
    text = format_table(
        ["design", "BW density [Gb/s/um]", "E(10mm LT) [fJ/bit/cm]", "signaling"],
        rows,
        title="E6 / Fig. 8 — operating points (this-work energy is simulated)",
    )
    curve_rows = []
    for key, pts in curves.items():
        for density, energy in pts:
            curve_rows.append([key, f"{density:.3f}", f"{energy:.0f}"])
    text += "\n\n" + format_table(
        ["design", "density [Gb/s/um]", "energy [fJ/bit/cm]"],
        curve_rows,
        title="Fig. 8 curves (pitch-swept around each published point)",
    )
    ours = designs[-1]
    others = designs[:-1]
    # Fig. 8's claim: the SRLR point sits on the Pareto frontier — no
    # prior design reaches its bandwidth density at equal-or-lower energy
    # — and it holds the highest density outright (as in the paper, where
    # 404 fJ/bit/cm at 6.83 Gb/s/um beats every >4 Gb/s/um competitor on
    # energy while the low-density repeaterless links sit far left).
    on_frontier = not any(
        d.bandwidth_density_gbps_per_um >= ours.bandwidth_density_gbps_per_um
        and d.energy_fj_per_bit_per_cm <= ours.energy_fj_per_bit_per_cm
        for d in others
    )
    highest_density = all(
        ours.bandwidth_density_gbps_per_um > d.bandwidth_density_gbps_per_um
        for d in others
    )
    beats_high_density_rivals = all(
        ours.energy_fj_per_bit_per_cm < d.energy_fj_per_bit_per_cm
        for d in others
        if d.bandwidth_density_gbps_per_um > 4.0
    )
    text += (
        f"\n\nPareto frontier membership: {on_frontier}; highest density: "
        f"{highest_density}; lowest energy among >4 Gb/s/um designs: "
        f"{beats_high_density_rivals}."
    )
    data = {
        "designs": designs,
        "curves": curves,
        "on_pareto_frontier": on_frontier,
        "highest_density": highest_density,
        "beats_high_density_rivals": beats_high_density_rivals,
    }
    return ExperimentResult("E6", "Fig. 8 energy vs density", data, text)


# --------------------------------------------------------------------------- E7


def e7_table1() -> ExperimentResult:
    """Table I: the comparison table, plus our reproduced this-work row."""
    designs = table1_designs()
    measured = srlr_link_energy()
    rows = []
    for d in designs:
        rows.append(
            [
                d.citation,
                d.signaling,
                f"{d.data_rate / GBPS:.1f}",
                f"{d.bandwidth_density_gbps_per_um:.3f}",
                f"{d.energy_fj_per_bit_per_cm:.0f}",
                d.repeater_note,
                d.tech.name,
            ]
        )
    rows.append(
        [
            "This Work (reproduced)",
            "single-ended",
            "4.1",
            f"{measured.bandwidth_density_gbps_per_um:.3f}",
            f"{measured.fj_per_bit_per_cm:.0f}",
            "10 repeaters",
            "45nm SOI CMOS (model)",
        ]
    )
    text = format_table(
        [
            "design",
            "signaling",
            "rate [Gb/s]",
            "density [Gb/s/um]",
            "E 10mm LT [fJ/b/cm]",
            "repeaters",
            "process",
        ],
        rows,
        title="E7 / Table I — comparison of silicon-proven on-chip interconnects",
    )
    data = {"designs": designs, "measured_energy_fj_per_bit_per_cm": measured.fj_per_bit_per_cm}
    return ExperimentResult("E7", "Table I", data, text)


# --------------------------------------------------------------------------- E8


def e8_bias_overhead(n_bits_options: tuple[int, ...] = (1, 16, 64, 256)) -> ExperimentResult:
    """Section IV: the 587 uW bias generator amortized over link width."""
    rows = []
    reports = {}
    for n_bits in n_bits_options:
        rep = bias_overhead(n_bits=n_bits)
        reports[n_bits] = rep
        rows.append(
            [
                n_bits,
                f"{rep.link_power / MW:.2f}",
                f"{rep.bias_power * 1e6:.0f}",
                f"{rep.fraction * 100:.2f}%",
            ]
        )
    text = format_table(
        ["link width [bits]", "link power [mW]", "bias power [uW]", "bias share"],
        rows,
        title="E8 / Section IV — adaptive-swing bias generator overhead "
        "(paper: 0.6% at 64 bits)",
    )
    data = {"reports": reports, "fraction_64": reports[64].fraction if 64 in reports else None}
    return ExperimentResult("E8", "Bias overhead", data, text)


# --------------------------------------------------------------------------- E9


def e9_router_power() -> ExperimentResult:
    """Section IV: router power split and area fractions."""
    model = RouterPowerModel()
    srlr = model.power_breakdown(1.0, "srlr")
    fs = model.power_breakdown(1.0, "full_swing")
    area = model.area_breakdown()
    pairs = [
        ("buffers [mW] (paper 38.8)", srlr.buffers / MW),
        ("control [mW] (paper 5.2)", srlr.control / MW),
        ("SRLR datapath [mW] (paper 12.9)", srlr.datapath / MW),
        ("full-swing datapath [mW]", fs.datapath / MW),
        ("datapath saving", fs.datapath / srlr.datapath),
        ("SRLR datapath area [mm^2] (paper 0.061)", area.datapath * 1e6),
        ("router area [mm^2] (paper 0.34)", area.total * 1e6),
        ("datapath area share (paper ~18%)", f"{area.datapath_fraction*100:.1f}%"),
    ]
    text = format_kv("E9 / Section IV — 64b 5-port router power & area", pairs)
    data = {"power_srlr": srlr, "power_full_swing": fs, "area": area}
    return ExperimentResult("E9", "Router power & area", data, text)


# --------------------------------------------------------------------------- E10


def e10_noc_breakdown() -> ExperimentResult:
    """Section I: published NoC power breakdowns + our model's split."""
    rows = []
    for chip, parts in PUBLISHED_NOC_BREAKDOWNS.items():
        rows.append(
            [
                chip,
                f"{parts['links']:.0f}%",
                f"{parts['crossbar']:.0f}%",
                f"{parts['buffers']:.0f}%",
                f"{datapath_share(chip):.0f}%",
            ]
        )
    model = RouterPowerModel()
    fs = model.power_breakdown(1.0, "full_swing")
    # Split our datapath into link and crossbar parts by wire length share.
    link_share = 1.0 / (1.0 + model._XBAR_LENGTH_FACTOR)
    rows.append(
        [
            "this model (full swing)",
            f"{fs.fraction('datapath') * link_share * 100:.0f}%",
            f"{fs.fraction('datapath') * (1 - link_share) * 100:.0f}%",
            f"{fs.fraction('buffers') * 100:.0f}%",
            f"{fs.fraction('datapath') * 100:.0f}%",
        ]
    )
    text = format_table(
        ["chip", "links", "crossbar", "buffers", "datapath (links+xbar)"],
        rows,
        title="E10 / Section I — mesh NoC power breakdowns",
    )
    data = {"published": PUBLISHED_NOC_BREAKDOWNS, "model_full_swing": fs}
    return ExperimentResult("E10", "NoC power breakdowns", data, text)


# --------------------------------------------------------------------------- E11


def e11_multicast(
    k: int = 8,
    degrees: tuple[int, ...] = (2, 4, 8, 16),
    n_samples: int = 200,
    seed: int = 11,
) -> ExperimentResult:
    """Section II: the free-multicast benefit.

    Analytic part: XY-tree link traversals (with SRLR taps) vs the sum of
    unicast paths, averaged over random destination sets.  The tree saves
    every shared prefix once; taps additionally serve straight-through
    destinations without ejection cost.
    """
    topo = MeshTopology(k)
    rng = np.random.default_rng(seed)
    nodes = topo.nodes()
    rows = []
    savings = {}
    for degree in degrees:
        tree_total = 0
        unicast_total = 0
        taps_total = 0
        for _ in range(n_samples):
            src = nodes[int(rng.integers(len(nodes)))]
            others = [n for n in nodes if n != src]
            idx = rng.choice(len(others), degree, replace=False)
            dests = frozenset(others[i] for i in idx)
            tree_total += len(multicast_tree_links(topo, src, dests))
            unicast_total += sum(unicast_path_hops(topo, src, d) for d in dests)
            taps_total += len(tap_destinations(topo, src, dests))
        saving = unicast_total / tree_total
        savings[degree] = saving
        rows.append(
            [
                degree,
                f"{tree_total / n_samples:.1f}",
                f"{unicast_total / n_samples:.1f}",
                f"{saving:.2f}x",
                f"{taps_total / n_samples:.1f}",
            ]
        )
    text = format_table(
        [
            "multicast degree",
            "tree link hops",
            "unicast link hops",
            "hop saving",
            "free tap deliveries",
        ],
        rows,
        title=f"E11 / Section II — 1-to-N multicast on a {k}x{k} mesh",
    )
    data = {"savings": savings, "k": k}
    return ExperimentResult("E11", "Multicast for free", data, text)


def e11_multicast_simulated(
    k: int = 4,
    injection_rate: float = 0.02,
    multicast_degree: int = 4,
    measure: int = 500,
    seed: int = 11,
) -> ExperimentResult:
    """Section II, simulated: tree+taps vs unicast fan-out in the NoC.

    The unicast baseline converts every multicast into ``degree``
    independent packets at the source (what a multicast-blind NoC does).
    """
    def run(as_unicast: bool, taps: bool):
        config = NocConfig(enable_taps=taps)
        topo = MeshTopology(k)
        traffic = SyntheticTraffic(
            topo,
            injection_rate,
            multicast_fraction=0.0 if as_unicast else 1.0,
            multicast_degree=multicast_degree,
            seed=seed,
        )
        if as_unicast:
            # Same aggregate destination demand via unicasts.
            traffic = SyntheticTraffic(
                topo,
                min(injection_rate * multicast_degree, 1.0),
                pattern="uniform",
                seed=seed,
            )
        sim = NocSimulator(k, config=config, traffic=traffic)
        stats = sim.run(warmup=100, measure=measure)
        return stats

    tree_stats = run(as_unicast=False, taps=True)
    uni_stats = run(as_unicast=True, taps=False)
    tree_energy = price_stats(tree_stats, datapath="srlr")
    uni_energy = price_stats(uni_stats, datapath="srlr")
    tree_per = tree_energy.energy_per_delivered_flit(max(tree_stats.delivered_count, 1))
    uni_per = uni_energy.energy_per_delivered_flit(max(uni_stats.delivered_count, 1))
    pairs = [
        ("tree deliveries", tree_stats.delivered_count),
        ("tree tap deliveries", tree_stats.tap_deliveries),
        ("tree avg latency [cyc]", tree_stats.average_latency),
        ("tree energy/delivery [pJ]", tree_per * 1e12),
        ("unicast deliveries", uni_stats.delivered_count),
        ("unicast avg latency [cyc]", uni_stats.average_latency),
        ("unicast energy/delivery [pJ]", uni_per * 1e12),
        ("energy saving (unicast/tree)", uni_per / tree_per),
    ]
    text = format_kv(
        f"E11b — simulated multicast (degree {multicast_degree}, {k}x{k} mesh)", pairs
    )
    data = {
        "tree": tree_stats,
        "unicast": uni_stats,
        "energy_saving": uni_per / tree_per,
    }
    return ExperimentResult("E11b", "Multicast simulated", data, text)


# --------------------------------------------------------------------------- E12


def e12_ablation(
    n_runs: int = 500,
    n_jobs: int | None = 1,
    cache=None,
    progress=None,
) -> ExperimentResult:
    """Ablation: each robustness technique toggled at the selected swing."""
    from repro.runtime import ParallelExecutor

    variants = design_variants()
    order = [
        "robust",
        "no_alternating",
        "no_adaptive",
        "no_nmos_driver",
        "straightforward",
    ]
    executor = ParallelExecutor(n_jobs=n_jobs, progress=progress)
    results = {}
    rows = []
    for key in order:
        res = run_monte_carlo(
            variants[key], n_runs=n_runs, executor=executor, cache=cache
        )
        results[key] = res
        rows.append([key, f"{res.error_probability:.3f}", res.n_failures])
    text = format_table(
        ["variant", "error probability", f"failures / {n_runs}"],
        rows,
        title="E12 — robustness technique ablation (Monte Carlo)",
    )
    ratio = immunity_ratio(results["straightforward"], results["robust"])
    bound_note = " (lower bound)" if ratio.is_lower_bound else ""
    text += (
        f"\n\nstraightforward/robust immunity ratio: {ratio:.2f}x{bound_note} "
        "(paper ~3.7x)"
    )
    data = {"results": results, "immunity_ratio": ratio}
    return ExperimentResult("E12", "Robustness ablation", data, text)


# --------------------------------------------------------------------------- E13


def e13_sizing() -> ExperimentResult:
    """Ablation: segment length, swing-energy trade, driver sizing."""
    from repro.circuit import (
        optimize_driver,
        sweep_segment_length,
        sweep_swing_energy,
    )

    lengths = [0.5 * MM, 1.0 * MM, 2.0 * MM, 2.5 * MM]
    length_points = sweep_segment_length(lengths)
    rows = [
        [
            f"{p.segment_length / MM:.1f}",
            p.ok,
            f"{p.swing_at_receiver * 1000:.0f}",
            ("-" if p.energy_per_bit_per_mm == float("inf") else f"{p.energy_per_bit_per_mm:.1f}"),
        ]
        for p in length_points
    ]
    text = format_table(
        ["segment [mm]", "link works", "receiver swing [mV]", "energy [fJ/b/mm]"],
        rows,
        title="E13a — repeater insertion length (the case for ~1 mm)",
    )
    swing_points = sweep_swing_energy([0.26, 0.28, 0.30, 0.32, 0.34])
    rows = [
        [f"{p.swing*1000:.0f}", f"{p.energy_per_bit_per_mm:.1f}", f"{p.margin*1000:.0f}"]
        for p in swing_points
    ]
    text += "\n\n" + format_table(
        ["swing [mV]", "energy [fJ/b/mm]", "TT sense margin [mV]"],
        rows,
        title="E13b — swing vs energy vs margin",
    )
    driver = optimize_driver([0.6, 0.8, 1.0, 1.3, 1.6])
    text += "\n\n" + format_kv(
        "E13c — driver sizing (min energy at >= 4.1 Gb/s)",
        [
            ("width_up [um]", driver.width_up / UM),
            ("width_down [um]", driver.width_down / UM),
            ("energy [fJ/b/mm]", driver.energy_per_bit_per_mm),
            ("max rate [Gb/s]", driver.max_data_rate / GBPS),
        ],
    )
    data = {
        "length_points": length_points,
        "swing_points": swing_points,
        "driver": driver,
    }
    return ExperimentResult("E13", "Sizing sweeps", data, text)


# --------------------------------------------------------------------------- E14


def e14_noc_traffic(
    k: int = 4,
    rates: tuple[float, ...] = (0.05, 0.15, 0.25, 0.35),
    patterns: tuple[str, ...] = ("uniform", "transpose"),
    measure: int = 400,
    seed: int = 5,
    payload_mode: str = "constant",
    coupling: bool = True,
) -> ExperimentResult:
    """NoC-level: latency/throughput/energy, SRLR vs full-swing datapath.

    ``payload_mode`` selects what bits the flits carry (docs/WORKLOADS.md):
    the default ``"constant"`` prices links at the calibrated worst-case
    per-flit energy (the golden-pinned behavior); ``"random"`` /
    ``"worst_case"`` attach payload words and switch link pricing to
    counted bit transitions plus the crosstalk coupling term (dropped
    with ``coupling=False``).
    """
    from repro.workload import build_traffic

    rows = []
    data: dict[str, Any] = {"runs": []}
    for pattern in patterns:
        for rate in rates:
            topology = MeshTopology(k)
            traffic = build_traffic(
                topology,
                injection_rate=rate,
                pattern=pattern,
                seed=seed,
                payload_mode=payload_mode,
            ) if payload_mode != "constant" else None
            sim = NocSimulator(
                k, traffic=traffic, injection_rate=rate, pattern=pattern,
                seed=seed, engine="fast",
            )
            stats = sim.run(warmup=150, measure=measure)
            srlr = price_stats(
                stats, datapath="srlr", links=sim.links, coupling=coupling
            )
            fs = price_stats(
                stats, datapath="full_swing", links=sim.links,
                coupling=coupling,
            )
            rows.append(
                [
                    pattern,
                    rate,
                    f"{stats.average_latency:.1f}",
                    f"{stats.throughput(k * k):.3f}",
                    f"{srlr.total * 1e9:.1f}",
                    f"{fs.total * 1e9:.1f}",
                    f"{fs.datapath / max(srlr.datapath, 1e-30):.2f}x",
                ]
            )
            data["runs"].append(
                {
                    "pattern": pattern,
                    "rate": rate,
                    "stats": stats,
                    "energy_srlr": srlr,
                    "energy_full_swing": fs,
                }
            )
    text = format_table(
        [
            "pattern",
            "inj rate",
            "avg latency [cyc]",
            "throughput",
            "E srlr [nJ]",
            "E full-swing [nJ]",
            "datapath saving",
        ],
        rows,
        title=f"E14 — {k}x{k} mesh NoC under synthetic traffic",
    )
    return ExperimentResult("E14", "NoC traffic", data, text)


# --------------------------------------------------------------------------- E15


def e15_crosstalk(
    space_scales: tuple[float, ...] = (0.6, 0.8, 1.0, 1.5),
) -> ExperimentResult:
    """Extension: crosstalk robustness of the single-ended SRLR wires.

    The paper criticizes long equalized links for crosstalk vulnerability;
    the SRLR's answer is short (1 mm) segments and per-segment
    regeneration.  This experiment quantifies it with the exact coupled
    two-line model: the noise a switching neighbor injects into a quiet
    victim, and the victim's swing when the neighbor switches against it,
    versus the stage's sensing margin — swept over wire spacing (the
    density axis of Fig. 8 gains a robustness dimension).
    """
    from repro.circuit.srlr import DEFAULT_LAUNCH_WIDTH
    from repro.tech.variation import nominal_sample
    from repro.wire.coupled import CoupledPair
    from repro.wire.rc import WireGeometry, WireSegment

    tech = tech_45nm_soi()
    design = robust_design(tech)
    link = SRLRLink(design)
    stage = link.stages[0]
    launch = link._pm_launch
    floor = stage.sensitivity_swing(180 * PS)
    margin = DEFAULT_NOMINAL_SWING - floor

    rows = []
    data: dict[str, Any] = {"points": [], "margin": margin}
    for scale in space_scales:
        geometry = WireGeometry(tech.wire_ref_width, tech.wire_ref_space * scale)
        segment = WireSegment(tech, geometry, design.segment_length)
        pair = CoupledPair(
            segment,
            r_victim=launch.r_up,
            r_aggressor=launch.r_up,
            c_load=link._c_load,
        )
        noise = pair.victim_noise(DEFAULT_LAUNCH_WIDTH, launch.amplitude)
        quiet = pair.victim_far_peak(DEFAULT_LAUNCH_WIDTH, launch.amplitude, 0.0)
        opposing = pair.victim_far_peak(
            DEFAULT_LAUNCH_WIDTH, launch.amplitude, -launch.amplitude
        )
        swing_loss = quiet - opposing
        ok = opposing > floor and noise < margin
        data["points"].append(
            {
                "space_scale": scale,
                "noise": noise,
                "swing_quiet": quiet,
                "swing_opposing": opposing,
                "ok": ok,
            }
        )
        rows.append(
            [
                f"{scale:.1f}x",
                f"{noise*1000:.0f}",
                f"{quiet*1000:.0f}",
                f"{opposing*1000:.0f}",
                f"{swing_loss*1000:.0f}",
                "yes" if ok else "no",
            ]
        )
    text = format_table(
        [
            "spacing",
            "victim noise [mV]",
            "swing quiet [mV]",
            "swing opposing [mV]",
            "Miller loss [mV]",
            "margins hold",
        ],
        rows,
        title=(
            "E15 — crosstalk on the single-ended SRLR wire "
            f"(sense floor {floor*1000:.0f} mV, margin {margin*1000:.0f} mV)"
        ),
    )
    text += (
        "\n\nShorter spacing raises both coupling noise and the dynamic "
        "Miller swing loss; per-mm regeneration bounds the exposure to one "
        "segment (vs a 10 mm accumulation on repeaterless links)."
    )
    return ExperimentResult("E15", "Crosstalk robustness", data, text)


# --------------------------------------------------------------------------- E16


def e16_bypass(
    k: int = 4,
    rates: tuple[float, ...] = (0.05, 0.2, 0.35),
    measure: int = 400,
    seed: int = 5,
) -> ExperimentResult:
    """Extension: router pipeline bypass (the intro's buffer-power lever).

    The paper positions the SRLR against the *datapath* share of NoC
    power, noting buffer power has its own mitigations (virtual
    bypassing, bufferless routing [8]-[13]).  This experiment implements
    a bypass — flits arriving at empty VCs skip the buffered pipeline —
    and quantifies both effects it is known for: lower zero-load latency
    and lower buffer access energy, fading as load (and thus occupancy)
    grows.
    """
    rows = []
    data: dict[str, Any] = {"runs": []}
    for rate in rates:
        base_sim = NocSimulator(k, injection_rate=rate, seed=seed, engine="fast")
        base = base_sim.run(warmup=150, measure=measure)
        byp_sim = NocSimulator(
            k, config=NocConfig(enable_bypass=True), injection_rate=rate,
            seed=seed, engine="fast",
        )
        byp = byp_sim.run(warmup=150, measure=measure)
        e_base = price_stats(base)
        e_byp = price_stats(byp)
        bypass_share = byp.bypassed_flits / max(byp.buffer_writes, 1)
        rows.append(
            [
                rate,
                f"{base.average_latency:.1f}",
                f"{byp.average_latency:.1f}",
                f"{bypass_share*100:.0f}%",
                f"{e_base.buffers*1e9:.2f}",
                f"{e_byp.buffers*1e9:.2f}",
            ]
        )
        data["runs"].append(
            {
                "rate": rate,
                "latency_base": base.average_latency,
                "latency_bypass": byp.average_latency,
                "bypass_share": bypass_share,
                "buffer_energy_base": e_base.buffers,
                "buffer_energy_bypass": e_byp.buffers,
            }
        )
    text = format_table(
        [
            "inj rate",
            "latency (buffered)",
            "latency (bypass)",
            "flits bypassed",
            "buffer E [nJ]",
            "buffer E bypass [nJ]",
        ],
        rows,
        title=f"E16 — pipeline bypass on a {k}x{k} mesh",
    )
    return ExperimentResult("E16", "Pipeline bypass", data, text)


# --------------------------------------------------------------------------- E17


def e17_bus(
    n_bits: int = 16,
    n_runs: int = 60,
    n_words: int = 32,
) -> ExperimentResult:
    """Extension: the 64-bit parallel datapath of Fig. 3, lane by lane.

    Measures what the single-lane experiments cannot: lane-to-lane
    latency skew on a mismatched die (the DM's retiming budget) and bus
    yield, where one bad lane kills the word — with the lanes' shared
    global corner making failures strongly correlated (far kinder than
    the independent-lanes bound).
    """
    from repro.circuit.bus import SRLRBus, bus_yield, random_words
    from repro.tech.variation import monte_carlo_sample

    design = robust_design()
    words = random_words(n_words, n_bits)
    tt_bus = SRLRBus(design, n_bits=n_bits)
    tt_out = tt_bus.transmit_words(words, 1.0 / 4.1e9)

    skews = []
    for seed in range(5):
        sample = monte_carlo_sample(design.tech, 9100 + seed)
        bus = SRLRBus(design, n_bits=n_bits, sample=sample)
        skew = bus.skew()
        if skew != float("inf"):
            skews.append(skew)
    yield_report = bus_yield(design, n_bits=n_bits, n_runs=n_runs, n_words=n_words)

    pairs = [
        (f"TT {n_bits}-bit bus word errors", f"{tt_out.word_errors}/{n_words}"),
        ("TT bus energy/word [pJ]", f"{tt_out.energy / max(n_words,1) * 1e12:.2f}"),
        ("lane skew, mismatched dies [ps]",
         f"{min(skews)*1e12:.0f}..{max(skews)*1e12:.0f}" if skews else "-"),
        ("lane failure probability", f"{yield_report.lane_failure_probability:.3f}"),
        ("bus failure probability", f"{yield_report.bus_failure_probability:.3f}"),
        ("independent-lanes prediction", f"{yield_report.independence_prediction:.3f}"),
    ]
    text = format_kv(f"E17 — {n_bits}-bit parallel SRLR datapath", pairs)
    data = {
        "tt": tt_out,
        "skews": skews,
        "yield": yield_report,
    }
    return ExperimentResult("E17", "Parallel bus", data, text)


# --------------------------------------------------------------------------- E18


def e18_temperature(
    temps_c: tuple[float, ...] = (-25.0, 0.0, 25.0, 50.0, 85.0, 110.0),
) -> ExperimentResult:
    """Extension: the bias generator's temperature claim (footnote 3).

    The Oguey reference + M1 replica track threshold shifts from
    temperature exactly as they track process: the swing target rides
    Vth(T).  A fixed 300 K reference dropped into another thermal
    environment loses margin on both sides.  Mobility derating still
    slows the repeaters at high temperature — the physical speed
    derating every link has — so the adaptive scheme extends the working
    window rather than abolishing temperature effects.
    """
    from repro.tech.thermal import at_temperature, celsius

    t300 = tech_45nm_soi()
    base = robust_design(t300)
    pattern = default_stress_pattern()
    rows = []
    data: dict[str, Any] = {"points": []}
    for tc in temps_c:
        tech = at_temperature(t300, celsius(tc))
        dv = tech.vth_n - t300.vth_n
        adaptive = robust_design(tech, nominal_swing=DEFAULT_NOMINAL_SWING + dv)
        link_ad = SRLRLink(adaptive)
        r_ad = link_ad.transmit(pattern, 1.0 / 4.1e9)
        rate_ad = link_ad.max_data_rate(pattern) if r_ad.ok else 0.0
        fixed = dataclasses.replace(base, tech=tech)
        r_fx = SRLRLink(fixed).transmit(pattern, 1.0 / 4.1e9)
        data["points"].append(
            {
                "temp_c": tc,
                "adaptive_ok": r_ad.ok,
                "fixed_ok": r_fx.ok,
                "adaptive_errors": r_ad.n_errors,
                "fixed_errors": r_fx.n_errors,
                "adaptive_max_rate": rate_ad,
            }
        )
        rows.append(
            [
                f"{tc:+.0f}",
                f"{r_ad.n_errors}",
                f"{rate_ad / GBPS:.2f}" if rate_ad else "-",
                f"{r_fx.n_errors}",
            ]
        )
    text = format_table(
        [
            "T [degC]",
            "adaptive errors @4.1G",
            "adaptive max rate [Gb/s]",
            "fixed-300K errors @4.1G",
        ],
        rows,
        title="E18 — temperature sweep (footnote 3: the replica-biased "
        "reference tracks Vth(T))",
    )
    ad_window = [p["temp_c"] for p in data["points"] if p["adaptive_ok"]]
    fx_window = [p["temp_c"] for p in data["points"] if p["fixed_ok"]]
    data["adaptive_window"] = (min(ad_window), max(ad_window)) if ad_window else None
    data["fixed_window"] = (min(fx_window), max(fx_window)) if fx_window else None
    text += (
        f"\n\nerror-free window: adaptive {data['adaptive_window']} degC vs "
        f"fixed {data['fixed_window']} degC (hot-side failures are mobility "
        "derating, which no bias scheme removes)."
    )
    return ExperimentResult("E18", "Temperature tracking", data, text)


# --------------------------------------------------------------------------- E19


def e19_system_studies(k: int = 8) -> ExperimentResult:
    """Extension: the Section I arguments, quantified at system level.

    Three studies with the calibrated models: (a) chip-scale NoC power
    with and without the SRLR datapath; (b) mesh vs folded-Clos energy
    across traffic locality (the paper's topology argument); (c) the
    serialization design space the multi-Gb/s SRLR wire opens.
    """
    from repro.circuit.serdes import max_feasible_ratio, serialization_sweep
    from repro.energy.chip import compare_chip
    from repro.noc.indirect import clos_point, crossover_locality, mesh_point

    # (a) chip power
    chip = compare_chip(k, utilization=0.3)
    chip_text = format_kv(
        f"E19a — {k}x{k} chip NoC power at 30% load",
        [
            ("SRLR datapath NoC power [W]", f"{chip.srlr.total:.2f}"),
            ("full-swing NoC power [W]", f"{chip.full_swing.total:.2f}"),
            ("saving [mW]", f"{chip.saving_w*1000:.0f}"),
            ("NoC power reduction", f"{chip.noc_power_reduction*100:.0f}%"),
            ("datapath share (full swing)", f"{chip.full_swing.datapath_fraction*100:.0f}%"),
            ("datapath share (SRLR)", f"{chip.srlr.datapath_fraction*100:.0f}%"),
        ],
    )

    # (b) topology vs locality
    rows = []
    for locality in (0.0, 0.25, 0.5, 0.75, 0.9):
        m = mesh_point(k, locality)
        c = clos_point(k, locality)
        rows.append(
            [
                locality,
                f"{m.avg_hops:.1f}",
                f"{m.energy_per_bit*1e15:.0f}",
                f"{c.energy_per_bit*1e15:.0f}",
                f"{c.energy_per_bit/m.energy_per_bit:.1f}x",
            ]
        )
    topo_text = format_table(
        ["locality", "mesh hops", "mesh [fJ/bit]", "Clos [fJ/bit]", "mesh advantage"],
        rows,
        title=f"E19b — mesh vs folded Clos on a {k}x{k} die "
        f"(crossover locality: {crossover_locality(k):.2f})",
    )

    # (c) serialization
    points = serialization_sweep([1, 2, 4, 8])
    rows = [
        [
            p.ratio,
            f"{p.wire_rate/1e9:.0f}",
            "yes" if p.feasible else "no",
            p.n_wires,
            f"{p.energy_per_flit*1e12:.2f}",
            f"{p.repeater_area*1e12:.0f}",
        ]
        for p in points
    ]
    ser_text = format_table(
        ["ratio", "wire rate [Gb/s]", "feasible", "wires/flit", "E/flit [pJ]", "SRLR area/hop [um2]"],
        rows,
        title=f"E19c — serializing the 64-bit datapath "
        f"(max feasible ratio: {max_feasible_ratio()})",
    )
    data = {
        "chip": chip,
        "crossover_locality": crossover_locality(k),
        "serialization": points,
        "max_ratio": max_feasible_ratio(),
    }
    return ExperimentResult(
        "E19",
        "System studies",
        data,
        chip_text + "\n\n" + topo_text + "\n\n" + ser_text,
    )


# --------------------------------------------------------------------------- E20


def e20_routing(
    k: int = 6,
    rates: tuple[float, ...] = (0.15, 0.3, 0.4),
    pattern: str = "transpose",
    n_vcs: int = 8,
    measure: int = 400,
    seed: int = 9,
) -> ExperimentResult:
    """Extension: O1TURN routing on the SRLR mesh.

    The mesh fabric the SRLR serves is routing-sensitive: dimension-order
    XY concentrates adversarial patterns (transpose) onto few channels.
    O1TURN — each packet flips a coin between XY and YX, with disjoint VC
    classes keeping the union deadlock-free — restores the balance at
    identical datapath cost per hop.
    """
    rows = []
    data: dict[str, Any] = {"runs": []}
    for rate in rates:
        point = {"rate": rate}
        for routing in ("xy", "o1turn"):
            sim = NocSimulator(
                k,
                config=NocConfig(routing=routing, n_vcs=n_vcs),
                injection_rate=rate,
                pattern=pattern,
                seed=seed,
                engine="fast",
            )
            stats = sim.run(warmup=200, measure=measure, drain_limit=60000)
            point[routing] = stats
        data["runs"].append(point)
        rows.append(
            [
                rate,
                f"{point['xy'].average_latency:.1f}",
                f"{point['o1turn'].average_latency:.1f}",
                f"{point['xy'].average_latency / point['o1turn'].average_latency:.2f}x",
            ]
        )
    text = format_table(
        ["inj rate", "XY latency [cyc]", "O1TURN latency [cyc]", "O1TURN gain"],
        rows,
        title=f"E20 — routing under {pattern} traffic on a {k}x{k} mesh "
        f"({n_vcs} VCs: O1TURN splits them into XY/YX classes)",
    )
    return ExperimentResult("E20", "O1TURN routing", data, text)


# --------------------------------------------------------------------------- E21


def e21_tech_scaling(
    scales: tuple[tuple[str, float], ...] = (
        ("45nm", 1.0),
        ("~32nm", 0.55),
        ("~22nm", 0.30),
        ("~14nm", 0.17),
    ),
) -> ExperimentResult:
    """Extension: Section I's scaling claim, quantified.

    "This physical datapath power will increase in percentage relative to
    control and storage circuitry power as CMOS process technology scales
    down" [14][15]: logic energy shrinks with the node while wire
    capacitance per mm does not.  The router model's logic-energy scale
    plays the node; the datapath share grows — and with it, the leverage
    of the SRLR's low-swing datapath.
    """
    import dataclasses as _dc

    from repro.energy.router import default_router_config

    rows = []
    data: dict[str, Any] = {"points": []}
    for label, scale in scales:
        cfg = _dc.replace(default_router_config(), logic_energy_scale=scale)
        model = RouterPowerModel(cfg)
        fs = model.power_breakdown(1.0, "full_swing")
        srlr = model.power_breakdown(1.0, "srlr")
        saving = (fs.total - srlr.total) / fs.total
        data["points"].append(
            {
                "node": label,
                "scale": scale,
                "fs_datapath_share": fs.fraction("datapath"),
                "srlr_saving": saving,
            }
        )
        rows.append(
            [
                label,
                f"{fs.fraction('datapath')*100:.0f}%",
                f"{srlr.fraction('datapath')*100:.0f}%",
                f"{saving*100:.0f}%",
            ]
        )
    text = format_table(
        [
            "node",
            "datapath share (full swing)",
            "datapath share (SRLR)",
            "router power saved by SRLR",
        ],
        rows,
        title="E21 — technology scaling: wire energy holds while logic shrinks",
    )
    shares = [p["fs_datapath_share"] for p in data["points"]]
    text += (
        "\n\nThe full-swing datapath share grows monotonically "
        f"({shares[0]*100:.0f}% -> {shares[-1]*100:.0f}%), so the SRLR's "
        "leverage grows with every node — the paper's Section I motivation."
    )
    return ExperimentResult("E21", "Technology scaling", data, text)


# --------------------------------------------------------------------------- E22


def e22_equalized_baseline(length_mm: float = 10.0) -> ExperimentResult:
    """Extension: the repeaterless/equalized design style, simulated.

    Fig. 8's prior works drive long wires directly and equalize.  Here
    both sides of that argument run on the same exact wire solver: the
    unequalized 10 mm channel's eye collapses below 1 Gb/s, TX FFE buys
    rate at a steep energy premium, and the SRLR's repeat-per-mm link
    simply does not have the problem.  (Our passive TX-only FFE
    understates the published active transceivers of [25]-[27] — which is
    why Fig. 8 anchors on their published points — but the *mechanism*
    and its energy direction are reproduced.)
    """
    from repro.circuit.equalized import RepeaterlessLink
    from repro.tech import tech_90nm_bulk

    t90 = tech_90nm_bulk()
    variants = [
        ("repeaterless, no EQ", (1.0,)),
        ("repeaterless, 2-tap FFE", (1.4, -0.4)),
        ("repeaterless, 3-tap FFE", (1.8, -0.6, -0.2)),
        ("repeaterless, 5-tap FFE", (2.2, -0.7, -0.3, -0.15, -0.05)),
    ]
    rows = []
    data: dict[str, Any] = {"points": []}
    for label, taps in variants:
        link = RepeaterlessLink(t90, length=length_mm * MM, taps=taps)
        rate = link.max_data_rate()
        energy = link.energy_fj_per_bit_per_cm()
        data["points"].append({"label": label, "rate": rate, "energy": energy})
        rows.append(
            [label, f"{rate / GBPS:.2f}" if rate else "-", f"{energy:.0f}"]
        )
    srlr = srlr_link_energy()
    link = SRLRLink(robust_design())
    srlr_rate = link.max_data_rate(default_stress_pattern())
    rows.append(
        [
            "SRLR repeated (this work)",
            f"{srlr_rate / GBPS:.2f}",
            f"{srlr.fj_per_bit_per_cm:.0f}",
        ]
    )
    data["srlr_rate"] = srlr_rate
    data["srlr_energy"] = srlr.fj_per_bit_per_cm
    text = format_table(
        ["design", "max rate [Gb/s]", "energy [fJ/bit/cm]"],
        rows,
        title=f"E22 — {length_mm:.0f} mm link: direct drive vs equalization "
        "vs per-mm repeating (same exact wire solver)",
    )
    text += (
        "\n\nEqualization buys rate only by over-driving transitions "
        "(energy grows with sum|taps|); the repeated link runs ~10x faster "
        "at the lowest energy of the table."
    )
    return ExperimentResult("E22", "Equalized baseline, simulated", data, text)


__all__ = [
    "ExperimentResult",
    "e1_fig4_waveforms",
    "e2_pulse_width_dynamics",
    "e3_driver_modes",
    "e4_fig6_montecarlo",
    "e5_headline",
    "e6_fig8_energy_density",
    "e7_table1",
    "e8_bias_overhead",
    "e9_router_power",
    "e10_noc_breakdown",
    "e11_multicast",
    "e11_multicast_simulated",
    "e12_ablation",
    "e13_sizing",
    "e14_noc_traffic",
    "e15_crosstalk",
    "e16_bypass",
    "e17_bus",
    "e18_temperature",
    "e19_system_studies",
    "e20_routing",
    "e21_tech_scaling",
    "e22_equalized_baseline",
]
