"""Plain-text table rendering for benches and experiment reports.

The offline environment has no plotting stack, so every figure is
reproduced as a printed data table; these helpers keep that output
consistent and readable across all benchmarks.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigurationError


def format_cell(value: object, precision: int = 4) -> str:
    """Human-friendly cell rendering for mixed numeric/string tables."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a fixed-width ASCII table."""
    if not headers:
        raise ConfigurationError("headers must not be empty")
    str_rows = [[format_cell(c, precision) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv(title: str, pairs: Sequence[tuple[str, object]]) -> str:
    """Render a titled key/value block."""
    if not pairs:
        raise ConfigurationError("pairs must not be empty")
    width = max(len(k) for k, _ in pairs)
    lines = [title]
    for key, value in pairs:
        lines.append(f"  {key.ljust(width)} : {format_cell(value)}")
    return "\n".join(lines)


__all__ = ["format_cell", "format_kv", "format_table"]
