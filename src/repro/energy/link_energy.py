"""Full SRLR link energy: the paper's headline operating point.

Combines the circuit-level per-pulse energy (exact supply-charge integral
through the wire plus repeater internals) with the system-level accounting
the paper reports:

* 40.4 fJ/bit/mm (404 fJ/bit/cm) at 4.1 Gb/s and 0.8 V -> 1.66 mW for the
  1-bit 10 mm link;
* 6.83 Gb/s/um bandwidth density at the 0.6 um wire pitch;
* the 587 uW adaptive-swing bias generator amortized over a 64-bit link
  (0.6% of link power).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.circuit.bias import BIAS_GENERATOR_POWER
from repro.circuit.link import SRLRLink
from repro.circuit.srlr import SRLRDesignParams, robust_design
from repro.tech.variation import VariationSample
from repro.units import MM, fj_per_bit_per_cm, fj_per_bit_per_mm, gbps_per_um
from repro.wire.elmore import full_swing_energy_per_bit as repeated_full_swing_energy
from repro.wire.rc import reference_segment


@dataclass(frozen=True)
class LinkEnergyReport:
    """Energy/bandwidth summary of one link at one operating point."""

    data_rate: float  # b/s
    activity: float  # pulses per bit
    energy_per_bit: float  # joules
    fj_per_bit_per_mm: float
    fj_per_bit_per_cm: float
    power: float  # watts, one wire at data_rate
    bandwidth_density_gbps_per_um: float
    wire_fraction: float  # share of energy spent charging wires


def srlr_link_energy(
    design: SRLRDesignParams | None = None,
    data_rate: float = 4.1e9,
    activity: float = 0.5,
    sample: VariationSample | None = None,
) -> LinkEnergyReport:
    """Measure the SRLR link's energy at an operating point.

    ``activity`` converts per-pulse to per-bit energy: the PM launches one
    pulse per '1', so random data costs half a pulse per bit — the same
    accounting behind the paper's measured 1.66 mW / 4.1 Gb/s = 404 fJ/bit.
    """
    if data_rate <= 0.0:
        raise ConfigurationError(f"data_rate must be positive, got {data_rate}")
    if not 0.0 < activity <= 1.0:
        raise ConfigurationError(f"activity must lie in (0, 1], got {activity}")
    design = design or robust_design()
    link = SRLRLink(design, sample) if sample is not None else SRLRLink(design)
    breakdown = link.energy_per_pulse()
    energy_per_bit = activity * breakdown["total"]
    length = design.total_length
    return LinkEnergyReport(
        data_rate=data_rate,
        activity=activity,
        energy_per_bit=energy_per_bit,
        fj_per_bit_per_mm=fj_per_bit_per_mm(energy_per_bit, length),
        fj_per_bit_per_cm=fj_per_bit_per_cm(energy_per_bit, length),
        power=energy_per_bit * data_rate,
        bandwidth_density_gbps_per_um=gbps_per_um(
            data_rate, design.geometry.pitch
        ),
        wire_fraction=breakdown["wire"] / breakdown["total"],
    )


def full_swing_link_energy(
    design: SRLRDesignParams | None = None,
    data_rate: float = 4.1e9,
    activity: float = 0.5,
) -> LinkEnergyReport:
    """The conventional alternative: optimally repeated full-swing wire.

    Same wire, same length, classic delay-optimal repeater insertion,
    full-rail NRZ signaling.  This is the "what low-swing saves" baseline
    of Section I.
    """
    design = design or robust_design()
    tech = design.tech
    segment = reference_segment(tech, design.total_length)
    energy_per_bit = repeated_full_swing_energy(segment, tech, activity=activity)
    length = design.total_length
    return LinkEnergyReport(
        data_rate=data_rate,
        activity=activity,
        energy_per_bit=energy_per_bit,
        fj_per_bit_per_mm=fj_per_bit_per_mm(energy_per_bit, length),
        fj_per_bit_per_cm=fj_per_bit_per_cm(energy_per_bit, length),
        power=energy_per_bit * data_rate,
        bandwidth_density_gbps_per_um=gbps_per_um(
            data_rate, design.geometry.pitch
        ),
        wire_fraction=1.0,
    )


@dataclass(frozen=True)
class BiasOverheadReport:
    """Bias generator power relative to a parallel SRLR link (Section IV)."""

    bias_power: float
    link_power: float
    n_bits: int
    fraction: float


def bias_overhead(
    n_bits: int = 64,
    design: SRLRDesignParams | None = None,
    data_rate: float = 4.1e9,
    activity: float = 0.5,
) -> BiasOverheadReport:
    """Amortize the 587 uW bias generator over an ``n_bits``-wide link.

    The paper: "When considering a 64bit 10mm link implementation, the
    bias circuit dissipates just 0.6% of total link power."
    """
    if n_bits < 1:
        raise ConfigurationError(f"n_bits must be >= 1, got {n_bits}")
    report = srlr_link_energy(design, data_rate, activity)
    link_power = n_bits * report.power
    return BiasOverheadReport(
        bias_power=BIAS_GENERATOR_POWER,
        link_power=link_power,
        n_bits=n_bits,
        fraction=BIAS_GENERATOR_POWER / (BIAS_GENERATOR_POWER + link_power),
    )


__all__ = [
    "BiasOverheadReport",
    "LinkEnergyReport",
    "bias_overhead",
    "full_swing_link_energy",
    "srlr_link_energy",
]
