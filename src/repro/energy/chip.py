"""Chip-scale NoC power: scaling the router model to a many-core die.

Section I's motivation: "NoCs are becoming increasingly power-constrained"
— the datapath share of NoC power grows with bandwidth demand and with
technology scaling (control/storage scale, wires do not).  This module
scales the calibrated router model to a k x k chip and quantifies what
the SRLR datapath buys at the chip level, including against a total chip
power budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.energy.router import RouterConfig, RouterPowerModel, default_router_config
from repro.circuit.bias import BIAS_GENERATOR_POWER


@dataclass(frozen=True)
class ChipNocPower:
    """NoC power of a k x k chip at one utilization."""

    k: int
    utilization: float
    datapath_style: str
    buffers: float
    control: float
    datapath: float
    bias: float

    @property
    def total(self) -> float:
        return self.buffers + self.control + self.datapath + self.bias

    @property
    def datapath_fraction(self) -> float:
        return self.datapath / self.total if self.total > 0 else 0.0

    def share_of_budget(self, chip_budget_w: float) -> float:
        """NoC power as a fraction of a total chip power budget."""
        if chip_budget_w <= 0.0:
            raise ConfigurationError(
                f"chip_budget_w must be positive, got {chip_budget_w}"
            )
        return self.total / chip_budget_w


def chip_noc_power(
    k: int,
    utilization: float = 0.3,
    datapath: str = "srlr",
    config: RouterConfig | None = None,
) -> ChipNocPower:
    """Aggregate NoC power of a k x k mesh chip.

    One router per tile; one shared bias generator per router when the
    SRLR datapath is used (the paper amortizes it across a router's
    parallel links).  Edge routers have fewer active links; the (k-1)/k
    link-population factor corrects the datapath term.
    """
    if k < 2:
        raise ConfigurationError(f"k must be >= 2, got {k}")
    model = RouterPowerModel(config or default_router_config())
    per_router = model.power_breakdown(utilization, datapath)
    n = k * k
    # Directed links present vs the 4 every router's datapath assumes.
    link_population = (4.0 * k * (k - 1)) / (2.0 * n)  # out-links per router / 2
    bias = n * BIAS_GENERATOR_POWER if datapath == "srlr" else 0.0
    return ChipNocPower(
        k=k,
        utilization=utilization,
        datapath_style=datapath,
        buffers=n * per_router.buffers,
        control=n * per_router.control,
        datapath=n * per_router.datapath * link_population / 2.0,
        bias=bias,
    )


@dataclass(frozen=True)
class ChipComparison:
    """SRLR vs full-swing datapath at chip scale."""

    srlr: ChipNocPower
    full_swing: ChipNocPower

    @property
    def saving_w(self) -> float:
        return self.full_swing.total - self.srlr.total

    @property
    def noc_power_reduction(self) -> float:
        if self.full_swing.total <= 0:
            return 0.0
        return self.saving_w / self.full_swing.total


def compare_chip(
    k: int, utilization: float = 0.3, config: RouterConfig | None = None
) -> ChipComparison:
    """The chip-level payoff of embedding SRLRs in every router."""
    return ChipComparison(
        srlr=chip_noc_power(k, utilization, "srlr", config),
        full_swing=chip_noc_power(k, utilization, "full_swing", config),
    )


__all__ = ["ChipComparison", "ChipNocPower", "chip_noc_power", "compare_chip"]
