"""Prior-work on-chip interconnects: the Table I / Fig. 8 comparators.

Table I of the paper compares the SRLR link against four silicon-proven
designs.  Each is represented here by

* its **published point** (data rate, bandwidth density, 10 mm link
  traversal energy) exactly as Table I lists it, and
* a **parametric energy-vs-density curve** through that point, built from
  the shared wire physics: at a fixed data rate, higher bandwidth density
  means tighter wire pitch, which raises coupling capacitance per wire and
  with it the energy per bit (the Table I footnote).  Differential schemes
  pay twice the pitch per signal, which is why the single-ended SRLR sits
  farther right at equal energy.

The curves are anchored at the published points; the pitch-independent
part of each design's energy (sense amplifiers, equalizer taps, clocking)
is held constant along the curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.technology import Technology, tech_45nm_soi, tech_90nm_bulk
from repro.units import FJ, GBPS, UM, fj_per_bit_per_cm, gbps_per_um
from repro.wire.rc import WireGeometry, WireSegment


@dataclass(frozen=True)
class InterconnectDesign:
    """One silicon-proven on-chip interconnect (a row of Table I).

    ``overhead_fraction`` is the share of the published energy that does
    not scale with wire pitch (receiver/equalizer/clocking circuitry); the
    remainder is wire charging and is rescaled with capacitance when the
    pitch is swept.  These fractions are modeling estimates (documented in
    DESIGN.md) — the published points themselves are exact.
    """

    key: str
    citation: str
    signaling: str  # "fully differential" | "single-ended"
    tech: Technology
    data_rate: float
    bandwidth_density_gbps_per_um: float
    energy_fj_per_bit_per_cm: float
    n_repeaters: int
    repeater_note: str
    wires_per_signal: int
    overhead_fraction: float
    needs_extra_supply: bool = False
    activity: float = 0.5

    def __post_init__(self) -> None:
        if self.wires_per_signal < 1:
            raise ConfigurationError("wires_per_signal must be >= 1")
        if not 0.0 <= self.overhead_fraction < 1.0:
            raise ConfigurationError("overhead_fraction must lie in [0, 1)")

    # --- geometry back-out ---------------------------------------------------------

    @property
    def signal_pitch(self) -> float:
        """Total die cross-section per signal, from the published density."""
        return (self.data_rate / GBPS) / self.bandwidth_density_gbps_per_um * UM

    @property
    def wire_pitch(self) -> float:
        """Per-wire pitch (differential designs split the signal pitch)."""
        return self.signal_pitch / self.wires_per_signal

    # --- Fig. 8 curve ----------------------------------------------------------------

    def _wire_cap_per_m(self, pitch: float) -> float:
        geometry = WireGeometry.from_pitch(pitch)
        segment = WireSegment(self.tech, geometry, 1e-3)
        return segment.c_total_per_m

    def energy_at_density(self, density_gbps_per_um: float) -> float:
        """Energy (fJ/bit/cm) at another bandwidth density, rate held fixed.

        The wire-charging part of the published energy is rescaled by the
        capacitance ratio between the implied pitch and the published
        pitch; the overhead part is constant.
        """
        if density_gbps_per_um <= 0.0:
            raise ConfigurationError(
                f"density must be positive, got {density_gbps_per_um}"
            )
        pitch = (
            (self.data_rate / GBPS)
            / density_gbps_per_um
            * UM
            / self.wires_per_signal
        )
        c_ratio = self._wire_cap_per_m(pitch) / self._wire_cap_per_m(self.wire_pitch)
        e_pub = self.energy_fj_per_bit_per_cm
        e_overhead = self.overhead_fraction * e_pub
        e_wire = (1.0 - self.overhead_fraction) * e_pub
        return e_overhead + e_wire * c_ratio

    def energy_curve(
        self, density_span: tuple[float, float] = (0.6, 1.6), n_points: int = 9
    ) -> list[tuple[float, float]]:
        """(density, energy) samples around the published point."""
        lo = self.bandwidth_density_gbps_per_um * density_span[0]
        hi = self.bandwidth_density_gbps_per_um * density_span[1]
        if n_points < 2:
            raise ConfigurationError(f"n_points must be >= 2, got {n_points}")
        step = (hi - lo) / (n_points - 1)
        return [
            (lo + i * step, self.energy_at_density(lo + i * step))
            for i in range(n_points)
        ]


def mensink2010() -> InterconnectDesign:
    """[25] Mensink et al., JSSC 2010: capacitively-driven repeaterless link."""
    return InterconnectDesign(
        key="mensink2010",
        citation="[25] Mensink JSSC'10",
        signaling="fully differential",
        tech=tech_90nm_bulk(1.2),
        data_rate=2.0e9,
        bandwidth_density_gbps_per_um=1.163,
        energy_fj_per_bit_per_cm=340.0,
        n_repeaters=0,
        repeater_note="repeaterless",
        wires_per_signal=2,
        overhead_fraction=0.35,
    )


def kim2010(high_rate: bool = True) -> InterconnectDesign:
    """[26] Kim & Stojanovic, JSSC 2010: equalized transceiver.

    Table I lists two operating points; ``high_rate`` selects 6 Gb/s /
    3 Gb/s/um / 630 fJ/bit/cm, otherwise 4 Gb/s / 2 Gb/s/um / 370.
    The intro also cites this design's 1760 um^2 10 mm 1-bit driver area.
    """
    if high_rate:
        rate, density, energy = 6.0e9, 3.0, 630.0
    else:
        rate, density, energy = 4.0e9, 2.0, 370.0
    return InterconnectDesign(
        key="kim2010" + ("_6g" if high_rate else "_4g"),
        citation="[26] Kim JSSC'10",
        signaling="fully differential",
        tech=tech_90nm_bulk(1.0),
        data_rate=rate,
        bandwidth_density_gbps_per_um=density,
        energy_fj_per_bit_per_cm=energy,
        n_repeaters=0,
        repeater_note="repeaterless",
        wires_per_signal=2,
        overhead_fraction=0.40,
    )


#: Driver area of [26]'s 10 mm 1-bit link, cited in the paper's intro as
#: why equalized links cannot be used as parallel mesh links.
KIM2010_DRIVER_AREA = 1760e-12  # m^2 (1760 um^2)


def seo2010() -> InterconnectDesign:
    """[27] Seo et al., ISSCC 2010: adaptive pre-emphasis, 2 repeaters."""
    return InterconnectDesign(
        key="seo2010",
        citation="[27] Seo ISSCC'10",
        signaling="fully differential",
        tech=tech_90nm_bulk(1.0),
        data_rate=4.9e9,
        bandwidth_density_gbps_per_um=4.375,
        energy_fj_per_bit_per_cm=680.0,  # 340 x 2 (2 repeaters)
        n_repeaters=2,
        repeater_note="2 repeaters",
        wires_per_signal=2,
        overhead_fraction=0.40,
    )


def park2012() -> InterconnectDesign:
    """[18] Park et al., DAC 2012: clocked low-swing mesh datapath.

    Differential, clocked sense amplifiers, and a dedicated second supply
    (whose charge-recycling is *not* assumed, per the Table I footnote).
    """
    return InterconnectDesign(
        key="park2012",
        citation="[18] Park DAC'12",
        signaling="fully differential",
        tech=tech_45nm_soi(0.8),
        data_rate=5.4e9,
        bandwidth_density_gbps_per_um=6.0,
        energy_fj_per_bit_per_cm=561.0,  # 56.1 x 10 (10 repeaters)
        n_repeaters=10,
        repeater_note="10 repeaters",
        wires_per_signal=2,
        overhead_fraction=0.30,
        needs_extra_supply=True,
    )


def this_work(measured_energy_fj_per_bit_per_cm: float | None = None) -> InterconnectDesign:
    """The SRLR link of this paper as a Table I row.

    By default carries the paper's published point (4.1 Gb/s,
    6.83 Gb/s/um, 404 fJ/bit/cm); pass our simulator's measured energy to
    build the "reproduced" row instead.
    """
    energy = (
        404.0
        if measured_energy_fj_per_bit_per_cm is None
        else measured_energy_fj_per_bit_per_cm
    )
    return InterconnectDesign(
        key="this_work",
        citation="This Work (SRLR)",
        signaling="single-ended",
        tech=tech_45nm_soi(0.8),
        data_rate=4.1e9,
        bandwidth_density_gbps_per_um=6.83,
        energy_fj_per_bit_per_cm=energy,
        n_repeaters=10,
        repeater_note="10 repeaters",
        wires_per_signal=1,
        overhead_fraction=0.25,
    )


def table1_designs() -> list[InterconnectDesign]:
    """All Table I rows in the paper's column order."""
    return [mensink2010(), kim2010(False), kim2010(True), seo2010(), park2012(), this_work()]


def simulated_this_work_energy() -> float:
    """The reproduction's own measured link energy in fJ/bit/cm.

    Runs the calibrated robust design through the circuit-level energy
    accounting (exact wire-charge integral + repeater internals) at the
    published activity.
    """
    from repro.energy.link_energy import srlr_link_energy

    return srlr_link_energy().fj_per_bit_per_cm


__all__ = [
    "InterconnectDesign",
    "KIM2010_DRIVER_AREA",
    "kim2010",
    "mensink2010",
    "park2012",
    "seo2010",
    "simulated_this_work_energy",
    "table1_designs",
    "this_work",
]
