"""Analytical mesh-router power and area model (DSENT-style).

Section IV of the paper synthesizes a typical mesh router (64 bits,
5 ports, 4 VCs, 16 buffers) in the same 45 nm SOI process and reports:

* input buffers 38.8 mW, control logic 5.2 mW, SRLR low-swing datapath
  12.9 mW (extracted simulation, fully loaded);
* the SRLR datapath occupies 47.9 um^2 x 64 bits x 5 ports x 4 = 0.061 mm^2,
  about 18% of the 0.34 mm^2 router footprint.

This module is the reproduction of that experiment: an analytical
per-flit energy model for each router component, calibrated to the same
process, that regenerates the power split and the area fractions — and,
because it is parametric, also provides the full-swing-datapath
counterfactual and feeds the cycle-level NoC simulator's energy
accounting (:mod:`repro.noc.power`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.technology import Technology, tech_45nm_soi
from repro.units import FJ, MM, UM
from repro.energy.link_energy import srlr_link_energy
from repro.wire.elmore import full_swing_energy_per_bit as fs_repeated_energy
from repro.wire.rc import reference_segment

#: Active silicon area of one 1 mm SRLR (die photo, Section I/IV).
SRLR_AREA = 47.9e-12  # m^2  (10.2 um x 4.7 um)

#: Crosspoints of a 5-port crossbar without u-turns (Fig. 3).
CROSSPOINTS_5PORT = 20


@dataclass(frozen=True)
class RouterConfig:
    """The paper's synthesized router: 64 bits, 5 ports, 4 VCs, 16 buffers."""

    tech: Technology
    flit_bits: int = 64
    n_ports: int = 5
    n_vcs: int = 4
    buffers_per_port: int = 16
    clock_hz: float = 1.0e9
    link_length: float = 1 * MM
    #: Scale factor on control/storage (logic) energy relative to the
    #: calibrated 45 nm values — the knob behind Section I's claim that
    #: the physical datapath's power share *grows* as CMOS scales: logic
    #: energy shrinks with the node, wire capacitance per mm does not
    #: ([14], [15] / Table I footnote).
    logic_energy_scale: float = 1.0

    def __post_init__(self) -> None:
        for key, value in (
            ("flit_bits", self.flit_bits),
            ("n_ports", self.n_ports),
            ("n_vcs", self.n_vcs),
            ("buffers_per_port", self.buffers_per_port),
        ):
            if value < 1:
                raise ConfigurationError(f"{key} must be >= 1, got {value}")
        if self.clock_hz <= 0.0:
            raise ConfigurationError(f"clock_hz must be positive, got {self.clock_hz}")
        if self.logic_energy_scale <= 0.0:
            raise ConfigurationError(
                f"logic_energy_scale must be positive, got {self.logic_energy_scale}"
            )

    @property
    def crosspoints(self) -> int:
        """No-u-turn crossbar: each output reachable from the other ports."""
        return self.n_ports * (self.n_ports - 1)


def default_router_config() -> RouterConfig:
    return RouterConfig(tech=tech_45nm_soi())


@dataclass(frozen=True)
class RouterPower:
    """Power split of one router at one load, watts."""

    buffers: float
    control: float
    datapath: float

    @property
    def total(self) -> float:
        return self.buffers + self.control + self.datapath

    def fraction(self, component: str) -> float:
        value = getattr(self, component)
        return value / self.total if self.total > 0.0 else 0.0


@dataclass(frozen=True)
class RouterArea:
    """Area split of one router, square meters."""

    datapath: float
    buffers: float
    control: float

    @property
    def total(self) -> float:
        return self.datapath + self.buffers + self.control

    @property
    def datapath_fraction(self) -> float:
        return self.datapath / self.total if self.total > 0.0 else 0.0


class RouterPowerModel:
    """Per-flit energy model of the paper's router, calibrated to Section IV.

    Component models (all scale with the config):

    * **Buffers** — per-flit write+read energy of an SRAM-style input
      buffer (bitcell access + wordline/bitline overhead growing with
      depth), plus depth-proportional leakage.
    * **Control** — VC and switch allocation logic plus the pipeline
      clock: a dynamic per-flit term and a static term.
    * **Datapath** — crossbar traversal + output link.  In ``"srlr"`` mode
      this is the measured circuit-level SRLR energy per bit per mm (the
      crosspoint SRLR's insertion length equals the 1 mm router-to-router
      distance, so one repeater covers crossbar + link); in
      ``"full_swing"`` mode it is a conventionally repeated full-swing
      wire of the same reach plus crossbar loading.
    """

    #: Buffer array access energy per bit (write + read), at 16-deep.
    _E_BUFFER_BIT = 120 * FJ
    #: Buffer leakage per stored bit-cell.
    _P_LEAK_BITCELL = 28e-9  # W
    #: Control dynamic energy per flit (allocators, pipeline registers).
    _E_CONTROL_FLIT = 0.9e-12  # J
    #: Control static + clock power.
    _P_CONTROL_STATIC = 0.7e-3  # W
    #: Crossbar wiring overhead relative to the output link, full-swing
    #: mode only (the SRLR mode's crosspoint repeater already spans both).
    _XBAR_LENGTH_FACTOR = 0.4

    def __init__(self, config: RouterConfig | None = None) -> None:
        self.config = config or default_router_config()
        self._srlr_bit_energy_cache: float | None = None

    # --- per-flit energies -----------------------------------------------------------

    def buffer_energy_per_flit(self) -> float:
        """Write + read energy of one flit through an input buffer."""
        cfg = self.config
        depth_factor = 1.0 + 0.02 * (cfg.buffers_per_port - 16)
        return (
            cfg.flit_bits
            * self._E_BUFFER_BIT
            * max(depth_factor, 0.5)
            * cfg.logic_energy_scale
        )

    def buffer_leakage(self) -> float:
        cfg = self.config
        cells = cfg.flit_bits * cfg.buffers_per_port * cfg.n_ports
        return cells * self._P_LEAK_BITCELL * cfg.logic_energy_scale

    def control_energy_per_flit(self) -> float:
        cfg = self.config
        vc_factor = 1.0 + 0.05 * (cfg.n_vcs - 4)
        return self._E_CONTROL_FLIT * max(vc_factor, 0.5) * cfg.logic_energy_scale

    def srlr_bit_energy(self) -> float:
        """Measured SRLR energy per bit for one 1 mm hop (J/bit).

        Taken from the circuit-level link model at 50% activity and cached
        (it is deterministic for the calibrated design).
        """
        if self._srlr_bit_energy_cache is None:
            report = srlr_link_energy()
            self._srlr_bit_energy_cache = report.fj_per_bit_per_mm * FJ
        return self._srlr_bit_energy_cache

    def full_swing_bit_energy(self) -> float:
        """Repeated full-swing energy per bit for crossbar + 1 mm link."""
        cfg = self.config
        length = cfg.link_length * (1.0 + self._XBAR_LENGTH_FACTOR)
        segment = reference_segment(cfg.tech, length)
        return fs_repeated_energy(segment, cfg.tech, activity=0.5)

    def datapath_energy_per_flit(self, datapath: str = "srlr") -> float:
        cfg = self.config
        if datapath == "srlr":
            per_bit = self.srlr_bit_energy() * (cfg.link_length / MM)
        elif datapath == "full_swing":
            per_bit = self.full_swing_bit_energy()
        else:
            raise ConfigurationError(
                f"datapath must be 'srlr' or 'full_swing', got {datapath!r}"
            )
        return cfg.flit_bits * per_bit

    # --- aggregate power ---------------------------------------------------------------

    def power_breakdown(
        self, utilization: float = 1.0, datapath: str = "srlr"
    ) -> RouterPower:
        """Router power at a per-port flit ``utilization`` (0..1).

        At utilization 1.0 with the SRLR datapath this reproduces the
        paper's 38.8 / 5.2 / 12.9 mW split.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(
                f"utilization must lie in [0, 1], got {utilization}"
            )
        cfg = self.config
        flits_per_s = cfg.n_ports * cfg.clock_hz * utilization
        buffers = (
            flits_per_s * self.buffer_energy_per_flit() + self.buffer_leakage()
        )
        control = (
            flits_per_s * self.control_energy_per_flit() + self._P_CONTROL_STATIC
        )
        dp = flits_per_s * self.datapath_energy_per_flit(datapath)
        return RouterPower(buffers=buffers, control=control, datapath=dp)

    # --- area ---------------------------------------------------------------------------

    def area_breakdown(self) -> RouterArea:
        """Area split; SRLR datapath = 47.9 um^2 x bits x crosspoints.

        The paper's own arithmetic (Section I) counts 64 x 5 x 4 SRLRs
        (each output port's 4 candidate inputs), i.e. the 20 crosspoints
        of the no-u-turn 5-port crossbar.
        """
        cfg = self.config
        datapath = SRLR_AREA * cfg.flit_bits * cfg.crosspoints
        # Flip-flop based buffer array (synthesized router), including
        # mux/decode overhead per stored bit.
        cell_area = 24e-12  # m^2 per bit incl. overhead, 45 nm-class
        buffers = cfg.flit_bits * cfg.buffers_per_port * cfg.n_ports * cell_area
        # Allocators, pipeline registers, clocking and routing overhead: a
        # fixed floor plus a share that grows with buffering.
        control = 0.45 * buffers + 1.0e-7
        return RouterArea(datapath=datapath, buffers=buffers, control=control)


#: Published mesh NoC power breakdowns cited in Section I (percent of NoC
#: power): links / crossbar / buffers.  The datapath (links + crossbar)
#: share is what the SRLR attacks.
PUBLISHED_NOC_BREAKDOWNS: dict[str, dict[str, float]] = {
    "RAW": {"links": 39.0, "crossbar": 30.0, "buffers": 31.0},
    "TRIPS": {"links": 31.0, "crossbar": 33.0, "buffers": 35.0},
    "TeraFLOPS": {"links": 17.0, "crossbar": 15.0, "buffers": 22.0},
}


def datapath_share(chip: str) -> float:
    """Links + crossbar share of NoC power for a published chip (Section I).

    RAW 69%, TRIPS 64%, TeraFLOPS 32% — the numbers the paper quotes.
    """
    if chip not in PUBLISHED_NOC_BREAKDOWNS:
        raise ConfigurationError(
            f"unknown chip {chip!r}; choose from {sorted(PUBLISHED_NOC_BREAKDOWNS)}"
        )
    b = PUBLISHED_NOC_BREAKDOWNS[chip]
    return b["links"] + b["crossbar"]


__all__ = [
    "CROSSPOINTS_5PORT",
    "PUBLISHED_NOC_BREAKDOWNS",
    "RouterArea",
    "RouterConfig",
    "RouterPower",
    "RouterPowerModel",
    "SRLR_AREA",
    "datapath_share",
    "default_router_config",
]
