"""Supply-voltage scaling of the SRLR link.

The paper reports a single operating point, 0.8 V — already a scaled
supply for a 45 nm process.  This module asks the natural follow-up: how
do energy and achievable data rate move as Vdd scales?  The link is
re-solved at every supply (swing target, driver bias and wire transfer
all shift), giving the energy/performance frontier that motivates the
0.8 V choice: energy falls roughly with Vdd * Vswing while the maximum
rate degrades as device overdrives shrink.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.circuit.link import SRLRLink
from repro.circuit.prbs import PrbsGenerator, worst_case_patterns
from repro.circuit.srlr import DEFAULT_NOMINAL_SWING, robust_design
from repro.tech.technology import tech_45nm_soi
from repro.units import MM


@dataclass(frozen=True)
class VddPoint:
    """Link behavior at one supply voltage."""

    vdd: float
    ok_at_4g1: bool
    max_data_rate: float
    energy_fj_per_bit_per_mm: float
    swing: float

    @property
    def energy_delay_metric(self) -> float:
        """Energy per bit-mm times the minimum bit time (aJ*ps-ish units)."""
        if self.max_data_rate <= 0.0:
            return float("inf")
        return self.energy_fj_per_bit_per_mm / (self.max_data_rate / 1e9)


def sweep_vdd(
    vdds: list[float],
    swing_fraction: float | None = None,
    n_prbs: int = 96,
) -> list[VddPoint]:
    """Re-solve and measure the robust link across supply voltages.

    ``swing_fraction`` fixes the nominal far-end swing as a fraction of
    Vdd (default: the calibrated 0.8 V design's ratio), which is how a
    replica-biased scheme naturally scales.
    """
    if not vdds:
        raise ConfigurationError("vdds must not be empty")
    if swing_fraction is None:
        swing_fraction = DEFAULT_NOMINAL_SWING / 0.8
    if not 0.0 < swing_fraction < 1.0:
        raise ConfigurationError(
            f"swing_fraction must lie in (0, 1), got {swing_fraction}"
        )
    pattern = PrbsGenerator(7).bits(n_prbs) + worst_case_patterns()
    points: list[VddPoint] = []
    for vdd in vdds:
        if vdd <= 0.0:
            raise ConfigurationError(f"vdd must be positive, got {vdd}")
        tech = tech_45nm_soi(vdd=vdd)
        swing = swing_fraction * vdd
        try:
            design = robust_design(tech, nominal_swing=swing)
            link = SRLRLink(design)
        except ConfigurationError:
            points.append(
                VddPoint(
                    vdd=vdd,
                    ok_at_4g1=False,
                    max_data_rate=0.0,
                    energy_fj_per_bit_per_mm=float("inf"),
                    swing=swing,
                )
            )
            continue
        ok = link.transmit(pattern, 1.0 / 4.1e9).ok
        rate = link.max_data_rate(pattern)
        if rate <= 0.0:
            # A dead link's partial-propagation energy is meaningless.
            energy = float("inf")
        else:
            energy = (
                0.5
                * link.energy_per_pulse()["total"]
                / 1e-15
                / (design.n_stages * design.segment_length / MM)
            )
        points.append(
            VddPoint(
                vdd=vdd,
                ok_at_4g1=ok,
                max_data_rate=rate,
                energy_fj_per_bit_per_mm=energy,
                swing=swing,
            )
        )
    return points


__all__ = ["VddPoint", "sweep_vdd"]
