"""Wire dynamic-energy accounting and the energy-vs-density trade.

Low-swing signaling's energy advantage is the elementary relation the
paper builds on (Section I): charging a wire of capacitance C to a swing
Vs from a supply Vdd draws Q = C*Vs from the supply, costing E = C*Vs*Vdd
per event, versus C*Vdd^2 for full swing.

The second ingredient — the Table I footnote and the x-axis of Fig. 8 —
is that *bandwidth density* (Gb/s per um of die cross-section) is bought
with wire pitch: tighter pitch means more coupling capacitance per wire
and therefore more energy per bit.  This module exposes both relations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.technology import Technology
from repro.units import fj_per_bit_per_cm, gbps_per_um
from repro.wire.rc import WireGeometry, WireSegment


def low_swing_energy_per_bit(
    segment: WireSegment,
    vswing: float,
    vdd: float | None = None,
    activity: float = 0.5,
    miller_factor: float = 1.0,
) -> float:
    """Supply energy per bit of a low-swing wire, joules.

    ``activity`` is events per bit (0.5 for pulse-per-one signaling on
    random data); ``miller_factor`` scales the coupling component for the
    aggressor activity assumed (1.0: quiet or same-phase neighbors on
    average; 2.0: worst-case opposing transitions).
    """
    if not 0.0 <= activity <= 1.0:
        raise ConfigurationError(f"activity must lie in [0, 1], got {activity}")
    if vswing <= 0.0:
        raise ConfigurationError(f"vswing must be positive, got {vswing}")
    if miller_factor < 0.0:
        raise ConfigurationError(
            f"miller_factor must be non-negative, got {miller_factor}"
        )
    vdd = segment.tech.vdd if vdd is None else vdd
    c_ground = segment.c_ground_per_m * segment.length
    c_coupling = (
        segment.n_neighbors * segment.c_coupling_per_m * segment.length
    )
    c_eff = c_ground + miller_factor * c_coupling
    return activity * c_eff * vswing * vdd


def full_swing_energy_per_bit(
    segment: WireSegment,
    vdd: float | None = None,
    activity: float = 0.5,
    miller_factor: float = 1.0,
) -> float:
    """Supply energy per bit of a conventional full-swing wire, joules."""
    vdd = segment.tech.vdd if vdd is None else vdd
    return low_swing_energy_per_bit(
        segment, vswing=vdd, vdd=vdd, activity=activity, miller_factor=miller_factor
    )


@dataclass(frozen=True)
class DensityPoint:
    """One point of the energy-vs-bandwidth-density trade (Fig. 8 axes)."""

    pitch: float  # wire pitch, meters
    bandwidth_density: float  # Gb/s/um
    energy_fj_per_bit_per_cm: float


def energy_vs_density(
    tech: Technology,
    pitches: list[float],
    data_rate: float,
    vswing: float,
    length: float,
    wires_per_signal: int = 1,
    overhead_fj_per_bit_per_cm: float = 0.0,
    activity: float = 0.5,
) -> list[DensityPoint]:
    """Sweep wire pitch: the energy-vs-density curve of one signaling style.

    ``wires_per_signal`` is 2 for differential schemes (they pay double
    pitch for the same payload — the reason the single-ended SRLR wins
    density at equal energy, Section I); ``overhead_fj_per_bit_per_cm``
    adds the scheme's circuit overhead (sense amps, equalizers, repeaters)
    which does not scale with pitch.
    """
    if data_rate <= 0.0:
        raise ConfigurationError(f"data_rate must be positive, got {data_rate}")
    if wires_per_signal < 1:
        raise ConfigurationError(
            f"wires_per_signal must be >= 1, got {wires_per_signal}"
        )
    points: list[DensityPoint] = []
    for pitch in pitches:
        if pitch <= 0.0:
            raise ConfigurationError(f"pitch must be positive, got {pitch}")
        geometry = WireGeometry.from_pitch(pitch)
        segment = WireSegment(tech, geometry, length)
        e_wire = wires_per_signal * low_swing_energy_per_bit(
            segment, vswing, activity=activity
        )
        e_total = fj_per_bit_per_cm(e_wire, length) + overhead_fj_per_bit_per_cm
        density = gbps_per_um(data_rate, wires_per_signal * pitch)
        points.append(
            DensityPoint(
                pitch=pitch,
                bandwidth_density=density,
                energy_fj_per_bit_per_cm=e_total,
            )
        )
    return points


__all__ = [
    "DensityPoint",
    "energy_vs_density",
    "full_swing_energy_per_bit",
    "low_swing_energy_per_bit",
]
