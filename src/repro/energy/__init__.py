"""Energy and power models: wires, links, prior works, routers."""

from repro.energy.baselines import (
    KIM2010_DRIVER_AREA,
    InterconnectDesign,
    kim2010,
    mensink2010,
    park2012,
    seo2010,
    simulated_this_work_energy,
    table1_designs,
    this_work,
)
from repro.energy.link_energy import (
    BiasOverheadReport,
    LinkEnergyReport,
    bias_overhead,
    full_swing_link_energy,
    srlr_link_energy,
)
from repro.energy.router import (
    CROSSPOINTS_5PORT,
    PUBLISHED_NOC_BREAKDOWNS,
    SRLR_AREA,
    RouterArea,
    RouterConfig,
    RouterPower,
    RouterPowerModel,
    datapath_share,
    default_router_config,
)
from repro.energy.chip import ChipComparison, ChipNocPower, chip_noc_power, compare_chip
from repro.energy.scaling import VddPoint, sweep_vdd
from repro.energy.wire_energy import (
    DensityPoint,
    energy_vs_density,
    full_swing_energy_per_bit,
    low_swing_energy_per_bit,
)

__all__ = [
    "BiasOverheadReport",
    "ChipComparison",
    "ChipNocPower",
    "VddPoint",
    "chip_noc_power",
    "compare_chip",
    "sweep_vdd",
    "CROSSPOINTS_5PORT",
    "DensityPoint",
    "InterconnectDesign",
    "KIM2010_DRIVER_AREA",
    "LinkEnergyReport",
    "PUBLISHED_NOC_BREAKDOWNS",
    "RouterArea",
    "RouterConfig",
    "RouterPower",
    "RouterPowerModel",
    "SRLR_AREA",
    "bias_overhead",
    "datapath_share",
    "default_router_config",
    "energy_vs_density",
    "full_swing_energy_per_bit",
    "full_swing_link_energy",
    "kim2010",
    "low_swing_energy_per_bit",
    "mensink2010",
    "park2012",
    "seo2010",
    "simulated_this_work_energy",
    "srlr_link_energy",
    "table1_designs",
    "this_work",
]
