"""Global (die-to-die) process corners.

A corner is a pair of threshold-voltage shifts, one per device polarity,
applied identically to *every* device on a die.  The five classical digital
corners are provided, plus a continuous representation used by Monte Carlo:
a :class:`GlobalCorner` can hold any (dVth_n, dVth_p) pair, which is how the
paper's die-to-die variation ("global process variation") enters the SRLR
failure analysis of Section III.

Sign convention: a *negative* dVth makes the device stronger/faster, so
FF = (-s, -s), SS = (+s, +s), FS (fast NMOS, slow PMOS) = (-s, +s),
SF = (+s, -s).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.tech.technology import Technology

#: Number of global sigma a fixed corner represents.
CORNER_SIGMA = 3.0


@dataclass(frozen=True)
class GlobalCorner:
    """A die-to-die process point: threshold shifts shared by all devices."""

    name: str
    dvth_n: float
    dvth_p: float

    def is_typical(self) -> bool:
        return self.dvth_n == 0.0 and self.dvth_p == 0.0

    def scaled(self, factor: float) -> "GlobalCorner":
        """Return the corner with both shifts scaled (for partial-corner sweeps)."""
        return GlobalCorner(
            f"{self.name}x{factor:g}", self.dvth_n * factor, self.dvth_p * factor
        )


def typical() -> GlobalCorner:
    return GlobalCorner("TT", 0.0, 0.0)


def fixed_corners(tech: Technology, n_sigma: float = CORNER_SIGMA) -> dict[str, GlobalCorner]:
    """The five classical corners at ``n_sigma`` global sigma for ``tech``."""
    if n_sigma < 0.0:
        raise ConfigurationError(f"n_sigma must be non-negative, got {n_sigma}")
    s = n_sigma * tech.sigma_vth_global
    return {
        "TT": GlobalCorner("TT", 0.0, 0.0),
        "FF": GlobalCorner("FF", -s, -s),
        "SS": GlobalCorner("SS", +s, +s),
        "FS": GlobalCorner("FS", -s, +s),
        "SF": GlobalCorner("SF", +s, -s),
    }


def sample_global(
    tech: Technology, rng: np.random.Generator, nmos_pmos_correlation: float = 0.6
) -> GlobalCorner:
    """Draw one die's global corner from the continuous die-to-die distribution.

    NMOS and PMOS thresholds on one die are partially correlated (common
    lithography / oxide steps move both; implant steps are per-polarity).
    ``nmos_pmos_correlation`` sets that coupling.
    """
    if not -1.0 <= nmos_pmos_correlation <= 1.0:
        raise ConfigurationError(
            f"correlation must lie in [-1, 1], got {nmos_pmos_correlation}"
        )
    rho = nmos_pmos_correlation
    common = rng.normal()
    z_n = rho * common + np.sqrt(1.0 - rho * rho) * rng.normal()
    z_p = rho * common + np.sqrt(1.0 - rho * rho) * rng.normal()
    s = tech.sigma_vth_global
    return GlobalCorner("MC", float(z_n * s), float(z_p * s))
