"""Technology parameter bundles.

The paper's test chip is fabricated in 45 nm SOI CMOS; the prior works it
compares against (Table I) are in 90 nm bulk CMOS.  We cannot use the real
(proprietary) PDKs, so each :class:`Technology` collects the handful of
public-domain, first-order parameters the behavioral models need:

* supply voltage and nominal threshold voltages,
* an alpha-power-law drive-current coefficient,
* wire resistance and capacitance per unit length for the minimum-pitch
  intermediate-metal wires a mesh NoC datapath uses,
* gate capacitance per unit transistor width,
* global (die-to-die) and local (mismatch) threshold-variation statistics.

Values are calibrated so that the paper's pinned operating points come out
right (e.g. ~200 mV swing on a 1 mm wire yields ~40 fJ/bit/mm at 0.8 V); see
DESIGN.md section 4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.units import FF, MM, NM, OHM, UM


@dataclass(frozen=True)
class Technology:
    """First-order process technology description.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"45nm SOI CMOS"``.
    feature_size:
        Drawn feature size in meters (45e-9 for the paper's process).
    vdd:
        Nominal core supply voltage in volts.  The paper operates at 0.8 V.
    vth_n / vth_p:
        Nominal NMOS / PMOS threshold-voltage magnitudes in volts.
    alpha:
        Alpha-power-law velocity-saturation exponent (~1.3 at 45 nm).
    k_drive:
        Saturation drive-current coefficient in A/m of gate width at
        (Vgs - Vth) = 1 V; Ids = k_drive * W * (Vgs - Vth)^alpha.
    subthreshold_slope_n:
        Subthreshold ideality factor n (I ~ exp(Vgs - Vth)/(n kT/q)).
    wire_r_per_m:
        Wire resistance per meter for a minimum-width intermediate wire.
    wire_c_ground_per_m:
        Parallel-plate + fringe capacitance to ground per meter.
    wire_c_coupling_per_m:
        Sidewall coupling capacitance per meter *per neighbor* at the
        reference spacing ``wire_ref_space``.
    wire_ref_width / wire_ref_space:
        The reference wire geometry at which the R/C numbers above hold.
    gate_c_per_m:
        Transistor gate capacitance per meter of width.
    sigma_vth_global:
        Die-to-die (global) threshold standard deviation in volts.  All
        devices of one polarity on a die share one draw.
    avt_mismatch:
        Pelgrom mismatch coefficient in V*m (sigma_dVth = avt / sqrt(W*L)).
    """

    name: str
    feature_size: float
    vdd: float
    vth_n: float
    vth_p: float
    alpha: float
    k_drive: float
    subthreshold_slope_n: float
    wire_r_per_m: float
    wire_c_ground_per_m: float
    wire_c_coupling_per_m: float
    wire_ref_width: float
    wire_ref_space: float
    gate_c_per_m: float
    sigma_vth_global: float
    avt_mismatch: float

    def __post_init__(self) -> None:
        positives = {
            "feature_size": self.feature_size,
            "vdd": self.vdd,
            "vth_n": self.vth_n,
            "vth_p": self.vth_p,
            "alpha": self.alpha,
            "k_drive": self.k_drive,
            "subthreshold_slope_n": self.subthreshold_slope_n,
            "wire_r_per_m": self.wire_r_per_m,
            "wire_c_ground_per_m": self.wire_c_ground_per_m,
            "wire_c_coupling_per_m": self.wire_c_coupling_per_m,
            "wire_ref_width": self.wire_ref_width,
            "wire_ref_space": self.wire_ref_space,
            "gate_c_per_m": self.gate_c_per_m,
            "sigma_vth_global": self.sigma_vth_global,
            "avt_mismatch": self.avt_mismatch,
        }
        for key, value in positives.items():
            if value <= 0.0:
                raise ConfigurationError(f"{key} must be positive, got {value}")
        if self.vth_n >= self.vdd:
            raise ConfigurationError(
                f"vth_n ({self.vth_n}) must be below vdd ({self.vdd})"
            )

    # --- derived wire quantities -------------------------------------------------

    @property
    def wire_ref_pitch(self) -> float:
        """Reference wire pitch (width + space) in meters."""
        return self.wire_ref_width + self.wire_ref_space

    def wire_c_total_per_m(self, n_neighbors: int = 2) -> float:
        """Total switched capacitance per meter at the reference geometry.

        ``n_neighbors`` counts adjacent aggressor wires (2 for a wire inside
        a dense parallel bus, 1 at the bus edge, 0 for an isolated wire).
        """
        if n_neighbors not in (0, 1, 2):
            raise ConfigurationError(f"n_neighbors must be 0, 1 or 2, got {n_neighbors}")
        return self.wire_c_ground_per_m + n_neighbors * self.wire_c_coupling_per_m

    def with_vdd(self, vdd: float) -> "Technology":
        """Return a copy operating at a different supply voltage."""
        return replace(self, vdd=vdd)


def tech_45nm_soi(vdd: float = 0.8) -> Technology:
    """The paper's process: 45 nm SOI CMOS operated at 0.8 V.

    Wire numbers describe a minimum-pitch intermediate-metal NoC wire with
    0.3 um width and 0.3 um spacing (0.6 um pitch — this pitch together with
    the measured 4.1 Gb/s reproduces the paper's 6.83 Gb/s/um bandwidth
    density exactly).  R = 350 Ohm/mm (0.25 um-thick copper at 0.3 um
    width) and C_total ~ 0.25 fF/um (ground + two-neighbor coupling) are
    representative of 45 nm intermediate-metal wires and reproduce both the
    pulse-attenuation behavior and the 40.4 fJ/bit/mm operating point.
    """
    return Technology(
        name="45nm SOI CMOS",
        feature_size=45 * NM,
        vdd=vdd,
        vth_n=0.32,
        vth_p=0.30,
        alpha=1.3,
        k_drive=550.0,  # A per meter of width at 1 V overdrive
        subthreshold_slope_n=1.45,
        wire_r_per_m=350 * OHM / MM,
        wire_c_ground_per_m=112 * FF / MM,
        wire_c_coupling_per_m=54 * FF / MM,
        wire_ref_width=0.3 * UM,
        wire_ref_space=0.3 * UM,
        gate_c_per_m=1.0 * FF / UM,
        sigma_vth_global=0.030,
        avt_mismatch=3.5e-9,  # 3.5 mV*um
    )


def tech_90nm_bulk(vdd: float = 1.0) -> Technology:
    """90 nm bulk CMOS, the process of Table I's prior works [25][26][27].

    Wires at 90 nm have lower resistance per mm (wider minimum pitch) but a
    similar capacitance per mm; CMOS scaling does not reduce wire cap per
    length (Table I footnote) so the per-mm energy of wire-dominated links
    barely improves across nodes.
    """
    return Technology(
        name="90nm bulk CMOS",
        feature_size=90 * NM,
        vdd=vdd,
        vth_n=0.35,
        vth_p=0.33,
        alpha=1.35,
        k_drive=420.0,
        subthreshold_slope_n=1.5,
        wire_r_per_m=300 * OHM / MM,
        wire_c_ground_per_m=140 * FF / MM,
        wire_c_coupling_per_m=55 * FF / MM,
        wire_ref_width=0.4 * UM,
        wire_ref_space=0.4 * UM,
        gate_c_per_m=1.2 * FF / UM,
        sigma_vth_global=0.025,
        avt_mismatch=4.5e-9,
    )
