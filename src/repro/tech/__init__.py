"""Technology substrate: process parameters, device models, variation.

This package replaces the proprietary 45 nm SOI PDK the paper's chip was
built in with first-order public models (see DESIGN.md substitution table).
"""

from repro.tech.corners import (
    CORNER_SIGMA,
    GlobalCorner,
    fixed_corners,
    sample_global,
    typical,
)
from repro.tech.mosfet import Mosfet, nmos, pmos
from repro.tech.technology import Technology, tech_45nm_soi, tech_90nm_bulk
from repro.tech.thermal import T_REF, at_temperature, celsius
from repro.tech.variation import (
    VariationSample,
    corner_sample,
    monte_carlo_sample,
    nominal_sample,
    sigma_vth_local,
)

__all__ = [
    "CORNER_SIGMA",
    "GlobalCorner",
    "Mosfet",
    "T_REF",
    "at_temperature",
    "celsius",
    "Technology",
    "VariationSample",
    "corner_sample",
    "fixed_corners",
    "monte_carlo_sample",
    "nmos",
    "nominal_sample",
    "pmos",
    "sample_global",
    "sigma_vth_local",
    "tech_45nm_soi",
    "tech_90nm_bulk",
    "typical",
]
