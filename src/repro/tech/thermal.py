"""Temperature dependence of the process models.

The paper's bias generator is "tolerant of process and temperature
variations" (footnote 3) — a claim that needs a temperature model to
check.  First-order silicon physics:

* threshold voltage falls with temperature, ~ -1 mV/K;
* mobility (and so the drive coefficient) falls as (T/300K)^-1.5;
* the subthreshold slope's thermal voltage kT/q grows linearly with T.

All three fold into the existing :class:`~repro.tech.technology.Technology`
fields, so a temperature point is just another technology instance and
every downstream model works unchanged.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import ConfigurationError
from repro.tech.technology import Technology

#: Reference temperature of the calibrated models, kelvin.
T_REF = 300.0

#: Threshold sensitivity, volts per kelvin (magnitude decreases with T).
VTH_TEMPERATURE_COEFF = 1.0e-3

#: Mobility exponent: k_drive ~ (T/T_REF)^-MOBILITY_EXPONENT.
MOBILITY_EXPONENT = 1.5


def at_temperature(tech: Technology, temperature_k: float) -> Technology:
    """``tech`` re-evaluated at ``temperature_k``.

    Returns a new Technology with shifted thresholds, derated (or boosted)
    drive, and a rescaled subthreshold ideality so the effective n*kT/q
    tracks the physical thermal voltage.
    """
    if temperature_k <= 0.0:
        raise ConfigurationError(
            f"temperature must be positive kelvin, got {temperature_k}"
        )
    dt = temperature_k - T_REF
    t_ratio = temperature_k / T_REF
    dvth = -VTH_TEMPERATURE_COEFF * dt
    return replace(
        tech,
        name=f"{tech.name} @ {temperature_k:.0f}K",
        vth_n=max(tech.vth_n + dvth, 0.02),
        vth_p=max(tech.vth_p + dvth, 0.02),
        k_drive=tech.k_drive * t_ratio**-MOBILITY_EXPONENT,
        subthreshold_slope_n=tech.subthreshold_slope_n * t_ratio,
    )


def celsius(temp_c: float) -> float:
    """Convenience: degrees Celsius to kelvin."""
    return temp_c + 273.15


__all__ = ["MOBILITY_EXPONENT", "T_REF", "VTH_TEMPERATURE_COEFF", "at_temperature", "celsius"]
