"""Local (within-die) mismatch and the combined variation sample.

Local variation follows the Pelgrom model: the threshold mismatch of a
device with gate area W*L has standard deviation

    sigma_dVth = A_vt / sqrt(W * L)

and is independent device to device.  A :class:`VariationSample` bundles one
die's global corner with a per-device local draw stream, so a circuit model
can ask for the effective Vth of each named device and get a reproducible
answer for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.tech.corners import GlobalCorner, sample_global, typical
from repro.tech.technology import Technology


def sigma_vth_local(tech: Technology, width: float, length: float | None = None) -> float:
    """Pelgrom mismatch sigma for a device of ``width`` (and ``length``) meters.

    ``length`` defaults to the technology feature size (minimum-length
    devices, the common case for datapath transistors).
    """
    if width <= 0.0:
        raise ConfigurationError(f"width must be positive, got {width}")
    length = tech.feature_size if length is None else length
    if length <= 0.0:
        raise ConfigurationError(f"length must be positive, got {length}")
    return tech.avt_mismatch / np.sqrt(width * length)


@dataclass
class VariationSample:
    """One die's worth of process variation.

    The global corner is shared by every device; local draws are memoized by
    device name so that repeated queries for the same device (e.g. the same
    SRLR stage's M1 during different bits) return the same shift.
    """

    tech: Technology
    global_corner: GlobalCorner
    rng: np.random.Generator
    local_enabled: bool = True
    _local_cache: dict[str, float] = field(default_factory=dict)

    def vth(self, name: str, polarity: str, width: float) -> float:
        """Effective threshold magnitude for the named device."""
        if polarity == "n":
            base = self.tech.vth_n + self.global_corner.dvth_n
        elif polarity == "p":
            base = self.tech.vth_p + self.global_corner.dvth_p
        else:
            raise ConfigurationError(f"polarity must be 'n' or 'p', got {polarity!r}")
        return base + self.local_shift(name, width)

    def local_shift(self, name: str, width: float) -> float:
        """Memoized local mismatch draw for the named device."""
        if not self.local_enabled:
            return 0.0
        if name not in self._local_cache:
            sigma = sigma_vth_local(self.tech, width)
            self._local_cache[name] = float(self.rng.normal(0.0, sigma))
        return self._local_cache[name]


def nominal_sample(tech: Technology) -> VariationSample:
    """A variation-free sample (typical corner, no mismatch)."""
    return VariationSample(
        tech=tech,
        global_corner=typical(),
        rng=np.random.default_rng(0),
        local_enabled=False,
    )


def corner_sample(tech: Technology, corner: GlobalCorner) -> VariationSample:
    """A deterministic corner-only sample (no local mismatch)."""
    return VariationSample(
        tech=tech, global_corner=corner, rng=np.random.default_rng(0), local_enabled=False
    )


def monte_carlo_sample(
    tech: Technology,
    seed: int | np.random.Generator,
    nmos_pmos_correlation: float = 0.6,
    local_enabled: bool = True,
) -> VariationSample:
    """A full Monte Carlo sample: random global corner + local mismatch stream."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    corner = sample_global(tech, rng, nmos_pmos_correlation)
    return VariationSample(
        tech=tech, global_corner=corner, rng=rng, local_enabled=local_enabled
    )
