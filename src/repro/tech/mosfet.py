"""Alpha-power-law MOSFET model.

The SRLR's robustness arguments (Sections II-III of the paper) all reduce to
how device drive strength and effective resistance move with threshold
voltage across process corners.  The alpha-power law (Sakurai-Newton)
captures exactly that first-order dependence:

    Ids_sat = k * W * (Vgs - Vth)^alpha            (saturation)
    Ids_lin = Ids_sat * (2 - Vds/Vdsat) * Vds/Vdsat  (triode, smooth blend)

with a subthreshold exponential below Vth so that near-threshold sensing
(the SRLR input NMOS M1 sees a ~200 mV pulse against a ~320 mV Vth) conducts
a small but nonzero current.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.technology import Technology
from repro.units import UM, VT_THERMAL


@dataclass(frozen=True)
class Mosfet:
    """A single MOSFET instance of one polarity.

    Voltages are handled in magnitude form: for a PMOS, pass |Vgs| and |Vds|
    and read current magnitudes.  ``vth`` already includes any corner or
    mismatch shift applied by the caller.

    Attributes
    ----------
    tech:
        Technology the device is drawn in.
    width:
        Gate width in meters.
    vth:
        Effective threshold-voltage magnitude in volts.
    polarity:
        ``"n"`` or ``"p"``; PMOS drive is derated by ``PMOS_DRIVE_RATIO``.
    """

    tech: Technology
    width: float
    vth: float
    polarity: str = "n"

    #: PMOS mobility derating relative to NMOS at equal width.
    PMOS_DRIVE_RATIO = 0.45

    #: Subthreshold current at Vgs = Vth, per meter of width.
    I0_PER_M = 0.35  # A/m -> ~0.35 uA/um, a typical 45 nm-class value

    def __post_init__(self) -> None:
        if self.width <= 0.0:
            raise ConfigurationError(f"width must be positive, got {self.width}")
        if self.polarity not in ("n", "p"):
            raise ConfigurationError(f"polarity must be 'n' or 'p', got {self.polarity!r}")
        if self.vth <= 0.0:
            raise ConfigurationError(f"vth magnitude must be positive, got {self.vth}")

    @property
    def _k_eff(self) -> float:
        k = self.tech.k_drive * self.width
        if self.polarity == "p":
            k *= self.PMOS_DRIVE_RATIO
        return k

    def ids_sat(self, vgs: float) -> float:
        """Saturation drain current magnitude at gate overdrive ``vgs - vth``.

        Below threshold the current rolls off exponentially with the
        technology's subthreshold slope; above threshold it follows the
        alpha-power law.  The two regions are continuous at Vgs = Vth.
        """
        if vgs <= 0.0:
            return 0.0
        n_vt = self.tech.subthreshold_slope_n * VT_THERMAL
        i0 = self.I0_PER_M * self.width * (
            self.PMOS_DRIVE_RATIO if self.polarity == "p" else 1.0
        )
        overdrive = vgs - self.vth
        if overdrive <= 0.0:
            return i0 * math.exp(overdrive / n_vt)
        # Smooth hand-off: subthreshold floor plus the alpha-power term.
        return i0 + self._k_eff * overdrive**self.tech.alpha

    def vdsat(self, vgs: float) -> float:
        """Saturation drain voltage, ~proportional to overdrive."""
        overdrive = max(vgs - self.vth, 0.0)
        return max(0.12 * self.vth, 0.8 * overdrive)

    def ids(self, vgs: float, vds: float) -> float:
        """Drain current magnitude including the triode region."""
        if vds <= 0.0:
            return 0.0
        isat = self.ids_sat(vgs)
        vdsat = self.vdsat(vgs)
        if vds >= vdsat:
            return isat
        x = vds / vdsat
        return isat * x * (2.0 - x)

    def r_on(self, vgs: float | None = None) -> float:
        """Effective on-resistance for RC delay estimates.

        Uses the standard effective-resistance abstraction
        R_eff ~ Vdd / Ids_sat(Vgs=Vdd) scaled by 3/4 to average the
        discharge trajectory.  Returns ``inf`` when the device is off.
        """
        vgs = self.tech.vdd if vgs is None else vgs
        isat = self.ids_sat(vgs)
        if isat <= 0.0:
            return math.inf
        return 0.75 * self.tech.vdd / isat

    @property
    def gate_cap(self) -> float:
        """Gate capacitance in farads."""
        return self.tech.gate_c_per_m * self.width

    def scaled(self, factor: float) -> "Mosfet":
        """Return a copy with the gate width scaled by ``factor``."""
        if factor <= 0.0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return Mosfet(self.tech, self.width * factor, self.vth, self.polarity)


def nmos(tech: Technology, width_um: float, vth_shift: float = 0.0) -> Mosfet:
    """Convenience constructor: NMOS with width in microns and a Vth shift."""
    return Mosfet(tech, width_um * UM, tech.vth_n + vth_shift, "n")


def pmos(tech: Technology, width_um: float, vth_shift: float = 0.0) -> Mosfet:
    """Convenience constructor: PMOS with width in microns and a Vth shift."""
    return Mosfet(tech, width_um * UM, tech.vth_p + vth_shift, "p")
