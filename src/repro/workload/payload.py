"""Payload attachment: giving generated packets data to switch.

Synthetic generators decide *when* and *where* packets go; the payload
wrapper decides *what bits* they carry, which is what the
data-dependent link energy model prices.  Two modes:

* ``"random"`` — each flit carries an independent uniform random word,
  drawn from a *separate* RNG stream derived via
  :func:`repro.runtime.seeds.derived_seed`.  The traffic generator's
  own stream is untouched, so the delivery statistics (latency, hops,
  traversal counts) of a payloaded run are bit-identical to the same
  seed's constant-mode run — only the energy changes.
* ``"worst_case"`` — no words are attached at all; the link synthesizes
  the complement of its previous word at every traversal
  (:meth:`repro.noc.link.Link.count_payload`), guaranteeing
  ``flit_bits`` transitions per traversal and zero opposing-pair
  coupling events.  This is the case that must price exactly to the
  constant model, which the reduction regression test pins down.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.noc.packet import Packet
from repro.runtime.seeds import derived_seed

#: Payload modes a traffic source can advertise.
PAYLOAD_MODES = ("constant", "random", "worst_case")


def random_word(rng: np.random.Generator, flit_bits: int) -> int:
    """One uniform random ``flit_bits``-wide word (LSB = wire 0)."""
    n64 = (flit_bits + 63) // 64
    word = 0
    for i in range(n64):
        word |= int(rng.integers(0, 1 << 64, dtype=np.uint64)) << (64 * i)
    return word & ((1 << flit_bits) - 1)


def attach_payloads(
    packets: list[Packet], rng: np.random.Generator, flit_bits: int
) -> list[Packet]:
    """Attach one random word per flit to each packet, in place.

    Words are drawn in packet order, one draw per flit, so the payload
    stream is deterministic given the RNG state — both engines inject
    the same cycle's packets in the same order and therefore see
    identical words.
    """
    for packet in packets:
        packet.payload = tuple(
            random_word(rng, flit_bits) for _ in range(packet.size_flits)
        )
    return packets


class PayloadedTraffic:
    """Wrap a traffic source with a payload policy.

    Delegates the full traffic protocol (``packets_for_cycle``, the
    drain protocol, ``multicast_fraction``) to ``inner`` and adds the
    ``payload_mode`` / ``payload_bits`` attributes the simulator wires
    into its links.  ``mode="random"`` draws words from a dedicated RNG
    seeded by ``derived_seed(inner.seed, "workload/payload/...")`` —
    content-addressed, so the same generator config always carries the
    same data no matter where in a campaign it runs.
    """

    def __init__(self, inner, mode: str = "random", flit_bits: int = 64):
        if mode not in PAYLOAD_MODES:
            raise ConfigurationError(
                f"payload mode must be one of {PAYLOAD_MODES}, got {mode!r}"
            )
        if flit_bits < 1:
            raise ConfigurationError(
                f"flit_bits must be >= 1, got {flit_bits}"
            )
        if getattr(inner, "payload_mode", "constant") != "constant":
            raise ConfigurationError(
                "inner traffic already carries payload "
                f"(mode {inner.payload_mode!r}); wrap a payload-free source"
            )
        self.inner = inner
        self.payload_mode = mode
        self.payload_bits = flit_bits
        seed = int(getattr(inner, "seed", 0))
        self._rng = np.random.default_rng(
            derived_seed(seed, f"workload/payload/{mode}/{flit_bits}")
        )

    # --- delegated traffic protocol ---------------------------------------------------

    @property
    def topology(self):
        return self.inner.topology

    @property
    def injection_rate(self) -> float:
        return self.inner.injection_rate

    @injection_rate.setter
    def injection_rate(self, value: float) -> None:
        self.inner.injection_rate = value

    @property
    def multicast_fraction(self) -> float:
        return getattr(self.inner, "multicast_fraction", 0.0)

    @property
    def draining(self) -> bool:
        return self.inner.draining

    def begin_drain(self) -> None:
        self.inner.begin_drain()

    def end_drain(self) -> None:
        self.inner.end_drain()

    def packets_for_cycle(self, cycle: int) -> list[Packet]:
        packets = self.inner.packets_for_cycle(cycle)
        if self.payload_mode == "random" and packets:
            attach_payloads(packets, self._rng, self.payload_bits)
        return packets


__all__ = [
    "PAYLOAD_MODES",
    "PayloadedTraffic",
    "attach_payloads",
    "random_word",
]
