"""Workload generators beyond the synthetic Bernoulli patterns.

Two traffic classes the uniform/transpose synthetics cannot express,
both first-class citizens of the experiment axis (content-addressed
seeds, drain protocol, engine parity):

* :class:`BurstyTraffic` — Markov-modulated on/off injection.  Each
  source carries a two-state (on/off) Markov chain; in the *on* state it
  injects at the elevated peak rate that makes the long-run mean equal
  ``injection_rate``.  The result is the bursty arrival statistics real
  cores produce (cache-miss trains, DMA bursts) at the same offered
  load as the matching uniform run — so latency/energy deltas are the
  burstiness, not the load.
* :class:`CollectiveTraffic` — multicast-heavy collective patterns
  (row/column broadcasts or random destination sets) mixed over a
  unicast background, modeling the coherence/collective traffic that
  motivates the SRLR's free multicast claim.

Both draw from a single seeded ``numpy`` Generator exactly once per
simulated cycle, so the packet stream for a given seed is identical on
the reference and fast engines (the engines call
``packets_for_cycle`` at the same pipeline point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.noc.packet import Packet, unicast_packet
from repro.noc.topology import NodeId, Topology
from repro.noc.traffic import (
    PATTERNS,
    DrainableTraffic,
    endpoint_destination,
    pattern_destination,
)

#: Destination-set constructions for CollectiveTraffic.
COLLECTIVES = ("row", "col", "random")


@dataclass
class BurstyTraffic(DrainableTraffic):
    """Markov on/off (Interrupted Bernoulli) injection.

    ``burst_on`` is the per-cycle P(off -> on), ``burst_off`` the
    per-cycle P(on -> off); the stationary duty cycle is
    ``burst_on / (burst_on + burst_off)`` and sources inject at
    ``injection_rate / duty`` while on, so the *mean* offered load
    matches a uniform run at the same ``injection_rate``.  Mean burst
    length is ``1 / burst_off`` cycles.
    """

    topology: Topology
    injection_rate: float
    pattern: str = "uniform"
    size_flits: int = 1
    burst_on: float = 0.05
    burst_off: float = 0.15
    seed: int = 7

    #: Generators never emit multicasts; the fast-engine guard reads this.
    multicast_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.injection_rate <= 1.0:
            raise ConfigurationError(
                f"injection_rate must lie in [0, 1], got {self.injection_rate}"
            )
        if self.pattern not in PATTERNS:
            raise ConfigurationError(
                f"unknown pattern {self.pattern!r}; choose from {PATTERNS}"
            )
        if self.size_flits < 1:
            raise ConfigurationError(
                f"size_flits must be >= 1, got {self.size_flits}"
            )
        for name, p in (("burst_on", self.burst_on), ("burst_off", self.burst_off)):
            if not 0.0 < p <= 1.0:
                raise ConfigurationError(
                    f"{name} must lie in (0, 1], got {p}"
                )
        self._duty = self.burst_on / (self.burst_on + self.burst_off)
        if self.injection_rate / self._duty > 1.0:
            raise ConfigurationError(
                f"injection_rate={self.injection_rate} at duty cycle "
                f"{self._duty:.3f} needs an on-state rate above 1 "
                f"packet/cycle; lower the rate or raise burst_on"
            )
        if not self.topology.grid_endpoints:
            w, h = self.topology.endpoint_grid()
            if self.pattern == "transpose" and w != h:
                raise ConfigurationError(
                    f"pattern='transpose' needs a square endpoint grid; "
                    f"the {self.topology.kind} topology's is {w}x{h}"
                )
        self._rng = np.random.default_rng(self.seed)
        if self.topology.grid_endpoints:
            self._sources = list(self.topology.nodes())
        else:
            self._sources = list(self.topology.endpoints())
        # Start each source's chain in the stationary distribution, from
        # the same seeded stream as everything else.
        self._on = (
            self._rng.random(len(self._sources)) < self._duty
        ).tolist()

    def packets_for_cycle(self, cycle: int) -> list[Packet]:
        rate = self.injection_rate
        if rate == 0.0:
            # Drained (or zero-rate): no packets, no RNG consumption —
            # the chain freezes so a drain never perturbs determinism.
            return []
        rng = self._rng
        sources = self._sources
        n = len(sources)
        on = self._on
        p_on, p_off = self.burst_on, self.burst_off
        # One batched draw per phase: state-update coins, then injection
        # coins.  All n values of each batch are consumed, so no rewind
        # arithmetic is needed and both engines see one identical stream.
        state_coins = rng.random(n).tolist()
        for i in range(n):
            if on[i]:
                on[i] = state_coins[i] >= p_off
            else:
                on[i] = state_coins[i] < p_on
        peak = min(1.0, rate / self._duty)
        inject_coins = rng.random(n).tolist()
        out: list[Packet] = []
        sf = self.size_flits
        pattern = self.pattern
        if self.topology.grid_endpoints:
            k = self.topology.k
            for i in range(n):
                if not on[i] or inject_coins[i] >= peak:
                    continue
                src = sources[i]
                dest = pattern_destination(pattern, src, k, rng)
                out.append(unicast_packet(src, frozenset((dest,)), sf, cycle))
            return out
        w, h = self.topology.endpoint_grid()
        endpoint_router = self.topology.endpoint_router
        for i in range(n):
            if not on[i] or inject_coins[i] >= peak:
                continue
            src = sources[i]
            dest = endpoint_destination(pattern, src, w, h, rng)
            src_r = endpoint_router(src)
            dest_r = endpoint_router(dest)
            if src_r == dest_r:
                continue
            out.append(unicast_packet(src_r, frozenset((dest_r,)), sf, cycle))
        return out


@dataclass
class CollectiveTraffic(DrainableTraffic):
    """Multicast-heavy collective patterns over a unicast background.

    With probability ``collective_fraction`` a firing source emits a
    single-flit multicast whose destination set is a *structured
    collective*: its full mesh row (``"row"``), its column (``"col"``),
    or a random set of ``multicast_degree`` nodes (``"random"``).  The
    rest is uniform-random unicast background at ``size_flits``.
    Multicast forces the reference engine, exactly as
    ``SyntheticTraffic`` multicast mixes do.
    """

    topology: Topology
    injection_rate: float
    collective_fraction: float = 0.25
    collective: str = "row"
    size_flits: int = 1
    multicast_degree: int = 4
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0.0 <= self.injection_rate <= 1.0:
            raise ConfigurationError(
                f"injection_rate must lie in [0, 1], got {self.injection_rate}"
            )
        if not 0.0 <= self.collective_fraction <= 1.0:
            raise ConfigurationError(
                f"collective_fraction must lie in [0, 1], "
                f"got {self.collective_fraction}"
            )
        if self.collective not in COLLECTIVES:
            raise ConfigurationError(
                f"collective must be one of {COLLECTIVES}, "
                f"got {self.collective!r}"
            )
        if self.size_flits < 1:
            raise ConfigurationError(
                f"size_flits must be >= 1, got {self.size_flits}"
            )
        if not self.topology.grid_endpoints:
            raise ConfigurationError(
                "collective (multicast) traffic is only defined over "
                f"grid-endpoint topologies (mesh, torus); got "
                f"{self.topology.kind}"
            )
        if self.topology.k < 2:
            raise ConfigurationError("collective traffic needs k >= 2")
        if self.collective == "random":
            if self.multicast_degree < 2:
                raise ConfigurationError(
                    f"multicast_degree must be >= 2, got {self.multicast_degree}"
                )
            if self.multicast_degree > self.topology.n_nodes - 1:
                raise ConfigurationError(
                    "multicast_degree exceeds the node count"
                )
        self._rng = np.random.default_rng(self.seed)
        self._nodes = list(self.topology.nodes())

    @property
    def multicast_fraction(self) -> float:
        """Alias for the engine guards: nonzero -> reference engine."""
        return self.collective_fraction

    def _collective_dests(self, src: NodeId) -> frozenset[NodeId]:
        x, y = src
        k = self.topology.k
        if self.collective == "row":
            return frozenset((cx, y) for cx in range(k) if (cx, y) != src)
        if self.collective == "col":
            return frozenset((x, cy) for cy in range(k) if (x, cy) != src)
        candidates = [n for n in self._nodes if n != src]
        idx = self._rng.choice(
            len(candidates), self.multicast_degree, replace=False
        )
        return frozenset(candidates[i] for i in idx)

    def packets_for_cycle(self, cycle: int) -> list[Packet]:
        rate = self.injection_rate
        if rate == 0.0:
            return []
        rng = self._rng
        out: list[Packet] = []
        k = self.topology.k
        for src in self._nodes:
            if rng.random() >= rate:
                continue
            if (
                self.collective_fraction > 0.0
                and rng.random() < self.collective_fraction
            ):
                out.append(
                    Packet(
                        src=src,
                        dests=self._collective_dests(src),
                        size_flits=1,
                        inject_cycle=cycle,
                    )
                )
            else:
                dest = pattern_destination("uniform", src, k, rng)
                out.append(
                    unicast_packet(
                        src, frozenset((dest,)), self.size_flits, cycle
                    )
                )
        return out


__all__ = ["COLLECTIVES", "BurstyTraffic", "CollectiveTraffic"]
