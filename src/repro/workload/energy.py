"""Data-dependent link energy: pricing counted bit transitions.

The constant per-bit datapath price (``e_dp = flit_bits * per_bit``)
assumes every traversal toggles every wire — the worst case the circuit
is sized for.  Real payloads toggle a fraction of the wires, and
adjacent wires toggling in opposite directions pay extra through the
sidewall coupling capacitor (the dynamic Miller effect the crosstalk
experiment E15 measures in volts).  This module converts the per-link
transition/coupling counters of :class:`repro.noc.link.Link` into
joules:

* one toggled wire costs ``e_dp / flit_bits`` — so an all-toggle word
  prices to exactly ``e_dp`` and the data-dependent model reduces to
  the constant model in the worst case (a regression test pins this);
* one opposing adjacent pair additionally costs
  ``coupling_miller_fraction() * (e_dp / flit_bits)``, the sidewall's
  share of a transition derived from the same coupled two-line physics
  as E15: the fractional far-end swing the victim loses when its
  neighbor switches against it.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import ConfigurationError


@lru_cache(maxsize=1)
def coupling_miller_fraction() -> float:
    """Fractional energy surcharge of one opposing-pair transition.

    Built from the calibrated coupled two-line model exactly as
    experiment E15 builds its crosstalk sweep: the nominal SRLR link
    at reference wire spacing, victim and aggressor both driven by the
    launch pulldown.  The dynamic Miller swing loss
    ``(quiet - opposing) / quiet`` is the fraction of the victim's
    far-end swing the sidewall capacitor eats when the neighbor
    switches against it — the extra charge the driver had to supply,
    expressed as a fraction of the quiet transition.
    """
    from repro.circuit import SRLRLink, robust_design
    from repro.circuit.srlr import DEFAULT_LAUNCH_WIDTH
    from repro.tech.technology import tech_45nm_soi
    from repro.wire.coupled import CoupledPair
    from repro.wire.rc import WireGeometry, WireSegment

    tech = tech_45nm_soi()
    design = robust_design(tech)
    link = SRLRLink(design)
    launch = link._pm_launch
    geometry = WireGeometry(tech.wire_ref_width, tech.wire_ref_space)
    segment = WireSegment(tech, geometry, design.segment_length)
    pair = CoupledPair(
        segment,
        r_victim=launch.r_up,
        r_aggressor=launch.r_up,
        c_load=link._c_load,
    )
    quiet = pair.victim_far_peak(DEFAULT_LAUNCH_WIDTH, launch.amplitude, 0.0)
    opposing = pair.victim_far_peak(
        DEFAULT_LAUNCH_WIDTH, launch.amplitude, -launch.amplitude
    )
    return (quiet - opposing) / quiet


def link_payload_energy(
    link, e_dp: float, flit_bits: int, coupling: bool = True
) -> float:
    """Datapath energy of one link's counted traversals, joules.

    ``e_dp / flit_bits`` per toggled wire plus (when ``coupling``) the
    Miller fraction per opposing adjacent pair.  The division is by a
    power of two, so an all-toggle traversal prices float-exactly to
    ``e_dp`` — the constant-model reduction the tests pin down.
    """
    if flit_bits < 1:
        raise ConfigurationError(f"flit_bits must be >= 1, got {flit_bits}")
    e_transition = e_dp / flit_bits
    energy = e_transition * link.payload_transitions
    if coupling and link.coupling_events:
        energy += coupling_miller_fraction() * e_transition * link.coupling_events
    return energy


def payload_datapath_energy(
    links, e_dp: float, flit_bits: int, coupling: bool = True
) -> float:
    """Total data-dependent link energy over ``links``, joules.

    Each link's counted energy is scaled by its physical length
    (``mm_scale``), so longer chiplet NoI wires pay proportionally —
    the same per-link accounting the constant model applies through
    the fault layer's link surcharge.

    Baseline-length (``mm_scale == 1``) counters are accumulated as
    integers and priced with a *single* multiply, so the worst-case
    reduction is bitwise: all-toggle traversals give
    ``transitions == flit_bits * traversals`` and
    ``(e_dp / flit_bits) * (flit_bits * T)`` rounds identically to
    ``e_dp * T``, the constant model's figure.
    """
    if flit_bits < 1:
        raise ConfigurationError(f"flit_bits must be >= 1, got {flit_bits}")
    e_transition = e_dp / flit_bits
    base_transitions = 0
    base_events = 0
    scaled = 0.0
    any_events = coupling and any(link.coupling_events for link in links)
    e_coupling = (
        coupling_miller_fraction() * e_transition if any_events else 0.0
    )
    for link in links:
        if link.mm_scale == 1.0:
            base_transitions += link.payload_transitions
            base_events += link.coupling_events
        else:
            scaled += link.mm_scale * (
                e_transition * link.payload_transitions
                + e_coupling * link.coupling_events
            )
    total = e_transition * base_transitions + scaled
    if e_coupling and base_events:
        total += e_coupling * base_events
    return total


__all__ = [
    "coupling_miller_fraction",
    "link_payload_energy",
    "payload_datapath_energy",
]
