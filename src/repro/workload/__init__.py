"""Workloads as a first-class experiment axis.

Everything the simulators consume as "traffic" is built here from a
small declarative vocabulary — the same one
:class:`repro.fault.campaign.FaultCampaignConfig` hashes into campaign
identity:

* ``workload`` — :data:`WORKLOADS`: the Bernoulli synthetics
  (``"synthetic"``), Markov on/off bursts (``"bursty"``),
  multicast-heavy collectives (``"collective"``), or a recorded trace
  replay (``"trace"``).
* ``payload_mode`` — :data:`PAYLOAD_MODES`: what bits the flits carry,
  which is what the data-dependent link energy model
  (:mod:`repro.workload.energy`) prices.  Traces carry their own
  recorded bits; generated workloads draw random words from a
  content-addressed RNG stream or synthesize the all-toggle worst case.

:func:`build_traffic` is the one factory the campaign layer, the CLI,
and the DSE evaluators all share, so a workload spec means the same
packet stream everywhere it appears.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import WorkloadConfigError
from repro.noc.topology import Topology
from repro.noc.trace import TraceTraffic, topology_spec
from repro.noc.traffic import SyntheticTraffic
from repro.workload.energy import (
    coupling_miller_fraction,
    link_payload_energy,
    payload_datapath_energy,
)
from repro.workload.generators import (
    COLLECTIVES,
    BurstyTraffic,
    CollectiveTraffic,
)
from repro.workload.payload import (
    PAYLOAD_MODES,
    PayloadedTraffic,
    attach_payloads,
)

#: Workload families accepted by :func:`build_traffic` and the campaign
#: config.
WORKLOADS = ("synthetic", "bursty", "collective", "trace")

#: (resolved path, size, mtime_ns) -> parsed trace.  Replay state lives
#: on the TraceTraffic instance, so the cache stores one parsed master
#: and hands out fresh instances built from its (immutable) entries.
_trace_cache: dict[tuple[str, int, int], TraceTraffic] = {}


def load_trace_cached(path: str | Path) -> TraceTraffic:
    """Load a trace file with parse-once caching.

    Campaign workers build one traffic source per evaluated point;
    caching on (path, size, mtime) makes the Nth replay of a
    multi-megabyte trace cost one validation pass instead of a parse.
    Each call returns a *fresh* :class:`TraceTraffic` (drain state is
    per-instance), sharing the cached immutable entry list.
    """
    p = Path(path)
    try:
        stat = p.stat()
    except OSError as exc:
        raise WorkloadConfigError(
            f"trace file unreadable: {p} ({exc})"
        ) from exc
    key = (str(p.resolve()), stat.st_size, stat.st_mtime_ns)
    master = _trace_cache.get(key)
    if master is None:
        master = _trace_cache[key] = TraceTraffic.load_any(p)
    return TraceTraffic(
        topology=master.topology,
        entries=master.entries,
        flit_bits=master.flit_bits,
    )


def build_traffic(
    topology: Topology | None,
    workload: str = "synthetic",
    *,
    injection_rate: float = 0.1,
    pattern: str = "uniform",
    size_flits: int = 1,
    multicast_fraction: float = 0.0,
    multicast_degree: int = 4,
    seed: int = 7,
    burst_on: float = 0.05,
    burst_off: float = 0.15,
    collective_fraction: float = 0.25,
    collective: str = "row",
    trace_path: str | Path | None = None,
    payload_mode: str = "constant",
    flit_bits: int = 64,
):
    """Build the traffic source for a declarative workload spec.

    The single factory behind the fault campaign, the service CLI, and
    the DSE workload axis.  ``topology`` may be None only for
    ``workload="trace"`` (the trace carries its own); when given with a
    trace it must match the recorded topology — campaign configs name
    both, and a silent mismatch would replay nonsense.
    """
    if workload not in WORKLOADS:
        raise WorkloadConfigError(
            f"workload must be one of {WORKLOADS}, got {workload!r}"
        )
    if workload == "trace":
        if trace_path is None:
            raise WorkloadConfigError("workload='trace' needs a trace_path")
        traffic = load_trace_cached(trace_path)
        if topology is not None and topology != traffic.topology:
            raise WorkloadConfigError(
                f"trace {trace_path} was recorded on "
                f"{topology_spec(traffic.topology)} but the config asks "
                f"for {topology_spec(topology)}"
            )
        if payload_mode != "constant":
            raise WorkloadConfigError(
                "trace replay carries its own recorded payload; "
                f"payload_mode={payload_mode!r} does not apply"
            )
        return traffic
    if topology is None:
        raise WorkloadConfigError(f"workload={workload!r} needs a topology")
    if workload == "synthetic":
        traffic = SyntheticTraffic(
            topology,
            injection_rate,
            pattern=pattern,
            size_flits=size_flits,
            multicast_fraction=multicast_fraction,
            multicast_degree=multicast_degree,
            seed=seed,
        )
    elif workload == "bursty":
        if multicast_fraction != 0.0:
            raise WorkloadConfigError(
                "bursty traffic is unicast-only; "
                f"multicast_fraction={multicast_fraction} does not apply"
            )
        traffic = BurstyTraffic(
            topology,
            injection_rate,
            pattern=pattern,
            size_flits=size_flits,
            burst_on=burst_on,
            burst_off=burst_off,
            seed=seed,
        )
    else:  # collective
        traffic = CollectiveTraffic(
            topology,
            injection_rate,
            collective_fraction=collective_fraction,
            collective=collective,
            size_flits=size_flits,
            multicast_degree=multicast_degree,
            seed=seed,
        )
    if payload_mode != "constant":
        traffic = PayloadedTraffic(traffic, mode=payload_mode, flit_bits=flit_bits)
    return traffic


__all__ = [
    "COLLECTIVES",
    "PAYLOAD_MODES",
    "WORKLOADS",
    "BurstyTraffic",
    "CollectiveTraffic",
    "PayloadedTraffic",
    "attach_payloads",
    "build_traffic",
    "coupling_miller_fraction",
    "link_payload_energy",
    "load_trace_cached",
    "payload_datapath_energy",
]
