"""Exception hierarchy for the SRLR reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A model was configured with physically or logically invalid parameters."""


class SimulationError(ReproError):
    """A simulation could not be carried out (not a signaling failure)."""


class ConvergenceError(SimulationError):
    """An iterative solver or calibration failed to converge."""


class ExecutionError(ReproError):
    """The parallel runtime could not complete a task (not a physics failure)."""


class TaskTimeoutError(ExecutionError):
    """A task exceeded its per-task wall-clock budget.

    Raised inside the worker by the soft (``SIGALRM``) timeout, or by the
    executor in strict mode when the watchdog had to kill a hung chunk."""


class WorkerCrashError(ExecutionError):
    """A worker process died (``os._exit``, OOM kill, segfault) while
    holding tasks.  Raised only in strict mode; the resilient path
    respawns the pool and re-enqueues the in-flight work instead."""


class CheckpointError(ConfigurationError):
    """A checkpoint store refuses an unsafe operation (config mismatch,
    clobbering an existing run, records without a header, ...)."""


class WorkloadConfigError(ConfigurationError):
    """A campaign config combined workload/traffic fields that do not
    apply together (a trace replay given synthetic-generator knobs,
    burst parameters without the bursty workload, ...).  Mirrors the
    topology-flag guards in :func:`repro.noc.topology.build_topology`:
    fields that would otherwise be silently ignored refuse loudly,
    naming the offending combination."""


class NocError(ReproError):
    """Base class for NoC simulator errors."""


class RoutingError(NocError):
    """A packet could not be routed (bad destination, broken topology)."""


class ProtocolError(NocError):
    """Flow-control protocol invariant violated (credit underflow, VC misuse)."""


class LivelockError(ProtocolError):
    """The network stopped making forward progress (retransmission storm,
    disabled-link partition, saturation livelock).  Subclasses
    :class:`ProtocolError` so callers that treated failure-to-drain as a
    protocol failure keep working; the message carries a per-component
    diagnostic of where traffic is stuck."""


class ServiceError(ReproError):
    """Base class for campaign-service (:mod:`repro.service`) errors."""


class CampaignMismatchError(ServiceError):
    """A submission tried to attach to an existing campaign name with a
    different configuration.  Mirrors the refusal semantics of
    :class:`CheckpointError`: identity is the content hash of the
    canonical config, so a byte-identical resubmission is a no-op while
    any change refuses loudly instead of silently mixing task rows."""


class LeaseError(ServiceError):
    """A worker operated on a task row it does not (or no longer does)
    hold a live lease on."""
