"""Exception hierarchy for the SRLR reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A model was configured with physically or logically invalid parameters."""


class SimulationError(ReproError):
    """A simulation could not be carried out (not a signaling failure)."""


class ConvergenceError(SimulationError):
    """An iterative solver or calibration failed to converge."""


class NocError(ReproError):
    """Base class for NoC simulator errors."""


class RoutingError(NocError):
    """A packet could not be routed (bad destination, broken topology)."""


class ProtocolError(NocError):
    """Flow-control protocol invariant violated (credit underflow, VC misuse)."""


class LivelockError(ProtocolError):
    """The network stopped making forward progress (retransmission storm,
    disabled-link partition, saturation livelock).  Subclasses
    :class:`ProtocolError` so callers that treated failure-to-drain as a
    protocol failure keep working; the message carries a per-component
    diagnostic of where traffic is stuck."""
