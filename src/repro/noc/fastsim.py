"""Flat batch-cycle NoC engine (``engine="fast"``).

The reference :class:`~repro.noc.simulator.NocSimulator` walks Python
objects — one ``VirtualChannel`` deque, one ``OutputPort`` credit list,
one ``Router`` method call chain per port per cycle — which makes the
cycle loop the dominant wall-clock cost of every traffic-driven workload
(fault campaigns, DSE objectives, the energy-density recast).  This
module re-implements the *same machine* on a struct-of-arrays layout:

* all input-VC FIFOs of the whole mesh live in preallocated flat ring
  buffers indexed by ``slot = (router * 5 + port) * n_vcs + vc``
  (``_ring_ready``, ``_ring_flags``, ``_ring_dest``, ``_ring_flit``);
* credit counters and downstream-VC ownership are flat arrays indexed
  receiver-side (the credit for input buffer ``s`` *is* ``_credits[s]``,
  the same counter the reference keeps on the upstream ``OutputPort``);
* wormhole state (allocated output port / VC per input VC) and the
  per-front route/VA-grant cache are flat arrays as well;
* flits in flight are bucketed in an arrival calendar keyed by arrival
  cycle instead of being rediscovered by scanning every link each cycle;
* a dense set of occupied slots replaces per-object traversal: each
  cycle touches only the VCs that hold flits, not the whole mesh;
* per-flit constants (head/tail/dimension-order flags, destination
  index) are computed once at injection and carried alongside the flit
  through buffers and the calendar, never re-derived per hop.

The arrays are plain Python flat lists, not numpy ndarrays, and that is
a measured choice: the per-cycle work is dominated by *scalar* reads and
read-modify-writes at a few dozen active slots (push, pop, credit
consume/return), where list indexing is ~5x cheaper than ndarray scalar
indexing; the vectorizable portion (the front-readiness scan) runs over
the occupied set, which at realistic injection rates is two orders of
magnitude smaller than the slot space, so ndarray gather/scatter costs
more than it saves.  The layout is struct-of-arrays either way — the
same flat indexing would back an ndarray or a kernel port directly.
For the same reason the buffer-write / traverse / pop primitives are
inlined into :meth:`step` (the call-chain overhead alone was comparable
to the useful work); the slower per-flit paths (ejection, livelock
diagnostics) stay as methods.

Each cycle advances in phases mirroring the reference order exactly:
buffer write (NIC-staged, then link arrivals), traffic generation, NIC
injection, VC allocation, switch allocation + traversal.  The sequential
round-robin arbiters run only over the extracted active set, with
pointer updates and iteration orders copied verbatim from the reference
router.

Equivalence guarantee
---------------------
For identical seeds and configurations the engine produces *identical*
end-of-run statistics to the reference simulator: the same delivery
records (up to list order), latency histograms, event counters, per-link
traversal counts, and — with a fault layer attached — the same fault
ledger, CRC retransmission counts and end-to-end transfer records.  This
holds because every stateful decision point (round-robin pointers, VC
grant scans, RNG draw order on traffic, O1TURN coin flips and per-link
fault channels) is sequenced exactly as the reference sequences it; the
differential suite ``tests/test_noc_fastsim_parity.py`` locks the claim
down, and ``docs/NOC_FASTSIM.md`` documents the phase mapping.

Scope: unicast traffic only (any pattern, any mesh size, O1TURN, bypass,
multi-flit worms, every fault model and protection protocol).  Multicast
forks keep a flit resident across several switch grants, which the flat
front-state cache does not model; construction rejects multicast traffic
and injection rejects multicast packets loudly so a fall-back to the
reference engine is always a deliberate, visible choice.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, ProtocolError
from repro.noc.packet import Flit, single_flit
from repro.noc.routing import xy_route, yx_route
from repro.noc.stats import DeliveryRecord
from repro.noc.simulator import NocSimulator
from repro.noc.topology import Port

_P = 5  # ports per router (LOCAL + 4 compass directions)
_LOCAL = int(Port.LOCAL)

#: Flag bits of ``_ring_flags`` (and the ``fl`` words threaded through
#: the staging lists and the arrival calendar).
_F_HEAD = 1
_F_TAIL = 2
_F_YX = 4

#: Crosspoint keys by integer port pair (avoids enum construction and
#: tuple allocation per flit; the keys are the same Port objects the
#: reference records).
_PORT_PAIRS = tuple(tuple((a, b) for b in Port) for a in Port)


class FastNocSimulator(NocSimulator):
    """Struct-of-arrays batch-cycle engine behind ``engine="fast"``.

    Construction, wiring, the public surface (``config``, ``traffic``,
    ``stats``, ``links``, ``routers``, ``nics``, ``run``) and the fault
    layer attachment protocol are inherited from the reference
    simulator; only the cycle loop and the drain bookkeeping are
    replaced by array phases.  The inherited ``Router`` objects carry
    the fault layer's per-router hooks (``fault_layer``, ``route_fn``)
    and the crossbar crosspoint counters; their per-VC buffer state is
    unused — the arrays below are the single source of truth.
    """

    engine = "fast"

    def __init__(
        self,
        k,
        config=None,
        traffic=None,
        injection_rate: float = 0.05,
        pattern: str = "uniform",
        seed: int = 7,
        *,
        engine: str = "fast",
    ) -> None:
        if engine != "fast":
            raise ConfigurationError(
                f"FastNocSimulator is the engine='fast' implementation, "
                f"got engine={engine!r}"
            )
        super().__init__(
            k,
            config=config,
            traffic=traffic,
            injection_rate=injection_rate,
            pattern=pattern,
            seed=seed,
        )
        if not self.topology.supports_fast_engine:
            raise ConfigurationError(
                f"engine='fast' does not support the {self.topology.kind} "
                "topology; use the reference engine (NocSimulator falls "
                "back automatically with an EngineFallbackWarning)"
            )
        ports_seen = {
            tuple(int(p) for p in self.topology.node_ports(node))
            for node in self.topology.nodes()
        }
        if ports_seen != {(0, 1, 2, 3, 4)}:
            raise ConfigurationError(
                f"engine='fast' requires a uniform 5-port radix; the "
                f"{self.topology.kind} topology has port sets {ports_seen}"
            )
        if getattr(self.traffic, "multicast_fraction", 0.0):
            raise ConfigurationError(
                "engine='fast' supports unicast traffic only; use the "
                "reference engine for multicast mixes"
            )
        #: Whether the step loop counts payload transitions (set by the
        #: base constructor on the shared Link objects).
        self._payload_on = any(
            link.payload_mode != "constant" for link in self.links
        )
        self._build_arrays()

    # --- layout -----------------------------------------------------------------------

    def _build_arrays(self) -> None:
        config = self.config
        self._V = V = config.n_vcs
        self._C = C = config.vc_capacity
        self._bypass = config.enable_bypass
        self._plat = config.pipeline_latency
        self._nodes = sorted(self.topology.nodes())
        self._node_index = {node: i for i, node in enumerate(self._nodes)}
        R = len(self._nodes)
        self._R = R
        N = R * _P * V

        # Input-VC ring buffers, flat over (router, port, vc, slot).
        self._ring_ready = [0] * (N * C)
        self._ring_flags = [0] * (N * C)
        self._ring_dest = [0] * (N * C)
        self._ring_flit: list[Flit | None] = [None] * (N * C)
        self._head = [0] * N
        self._count = [0] * N
        #: Slots whose head-of-line flit is ready — the dense active set
        #: each cycle scans.  Maintained incrementally: a buffer write
        #: to an empty VC schedules the slot in ``_front_cal`` for the
        #: flit's ready cycle; a pop either keeps the slot (next flit
        #: already ready), reschedules it, or retires it when the VC
        #: empties.
        self._hol_ready: set[int] = set()
        #: Cycle -> slots whose head-of-line flit becomes ready then.
        self._front_cal: dict[int, list[int]] = {}
        #: Fast lane of ``_front_cal`` for the dominant bypass case:
        #: slots becoming ready exactly next cycle (consumed and
        #: replaced at each ``step``, skipping the calendar dict).
        self._hot_next: list[int] = []
        #: Total buffered flits (= sum of ``_count``), for drain checks.
        self._buffered_total = 0
        #: Slot -> (router, input port) decode tables for the scan.
        self._slot_router = [s // (_P * V) for s in range(N)]
        self._slot_port = [s // V % _P for s in range(N)]

        # Flow control, receiver-indexed: _credits[s] is the upstream
        # credit counter for input buffer s; _owned[s] is the upstream
        # VC-ownership flag.  (The reference keeps both on the sender's
        # OutputPort — it is the same state under a different index.)
        self._credits = [C] * N
        self._owned = [False] * N

        # Wormhole state per input VC (reference VirtualChannel.out_*).
        self._wh_port = [-1] * N
        self._wh_vc = [-1] * N
        # Front-of-VC head-flit state (reference _BranchState + route).
        self._fr_valid = [False] * N
        self._fr_port = [0] * N
        self._fr_vc = [-1] * N

        # Round-robin arbiter pointers, per (router, port).
        self._va_ptr = [[0] * _P for _ in range(R)]
        self._sa_in_ptr = [[0] * _P for _ in range(R)]
        self._sa_out_ptr = [[0] * _P for _ in range(R)]

        # Topology wiring: output (r, port) -> downstream input slot
        # base and link index; link -> destination input slot base.
        self._out_target = [[-1] * _P for _ in range(R)]
        self._link_of = [[-1] * _P for _ in range(R)]
        self._link_dst_base = [0] * len(self.links)
        # self.links was built from directed_links() in the same order,
        # so zipping recovers each link's output port without assuming a
        # mesh-style OPPOSITE relation (a torus wrap link enters on the
        # same compass side it left from).
        directed = self.topology.directed_links()
        for li, (link, (_src, out_port, _dst, _in_port)) in enumerate(
            zip(self.links, directed)
        ):
            r = self._node_index[link.src]
            dst_r = self._node_index[link.dst.node]
            dst_base = (dst_r * _P + int(link.dst.port)) * V
            self._out_target[r][int(out_port)] = dst_base
            self._link_of[r][int(out_port)] = li
            self._link_dst_base[li] = dst_base
        self._link_inflight = [0] * len(self.links)

        if self.topology.table_routed:
            # One deadlock-free table serves both "orders" (table
            # topologies reject o1turn at construction).
            table = self.topology.route_table_ints(self._nodes)
            self._route_xy = table
            self._route_yx = table
        else:
            # Dimension-order route tables: port from r toward dest d.
            self._route_xy = [
                [int(xy_route(a, b)) for b in self._nodes]
                for a in self._nodes
            ]
            self._route_yx = [
                [int(yx_route(a, b)) for b in self._nodes]
                for a in self._nodes
            ]

        # VC classes: (lo, hi) of the VC range a packet may use.
        if config.routing == "o1turn":
            half = V // 2
            self._class_xy = (0, half)
            self._class_yx = (half, V)
        else:
            self._class_xy = (0, V)
            self._class_yx = (0, V)
        self._vcs_xy = tuple(range(*self._class_xy))
        self._vcs_yx = tuple(range(*self._class_yx))

        #: NICs, routers and crossbars in sorted node order (the
        #: reference's per-cycle iteration order).
        self._nic_list = [self.nics[node] for node in self._nodes]
        self._router_list = [self.routers[node] for node in self._nodes]
        self._xbar_list = [router.crossbar for router in self._router_list]
        #: Per-NIC flag word / destination index of the packet currently
        #: being injected (computed once at VC allocation, shared by all
        #: of the worm's flits).
        self._nic_fl = [0] * R
        self._nic_di = [0] * R
        self._nic_sz = [1] * R

        #: Arrival calendar: cycle -> [(link_idx, flit, vc, flags,
        #: dest_idx), ...] in send order.  Replaces scanning every link
        #: every cycle; flags/dest ride along so no per-hop re-derivation.
        self._arrivals: dict[int, list[tuple[int, Flit, int, int, int]]] = {}
        self._inflight_total = 0
        #: Flits injected by NICs this cycle, buffer-written next cycle
        #: (the reference stages them on the router and accepts at the
        #: next cycle's buffer-write phase), as (slot, flit, flags,
        #: dest_idx).
        self._nic_staged: list[tuple[int, Flit, int, int]] = []

        #: Router indices whose NIC holds work (queued packets or a
        #: partially-injected worm), so the injection phase skips the
        #: idle majority.  Every ``offer`` path lands here — traffic,
        #: fault-layer reinjection, direct test drivers — because each
        #: Nic's ``offer`` is wrapped below; the injection phase prunes
        #: drained NICs.
        self._active_nics: set[int] = set()
        for r, nic in enumerate(self._nic_list):
            nic.offer = self._tracking_offer(nic, r)

    def _tracking_offer(self, nic, r: int):
        """Wrap ``nic.offer`` so any offer marks the NIC active."""
        inner = nic.offer  # the reference Nic's bound method
        active = self._active_nics
        if self.config.routing == "o1turn":
            # O1TURN offers draw the per-packet coin — delegate.
            def offer(packet):
                active.add(r)
                return inner(packet)

            return offer

        # Common case: Nic.offer is a queue append plus a stats bump
        # (no RNG), inlined here to keep the per-packet cost down.
        queue = nic.queue
        stats = self.stats

        def offer(packet):
            active.add(r)
            queue.append(packet)
            stats.injected_packets += 1

        return offer

    # --- primitive operations (cold paths; the hot paths inline these) ----------------

    def _return_credit(self, s: int) -> None:
        if self._credits[s] >= self._C:
            raise ProtocolError(f"credit overflow on slot {s}")
        self._credits[s] += 1

    def _release(self, s: int) -> None:
        if not self._owned[s]:
            raise ProtocolError(f"release of free downstream VC (slot {s})")
        self._owned[s] = False

    def _pop(self, s: int, f: int, is_tail: bool) -> None:
        """Reference ``Router._pop``: dequeue, credit upstream, release
        the VC grant on tails, invalidate the front cache."""
        self._ring_flit[f] = None
        self._head[s] = (self._head[s] + 1) % self._C
        cnt = self._count[s] = self._count[s] - 1
        self._buffered_total -= 1
        if cnt == 0:
            self._hol_ready.discard(s)
        else:
            ready = self._ring_ready[s * self._C + self._head[s]]
            if ready > self.cycle + 1:
                self._hol_ready.discard(s)
                self._front_cal.setdefault(ready, []).append(s)
            # else: the next flit is already ready; the slot stays hot.
        if is_tail:
            self._wh_port[s] = -1
            self._wh_vc[s] = -1
        self._fr_valid[s] = False
        self._fr_vc[s] = -1
        self._return_credit(s)
        if is_tail:
            self._release(s)

    def _route_front(self, r: int, s: int, f: int, flags: int) -> int:
        """Compute and cache the route of the head flit at front ``f``.

        Mirrors the reference's lazily-computed ``_BranchState``: the
        route is evaluated once per (flit, router) and kept until the
        flit is popped — a link disabled later in the same cycle does
        not retroactively re-route an already-evaluated front.
        """
        route_fn = self._router_list[r].route_fn
        if route_fn is None:
            d = self._ring_dest[f]
            table = self._route_yx if flags & _F_YX else self._route_xy
            port = table[r][d]
        else:
            flit = self._ring_flit[f]
            partition = route_fn(self.topology, self._nodes[r], flit)
            ((port, _dests),) = partition.items()
            port = int(port)
        self._fr_port[s] = port
        self._fr_valid[s] = True
        self._fr_vc[s] = -1
        return port

    # --- the cycle --------------------------------------------------------------------

    def step(self) -> None:
        """Advance the network by one cycle (phase order as reference)."""
        cycle = self.cycle
        stats = self.stats
        V = self._V
        C = self._C
        PV = _P * V
        bypass = self._bypass
        plat = self._plat
        credits = self._credits
        owned = self._owned
        wh_port = self._wh_port
        wh_vc = self._wh_vc
        fr_valid = self._fr_valid
        fr_port = self._fr_port
        fr_vc = self._fr_vc
        ring_flit = self._ring_flit
        ring_ready = self._ring_ready
        ring_flags = self._ring_flags
        ring_dest = self._ring_dest
        head = self._head
        count = self._count
        hol_ready = self._hol_ready
        front_cal = self._front_cal
        out_target = self._out_target
        links = self.links
        arrivals_cal = self._arrivals
        link_inflight = self._link_inflight
        fault_layer = self.fault_layer
        payload_on = self._payload_on
        n_writes = 0
        n_bypassed = 0

        if fault_layer is not None:
            fault_layer.begin_cycle(cycle)

        # Slots whose head-of-line flit becomes ready this cycle.
        newly_ready = front_cal.pop(cycle, None)
        if newly_ready is not None:
            hol_ready.update(newly_ready)
        hot_prev = self._hot_next
        if hot_prev:
            hol_ready.update(hot_prev)
        hot_next = self._hot_next = []
        next_cycle = cycle + 1

        # Phase 1: buffer write.  First the flits the NICs staged last
        # cycle, then this cycle's link arrivals (the reference accepts
        # them in the same staged order; the two groups land in disjoint
        # slots, LOCAL vs compass ports).
        if self._nic_staged:
            for s, flit, fl, di in self._nic_staged:
                cnt = count[s]
                if cnt >= C:
                    raise ProtocolError(
                        "VC overflow: credit accounting let a flit in "
                        "with no space"
                    )
                if bypass and cnt == 0:
                    ready = cycle + 1
                    n_bypassed += 1
                else:
                    ready = cycle + plat
                f = s * C + (head[s] + cnt) % C
                ring_flit[f] = flit
                ring_ready[f] = ready
                ring_flags[f] = fl
                ring_dest[f] = di
                count[s] = cnt + 1
                if cnt == 0:
                    # New head-of-line: hot once its pipeline delay ends.
                    if ready == next_cycle:
                        hot_next.append(s)
                    else:
                        bucket = front_cal.get(ready)
                        if bucket is None:
                            front_cal[ready] = [s]
                        else:
                            bucket.append(s)
                n_writes += 1
            self._nic_staged = []
        landed = arrivals_cal.pop(cycle, None)
        if landed is not None:
            link_dst_base = self._link_dst_base
            self._inflight_total -= len(landed)
            for li, flit, vc, fl, di in landed:
                link_inflight[li] -= 1
                s = link_dst_base[li] + vc
                if fault_layer is not None:
                    # Only a fault channel can mark a flit for
                    # receiver-side absorption (a dropped flit completes
                    # its flow-control lifecycle as a delivery's would:
                    # credit back, VC released on tails).
                    channel = links[li].channel
                    if channel is not None and channel.absorbs(flit):
                        if credits[s] >= C:
                            raise ProtocolError(
                                f"credit overflow on slot {s}"
                            )
                        credits[s] += 1
                        if fl & _F_TAIL:
                            if not owned[s]:
                                raise ProtocolError(
                                    f"release of free downstream VC "
                                    f"(slot {s})"
                                )
                            owned[s] = False
                        continue
                cnt = count[s]
                if cnt >= C:
                    raise ProtocolError(
                        "VC overflow: credit accounting let a flit in "
                        "with no space"
                    )
                if bypass and cnt == 0:
                    ready = cycle + 1
                    n_bypassed += 1
                else:
                    ready = cycle + plat
                f = s * C + (head[s] + cnt) % C
                ring_flit[f] = flit
                ring_ready[f] = ready
                ring_flags[f] = fl
                ring_dest[f] = di
                count[s] = cnt + 1
                if cnt == 0:
                    if ready == next_cycle:
                        hot_next.append(s)
                    else:
                        bucket = front_cal.get(ready)
                        if bucket is None:
                            front_cal[ready] = [s]
                        else:
                            bucket.append(s)
                n_writes += 1

        # Front scan: one pass over the hot slots (head-of-line flit
        # ready) builds this cycle's SA work lists, grouped by (router,
        # input port) — ascending slot order makes both groups
        # contiguous — and simultaneously collects the VC-allocation
        # requests per router.  Fusing request collection into the scan
        # is equivalence-preserving: collection only reads per-slot
        # front state (fr_*, wh_*) that other routers' grants never
        # write, and the grant pass below still runs in ascending
        # router order exactly as the reference sequences it.  (The
        # traffic and injection phases never touch buffers mid-cycle —
        # injected flits stage for the *next* cycle — so the scan stays
        # valid; pops during SA are per-router and happen at that
        # router's own turn.)
        router_list = self._router_list
        route_xy = self._route_xy
        route_yx = self._route_yx
        by_router: list[tuple[int, list[tuple[int, list]]]] = []
        va_work: list[tuple[int, list]] = []
        current_r = -1
        current_p = -1
        groups: list[tuple[int, list]] = []
        gitems: list[tuple[int, int, int]] = []
        req_rows = None
        route_fn = None
        rxy = ryx = None
        slot_router = self._slot_router
        slot_port = self._slot_port
        for s in sorted(hol_ready):
            f = s * C + head[s]
            r = slot_router[s]
            p = slot_port[s]
            if r != current_r:
                groups = []
                by_router.append((r, groups))
                current_r = r
                current_p = -1
                # route_fn overrides only exist under a fault layer
                # (adaptive reroute); skip the attribute load without one.
                if fault_layer is not None:
                    route_fn = router_list[r].route_fn
                rxy = route_xy[r]
                ryx = route_yx[r]
                req_rows = None
            if p != current_p:
                gitems = []
                groups.append((p, gitems))
                current_p = p
            fl = ring_flags[f]
            item = (s, f, fl)
            gitems.append(item)
            # VC-allocation request for head flits needing a VC.
            if not fl & _F_HEAD:
                continue
            if fr_valid[s]:
                out_p = fr_port[s]
            elif route_fn is None:
                out_p = (ryx if fl & _F_YX else rxy)[ring_dest[f]]
                fr_port[s] = out_p
                fr_valid[s] = True
                fr_vc[s] = -1
            else:
                out_p = self._route_front(r, s, f, fl)
            if out_p == _LOCAL or fr_vc[s] != -1:
                continue
            if wh_port[s] == out_p and wh_vc[s] != -1:
                continue  # wormhole continuation (head edge case)
            if req_rows is None:
                req_rows = [None, None, None, None, None]
                req_ports = []
                va_work.append((r, req_rows, req_ports))
            row = req_rows[out_p]
            if row is None:
                req_rows[out_p] = [item]
                req_ports.append(out_p)
            else:
                row.append(item)

        # Phase 2: traffic generation.
        nics = self.nics
        if fault_layer is None:
            for packet in self.traffic.packets_for_cycle(cycle):
                nics[packet.src].offer(packet)
        else:
            for packet in self.traffic.packets_for_cycle(cycle):
                nics[packet.src].offer(packet)
                fault_layer.on_offer(packet, cycle)

        # Phase 3: NIC injection (reference Nic.inject, one flit max per
        # node, in sorted node order).
        vcs_xy = self._vcs_xy
        vcs_yx = self._vcs_yx
        nic_staged = self._nic_staged
        nic_fl = self._nic_fl
        nic_di = self._nic_di
        nic_sz = self._nic_sz
        node_index = self._node_index
        nic_list = self._nic_list
        active_nics = self._active_nics
        n_injected = 0
        for r in sorted(active_nics):
            nic = nic_list[r]
            pending = nic._pending
            if not pending:
                queue = nic.queue
                if not queue:
                    active_nics.discard(r)
                    continue
                packet = queue[0]
                dests = packet.dests
                if len(dests) > 1:
                    raise ConfigurationError(
                        "engine='fast' supports unicast packets only; use "
                        "the reference engine for multicast traffic"
                    )
                yx = packet.routing == "yx"
                base = r * PV  # LOCAL port slot base
                free = [
                    v
                    for v in (vcs_yx if yx else vcs_xy)
                    if not owned[base + v]
                ]
                if not free:
                    continue
                vc = free[nic._va_ptr % len(free)]
                nic._va_ptr += 1
                queue.popleft()
                nic._vc = vc
                owned[base + vc] = True
                (dest,) = dests
                fl0 = _F_YX if yx else 0
                di = node_index[dest]
                nic_fl[r] = fl0
                nic_di[r] = di
                sz = nic_sz[r] = packet.size_flits
                if sz == 1:
                    # Single-flit packet (the dominant case): one flit,
                    # head and tail in one, built via the hot-path
                    # constructor and sent without a pending list.
                    s = base + vc
                    flit = single_flit(packet)
                    if credits[s] <= 0:
                        nic._pending = [flit]
                        continue
                    credits[s] -= 1
                    nic_staged.append(
                        (s, flit, fl0 | _F_HEAD | _F_TAIL, di)
                    )
                    n_injected += 1
                    nic._vc = None
                    continue
                pending = nic._pending = packet.flits()
            s = r * PV + nic._vc
            if credits[s] <= 0:
                continue
            flit = pending.pop(0)
            credits[s] -= 1
            fl = nic_fl[r]
            i = flit.seq
            if i == 0:
                fl |= _F_HEAD
            if i == nic_sz[r] - 1:
                fl |= _F_TAIL
            nic_staged.append((s, flit, fl, nic_di[r]))
            n_injected += 1
            if not pending:
                nic._vc = None
        if n_injected:
            stats.injected_flits += n_injected

        # Phase 4: VC allocation grants.  Requests were collected during
        # the front scan (routes resolved there; nothing between the
        # scan and here mutates routing state); each output port grants
        # a free downstream VC in round-robin order over requesters
        # (reference Router.vc_allocate, including its pointer
        # discipline), walking routers in ascending order.
        va_ptr_all = self._va_ptr
        for r, req_rows, req_ports in va_work:
            va_ptr = va_ptr_all[r]
            targets = out_target[r]
            if len(req_ports) > 1:
                req_ports.sort()  # ascending port order, as sorted()
            for out_p in req_ports:
                requesters = req_rows[out_p]
                ob = targets[out_p]
                if ob < 0:
                    raise ProtocolError(
                        f"route to unconnected port {Port(out_p)} at "
                        f"{self._nodes[r]}"
                    )
                n_req = len(requesters)
                if n_req == 1:
                    order = requesters
                else:
                    ptr = va_ptr[out_p] % n_req
                    order = requesters[ptr:] + requesters[:ptr]
                granted_mask = 0
                for s, f, fl in order:
                    grant = -1
                    for v in vcs_yx if fl & _F_YX else vcs_xy:
                        if not owned[ob + v] and not granted_mask >> v & 1:
                            grant = v
                            break
                    if grant < 0:
                        continue
                    granted_mask |= 1 << grant
                    owned[ob + grant] = True
                    fr_vc[s] = grant
                    if not fl & _F_TAIL:
                        # Multi-flit packet: the worm holds this VC.
                        wh_port[s] = out_p
                        wh_vc[s] = grant
                va_ptr[out_p] += 1

        # Phase 5: switch allocation + traversal (reference
        # Router.switch_and_traverse: input-first separable round-robin,
        # winners served in output-port order).
        n_reads = 0
        n_switched = 0
        n_delivered = 0
        n_sent = 0
        memo_arrival = -1
        memo_bucket = None
        xbar_list = self._xbar_list
        sa_in_all = self._sa_in_ptr
        sa_out_all = self._sa_out_ptr
        link_of = self._link_of
        deliveries = stats.deliveries
        nodes = self._nodes
        for r, groups in by_router:
            targets = out_target[r]
            # Stage 1: each input port nominates one eligible VC (the
            # scan already partitioned this router's ready fronts by
            # input port).
            nominations: list[tuple[int, int, int, int, int, int]] = []
            sa_in_ptr = sa_in_all[r]
            for p, gitems in groups:
                # Eligible fronts at this input port; the single-eligible
                # common case avoids materializing a list.
                first = None
                eligible = None
                for s, f, fl in gitems:
                    if fl & _F_HEAD:
                        out_p = fr_port[s]  # cached during VA
                        if out_p == _LOCAL:
                            ov = -1
                        else:
                            ov = fr_vc[s]
                            if ov == -1 or credits[targets[out_p] + ov] <= 0:
                                continue
                    else:
                        out_p = wh_port[s]
                        if out_p == -1:
                            raise ProtocolError(
                                "body flit with no allocated route"
                            )
                        if out_p == _LOCAL:
                            ov = -1
                        else:
                            ov = wh_vc[s]
                            if ov == -1 or credits[targets[out_p] + ov] <= 0:
                                continue
                    e = (p, s, f, fl, out_p, ov)
                    if first is None:
                        first = e
                    elif eligible is None:
                        eligible = [first, e]
                    else:
                        eligible.append(e)
                if first is not None:
                    if eligible is None:
                        nominations.append(first)
                    else:
                        ptr = sa_in_ptr[p] % len(eligible)
                        nominations.append(eligible[ptr])
                    sa_in_ptr[p] += 1

            if not nominations:
                continue
            # Stage 2: each output port grants one nominated input
            # (contenders arrive in ascending input-port order), and the
            # winner traverses immediately — switch, link, pop, credit.
            # The single-nomination case (most routers, light load)
            # skips the per-port partition entirely.
            if len(nominations) == 1:
                port_rows = ((nominations[0][4], nominations),)
            else:
                out_rows = [None, None, None, None, None]
                for nom in nominations:
                    op = nom[4]
                    row = out_rows[op]
                    if row is None:
                        out_rows[op] = [nom]
                    else:
                        row.append(nom)
                port_rows = [  # ascending port order
                    (op, out_rows[op])
                    for op in (0, 1, 2, 3, 4)
                    if out_rows[op] is not None
                ]
            sa_out_ptr = sa_out_all[r]
            link_of_r = link_of[r]
            for out_p, contenders in port_rows:
                n_con = len(contenders)
                if n_con == 1:
                    in_p, s, f, fl, _op, ov = contenders[0]
                else:
                    ptr = sa_out_ptr[out_p] % n_con
                    in_p, s, f, fl, _op, ov = contenders[ptr]
                sa_out_ptr[out_p] += 1
                front = ring_flit[f]
                if front is None:
                    raise ProtocolError("switch winner lost its flit")
                n_reads += 1
                if out_p == _LOCAL:
                    if (
                        fault_layer is None
                        and fl & _F_TAIL
                        and ring_dest[f] == r
                    ):
                        # Delivery fast path (tail flit at its own
                        # destination, no faults): _eject +
                        # record_delivery + pop, inlined.
                        stats.ejections += 1
                        n_delivered += 1
                        pkt = front.packet
                        deliveries.append(
                            DeliveryRecord(
                                pkt.packet_id,
                                nodes[r],
                                pkt.inject_cycle,
                                cycle,
                                False,
                                src=pkt.src,
                                corrupted=front.corrupted,
                            )
                        )
                        if front.corrupted:
                            stats.corrupted_deliveries += 1
                        ring_flit[f] = None
                        head[s] = (head[s] + 1) % C
                        cnt = count[s] = count[s] - 1
                        if cnt == 0:
                            hol_ready.discard(s)
                        else:
                            ready = ring_ready[s * C + head[s]]
                            if ready > cycle + 1:
                                hol_ready.discard(s)
                                bucket = front_cal.get(ready)
                                if bucket is None:
                                    front_cal[ready] = [s]
                                else:
                                    bucket.append(s)
                        wh_port[s] = -1
                        wh_vc[s] = -1
                        if not owned[s]:
                            raise ProtocolError(
                                f"release of free downstream VC (slot {s})"
                            )
                        owned[s] = False
                        fr_valid[s] = False
                        fr_vc[s] = -1
                        if credits[s] >= C:
                            raise ProtocolError(
                                f"credit overflow on slot {s}"
                            )
                        credits[s] += 1
                    else:
                        self._eject(cycle, r, s, f, fl, front)
                    continue
                # Crossbar (crosspoint EN count kept on the reference
                # Router's crossbar object for the energy model; the
                # u-turn guard matches Crossbar.connect).
                if in_p == out_p:
                    raise ProtocolError(
                        f"u-turn through crossbar at port {Port(out_p)}"
                    )
                xbar = xbar_list[r]
                key = _PORT_PAIRS[in_p][out_p]
                xcounts = xbar.crosspoint_counts
                xcounts[key] = xcounts.get(key, 0) + 1
                xbar.traversals += 1
                n_switched += 1
                # Downstream credit.
                target = targets[out_p] + ov
                if credits[target] <= 0:
                    raise ProtocolError(f"credit underflow on VC {ov}")
                credits[target] -= 1
                # Link dispatch (Link.dispatch inlined).  The reference
                # sends a branch copy because multicast forks need
                # per-branch destination subsets; a unicast flit's single
                # branch carries its full dest set, so the flit itself
                # travels.  Every per-flit channel decision (drop
                # absorption is keyed by flit identity, added at send and
                # consumed at arrival) balances within one hop, so
                # identity reuse across hops is inert.
                li = link_of_r[out_p]
                link = links[li]
                link.traversals += 1
                if payload_on:
                    # Data-dependent energy: whole-word XOR + popcount
                    # transition counting (Link.count_payload), at the
                    # same pipeline point the reference counts — the
                    # per-link counters are part of the parity contract.
                    link.count_payload(front)
                if fault_layer is None:
                    # Fault channels only exist under an attached
                    # FaultLayer (the engine contract; see module doc) —
                    # skip the per-link consult entirely without one.
                    arrival = cycle + link.latency
                    sent = front
                else:
                    channel = link.channel
                    if channel is None:
                        arrival = cycle + link.latency
                        sent = front
                    else:
                        arrival, sent = channel.transmit(link, front, cycle)
                entry = (li, sent, ov, fl, ring_dest[f])
                if arrival != memo_arrival:
                    # Same-arrival-cycle memo: with uniform link latency
                    # (the common case) every send this cycle lands in
                    # one calendar bucket.
                    memo_bucket = arrivals_cal.get(arrival)
                    if memo_bucket is None:
                        memo_bucket = arrivals_cal[arrival] = []
                    memo_arrival = arrival
                memo_bucket.append(entry)
                link_inflight[li] += 1
                n_sent += 1
                # Pop (reference Router._pop inlined).
                ring_flit[f] = None
                head[s] = (head[s] + 1) % C
                cnt = count[s] = count[s] - 1
                if cnt == 0:
                    hol_ready.discard(s)
                else:
                    ready = ring_ready[s * C + head[s]]
                    if ready > cycle + 1:
                        hol_ready.discard(s)
                        bucket = front_cal.get(ready)
                        if bucket is None:
                            front_cal[ready] = [s]
                        else:
                            bucket.append(s)
                if fl & _F_TAIL:
                    wh_port[s] = -1
                    wh_vc[s] = -1
                    if not owned[s]:
                        raise ProtocolError(
                            f"release of free downstream VC (slot {s})"
                        )
                    owned[s] = False
                fr_valid[s] = False
                fr_vc[s] = -1
                if credits[s] >= C:
                    raise ProtocolError(f"credit overflow on slot {s}")
                credits[s] += 1

        if n_writes:
            stats.buffer_writes += n_writes
        if n_bypassed:
            stats.bypassed_flits += n_bypassed
        if n_reads:
            stats.buffer_reads += n_reads
        if n_switched:
            stats.crossbar_traversals += n_switched
            stats.link_traversals += n_switched
        if n_sent:
            self._inflight_total += n_sent
        # Cold-path ejections decrement the buffer total in _pop;
        # switched flits and fast-path deliveries pop inline above.
        self._buffered_total += n_writes - n_switched - n_delivered
        self.cycle += 1

    # --- ejection (the cold half of traversal) ----------------------------------------

    def _eject(
        self, cycle: int, r: int, s: int, f: int, fl: int, front: Flit
    ) -> None:
        stats = self.stats
        fault_layer = self.fault_layer
        node = self._nodes[r]
        is_head = bool(fl & _F_HEAD)
        is_tail = bool(fl & _F_TAIL)
        if self._ring_dest[f] != r:
            if fault_layer is None:
                raise ProtocolError(
                    f"LOCAL branch with foreign dests {front.dests}"
                )
            # Adaptive-reroute escape hatch: unreachable destination,
            # counted discard instead of a wedged network.
            stats.ejections += 1
            if is_head and not is_tail:
                self._wh_port[s] = _LOCAL
            fault_layer.on_undeliverable(front, node)
            self._pop(s, f, is_tail)
            return
        stats.ejections += 1
        if is_head and not is_tail:
            # Multi-flit packet ejecting here: the worm follows.
            self._wh_port[s] = _LOCAL
        if is_tail:
            corrupted = front.corrupted
            if fault_layer is not None:
                corrupted = corrupted or fault_layer.packet_corrupted(
                    front.packet
                )
            stats.record_delivery(
                front.packet.packet_id,
                node,
                front.packet.inject_cycle,
                cycle,
                via_tap=False,
                src=front.packet.src,
                corrupted=corrupted,
            )
            if fault_layer is not None:
                fault_layer.on_delivery(front, node, cycle, corrupted)
        self._pop(s, f, is_tail)

    # --- drain bookkeeping ------------------------------------------------------------

    def _network_busy(self) -> bool:
        if self._inflight_total or self._nic_staged or self._buffered_total:
            return True
        for nic in self._nic_list:
            if nic.backlog:
                return True
        if self.fault_layer is not None and self.fault_layer.busy():
            return True
        return False

    def _next_scheduled_event(self) -> int | None:
        candidates = list(self._arrivals.keys())
        if self.fault_layer is not None:
            event = self.fault_layer.next_event_cycle()
            if event is not None:
                candidates.append(event)
        return min(candidates) if candidates else None

    def _drain_diagnostic(self) -> str:
        busy_links = [
            li for li, n in enumerate(self._link_inflight) if n > 0
        ]
        backlog = sum(nic.backlog for nic in self._nic_list)
        parts = [
            f"cycle={self.cycle}",
            f"links_in_flight={len(busy_links)}",
            f"buffered_flits={sum(self._count)}",
            f"staged_flits={len(self._nic_staged)}",
            f"nic_backlog={backlog}",
        ]
        if busy_links:
            worst = sorted(
                busy_links, key=lambda li: -self._link_inflight[li]
            )[:3]
            parts.append(
                "busiest_links="
                + ",".join(self.links[li].token for li in worst)
            )
        layer = self.fault_layer
        if layer is not None:
            s = layer.stats
            parts.append(
                f"fault(retransmissions={s.retransmissions}, "
                f"giveups={s.crc_giveups}, dropped={s.flits_dropped}, "
                f"links_disabled={s.links_disabled}, "
                f"undeliverable={s.undeliverable_flits})"
            )
            if layer.tracker is not None:
                parts.append(
                    f"e2e(outstanding={len(layer.tracker._transfers)}, "
                    f"acks_in_flight={len(layer.tracker._acks)}, "
                    f"retries={s.packet_retries})"
                )
        return " ".join(parts)


__all__ = ["FastNocSimulator"]
