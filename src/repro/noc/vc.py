"""Virtual channels and input buffering.

Each input port of the paper's router has 4 virtual channels sharing 16
flit buffers (we allocate them statically: 4 flits per VC).  A VC holds a
FIFO of flits plus the wormhole state the router pipeline needs: the
output port chosen by route computation and the downstream VC granted by
VC allocation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ProtocolError
from repro.noc.packet import Flit
from repro.noc.topology import Port


@dataclass
class VirtualChannel:
    """One VC's FIFO and wormhole state."""

    capacity: int
    fifo: deque[tuple[Flit, int]] = field(default_factory=deque)  # (flit, ready_cycle)
    out_port: Port | None = None
    out_vc: int | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {self.capacity}")

    @property
    def occupancy(self) -> int:
        return len(self.fifo)

    @property
    def is_idle(self) -> bool:
        """Idle: empty and not mid-packet (available for a new packet)."""
        return not self.fifo and self.out_port is None

    def push(self, flit: Flit, ready_cycle: int) -> None:
        if len(self.fifo) >= self.capacity:
            raise ProtocolError(
                "VC overflow: credit accounting let a flit in with no space"
            )
        self.fifo.append((flit, ready_cycle))

    def front(self, cycle: int) -> Flit | None:
        """The head-of-line flit if it has cleared the pipeline stages."""
        if not self.fifo:
            return None
        flit, ready = self.fifo[0]
        return flit if ready <= cycle else None

    def pop(self) -> Flit:
        if not self.fifo:
            raise ProtocolError("pop from empty VC")
        flit, _ = self.fifo.popleft()
        if flit.is_tail:
            # Packet done: the VC returns to idle for the next allocation.
            self.out_port = None
            self.out_vc = None
        return flit


@dataclass
class InputPort:
    """All VCs of one input port."""

    n_vcs: int
    vc_capacity: int
    vcs: list[VirtualChannel] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_vcs < 1:
            raise ConfigurationError(f"n_vcs must be >= 1, got {self.n_vcs}")
        self.vcs = [VirtualChannel(self.vc_capacity) for _ in range(self.n_vcs)]

    def idle_vc(self) -> int | None:
        """Index of an idle VC (for an arriving new packet), or None."""
        for i, vc in enumerate(self.vcs):
            if vc.is_idle:
                return i
        return None

    @property
    def occupancy(self) -> int:
        return sum(vc.occupancy for vc in self.vcs)


@dataclass
class OutputPort:
    """Output-side bookkeeping: downstream credits and VC ownership."""

    n_vcs: int
    vc_capacity: int
    credits: list[int] = field(init=False)
    #: Which local (in_port, in_vc) currently owns each downstream VC;
    #: None = free.
    owner: list[tuple[Port, int] | None] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_vcs < 1:
            raise ConfigurationError(f"n_vcs must be >= 1, got {self.n_vcs}")
        self.credits = [self.vc_capacity] * self.n_vcs
        self.owner = [None] * self.n_vcs

    def free_vcs(self) -> list[int]:
        return [i for i, owner in enumerate(self.owner) if owner is None]

    def acquire(self, vc: int, owner: tuple[Port, int]) -> None:
        if self.owner[vc] is not None:
            raise ProtocolError(f"downstream VC {vc} already owned")
        self.owner[vc] = owner

    def release(self, vc: int) -> None:
        if self.owner[vc] is None:
            raise ProtocolError(f"release of free downstream VC {vc}")
        self.owner[vc] = None

    def consume_credit(self, vc: int) -> None:
        if self.credits[vc] <= 0:
            raise ProtocolError(f"credit underflow on VC {vc}")
        self.credits[vc] -= 1

    def return_credit(self, vc: int) -> None:
        if self.credits[vc] >= self.vc_capacity:
            raise ProtocolError(f"credit overflow on VC {vc}")
        self.credits[vc] += 1


__all__ = ["InputPort", "OutputPort", "VirtualChannel"]
