"""Trace-driven traffic: record, save, and replay packet streams.

Synthetic patterns answer "what if"; traces answer "what happened".  This
module lets a workload be captured once (from a synthetic run or built by
hand) and replayed deterministically against different router/datapath
configurations — the methodology used for the SRLR-vs-full-swing and
taps-vs-no-taps comparisons, where both sides must see *identical*
traffic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology, NodeId
from repro.noc.traffic import SyntheticTraffic


@dataclass(frozen=True)
class TraceEntry:
    """One packet generation event."""

    cycle: int
    src: NodeId
    dests: tuple[NodeId, ...]
    size_flits: int

    def to_packet(self) -> Packet:
        return Packet(
            src=self.src,
            dests=frozenset(self.dests),
            size_flits=self.size_flits,
            inject_cycle=self.cycle,
        )


@dataclass
class TraceTraffic:
    """A replayable packet trace, API-compatible with SyntheticTraffic."""

    topology: MeshTopology
    entries: list[TraceEntry]
    #: Kept for drain compatibility with NocSimulator.run (which zeroes
    #: the rate during drain); a trace stops producing on its own.
    injection_rate: float = field(default=1.0)

    def __post_init__(self) -> None:
        self._by_cycle: dict[int, list[TraceEntry]] = {}
        for entry in self.entries:
            if entry.cycle < 0:
                raise ConfigurationError(f"negative cycle in trace: {entry}")
            for node in (entry.src, *entry.dests):
                if not self.topology.contains(node):
                    raise ConfigurationError(f"trace node {node} outside mesh")
            self._by_cycle.setdefault(entry.cycle, []).append(entry)

    def packets_for_cycle(self, cycle: int) -> list[Packet]:
        if self.injection_rate == 0.0:
            return []  # draining
        return [e.to_packet() for e in self._by_cycle.get(cycle, [])]

    @property
    def n_packets(self) -> int:
        return len(self.entries)

    @property
    def last_cycle(self) -> int:
        return max((e.cycle for e in self.entries), default=0)

    # --- persistence -------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON (portable, diffable)."""
        payload = {
            "k": self.topology.k,
            "entries": [
                {
                    "cycle": e.cycle,
                    "src": list(e.src),
                    "dests": [list(d) for d in e.dests],
                    "size_flits": e.size_flits,
                }
                for e in self.entries
            ],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "TraceTraffic":
        payload = json.loads(Path(path).read_text())
        topology = MeshTopology(payload["k"])
        entries = [
            TraceEntry(
                cycle=e["cycle"],
                src=tuple(e["src"]),
                dests=tuple(tuple(d) for d in e["dests"]),
                size_flits=e["size_flits"],
            )
            for e in payload["entries"]
        ]
        return cls(topology=topology, entries=entries)


def record_trace(
    generator: SyntheticTraffic, n_cycles: int
) -> TraceTraffic:
    """Capture ``n_cycles`` of a synthetic generator into a trace."""
    if n_cycles < 1:
        raise ConfigurationError(f"n_cycles must be >= 1, got {n_cycles}")
    entries: list[TraceEntry] = []
    for cycle in range(n_cycles):
        for packet in generator.packets_for_cycle(cycle):
            entries.append(
                TraceEntry(
                    cycle=cycle,
                    src=packet.src,
                    dests=tuple(sorted(packet.dests)),
                    size_flits=packet.size_flits,
                )
            )
    return TraceTraffic(topology=generator.topology, entries=entries)


__all__ = ["TraceEntry", "TraceTraffic", "record_trace"]
