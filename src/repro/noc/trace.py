"""Trace-driven traffic: record, ingest, save, and replay packet streams.

Synthetic patterns answer "what if"; traces answer "what happened".  This
module lets a workload be captured once (from a synthetic run, a bursty
generator, an external simulator dump, or built by hand) and replayed
deterministically against different router/datapath configurations — the
methodology used for the SRLR-vs-full-swing and taps-vs-no-taps
comparisons, where both sides must see *identical* traffic.

Two interchangeable on-disk forms:

* **JSON** (``save``/``load``): portable, diffable, carries the topology
  spec inline.
* **Text lines** (``save_text``/``load_text``): the gem5/Netrace-style
  ingestion format — one packet per line,

  .. code-block:: text

     # comment
     topology torus k=4
     <cycle> <src_x>,<src_y> <dx,dy[;dx,dy...]> <size_flits> [hexword ...]

  with one optional hex payload word per flit (LSB = wire 0).  Text
  traces are parsed **streaming**: :func:`iter_trace_text` yields entries
  line by line in constant memory, so multi-million-packet dumps ingest
  without materializing the file.

Traces are content-addressed: :meth:`TraceTraffic.content_hash` is a
stable digest of the topology spec and every entry (payload included),
and :func:`trace_file_hash` maps a trace *file* to that same logical
digest (cached on (size, mtime)), so a trace slots into the campaign
service and ResultCache exactly like any other config — two copies of
the same trace hash identically regardless of path or format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.errors import ConfigurationError
from repro.noc.packet import Packet
from repro.noc.topology import NodeId, Topology, build_topology
from repro.runtime.cache import content_key


def topology_spec(topology: Topology) -> dict:
    """The ``build_topology`` keyword form of a topology (JSON-safe)."""
    kind = topology.kind
    if kind == "mesh":
        return {"kind": "mesh", "k": topology.k}
    if kind == "torus":
        return {"kind": "torus", "k": topology.k}
    if kind == "cmesh":
        return {"kind": "cmesh", "k": topology.k, "concentration": topology.c}
    if kind == "chiplet":
        return {
            "kind": "chiplet",
            "k": topology.chiplet_k,
            "chiplets_x": topology.chiplets_x,
            "chiplets_y": topology.chiplets_y,
            "noi_scale": topology.noi_scale,
        }
    raise ConfigurationError(f"cannot serialize topology kind {kind!r}")


def topology_from_spec(spec: dict) -> Topology:
    kwargs = dict(spec)
    kind = kwargs.pop("kind")
    k = kwargs.pop("k")
    return build_topology(kind, k, **kwargs)


@dataclass(frozen=True)
class TraceEntry:
    """One packet generation event."""

    cycle: int
    src: NodeId
    dests: tuple[NodeId, ...]
    size_flits: int
    #: Per-flit payload words (empty = payload not recorded).
    payload: tuple[int, ...] = ()

    def to_packet(self) -> Packet:
        return Packet(
            src=self.src,
            dests=frozenset(self.dests),
            size_flits=self.size_flits,
            inject_cycle=self.cycle,
            payload=self.payload,
        )


def format_trace_line(entry: TraceEntry) -> str:
    """One text-format line for ``entry`` (no newline)."""
    dests = ";".join(f"{x},{y}" for x, y in entry.dests)
    line = (
        f"{entry.cycle} {entry.src[0]},{entry.src[1]} {dests} "
        f"{entry.size_flits}"
    )
    if entry.payload:
        line += " " + " ".join(f"{w:x}" for w in entry.payload)
    return line


def parse_trace_line(line: str) -> TraceEntry:
    """Parse one text-format line into a :class:`TraceEntry`."""
    parts = line.split()
    if len(parts) < 4:
        raise ConfigurationError(f"malformed trace line: {line!r}")
    try:
        cycle = int(parts[0])
        sx, sy = parts[1].split(",")
        src = (int(sx), int(sy))
        dests = []
        for d in parts[2].split(";"):
            dx, dy = d.split(",")
            dests.append((int(dx), int(dy)))
        size_flits = int(parts[3])
        payload = tuple(int(w, 16) for w in parts[4:])
    except (ValueError, IndexError) as exc:
        raise ConfigurationError(
            f"malformed trace line: {line!r} ({exc})"
        ) from exc
    return TraceEntry(
        cycle=cycle,
        src=src,
        dests=tuple(dests),
        size_flits=size_flits,
        payload=payload,
    )


def _parse_header(line: str) -> dict:
    """Parse a ``topology <kind> key=value ...`` header directive."""
    parts = line.split()
    spec: dict = {"kind": parts[1]}
    for kv in parts[2:]:
        key, _, value = kv.partition("=")
        spec[key] = float(value) if "." in value else int(value)
    return spec


def iter_trace_text(path: str | Path) -> Iterator[dict | TraceEntry]:
    """Stream a text trace: the topology spec dict first, then entries.

    Constant-memory: one line is parsed at a time, so arbitrarily large
    dumps ingest without loading the file.  Blank lines and ``#``
    comments are skipped; the ``topology`` directive must precede the
    first entry.
    """
    spec: dict | None = None
    with open(path) as fh:
        for raw in fh:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("topology "):
                if spec is not None:
                    raise ConfigurationError(
                        f"duplicate topology directive in {path}"
                    )
                spec = _parse_header(line)
                yield spec
                continue
            if spec is None:
                raise ConfigurationError(
                    f"{path}: trace entries before the topology directive"
                )
            yield parse_trace_line(line)
    if spec is None:
        raise ConfigurationError(f"{path}: no topology directive found")


@dataclass
class TraceTraffic:
    """A replayable packet trace, API-compatible with SyntheticTraffic.

    Works over the full :class:`~repro.noc.topology.Topology` family —
    the trace stores a topology *spec*, and replay validates every node
    against whatever family member it was recorded on.  Replay drains
    through the explicit protocol (:meth:`begin_drain`/:meth:`end_drain`)
    shared with ``SyntheticTraffic`` instead of the old
    ``injection_rate = 1.0`` compatibility hack.
    """

    topology: Topology
    entries: list[TraceEntry]
    #: Payload word width in bits; bounds every recorded payload word
    #: and sizes the data-dependent transition counting on the links.
    flit_bits: int = field(default=64)

    def __post_init__(self) -> None:
        if self.flit_bits < 1:
            raise ConfigurationError(
                f"flit_bits must be >= 1, got {self.flit_bits}"
            )
        limit = 1 << self.flit_bits
        self._draining = False
        self._has_payload = False
        self._n_multicast = 0
        self._by_cycle: dict[int, list[TraceEntry]] = {}
        for entry in self.entries:
            if entry.cycle < 0:
                raise ConfigurationError(f"negative cycle in trace: {entry}")
            for node in (entry.src, *entry.dests):
                if not self.topology.contains(node):
                    raise ConfigurationError(
                        f"trace node {node} outside the "
                        f"{self.topology.kind} topology"
                    )
            if entry.payload:
                if len(entry.payload) != entry.size_flits:
                    raise ConfigurationError(
                        f"entry at cycle {entry.cycle} carries "
                        f"{len(entry.payload)} payload words for "
                        f"{entry.size_flits} flits"
                    )
                if any(not 0 <= w < limit for w in entry.payload):
                    raise ConfigurationError(
                        f"payload word wider than flit_bits={self.flit_bits} "
                        f"at cycle {entry.cycle}"
                    )
                self._has_payload = True
            if len(entry.dests) > 1:
                self._n_multicast += 1
            self._by_cycle.setdefault(entry.cycle, []).append(entry)

    # --- traffic-source protocol -------------------------------------------------------

    def packets_for_cycle(self, cycle: int) -> list[Packet]:
        if self._draining:
            return []
        return [e.to_packet() for e in self._by_cycle.get(cycle, [])]

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        if self._draining:
            raise ConfigurationError("begin_drain() while already draining")
        self._draining = True

    def end_drain(self) -> None:
        if not self._draining:
            raise ConfigurationError("end_drain() without begin_drain()")
        self._draining = False

    @property
    def multicast_fraction(self) -> float:
        """Share of entries with more than one destination.

        Nonzero forces the reference engine, exactly as it does for
        ``SyntheticTraffic`` — the fast engine's unicast-only guard
        reads this attribute.
        """
        if not self.entries:
            return 0.0
        return self._n_multicast / len(self.entries)

    @property
    def payload_mode(self) -> str:
        """``"trace"`` when payload bits were recorded, else constant."""
        return "trace" if self._has_payload else "constant"

    @property
    def payload_bits(self) -> int:
        return self.flit_bits

    @property
    def n_packets(self) -> int:
        return len(self.entries)

    @property
    def last_cycle(self) -> int:
        return max((e.cycle for e in self.entries), default=0)

    # --- identity ----------------------------------------------------------------------

    def content_hash(self) -> str:
        """Stable content digest over the topology spec and every entry.

        Format-independent: a trace saved as JSON and re-saved as text
        hashes identically, so campaign identity follows the workload's
        *content*, not its file encoding or path.
        """
        return content_key(
            "noc-trace/v1",
            topology_spec(self.topology),
            self.flit_bits,
            tuple(self.entries),
        )

    # --- persistence -------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON (portable, diffable)."""
        payload = {
            "format": "noc-trace/v1",
            "topology": topology_spec(self.topology),
            "flit_bits": self.flit_bits,
            "entries": [
                {
                    "cycle": e.cycle,
                    "src": list(e.src),
                    "dests": [list(d) for d in e.dests],
                    "size_flits": e.size_flits,
                    **(
                        {"payload": [f"{w:x}" for w in e.payload]}
                        if e.payload
                        else {}
                    ),
                }
                for e in self.entries
            ],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "TraceTraffic":
        payload = json.loads(Path(path).read_text())
        if "topology" in payload:
            topology = topology_from_spec(payload["topology"])
        else:
            # Legacy pre-family JSON: a bare mesh radix.
            topology = build_topology("mesh", payload["k"])
        entries = [
            TraceEntry(
                cycle=e["cycle"],
                src=tuple(e["src"]),
                dests=tuple(tuple(d) for d in e["dests"]),
                size_flits=e["size_flits"],
                payload=tuple(int(w, 16) for w in e.get("payload", ())),
            )
            for e in payload["entries"]
        ]
        return cls(
            topology=topology,
            entries=entries,
            flit_bits=payload.get("flit_bits", 64),
        )

    def save_text(self, path: str | Path) -> None:
        """Write the gem5/Netrace-style line format."""
        spec = topology_spec(self.topology)
        kind = spec.pop("kind")
        k = spec.pop("k")
        header = f"topology {kind} k={k}"
        for key, value in spec.items():
            header += f" {key}={value}"
        with open(path, "w") as fh:
            fh.write(f"# noc-trace/v1 text format, flit_bits={self.flit_bits}\n")
            fh.write(header + "\n")
            for entry in self.entries:
                fh.write(format_trace_line(entry) + "\n")

    @classmethod
    def load_text(
        cls, path: str | Path, flit_bits: int = 64
    ) -> "TraceTraffic":
        """Ingest a text trace via the streaming line parser."""
        stream = iter_trace_text(path)
        spec = next(stream)
        topology = topology_from_spec(spec)
        return cls(
            topology=topology,
            entries=list(stream),
            flit_bits=flit_bits,
        )

    @classmethod
    def load_any(cls, path: str | Path, flit_bits: int = 64) -> "TraceTraffic":
        """Load a trace file in either format (sniffed, not by suffix)."""
        with open(path) as fh:
            head = fh.read(1)
        if head == "{":
            return cls.load(path)
        return cls.load_text(path, flit_bits=flit_bits)


#: (resolved path, size, mtime_ns) -> logical content hash.
_file_hash_cache: dict[tuple[str, int, int], str] = {}


def trace_file_hash(path: str | Path) -> str:
    """The logical content hash of a trace file (either format).

    Parses the file and hashes the *trace*, not the bytes, so the JSON
    and text encodings of the same workload — and copies at different
    paths — share one identity.  Cached on (path, size, mtime) so
    campaign-config hashing stays cheap.
    """
    p = Path(path)
    try:
        stat = p.stat()
    except OSError as exc:
        raise ConfigurationError(f"trace file unreadable: {p} ({exc})") from exc
    key = (str(p.resolve()), stat.st_size, stat.st_mtime_ns)
    cached = _file_hash_cache.get(key)
    if cached is None:
        cached = TraceTraffic.load_any(p).content_hash()
        _file_hash_cache[key] = cached
    return cached


def record_trace(generator, n_cycles: int) -> TraceTraffic:
    """Capture ``n_cycles`` of any traffic generator into a trace.

    Works with ``SyntheticTraffic`` and the :mod:`repro.workload`
    generators alike — anything with ``topology`` and
    ``packets_for_cycle``.  Payload words attached by the generator are
    captured per entry.
    """
    if n_cycles < 1:
        raise ConfigurationError(f"n_cycles must be >= 1, got {n_cycles}")
    entries: list[TraceEntry] = []
    for cycle in range(n_cycles):
        for packet in generator.packets_for_cycle(cycle):
            entries.append(
                TraceEntry(
                    cycle=cycle,
                    src=packet.src,
                    dests=tuple(sorted(packet.dests)),
                    size_flits=packet.size_flits,
                    payload=packet.payload,
                )
            )
    return TraceTraffic(
        topology=generator.topology,
        entries=entries,
        flit_bits=getattr(generator, "payload_bits", 64),
    )


__all__ = [
    "TraceEntry",
    "TraceTraffic",
    "format_trace_line",
    "iter_trace_text",
    "parse_trace_line",
    "record_trace",
    "topology_from_spec",
    "topology_spec",
    "trace_file_hash",
]
