"""Synthetic traffic generators.

The standard mesh evaluation patterns (uniform random, transpose,
bit-complement, nearest neighbor, hotspot) plus multicast mixes modeling
the coherence-style 1-to-N traffic that motivates the SRLR's free
multicast (Section II / [10]).  Injection is a per-node Bernoulli process
in packets per node per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.noc.packet import Packet, unicast_packet
from repro.noc.topology import NodeId, Topology

PATTERNS = (
    "uniform",
    "transpose",
    "bit_complement",
    "neighbor",
    "hotspot",
)


def pattern_destination(
    pattern: str, src: NodeId, k: int, rng: np.random.Generator
) -> NodeId:
    """Destination of one unicast packet under a named pattern."""
    x, y = src
    if pattern == "uniform":
        while True:
            dest = (int(rng.integers(k)), int(rng.integers(k)))
            if dest != src:
                return dest
    if pattern == "transpose":
        dest = (y, x)
    elif pattern == "bit_complement":
        dest = (k - 1 - x, k - 1 - y)
    elif pattern == "neighbor":
        dest = ((x + 1) % k, y)
    elif pattern == "hotspot":
        dest = (k // 2, k // 2)
    else:
        raise ConfigurationError(
            f"unknown pattern {pattern!r}; choose from {PATTERNS}"
        )
    if dest == src:
        # Self-addressed under a deterministic pattern: fall back to the
        # east neighbor so the node still exercises the network.
        dest = ((x + 1) % k, y)
        if dest == src:
            raise ConfigurationError("mesh too small for this pattern")
    return dest


def endpoint_destination(
    pattern: str, src: NodeId, w: int, h: int, rng: np.random.Generator
) -> NodeId:
    """Destination on a ``w x h`` endpoint grid (rectangular patterns).

    The generalization of :func:`pattern_destination` for topologies
    whose endpoint grid is not square (concentrated meshes, chiplet
    hierarchies); for ``w == h == k`` the draw sequence is identical.
    """
    x, y = src
    if pattern == "uniform":
        while True:
            dest = (int(rng.integers(w)), int(rng.integers(h)))
            if dest != src:
                return dest
    if pattern == "transpose":
        dest = (y, x)
    elif pattern == "bit_complement":
        dest = (w - 1 - x, h - 1 - y)
    elif pattern == "neighbor":
        dest = ((x + 1) % w, y)
    elif pattern == "hotspot":
        dest = (w // 2, h // 2)
    else:
        raise ConfigurationError(
            f"unknown pattern {pattern!r}; choose from {PATTERNS}"
        )
    if dest == src:
        dest = ((x + 1) % w, y)
        if dest == src:
            raise ConfigurationError("endpoint grid too small for this pattern")
    return dest


class DrainableTraffic:
    """The explicit drain protocol every traffic source implements.

    ``NocSimulator.run`` calls :meth:`begin_drain` when the measurement
    window closes and :meth:`end_drain` (in a ``finally``) once the
    network has emptied, instead of reaching into the generator to zero
    ``injection_rate``.  The default implementation reproduces the
    legacy behavior exactly — the rate is parked at 0.0 but
    ``packets_for_cycle`` keeps running (and keeps consuming its RNG
    stream), so drained runs stay bit-identical to the pre-protocol
    golden results.  Sources without a meaningful rate (trace replay)
    override with a flag instead.
    """

    @property
    def draining(self) -> bool:
        return getattr(self, "_drain_saved_rate", None) is not None

    def begin_drain(self) -> None:
        if self.draining:
            raise ConfigurationError("begin_drain() while already draining")
        self._drain_saved_rate = self.injection_rate
        self.injection_rate = 0.0

    def end_drain(self) -> None:
        if not self.draining:
            raise ConfigurationError("end_drain() without begin_drain()")
        self.injection_rate = self._drain_saved_rate
        self._drain_saved_rate = None


@dataclass
class SyntheticTraffic(DrainableTraffic):
    """Bernoulli packet injection with a destination pattern.

    Attributes
    ----------
    topology:
        The topology being driven.  Grid-endpoint topologies (mesh,
        torus) inject at routers; others (concentrated mesh, chiplet)
        inject at *endpoints* — per-endpoint Bernoulli coins, with
        endpoint pairs mapped onto their serving routers and
        same-router pairs served locally (never entering the network).
    injection_rate:
        Packets per node per cycle (0..1).
    pattern:
        One of :data:`PATTERNS`.
    size_flits:
        Flits per unicast packet.
    multicast_fraction:
        Share of packets that are multicast (single-flit, random
        destination set of ``multicast_degree``).
    multicast_degree:
        Destinations per multicast packet.
    seed:
        RNG seed; generation is fully reproducible.
    """

    topology: Topology
    injection_rate: float
    pattern: str = "uniform"
    size_flits: int = 1
    multicast_fraction: float = 0.0
    multicast_degree: int = 4
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0.0 <= self.injection_rate <= 1.0:
            raise ConfigurationError(
                f"injection_rate must lie in [0, 1], got {self.injection_rate}"
            )
        if self.pattern not in PATTERNS:
            raise ConfigurationError(
                f"unknown pattern {self.pattern!r}; choose from {PATTERNS}"
            )
        if self.size_flits < 1:
            raise ConfigurationError(
                f"size_flits must be >= 1, got {self.size_flits}"
            )
        if not 0.0 <= self.multicast_fraction <= 1.0:
            raise ConfigurationError(
                f"multicast_fraction must lie in [0, 1], got {self.multicast_fraction}"
            )
        if self.multicast_fraction > 0.0:
            if not self.topology.grid_endpoints:
                raise ConfigurationError(
                    "multicast traffic is only defined over grid-endpoint "
                    f"topologies (mesh, torus); got {self.topology.kind}"
                )
            # The degree only matters when multicasts are actually made.
            if self.multicast_degree < 2:
                raise ConfigurationError(
                    f"multicast_degree must be >= 2, got {self.multicast_degree}"
                )
            if self.multicast_degree > self.topology.n_nodes - 1:
                raise ConfigurationError("multicast_degree exceeds the node count")
        if not self.topology.grid_endpoints:
            w, h = self.topology.endpoint_grid()
            if self.pattern == "transpose" and w != h:
                raise ConfigurationError(
                    f"pattern='transpose' needs a square endpoint grid; "
                    f"the {self.topology.kind} topology's is {w}x{h}"
                )
        self._rng = np.random.default_rng(self.seed)
        # Cached node walk for the per-cycle Bernoulli loop: this runs
        # once per node per cycle, so rebuilding the node list (and
        # re-resolving the bound methods) each call is measurable for
        # both engines.  The draw sequence is untouched.
        self._node_list = list(self.topology.nodes())
        self._endpoint_list = list(self.topology.endpoints())

    def _multicast_dests(self, src: NodeId) -> frozenset[NodeId]:
        candidates = [n for n in self.topology.nodes() if n != src]
        idx = self._rng.choice(len(candidates), self.multicast_degree, replace=False)
        return frozenset(candidates[i] for i in idx)

    def packets_for_cycle(self, cycle: int) -> list[Packet]:
        """Packets generated network-wide at ``cycle``."""
        out: list[Packet] = []
        rate = self.injection_rate
        if not self.topology.grid_endpoints:
            # Endpoint-level injection (concentrated mesh, chiplet):
            # one Bernoulli coin per *core*, destinations drawn on the
            # endpoint grid, both ends mapped to their serving routers.
            # Same-router pairs are served locally and generate no
            # network packet.
            w, h = self.topology.endpoint_grid()
            rng = self._rng
            draw = rng.random
            pattern = self.pattern
            sf = self.size_flits
            endpoint_router = self.topology.endpoint_router
            for src in self._endpoint_list:
                if draw() >= rate:
                    continue
                dest = endpoint_destination(pattern, src, w, h, rng)
                src_r = endpoint_router(src)
                dest_r = endpoint_router(dest)
                if src_r == dest_r:
                    continue
                out.append(
                    unicast_packet(src_r, frozenset((dest_r,)), sf, cycle)
                )
            return out
        k = self.topology.k
        draw = self._rng.random
        if self.multicast_fraction == 0.0:
            # Unicast hot paths.  The per-node Bernoulli coin flips are
            # drawn in batches instead of one scalar ``rng.random()``
            # call per node, with ``PCG64.advance(-n)`` rewinding any
            # over-drawn values, so the stream of random draws — and
            # hence every downstream result for a given seed — is
            # bit-identical to the scalar loop.  Batch draws fill from
            # the same ``next_double`` sequence as scalar draws (one
            # 64-bit generator step per double), which makes the
            # rewind arithmetic exact.
            nodes = self._node_list
            sf = self.size_flits
            rng = self._rng
            if self.pattern != "uniform":
                # Deterministic destination patterns consume no RNG
                # beyond the Bernoulli scan: one batch, no rewind.
                vals = rng.random(len(nodes)).tolist()
                pattern = self.pattern
                for src, v in zip(nodes, vals):
                    if v >= rate:
                        continue
                    dest = pattern_destination(pattern, src, k, rng)
                    out.append(
                        unicast_packet(src, frozenset((dest,)), sf, cycle)
                    )
                return out
            # Uniform random: destination draws interleave with the
            # Bernoulli stream, so scan in segments — batch up to the
            # first firing node, rewind the unused tail, draw that
            # node's destination, repeat on the remainder.
            integers = rng.integers
            batch = rng.random
            advance = rng.bit_generator.advance
            n = len(nodes)
            pos = 0
            while pos < n:
                remaining = n - pos
                vals = batch(remaining).tolist()
                hit = -1
                for j, v in enumerate(vals):
                    if v < rate:
                        hit = j
                        break
                if hit < 0:
                    break
                unused = remaining - hit - 1
                if unused:
                    advance(-unused)
                src = nodes[pos + hit]
                while True:
                    dest = (int(integers(k)), int(integers(k)))
                    if dest != src:
                        break
                out.append(unicast_packet(src, frozenset((dest,)), sf, cycle))
                pos += hit + 1
            return out
        for src in self._node_list:
            if draw() >= rate:
                continue
            if (
                self.multicast_fraction > 0.0
                and self._rng.random() < self.multicast_fraction
            ):
                dests = self._multicast_dests(src)
                out.append(
                    Packet(src=src, dests=dests, size_flits=1, inject_cycle=cycle)
                )
            else:
                dest = pattern_destination(self.pattern, src, k, self._rng)
                out.append(
                    Packet(
                        src=src,
                        dests=frozenset({dest}),
                        size_flits=self.size_flits,
                        inject_cycle=cycle,
                    )
                )
        return out


__all__ = [
    "PATTERNS",
    "DrainableTraffic",
    "SyntheticTraffic",
    "endpoint_destination",
    "pattern_destination",
]
