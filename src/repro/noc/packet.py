"""Packets and flits.

Packets are wormhole-switched as flit sequences.  Multicast packets carry
a destination *set*; the simulator restricts multicasts to single-flit
packets (the coherence-invalidation style traffic that motivates the
paper's multicast argument [10] is single-flit), which keeps fork
replication trivially deadlock-free.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConfigurationError
from repro.noc.topology import NodeId

_packet_ids = itertools.count()


class FlitType(Enum):
    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    SINGLE = "single"  # head and tail in one flit


@dataclass
class Packet:
    """One network packet, possibly multicast.

    ``dests`` is a frozenset of destination nodes; unicast packets have
    exactly one.  ``size_flits`` counts flits including head and tail.
    """

    src: NodeId
    dests: frozenset[NodeId]
    size_flits: int
    inject_cycle: int
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Dimension order this packet routes in: "xy" (default) or "yx".
    #: O1TURN picks one per packet at injection; the two orders must use
    #: disjoint VC classes to stay deadlock-free.  Multicasts are always
    #: "xy" (the tree construction assumes it).
    routing: str = "xy"
    #: Per-flit payload words (one non-negative int per flit, LSB = wire
    #: 0).  Empty = no payload recorded; the energy model then falls back
    #: to the constant per-bit price.  When present, data-dependent link
    #: energy counts the bit transitions each word causes on each wire.
    payload: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.routing not in ("xy", "yx"):
            raise ConfigurationError(
                f"routing must be 'xy' or 'yx', got {self.routing!r}"
            )
        if self.payload:
            if len(self.payload) != self.size_flits:
                raise ConfigurationError(
                    f"payload carries {len(self.payload)} words for "
                    f"{self.size_flits} flits"
                )
            if any(w < 0 for w in self.payload):
                raise ConfigurationError("payload words must be non-negative")
        if self.routing == "yx" and len(self.dests) > 1:
            raise ConfigurationError("multicast packets must route 'xy'")
        if not self.dests:
            raise ConfigurationError("packet needs at least one destination")
        if self.size_flits < 1:
            raise ConfigurationError(
                f"size_flits must be >= 1, got {self.size_flits}"
            )
        if self.src in self.dests:
            raise ConfigurationError("packet destination equals its source")
        if self.is_multicast and self.size_flits != 1:
            raise ConfigurationError(
                "multicast packets must be single-flit (see module docstring)"
            )

    @property
    def is_multicast(self) -> bool:
        return len(self.dests) > 1

    def flits(self) -> list["Flit"]:
        """Materialize the packet's flit sequence."""
        if self.size_flits == 1:
            return [
                Flit(
                    packet=self,
                    seq=0,
                    flit_type=FlitType.SINGLE,
                    dests=self.dests,
                )
            ]
        out = []
        for seq in range(self.size_flits):
            if seq == 0:
                ftype = FlitType.HEAD
            elif seq == self.size_flits - 1:
                ftype = FlitType.TAIL
            else:
                ftype = FlitType.BODY
            out.append(Flit(packet=self, seq=seq, flit_type=ftype, dests=self.dests))
        return out


def unicast_packet(
    src: NodeId,
    dests: frozenset[NodeId],
    size_flits: int,
    inject_cycle: int,
    payload: tuple[int, ...] = (),
) -> Packet:
    """Hot-path unicast constructor used by traffic generation.

    Bypasses ``__post_init__`` validation for packets whose invariants
    the caller guarantees by construction: exactly one destination,
    ``dests`` excludes ``src``, ``size_flits >= 1``, routing ``"xy"``,
    and ``payload`` either empty or one word per flit.  Produces a
    packet indistinguishable from ``Packet(...)``.
    """
    p = Packet.__new__(Packet)
    p.src = src
    p.dests = dests
    p.size_flits = size_flits
    p.inject_cycle = inject_cycle
    p.packet_id = next(_packet_ids)
    p.routing = "xy"
    p.payload = payload
    return p


def single_flit(packet: Packet) -> Flit:
    """Hot-path flit constructor for single-flit packets.

    Field-for-field identical to ``packet.flits()[0]`` when
    ``size_flits == 1``; bypasses dataclass ``__init__`` overhead.
    """
    f = Flit.__new__(Flit)
    f.packet = packet
    f.seq = 0
    f.flit_type = FlitType.SINGLE
    f.dests = packet.dests
    f.corrupted = False
    return f


@dataclass
class Flit:
    """One flit in flight.

    ``dests`` may shrink as a multicast is forked: each branch copy keeps
    only the destinations it is responsible for.
    """

    packet: Packet
    seq: int
    flit_type: FlitType
    dests: frozenset[NodeId]
    #: Payload integrity: set by the fault layer when a link traversal
    #: flipped bits the active protection did not repair.  The header is
    #: modeled as separately protected, so a corrupted flit still routes.
    corrupted: bool = False

    @property
    def is_head(self) -> bool:
        return self.flit_type in (FlitType.HEAD, FlitType.SINGLE)

    @property
    def is_tail(self) -> bool:
        return self.flit_type in (FlitType.TAIL, FlitType.SINGLE)

    def branch(self, dests: frozenset[NodeId]) -> "Flit":
        """A fork copy of this flit responsible for ``dests`` only."""
        if not dests <= self.dests:
            raise ConfigurationError("branch dests must be a subset")
        if not dests:
            raise ConfigurationError("branch needs at least one destination")
        return Flit(
            packet=self.packet,
            seq=self.seq,
            flit_type=self.flit_type,
            dests=dests,
            corrupted=self.corrupted,
        )


__all__ = ["Flit", "FlitType", "Packet", "single_flit", "unicast_packet"]
