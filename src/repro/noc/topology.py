"""Topology family: flat mesh, concentrated mesh, torus, chiplet NoC/NoI.

The paper's NoC context (Fig. 1/2) is a k x k mesh of 5-port routers
joined by the 1 mm wires the SRLR is sized to drive.  This module keeps
that mesh bit-identical and generalizes it into a family:

* :class:`MeshTopology` — the flat k x k mesh (XY/YX dimension order);
* :class:`ConcentratedMesh` — the same router mesh with a concentration
  factor ``c``: each router serves a block of ``c`` cores, so the core
  grid is wider than the router grid and same-router traffic never
  enters the network;
* :class:`TorusTopology` — k x k with wraparound links, routed by a
  precomputed up*/down* table (minimal dimension order on a torus needs
  dateline VCs, which the router pipeline does not model);
* :class:`ChipletNoc` — a two-level NoC/NoI hierarchy in the style of
  gem5's SimpleChiplet/Kite builders: ``chiplets_x x chiplets_y`` local
  meshes, each with a gateway router uplinked to a per-chiplet interface
  router, the interface routers forming the inter-chiplet NoI mesh whose
  links may be physically longer than NoC links (``noi_scale``).

Coordinates are (x, y) with x growing east and y growing north.  Ports
are small ints with 0 = LOCAL always; grid topologies use the
:class:`Port` IntEnum members (which hash and compare equal to their int
values), so all existing mesh behavior — wiring order, arbiter
iteration, routing — is unchanged.

Routing is either dimension-order (mesh, concentrated mesh: provably
deadlock-free on a grid) or a precomputed per-topology next-hop table
built by :func:`updown_routing_table` (torus, chiplet).  Up*/down*
orders the channels along a BFS spanning tree — every legal path takes
"up" (toward the root) links first, then "down" links, so the channel
dependency graph is acyclic by construction; the property tests in
``tests/test_noc_topology_family.py`` verify acyclicity for every
topology class, and the adaptive fault reroute recomputes the same
table over the alive-link subset.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from enum import IntEnum

from repro.errors import ConfigurationError


class Port(IntEnum):
    """Router ports; LOCAL is the core injection/ejection port."""

    LOCAL = 0
    NORTH = 1
    SOUTH = 2
    EAST = 3
    WEST = 4


#: The port a flit arrives on when it was sent out of ``port`` upstream.
OPPOSITE: dict[Port, Port] = {
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
}

#: The chiplet hierarchy's vertical port: gateway <-> interface router.
PORT_UP = 5

NodeId = tuple[int, int]

#: Builder names accepted by :func:`build_topology`.
TOPOLOGY_KINDS = ("mesh", "cmesh", "torus", "chiplet")

#: Per-instance memo for derived structures (adjacency, tables, BFS
#: distances).  Keyed by the frozen topology value, so equal topologies
#: share entries and the frozen dataclasses stay immutable.
_MEMO: dict[tuple, object] = {}


def _memo(key: tuple, build):
    value = _MEMO.get(key)
    if value is None:
        value = _MEMO[key] = build()
    return value


class Topology:
    """Shared interface of the topology family.

    A topology is a frozen value object describing routers (nodes),
    per-node ports (adjacency — not a fixed 5-port assumption), directed
    links, endpoints (where traffic injects), and how packets route.
    """

    #: Builder name ("mesh", "cmesh", "torus", "chiplet").
    kind = "abstract"
    #: True when routing uses a precomputed next-hop table (torus,
    #: chiplet) rather than XY/YX dimension order evaluated per hop.
    #: Table topologies have a single routing class, so O1TURN (which
    #: needs the disjoint XY/YX pair) is a configuration error on them.
    table_routed = False
    #: True when the batch engine (:mod:`repro.noc.fastsim`) supports
    #: this topology; False falls back to the reference engine with an
    #: :class:`~repro.noc.simulator.EngineFallbackWarning`.
    supports_fast_engine = True
    #: True when the endpoints are exactly the k x k router grid, which
    #: lets the traffic generator use its batched mesh hot path.
    grid_endpoints = True

    # --- structure ------------------------------------------------------------------

    def nodes(self) -> list[NodeId]:
        raise NotImplementedError

    @property
    def n_nodes(self) -> int:
        return len(self.nodes())

    def contains(self, node: NodeId) -> bool:
        raise NotImplementedError

    def node_ports(self, node: NodeId) -> tuple:
        """All ports of ``node`` (LOCAL included), in arbiter order."""
        raise NotImplementedError

    def neighbor(self, node: NodeId, port) -> NodeId | None:
        """The node reached through ``port``, or None when unconnected."""
        raise NotImplementedError

    def links(self) -> list[tuple[NodeId, object, NodeId]]:
        """All directed router-to-router links as (src, out_port, dst)."""
        return [
            (node, port, nb)
            for node in self.nodes()
            for port, nb in self._adjacency()[node]
        ]

    def directed_links(self) -> list[tuple[NodeId, object, NodeId, object]]:
        """Links with the far-end input port: (src, out_port, dst, in_port)."""
        adjacency = self._adjacency()
        out = []
        for src, port, dst in self.links():
            in_port = next(p for p, nb in adjacency[dst] if nb == src)
            out.append((src, port, dst, in_port))
        return out

    def _adjacency(self) -> dict[NodeId, tuple]:
        """node -> ((port, neighbor), ...) over connected non-LOCAL ports."""

        def build():
            table = {}
            for node in self.nodes():
                entries = []
                for port in self.node_ports(node):
                    nb = self.neighbor(node, port)
                    if nb is not None:
                        entries.append((port, nb))
                table[node] = tuple(entries)
            return table

        return _memo(("adjacency", self), build)

    def hop_distance(self, a: NodeId, b: NodeId) -> int:
        """Minimal hops between two routers (BFS on the link graph)."""

        def build():
            adjacency = self._adjacency()
            dists: dict[NodeId, dict[NodeId, int]] = {}
            for src in self.nodes():
                dist = {src: 0}
                frontier = deque([src])
                while frontier:
                    node = frontier.popleft()
                    for _port, nb in adjacency[node]:
                        if nb not in dist:
                            dist[nb] = dist[node] + 1
                            frontier.append(nb)
                dists[src] = dist
            return dists

        for n in (a, b):
            if not self.contains(n):
                raise ConfigurationError(f"node {n} outside {self.kind} topology")
        return _memo(("bfs", self), build)[a][b]

    @property
    def diameter(self) -> int:
        """Maximum router-to-router hop distance."""

        def build():
            nodes = self.nodes()
            return max(
                self.hop_distance(a, b) for a in nodes for b in nodes
            )

        return _memo(("diameter", self), build)

    # --- endpoints (where traffic injects) --------------------------------------------

    def endpoints(self) -> list[NodeId]:
        """Traffic injection points, in generation order.

        For the flat mesh and torus these are the routers themselves;
        a concentrated mesh exposes its (wider) core grid; a chiplet
        hierarchy exposes the core routers but not the interface
        routers.
        """
        return self.nodes()

    def endpoint_grid(self) -> tuple[int, int]:
        """(width, height) of the endpoint coordinate grid."""
        raise NotImplementedError

    def endpoint_router(self, endpoint: NodeId) -> NodeId:
        """The router serving ``endpoint`` (identity unless concentrated)."""
        return endpoint

    # --- routing ----------------------------------------------------------------------

    def route_port(self, node: NodeId, dest: NodeId):
        """Next-hop port toward ``dest`` (table topologies only)."""
        raise NotImplementedError(f"{self.kind} routes by dimension order")

    def routing_table(self) -> dict[NodeId, dict[NodeId, object]]:
        """dest -> {node: next-hop port} (table topologies only)."""
        raise NotImplementedError(f"{self.kind} routes by dimension order")

    def build_routing_table(
        self, alive=None
    ) -> dict[NodeId, dict[NodeId, object]]:
        """Recompute the table over an alive subset of directed links.

        ``alive`` is a set of (src, out_port) pairs; None means every
        link.  Used by the adaptive fault reroute — the recomputed table
        keeps the same up*/down* turn restrictions, so detour paths stay
        deadlock-free.
        """
        raise NotImplementedError(f"{self.kind} routes by dimension order")

    def route_table_ints(self, nodes: list[NodeId]) -> list[list[int]]:
        """The table as ints over node indices, for the batch engine."""
        table = self.routing_table()
        return [
            [int(table[dest].get(node, 0)) for dest in nodes]
            for node in nodes
        ]

    # --- physical attributes ----------------------------------------------------------

    def straight_port(self, node: NodeId, in_port):
        """The output port continuing straight through ``node``.

        Used by the SRLR tap model: a multicast passing straight through
        a router can latch locally for free.  None disables taps at this
        (node, in_port); grid topologies return the compass opposite.
        """
        return None

    def link_scale(self, src: NodeId, out_port) -> float:
        """Physical length of link (src, out_port) relative to 1 NoC mm.

        1.0 for on-chip NoC links; chiplet NoI links are longer
        (``noi_scale``), which the effective-fJ/bit/mm accounting picks
        up per link.
        """
        return 1.0

    def route_mm(self, src: NodeId, dest: NodeId) -> float:
        """Routed path length in link-mm units (= hops when uniform)."""
        return self.hop_distance(src, dest)


@dataclass(frozen=True)
class MeshTopology(Topology):
    """A k x k mesh of 5-port routers."""

    k: int

    kind = "mesh"

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ConfigurationError(f"mesh radix k must be >= 2, got {self.k}")

    @property
    def n_nodes(self) -> int:
        return self.k * self.k

    def nodes(self) -> list[NodeId]:
        return [(x, y) for y in range(self.k) for x in range(self.k)]

    def contains(self, node: NodeId) -> bool:
        x, y = node
        return 0 <= x < self.k and 0 <= y < self.k

    def node_ports(self, node: NodeId) -> tuple:
        return tuple(Port)

    def neighbor(self, node: NodeId, port: Port) -> NodeId | None:
        """The node reached through ``port``, or None at the mesh edge."""
        if not self.contains(node):
            raise ConfigurationError(f"node {node} outside {self.k}x{self.k} mesh")
        x, y = node
        if port == Port.NORTH:
            dest = (x, y + 1)
        elif port == Port.SOUTH:
            dest = (x, y - 1)
        elif port == Port.EAST:
            dest = (x + 1, y)
        elif port == Port.WEST:
            dest = (x - 1, y)
        else:
            return None
        return dest if self.contains(dest) else None

    def links(self) -> list[tuple[NodeId, Port, NodeId]]:
        """All directed router-to-router links as (src, out_port, dst)."""
        out = []
        for node in self.nodes():
            for port in (Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST):
                neighbor = self.neighbor(node, port)
                if neighbor is not None:
                    out.append((node, port, neighbor))
        return out

    def directed_links(self) -> list[tuple[NodeId, Port, NodeId, Port]]:
        return [
            (src, port, dst, OPPOSITE[port]) for src, port, dst in self.links()
        ]

    def hop_distance(self, a: NodeId, b: NodeId) -> int:
        """Manhattan distance in hops."""
        for n in (a, b):
            if not self.contains(n):
                raise ConfigurationError(f"node {n} outside {self.k}x{self.k} mesh")
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    @property
    def diameter(self) -> int:
        return 2 * (self.k - 1)

    def endpoint_grid(self) -> tuple[int, int]:
        return (self.k, self.k)

    def straight_port(self, node: NodeId, in_port):
        return OPPOSITE.get(in_port)


def _concentration_block(c: int) -> tuple[int, int]:
    """Factor a concentration ``c`` into an (sx, sy) core block."""
    sy = max(d for d in range(1, int(math.isqrt(c)) + 1) if c % d == 0)
    return c // sy, sy


@dataclass(frozen=True)
class ConcentratedMesh(MeshTopology):
    """A k x k router mesh with ``c`` cores concentrated per router.

    The router network — wiring, XY/YX routing, VC flow control — is
    exactly the flat mesh's; concentration only changes the endpoint
    set: cores tile a (k*sx) x (k*sy) grid where (sx, sy) is the most
    square factorization of ``c``, and ``endpoint_router`` maps each
    core block onto its shared router.  Core pairs that share a router
    exchange traffic locally and never enter the network.
    """

    c: int = 2

    kind = "cmesh"
    grid_endpoints = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.c < 2:
            raise ConfigurationError(
                f"concentration must be >= 2, got {self.c}"
            )

    @property
    def block(self) -> tuple[int, int]:
        """Cores per router as an (sx, sy) block."""
        return _concentration_block(self.c)

    def endpoints(self) -> list[NodeId]:
        w, h = self.endpoint_grid()
        return [(x, y) for y in range(h) for x in range(w)]

    def endpoint_grid(self) -> tuple[int, int]:
        sx, sy = self.block
        return (self.k * sx, self.k * sy)

    def endpoint_router(self, endpoint: NodeId) -> NodeId:
        sx, sy = self.block
        x, y = endpoint
        router = (x // sx, y // sy)
        if not self.contains(router) or not (0 <= x and 0 <= y):
            raise ConfigurationError(
                f"core {endpoint} outside the {self.k * sx}x{self.k * sy} "
                f"core grid"
            )
        return router


@dataclass(frozen=True)
class TorusTopology(Topology):
    """A k x k torus: the mesh plus wraparound links on both axes.

    Dimension-order routing deadlocks on the wrap cycles without
    dateline VCs, so the torus routes by a precomputed up*/down* table
    (:func:`updown_routing_table`) — deadlock-free on the plain VC
    pipeline at the price of non-minimal paths near the root.
    """

    k: int

    kind = "torus"
    table_routed = True

    def __post_init__(self) -> None:
        if self.k < 3:
            raise ConfigurationError(
                f"torus radix k must be >= 3 (k=2 degenerates to parallel "
                f"wrap links), got {self.k}"
            )

    @property
    def n_nodes(self) -> int:
        return self.k * self.k

    def nodes(self) -> list[NodeId]:
        return [(x, y) for y in range(self.k) for x in range(self.k)]

    def contains(self, node: NodeId) -> bool:
        x, y = node
        return 0 <= x < self.k and 0 <= y < self.k

    def node_ports(self, node: NodeId) -> tuple:
        return tuple(Port)

    def neighbor(self, node: NodeId, port) -> NodeId | None:
        if not self.contains(node):
            raise ConfigurationError(
                f"node {node} outside {self.k}x{self.k} torus"
            )
        x, y = node
        k = self.k
        if port == Port.NORTH:
            return (x, (y + 1) % k)
        if port == Port.SOUTH:
            return (x, (y - 1) % k)
        if port == Port.EAST:
            return ((x + 1) % k, y)
        if port == Port.WEST:
            return ((x - 1) % k, y)
        return None

    def links(self) -> list[tuple[NodeId, Port, NodeId]]:
        return [
            (node, port, self.neighbor(node, port))
            for node in self.nodes()
            for port in (Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST)
        ]

    def directed_links(self) -> list[tuple[NodeId, Port, NodeId, Port]]:
        return [
            (src, port, dst, OPPOSITE[port]) for src, port, dst in self.links()
        ]

    def hop_distance(self, a: NodeId, b: NodeId) -> int:
        """Wraparound Manhattan distance (each axis takes the short way)."""
        for n in (a, b):
            if not self.contains(n):
                raise ConfigurationError(
                    f"node {n} outside {self.k}x{self.k} torus"
                )
        k = self.k
        dx = abs(a[0] - b[0])
        dy = abs(a[1] - b[1])
        return min(dx, k - dx) + min(dy, k - dy)

    @property
    def diameter(self) -> int:
        return 2 * (self.k // 2)

    def endpoint_grid(self) -> tuple[int, int]:
        return (self.k, self.k)

    def straight_port(self, node: NodeId, in_port):
        return OPPOSITE.get(in_port)

    def routing_table(self):
        return _memo(
            ("table", self),
            lambda: updown_routing_table(self.nodes(), self._adjacency()),
        )

    def build_routing_table(self, alive=None):
        if alive is None:
            return self.routing_table()
        return updown_routing_table(self.nodes(), self._adjacency(), alive)

    def route_port(self, node: NodeId, dest: NodeId):
        return self.routing_table()[dest][node]


@dataclass(frozen=True)
class ChipletNoc(Topology):
    """A two-level chiplet NoC/NoI hierarchy (gem5 SimpleChiplet style).

    ``chiplets_x x chiplets_y`` chiplets, each a ``chiplet_k``-radix
    local mesh of core routers at global grid coordinates.  Each
    chiplet's gateway router (its local (0, 0)) uplinks through port
    :data:`PORT_UP` to a per-chiplet *interface* router; the interface
    routers form the inter-chiplet NoI mesh.  Interface router ``i`` of
    chiplet (cx, cy) sits at node ``(W + cx, cy)`` where ``W`` is the
    core-grid width, keeping every NodeId a non-negative (x, y) pair.

    NoI links are physically longer than the 1 mm NoC links by
    ``noi_scale`` — the effective-fJ/bit/mm accounting prices them per
    link.  Routing is a global up*/down* table over the whole two-level
    graph; the heterogeneous port counts (gateways and interface
    routers have 6 ports) are what force per-node adjacency throughout
    the stack.
    """

    chiplets_x: int = 2
    chiplets_y: int = 2
    chiplet_k: int = 2
    noi_scale: float = 2.0

    kind = "chiplet"
    table_routed = True
    supports_fast_engine = False
    grid_endpoints = False

    def __post_init__(self) -> None:
        if self.chiplet_k < 2:
            raise ConfigurationError(
                f"chiplet_k must be >= 2, got {self.chiplet_k}"
            )
        for name, value in (
            ("chiplets_x", self.chiplets_x),
            ("chiplets_y", self.chiplets_y),
        ):
            if value < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {value}")
        if self.chiplets_x * self.chiplets_y < 2:
            raise ConfigurationError(
                "a chiplet hierarchy needs at least 2 chiplets "
                "(chiplets_x * chiplets_y >= 2); use topology='mesh' "
                "for a single die"
            )
        if self.noi_scale <= 0.0:
            raise ConfigurationError(
                f"noi_scale must be > 0, got {self.noi_scale}"
            )

    # --- coordinate helpers -----------------------------------------------------------

    @property
    def core_grid(self) -> tuple[int, int]:
        return (
            self.chiplets_x * self.chiplet_k,
            self.chiplets_y * self.chiplet_k,
        )

    def interface_node(self, cx: int, cy: int) -> NodeId:
        return (self.core_grid[0] + cx, cy)

    def is_interface(self, node: NodeId) -> bool:
        return node[0] >= self.core_grid[0]

    def chiplet_of(self, node: NodeId) -> tuple[int, int]:
        """(cx, cy) chiplet indices of a core or interface router."""
        if self.is_interface(node):
            return (node[0] - self.core_grid[0], node[1])
        return (node[0] // self.chiplet_k, node[1] // self.chiplet_k)

    def gateway_node(self, cx: int, cy: int) -> NodeId:
        return (cx * self.chiplet_k, cy * self.chiplet_k)

    # --- structure --------------------------------------------------------------------

    def nodes(self) -> list[NodeId]:
        w, h = self.core_grid
        cores = [(x, y) for y in range(h) for x in range(w)]
        interfaces = [
            self.interface_node(cx, cy)
            for cy in range(self.chiplets_y)
            for cx in range(self.chiplets_x)
        ]
        return cores + interfaces

    def contains(self, node: NodeId) -> bool:
        return node in _memo(("nodeset", self), lambda: set(self.nodes()))

    def node_ports(self, node: NodeId) -> tuple:
        if self.is_interface(node) or node == self.gateway_node(
            *self.chiplet_of(node)
        ):
            return (Port.LOCAL, Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST,
                    PORT_UP)
        return tuple(Port)

    def _adjacency(self) -> dict[NodeId, tuple]:
        def build():
            w, h = self.core_grid
            ck = self.chiplet_k
            table: dict[NodeId, list] = {n: [] for n in self.nodes()}
            # Local NoC meshes: compass links that stay inside a chiplet.
            for y in range(h):
                for x in range(w):
                    node = (x, y)
                    for port, (nx, ny) in (
                        (Port.NORTH, (x, y + 1)),
                        (Port.SOUTH, (x, y - 1)),
                        (Port.EAST, (x + 1, y)),
                        (Port.WEST, (x - 1, y)),
                    ):
                        if not (0 <= nx < w and 0 <= ny < h):
                            continue
                        if (nx // ck, ny // ck) != (x // ck, y // ck):
                            continue  # chiplet boundary: no direct NoC link
                        table[node].append((port, (nx, ny)))
            # Vertical uplinks and the NoI mesh over interface routers.
            for cy in range(self.chiplets_y):
                for cx in range(self.chiplets_x):
                    iface = self.interface_node(cx, cy)
                    gateway = self.gateway_node(cx, cy)
                    table[gateway].append((PORT_UP, iface))
                    table[iface].append((PORT_UP, gateway))
                    for port, (nx, ny) in (
                        (Port.NORTH, (cx, cy + 1)),
                        (Port.SOUTH, (cx, cy - 1)),
                        (Port.EAST, (cx + 1, cy)),
                        (Port.WEST, (cx - 1, cy)),
                    ):
                        if 0 <= nx < self.chiplets_x and 0 <= ny < self.chiplets_y:
                            table[iface].append(
                                (port, self.interface_node(nx, ny))
                            )
            return {
                node: tuple(sorted(entries, key=lambda e: int(e[0])))
                for node, entries in table.items()
            }

        return _memo(("adjacency", self), build)

    def neighbor(self, node: NodeId, port) -> NodeId | None:
        if not self.contains(node):
            raise ConfigurationError(f"node {node} outside the chiplet NoC")
        for p, nb in self._adjacency()[node]:
            if p == port:
                return nb
        return None

    # --- endpoints --------------------------------------------------------------------

    def endpoints(self) -> list[NodeId]:
        w, h = self.core_grid
        return [(x, y) for y in range(h) for x in range(w)]

    def endpoint_grid(self) -> tuple[int, int]:
        return self.core_grid

    # --- routing ----------------------------------------------------------------------

    def routing_table(self):
        return _memo(
            ("table", self),
            lambda: updown_routing_table(self.nodes(), self._adjacency()),
        )

    def build_routing_table(self, alive=None):
        if alive is None:
            return self.routing_table()
        return updown_routing_table(self.nodes(), self._adjacency(), alive)

    def route_port(self, node: NodeId, dest: NodeId):
        return self.routing_table()[dest][node]

    # --- physical attributes ----------------------------------------------------------

    def link_scale(self, src: NodeId, out_port) -> float:
        """NoI (interface-to-interface) links are ``noi_scale`` x longer."""
        if self.is_interface(src) and int(out_port) != PORT_UP:
            return self.noi_scale
        return 1.0

    def route_mm(self, src: NodeId, dest: NodeId) -> float:
        """Length of the routed path, per-link scales included."""
        mm = 0.0
        node = src
        table = self.routing_table()[dest]
        while node != dest:
            port = table.get(node)
            if port is None or port == Port.LOCAL:
                raise ConfigurationError(f"no route {src} -> {dest}")
            mm += self.link_scale(node, port)
            node = self.neighbor(node, port)
        return mm


def updown_routing_table(
    nodes: list[NodeId],
    adjacency: dict[NodeId, tuple],
    alive=None,
) -> dict[NodeId, dict[NodeId, object]]:
    """Deadlock-free up*/down* next-hop tables over a link graph.

    ``adjacency`` maps node -> ((port, neighbor), ...); ``alive``
    optionally restricts to a set of (src, port) directed links (the
    fault layer's alive set).  Returns dest -> {node: port}, with
    ``Port.LOCAL`` at the destination itself; nodes with no legal path
    to a destination are absent from its table (the caller treats that
    as unreachable).

    Construction: BFS from the smallest node assigns each node a
    (level, discovery order) rank; a directed link is *up* when it
    decreases the rank.  Legal routes take up-links first, then
    down-links — the classic up*/down* turn restriction, whose channel
    dependency graph is acyclic because every up-channel points down
    the rank order and every down-channel points up it, with no
    down->up dependencies.  Next hops are chosen down-first (take the
    shortest all-down path when one exists, else climb), which makes
    the per-node tables *consistent*: once a packet starts descending
    it never climbs again, so the realized path of any (src, dest)
    pair is itself legal.  Ties break on the smallest port number.
    """
    usable: dict[NodeId, list] = {
        node: [
            (port, nb)
            for port, nb in adjacency[node]
            if alive is None or (node, port) in alive
        ]
        for node in nodes
    }
    # Rank nodes by BFS from the smallest node (deterministic order).
    root = min(nodes)
    rank: dict[NodeId, tuple[int, int]] = {root: (0, 0)}
    order = 1
    frontier = deque([root])
    while frontier:
        node = frontier.popleft()
        level = rank[node][0]
        for _port, nb in sorted(usable[node], key=lambda e: int(e[0])):
            if nb not in rank:
                rank[nb] = (level + 1, order)
                order += 1
                frontier.append(nb)

    def is_up(src: NodeId, dst: NodeId) -> bool:
        return rank[dst] < rank[src]

    # Predecessor lists over the alive links, for backward BFS.
    preds: dict[NodeId, list] = {n: [] for n in nodes}
    for node in nodes:
        if node not in rank:
            continue
        for port, nb in usable[node]:
            if nb in rank:
                preds[nb].append((node, port))

    tables: dict[NodeId, dict[NodeId, object]] = {}
    inf = math.inf
    # Nodes in ascending rank: every up-neighbor precedes its source.
    by_rank = sorted((n for n in nodes if n in rank), key=lambda n: rank[n])
    for dest in nodes:
        if dest not in rank:
            tables[dest] = {}
            continue
        # d_down[n]: shortest n -> dest path using only down-links.
        d_down: dict[NodeId, float] = {dest: 0}
        frontier = deque([dest])
        while frontier:
            node = frontier.popleft()
            for pred, _port in preds[node]:
                if pred not in d_down and not is_up(pred, node):
                    d_down[pred] = d_down[node] + 1
                    frontier.append(pred)
        # total[n]: climb (up-links only) to the nearest all-down node.
        total: dict[NodeId, float] = {}
        for node in by_rank:
            if node in d_down:
                total[node] = d_down[node]
                continue
            best = inf
            for _port, nb in usable[node]:
                if is_up(node, nb):
                    t = total.get(nb, inf)
                    if t + 1 < best:
                        best = t + 1
            if best < inf:
                total[node] = best
        table: dict[NodeId, object] = {dest: Port.LOCAL}
        for node in by_rank:
            if node == dest or node not in total:
                continue
            want = total[node] - 1
            if node in d_down:
                choices = [
                    port
                    for port, nb in usable[node]
                    if not is_up(node, nb) and d_down.get(nb, inf) == want
                ]
            else:
                choices = [
                    port
                    for port, nb in usable[node]
                    if is_up(node, nb) and total.get(nb, inf) == want
                ]
            table[node] = min(choices, key=int)
        tables[dest] = table
    return tables


def build_topology(
    kind: str,
    k: int,
    *,
    concentration: int = 1,
    chiplets_x: int = 1,
    chiplets_y: int = 1,
    noi_scale: float = 2.0,
) -> Topology:
    """Build a topology from campaign-config / CLI parameters.

    ``k`` is the router-grid radix (the per-chiplet local mesh radix for
    ``kind='chiplet'``).  Validation errors name the offending
    parameter, so CLI typos fail with a message rather than a traceback.
    """
    if kind not in TOPOLOGY_KINDS:
        raise ConfigurationError(
            f"topology must be one of {TOPOLOGY_KINDS}, got {kind!r}"
        )
    if kind != "cmesh" and concentration != 1:
        raise ConfigurationError(
            f"concentration={concentration} applies only to "
            f"topology='cmesh' (got topology={kind!r})"
        )
    if kind != "chiplet" and (chiplets_x != 1 or chiplets_y != 1):
        raise ConfigurationError(
            f"chiplets_x/chiplets_y=({chiplets_x}, {chiplets_y}) apply "
            f"only to topology='chiplet' (got topology={kind!r})"
        )
    if kind == "mesh":
        return MeshTopology(k)
    if kind == "torus":
        return TorusTopology(k)
    if kind == "cmesh":
        if concentration < 2:
            raise ConfigurationError(
                f"concentration must be >= 2 for topology='cmesh', "
                f"got {concentration}"
            )
        return ConcentratedMesh(k, c=concentration)
    return ChipletNoc(
        chiplets_x=chiplets_x,
        chiplets_y=chiplets_y,
        chiplet_k=k,
        noi_scale=noi_scale,
    )


__all__ = [
    "ChipletNoc",
    "ConcentratedMesh",
    "MeshTopology",
    "NodeId",
    "OPPOSITE",
    "PORT_UP",
    "Port",
    "TOPOLOGY_KINDS",
    "Topology",
    "TorusTopology",
    "build_topology",
    "updown_routing_table",
]
