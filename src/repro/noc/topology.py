"""k x k mesh topology (the paper's NoC context, Fig. 1/2).

Coordinates are (x, y) with x growing east and y growing north.  Each
router has five ports — the four compass directions plus the local
(core/NIC) port — and the router-to-router links are the 1 mm wires the
SRLR is sized to drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.errors import ConfigurationError


class Port(IntEnum):
    """Router ports; LOCAL is the core injection/ejection port."""

    LOCAL = 0
    NORTH = 1
    SOUTH = 2
    EAST = 3
    WEST = 4


#: The port a flit arrives on when it was sent out of ``port`` upstream.
OPPOSITE: dict[Port, Port] = {
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
}


NodeId = tuple[int, int]


@dataclass(frozen=True)
class MeshTopology:
    """A k x k mesh of 5-port routers."""

    k: int

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ConfigurationError(f"mesh radix k must be >= 2, got {self.k}")

    @property
    def n_nodes(self) -> int:
        return self.k * self.k

    def nodes(self) -> list[NodeId]:
        return [(x, y) for y in range(self.k) for x in range(self.k)]

    def contains(self, node: NodeId) -> bool:
        x, y = node
        return 0 <= x < self.k and 0 <= y < self.k

    def neighbor(self, node: NodeId, port: Port) -> NodeId | None:
        """The node reached through ``port``, or None at the mesh edge."""
        if not self.contains(node):
            raise ConfigurationError(f"node {node} outside {self.k}x{self.k} mesh")
        x, y = node
        if port == Port.NORTH:
            dest = (x, y + 1)
        elif port == Port.SOUTH:
            dest = (x, y - 1)
        elif port == Port.EAST:
            dest = (x + 1, y)
        elif port == Port.WEST:
            dest = (x - 1, y)
        else:
            return None
        return dest if self.contains(dest) else None

    def links(self) -> list[tuple[NodeId, Port, NodeId]]:
        """All directed router-to-router links as (src, out_port, dst)."""
        out = []
        for node in self.nodes():
            for port in (Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST):
                neighbor = self.neighbor(node, port)
                if neighbor is not None:
                    out.append((node, port, neighbor))
        return out

    def hop_distance(self, a: NodeId, b: NodeId) -> int:
        """Manhattan distance in hops."""
        for n in (a, b):
            if not self.contains(n):
                raise ConfigurationError(f"node {n} outside {self.k}x{self.k} mesh")
        return abs(a[0] - b[0]) + abs(a[1] - b[1])


__all__ = ["MeshTopology", "NodeId", "OPPOSITE", "Port"]
