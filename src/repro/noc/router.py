"""The 3-stage pipelined mesh router (Fig. 1).

Pipeline: buffer write + route computation, then VC/switch allocation,
then switch + link traversal — modeled as a readiness delay of
``pipeline_latency`` cycles between a flit's buffering and its switch
eligibility, with allocation contention adding queueing time on top.

Wormhole switching with credit-based virtual-channel flow control:

* a head flit acquires an idle VC at the downstream input (VC allocation)
  and its packet holds it until the tail passes;
* switch allocation is input-first separable round-robin: one flit per
  input port, one per output port, per cycle;
* credits track downstream buffer slots exactly; the protocol invariants
  (no overflow, no underflow, single VC ownership) are *enforced* —
  violations raise :class:`~repro.errors.ProtocolError` rather than
  silently corrupting results.

Multicast forks hold the flit in its input VC and serve one branch per
switch grant (copies carry the destination subset of their branch); the
paper's free SRLR taps are applied at arrival, stripping straight-through
local deliveries before any buffering or switching cost is paid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ProtocolError
from repro.noc.crossbar import Crossbar
from repro.noc.link import Link
from repro.noc.packet import Flit
from repro.noc.routing import route_ports
from repro.noc.stats import NocStats
from repro.noc.topology import NodeId, Port, Topology
from repro.noc.vc import InputPort, OutputPort


@dataclass(frozen=True)
class NocConfig:
    """Simulator configuration (defaults mirror the paper's router)."""

    n_vcs: int = 4
    vc_capacity: int = 4
    link_latency: int = 1
    pipeline_latency: int = 2
    enable_taps: bool = False
    #: Pipeline bypass (the buffer-power mitigation the paper's intro
    #: cites, a la express virtual channels [8]): a flit arriving at an
    #: empty VC skips the buffered pipeline stages, becoming switch-
    #: eligible the next cycle and paying no buffer access energy.
    enable_bypass: bool = False
    #: Routing algorithm: "xy" (dimension order) or "o1turn" (each packet
    #: randomly routes XY or YX; the two orders use disjoint VC classes —
    #: lower half XY, upper half YX — which keeps the union deadlock-free).
    routing: str = "xy"
    #: Livelock detection (honored identically by both engines): maximum
    #: post-measurement drain cycles before the run fails loudly, and the
    #: progress window — consecutive drain cycles with a frozen progress
    #: signature and no scheduled event that count as a livelock.
    #: ``run()`` arguments override these per call.
    drain_limit: int = 4000
    stall_window: int = 500

    def __post_init__(self) -> None:
        if self.routing not in ("xy", "o1turn"):
            raise ConfigurationError(
                f"routing must be 'xy' or 'o1turn', got {self.routing!r}"
            )
        if self.routing == "o1turn" and (self.n_vcs < 2 or self.n_vcs % 2):
            raise ConfigurationError(
                "o1turn needs an even n_vcs >= 2 (disjoint VC classes)"
            )
        for key, value in (
            ("n_vcs", self.n_vcs),
            ("vc_capacity", self.vc_capacity),
            ("link_latency", self.link_latency),
        ):
            if value < 1:
                raise ConfigurationError(f"{key} must be >= 1, got {value}")
        if self.pipeline_latency < 0:
            raise ConfigurationError(
                f"pipeline_latency must be >= 0, got {self.pipeline_latency}"
            )
        if self.drain_limit < 0:
            raise ConfigurationError(
                f"drain_limit must be >= 0, got {self.drain_limit}"
            )
        if self.stall_window < 1:
            raise ConfigurationError(
                f"stall_window must be >= 1, got {self.stall_window}"
            )


@dataclass
class _BranchState:
    """Fork bookkeeping for the head-of-line flit of one input VC."""

    flit_id: int
    branches: list[tuple[Port, frozenset[NodeId]]]
    out_vc: int | None = None  # VA grant for branches[0] (non-LOCAL)


class Router:
    """One mesh router; wired to links and neighbors by the simulator."""

    def __init__(
        self,
        node: NodeId,
        topology: Topology,
        config: NocConfig,
        stats: NocStats,
    ) -> None:
        self.node = node
        self.topology = topology
        self.config = config
        self.stats = stats
        #: This router's ports, in arbiter iteration order.  The flat
        #: mesh keeps the full 5-member Port enum at every node (edge
        #: routers simply leave compass ports unconnected, as before);
        #: heterogeneous topologies (chiplet gateways, interface
        #: routers) supply their own per-node port tuples.
        self.ports: tuple = tuple(topology.node_ports(node))
        self.inputs: dict[Port, InputPort] = {
            port: InputPort(config.n_vcs, config.vc_capacity)
            for port in self.ports
        }
        #: Output-side bookkeeping per connected output port (not LOCAL:
        #: ejection has no downstream buffer to flow-control).
        self.outputs: dict[Port, OutputPort] = {}
        self.links_out: dict[Port, Link] = {}
        #: Upstream OutputPort to credit when popping inputs[port]; LOCAL's
        #: upstream is the NIC.
        self.upstream: dict[Port, OutputPort] = {}
        self.crossbar = Crossbar()
        #: Optional fault layer (set by FaultLayer.attach): receives
        #: delivery/discard events for reliability bookkeeping.
        self.fault_layer = None
        #: Optional routing override ``(topology, node, flit) -> partition``
        #: used for adaptive reroute around disabled links; None = the
        #: default dimension-order :func:`route_ports`.
        self.route_fn = None
        self._staged: list[tuple[Flit, Port, int]] = []
        self._branch_state: dict[tuple[Port, int], _BranchState] = {}
        self._sa_in_ptr: dict[Port, int] = {port: 0 for port in self.ports}
        self._sa_out_ptr: dict[Port, int] = {port: 0 for port in self.ports}
        self._va_ptr: dict[Port, int] = {port: 0 for port in self.ports}

    # --- VC classes -------------------------------------------------------------------

    def vc_class(self, routing: str) -> range:
        """VC indices a packet of this dimension order may use.

        Under plain XY routing all VCs are one class; under O1TURN the
        lower half belongs to XY packets and the upper half to YX packets,
        making each order's channel-dependence graph acyclic on its own
        VCs.
        """
        if self.config.routing != "o1turn":
            return range(self.config.n_vcs)
        half = self.config.n_vcs // 2
        return range(0, half) if routing == "xy" else range(half, self.config.n_vcs)

    # --- wiring (done by the simulator) ---------------------------------------------

    def connect_output(self, port: Port, link: Link, n_vcs: int, vc_capacity: int) -> None:
        self.outputs[port] = OutputPort(n_vcs, vc_capacity)
        self.links_out[port] = link

    # --- arrival / buffer write -------------------------------------------------------

    def stage(self, flit: Flit, in_port: Port, vc: int) -> None:
        """Queue an arriving flit for this cycle's buffer-write stage."""
        self._staged.append((flit, in_port, vc))

    def accept(self, cycle: int) -> None:
        """Buffer write (+ free SRLR taps for straight-through multicasts)."""
        for flit, in_port, vc_idx in self._staged:
            flit = self._apply_tap(flit, in_port, cycle)
            if flit is None:
                # Entire remaining payload was served by the tap: the flit
                # still occupied an upstream slot, so credit must flow.
                self.upstream[in_port].return_credit(vc_idx)
                self.upstream[in_port].release(vc_idx)
                continue
            vc = self.inputs[in_port].vcs[vc_idx]
            if self.config.enable_bypass and vc.occupancy == 0:
                # Bypass: straight to allocation next cycle, no buffer R/W
                # energy (the flit still physically parks in the empty
                # slot, but the array access is skipped).
                vc.push(flit, cycle + 1)
                self.stats.bypassed_flits += 1
            else:
                vc.push(flit, cycle + self.config.pipeline_latency)
            self.stats.buffer_writes += 1
        self._staged.clear()

    def _apply_tap(self, flit: Flit, in_port: Port, cycle: int) -> Flit | None:
        """Serve straight-through local deliveries at the repeater tap.

        Only multicasts passing straight through this router qualify: the
        pulse traverses the crosspoint SRLR regardless, and the full-swing
        repeated data is latched locally without an ejection traversal
        (Section II).  Returns the flit minus tapped destinations, or
        None if nothing remains.
        """
        if not self.config.enable_taps:
            return flit
        if not flit.is_head or not flit.is_tail:
            return flit  # multicast is single-flit by construction
        if self.node not in flit.dests or in_port == Port.LOCAL:
            return flit
        partition = self._route(flit)
        straight = self.topology.straight_port(self.node, in_port)
        if straight is None or straight not in partition:
            return flit
        self.stats.record_delivery(
            flit.packet.packet_id,
            self.node,
            flit.packet.inject_cycle,
            cycle,
            via_tap=True,
            src=flit.packet.src,
            corrupted=flit.corrupted,
        )
        if self.fault_layer is not None:
            self.fault_layer.on_delivery(flit, self.node, cycle, flit.corrupted)
        remaining = flit.dests - {self.node}
        if not remaining:
            return None
        return flit.branch(frozenset(remaining))

    def _route(self, flit: Flit) -> dict[Port, frozenset[NodeId]]:
        """Partition a flit's destinations by output port (overridable)."""
        if self.route_fn is not None:
            return self.route_fn(self.topology, self.node, flit)
        return route_ports(self.topology, self.node, flit)

    # --- route/branch state -----------------------------------------------------------

    def _front_state(self, in_port: Port, vc_idx: int, cycle: int) -> _BranchState | None:
        """Branch state for the VC's front flit, computing routes lazily."""
        vc = self.inputs[in_port].vcs[vc_idx]
        front = vc.front(cycle)
        if front is None:
            return None
        key = (in_port, vc_idx)
        if not front.is_head:
            # Body/tail flits follow the wormhole: no branch state.
            return None
        state = self._branch_state.get(key)
        if state is None or state.flit_id != id(front):
            partition = self._route(front)
            branches = sorted(partition.items(), key=lambda kv: int(kv[0]))
            state = _BranchState(flit_id=id(front), branches=branches)
            self._branch_state[key] = state
        return state

    # --- VC allocation ------------------------------------------------------------------

    def vc_allocate(self, cycle: int) -> None:
        """Grant idle downstream VCs to head flits awaiting them."""
        # Collect requests per output port.
        requests: dict[Port, list[tuple[Port, int, _BranchState]]] = {}
        for in_port in self.ports:
            for vc_idx in range(self.config.n_vcs):
                vc = self.inputs[in_port].vcs[vc_idx]
                state = self._front_state(in_port, vc_idx, cycle)
                if state is None or not state.branches:
                    continue
                out_port, _ = state.branches[0]
                if out_port == Port.LOCAL or state.out_vc is not None:
                    continue
                if vc.out_port == out_port and vc.out_vc is not None:
                    # Wormhole continuation (shouldn't happen for heads).
                    continue
                requests.setdefault(out_port, []).append((in_port, vc_idx, state))
        for out_port, requesters in sorted(requests.items(), key=lambda kv: int(kv[0])):
            output = self.outputs.get(out_port)
            if output is None:
                raise ProtocolError(
                    f"route to unconnected port {out_port} at {self.node}"
                )
            granted: set[int] = set()
            ptr = self._va_ptr[out_port]
            order = requesters[ptr % len(requesters):] + requesters[: ptr % len(requesters)]
            for in_port, vc_idx, state in order:
                vc = self.inputs[in_port].vcs[vc_idx]
                front = vc.front(cycle)
                if front is None:
                    continue
                allowed = self.vc_class(front.packet.routing)
                vc_grant = next(
                    (
                        v
                        for v in output.free_vcs()
                        if v in allowed and v not in granted
                    ),
                    None,
                )
                if vc_grant is None:
                    continue
                granted.add(vc_grant)
                output.acquire(vc_grant, (in_port, vc_idx))
                state.out_vc = vc_grant
                if not front.is_tail:
                    # Multi-flit packet: the whole worm uses this VC.
                    vc.out_port = state.branches[0][0]
                    vc.out_vc = vc_grant
            self._va_ptr[out_port] = ptr + 1

    # --- switch allocation + traversal --------------------------------------------------

    def _candidate(
        self, in_port: Port, vc_idx: int, cycle: int
    ) -> tuple[Port, int | None, frozenset[NodeId]] | None:
        """(out_port, out_vc, dests) if this VC can traverse now, else None."""
        vc = self.inputs[in_port].vcs[vc_idx]
        front = vc.front(cycle)
        if front is None:
            return None
        if front.is_head:
            state = self._front_state(in_port, vc_idx, cycle)
            if state is None or not state.branches:
                return None
            out_port, dests = state.branches[0]
            if out_port == Port.LOCAL:
                return (out_port, None, dests)
            if state.out_vc is None:
                return None
            output = self.outputs[out_port]
            if output.credits[state.out_vc] <= 0:
                return None
            return (out_port, state.out_vc, dests)
        # Body/tail flit: wormhole continuation on the VC's route.
        if vc.out_port is None:
            raise ProtocolError("body flit with no allocated route")
        if vc.out_port == Port.LOCAL:
            return (Port.LOCAL, None, front.dests)
        output = self.outputs[vc.out_port]
        if vc.out_vc is None or output.credits[vc.out_vc] <= 0:
            return None
        return (vc.out_port, vc.out_vc, front.dests)

    def switch_and_traverse(self, cycle: int) -> None:
        """Input-first separable switch allocation, then traversal."""
        # Stage 1: each input port nominates one VC.
        nominations: dict[Port, tuple[int, Port, int | None, frozenset[NodeId]]] = {}
        for in_port in self.ports:
            eligible = []
            for vc_idx in range(self.config.n_vcs):
                cand = self._candidate(in_port, vc_idx, cycle)
                if cand is not None:
                    eligible.append((vc_idx, *cand))
            if not eligible:
                continue
            ptr = self._sa_in_ptr[in_port] % len(eligible)
            nominations[in_port] = eligible[ptr]
            self._sa_in_ptr[in_port] += 1

        # Stage 2: each output port grants one nominated input.
        by_output: dict[Port, list[Port]] = {}
        for in_port, (vc_idx, out_port, out_vc, dests) in nominations.items():
            by_output.setdefault(out_port, []).append(in_port)
        winners: list[tuple[Port, int, Port, int | None, frozenset[NodeId]]] = []
        for out_port, contenders in sorted(by_output.items(), key=lambda kv: int(kv[0])):
            contenders.sort(key=int)
            ptr = self._sa_out_ptr[out_port] % len(contenders)
            in_port = contenders[ptr]
            self._sa_out_ptr[out_port] += 1
            vc_idx, _, out_vc, dests = nominations[in_port]
            winners.append((in_port, vc_idx, out_port, out_vc, dests))

        for in_port, vc_idx, out_port, out_vc, dests in winners:
            self._traverse(cycle, in_port, vc_idx, out_port, out_vc, dests)

    def _traverse(
        self,
        cycle: int,
        in_port: Port,
        vc_idx: int,
        out_port: Port,
        out_vc: int | None,
        dests: frozenset[NodeId],
    ) -> None:
        vc = self.inputs[in_port].vcs[vc_idx]
        front = vc.front(cycle)
        if front is None:
            raise ProtocolError("switch winner lost its flit")
        self.stats.buffer_reads += 1

        if out_port == Port.LOCAL:
            self._eject(cycle, in_port, vc_idx, dests)
            return

        self.crossbar.connect(in_port, out_port)
        self.stats.crossbar_traversals += 1
        self.stats.link_traversals += 1
        output = self.outputs[out_port]
        if out_vc is None:
            raise ProtocolError("network traversal without an output VC")
        output.consume_credit(out_vc)
        self.links_out[out_port].send(front.branch(dests), out_vc, cycle)
        self._retire_branch(in_port, vc_idx, out_port)

    def _eject(
        self, cycle: int, in_port: Port, vc_idx: int, dests: frozenset[NodeId]
    ) -> None:
        vc = self.inputs[in_port].vcs[vc_idx]
        front = vc.front(cycle)
        if front is None:
            raise ProtocolError("ejecting a missing flit")
        if dests != frozenset({self.node}):
            if self.fault_layer is None:
                raise ProtocolError(f"LOCAL branch with foreign dests {dests}")
            # Adaptive reroute escape hatch: a disabled-link partition made
            # these destinations unreachable, so the flit is discarded here
            # (counted, never recorded as a delivery) instead of wedging
            # the network.
            self.stats.ejections += 1
            if front.is_head and not front.is_tail:
                vc.out_port = Port.LOCAL
            self.fault_layer.on_undeliverable(front, self.node)
            self._retire_branch(in_port, vc_idx, Port.LOCAL)
            return
        self.stats.ejections += 1
        if front.is_head and not front.is_tail:
            # Multi-flit packet ejecting here: body/tail follow the worm.
            vc.out_port = Port.LOCAL
        if front.is_tail:
            corrupted = front.corrupted
            if self.fault_layer is not None:
                # Packet-level integrity: a corrupted body flit spoils the
                # whole packet even when the tail traversed cleanly.
                corrupted = corrupted or self.fault_layer.packet_corrupted(
                    front.packet
                )
            self.stats.record_delivery(
                front.packet.packet_id,
                self.node,
                front.packet.inject_cycle,
                cycle,
                via_tap=False,
                src=front.packet.src,
                corrupted=corrupted,
            )
            if self.fault_layer is not None:
                self.fault_layer.on_delivery(front, self.node, cycle, corrupted)
        self._retire_branch(in_port, vc_idx, Port.LOCAL)

    def _retire_branch(self, in_port: Port, vc_idx: int, out_port: Port) -> None:
        """Advance the fork state; pop the flit once its last branch went."""
        vc = self.inputs[in_port].vcs[vc_idx]
        key = (in_port, vc_idx)
        state = self._branch_state.get(key)
        front, _ = vc.fifo[0]
        if front.is_head and state is not None and state.flit_id == id(front):
            if not state.branches or state.branches[0][0] != out_port:
                raise ProtocolError("branch retirement out of order")
            state.branches.pop(0)
            state.out_vc = None
            if state.branches:
                return  # more branches to serve; flit stays buffered
            del self._branch_state[key]
        self._pop(in_port, vc_idx)

    def _pop(self, in_port: Port, vc_idx: int) -> None:
        vc = self.inputs[in_port].vcs[vc_idx]
        flit = vc.pop()
        upstream = self.upstream.get(in_port)
        if upstream is None:
            raise ProtocolError(f"no upstream wired for {in_port} at {self.node}")
        upstream.return_credit(vc_idx)
        if flit.is_tail:
            upstream.release(vc_idx)


__all__ = ["NocConfig", "Router"]
