"""Crossbar switch model with per-crosspoint SRLR enables (Fig. 3).

The paper embeds 3-port SRLRs (IN, OUT, EN) at each of the 20 crosspoints
of the 64-bit 5-port crossbar: the switch allocator's grant *is* the EN
signal of the selected crosspoint, and the crosspoint repeater then drives
through the crossbar and the following 1 mm link in one shot.

Functionally the crossbar checks the structural constraints (one input
per output, no u-turns) and counts traversal events for the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ProtocolError
from repro.noc.topology import Port


@dataclass
class Crossbar:
    """A 5x5 (minus u-turns) crosspoint matrix."""

    allow_u_turn: bool = False
    traversals: int = field(default=0)
    #: EN activation counts per (in_port, out_port) crosspoint.
    crosspoint_counts: dict[tuple[Port, Port], int] = field(default_factory=dict)

    def connect(self, in_port: Port, out_port: Port) -> None:
        """Activate the crosspoint for one flit traversal (EN pulse)."""
        if in_port == out_port and not self.allow_u_turn:
            raise ProtocolError(f"u-turn {in_port} -> {out_port} not allowed")
        key = (in_port, out_port)
        self.crosspoint_counts[key] = self.crosspoint_counts.get(key, 0) + 1
        self.traversals += 1

    @staticmethod
    def n_crosspoints(n_ports: int = 5, allow_u_turn: bool = False) -> int:
        """Crosspoint count: 20 for the paper's no-u-turn 5-port switch."""
        if n_ports < 2:
            raise ConfigurationError(f"n_ports must be >= 2, got {n_ports}")
        return n_ports * (n_ports if allow_u_turn else n_ports - 1)


__all__ = ["Crossbar"]
