"""NoC-level energy integration: pricing simulator event counts.

After a simulation, every counted event (buffer write/read, crossbar +
link traversal, ejection, tap) is priced with the calibrated router
energy model of :mod:`repro.energy.router`.  Running the same trace with
``datapath="srlr"`` and ``datapath="full_swing"`` quantifies the NoC-level
saving the paper's Section I argues for; comparing tree multicast with
taps against unicast fan-out quantifies the free-multicast benefit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.energy.router import RouterPowerModel
from repro.noc.stats import NocStats


@dataclass(frozen=True)
class NocEnergyReport:
    """Energy split of one simulation run, joules."""

    buffers: float
    control: float
    datapath: float
    taps: float
    n_cycles: int
    clock_hz: float

    @property
    def total(self) -> float:
        return self.buffers + self.control + self.datapath + self.taps

    @property
    def average_power(self) -> float:
        if self.n_cycles <= 0:
            return 0.0
        return self.total / (self.n_cycles / self.clock_hz)

    def energy_per_delivered_flit(self, delivered: int) -> float:
        if delivered <= 0:
            raise ConfigurationError("delivered must be positive")
        return self.total / delivered


#: Energy of latching a tapped flit locally, as a fraction of a full
#: datapath traversal: the pulse already passes the crosspoint SRLR, so
#: the tap adds only the local latch/capture cost.
TAP_ENERGY_FRACTION = 0.04


def payload_pricing_active(links) -> bool:
    """True when ``links`` carry data-dependent transition counters."""
    return links is not None and any(
        link.payload_mode != "constant" for link in links
    )


def price_stats(
    stats: NocStats,
    model: RouterPowerModel | None = None,
    datapath: str = "srlr",
    n_cycles: int | None = None,
    links=None,
    coupling: bool = True,
) -> NocEnergyReport:
    """Convert event counters into an energy report.

    ``datapath`` selects how crossbar+link traversals are priced: the
    SRLR circuit energy or the conventional repeated full-swing wire.

    ``links`` (the simulator's link list) switches link-traversal
    pricing from the constant per-bit worst case to the
    **data-dependent** model when the run counted payload transitions
    (:meth:`repro.noc.link.Link.count_payload`): toggled wires pay
    ``e_dp / flit_bits`` each, opposing adjacent pairs additionally pay
    the coupled-line Miller fraction (disabled with ``coupling=False``),
    and per-link ``mm_scale`` is folded in.  Payload-free runs price
    exactly as before whether or not ``links`` is passed.
    """
    model = model or RouterPowerModel()
    if n_cycles is None:
        n_cycles = max(stats.measure_end, 1)
    e_buffer = model.buffer_energy_per_flit()
    # Split access energy between write and read events so partial drains
    # price correctly; bypassed flits skip the buffer array entirely.
    accesses = stats.buffer_writes + stats.buffer_reads - 2 * stats.bypassed_flits
    buffers = 0.5 * e_buffer * max(accesses, 0)
    control = model.control_energy_per_flit() * stats.buffer_reads
    e_dp = model.datapath_energy_per_flit(datapath)
    if payload_pricing_active(links):
        # Lazy import: repro.workload imports the traffic/trace layer,
        # which imports this module back through repro.noc.__init__.
        from repro.workload.energy import payload_datapath_energy

        datapath_energy = payload_datapath_energy(
            links, e_dp, model.config.flit_bits, coupling
        )
    else:
        datapath_energy = e_dp * stats.link_traversals
    # Ejections traverse the crossbar but not the 1 mm link.
    datapath_energy += 0.4 * e_dp * stats.ejections
    taps = TAP_ENERGY_FRACTION * e_dp * stats.tap_deliveries
    return NocEnergyReport(
        buffers=buffers,
        control=control,
        datapath=datapath_energy,
        taps=taps,
        n_cycles=n_cycles,
        clock_hz=model.config.clock_hz,
    )


__all__ = [
    "NocEnergyReport",
    "TAP_ENERGY_FRACTION",
    "payload_pricing_active",
    "price_stats",
]
