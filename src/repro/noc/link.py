"""Router-to-router links.

A link carries flits with a fixed latency in cycles.  Physically this is
the 1 mm wire the SRLR drives; the cycle-level simulator only needs the
latency and the traversal count (the energy model prices each traversal
with the circuit-level per-bit energy).

A link may optionally carry a *fault channel*
(:class:`repro.fault.injector.FaultChannel`): when attached, every
traversal consults the channel, which can corrupt the flit, delay it by
link-level retransmissions, or mark the packet for drop-absorption at the
far end.  Without a channel (the default) the behavior is bit-for-bit the
ideal wire the rest of the repo was built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.noc.packet import Flit
from repro.noc.topology import NodeId, Port

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fault.injector import FaultChannel


@dataclass
class LinkEnd:
    """Destination of a link: (router node, input port, input VC)."""

    node: NodeId
    port: Port


@dataclass
class Link:
    """A directed link with ``latency`` cycles of flight time."""

    src: NodeId
    dst: LinkEnd
    latency: int = 1
    #: Physical length of this hop in units of the baseline link (1.0 =
    #: the paper's 1 mm NoC wire; NoI links in a chiplet topology are
    #: longer).  Energy accounting multiplies per-traversal cost by this.
    mm_scale: float = 1.0
    traversals: int = field(default=0)
    _in_flight: list[tuple[int, Flit, int]] = field(default_factory=list)
    #: Optional fault channel (attached by the fault layer); None = ideal.
    channel: "FaultChannel | None" = field(default=None, repr=False)
    #: Data-dependent energy accounting.  ``payload_mode`` is set by the
    #: simulator from the traffic source: ``"constant"`` (default, no
    #: counting — the legacy constant per-bit price), ``"worst_case"``
    #: (every traversal toggles all wires: the word synthesized on the
    #: wire is the complement of the previous one), or any other value
    #: (``"random"``/``"trace"``: the flit's recorded payload word is
    #: driven onto the wires and transitions counted against the wire
    #: state).  Counters are priced by :func:`repro.noc.power.price_stats`.
    payload_mode: str = field(default="constant", repr=False)
    payload_bits: int = field(default=64, repr=False)
    last_word: int = field(default=0, repr=False)
    payload_transitions: int = field(default=0, repr=False)
    coupling_events: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ConfigurationError(f"link latency must be >= 1, got {self.latency}")

    @property
    def token(self) -> str:
        """Stable content-addressed identity of this link (for seeds)."""
        return f"{self.src[0]},{self.src[1]}->{self.dst.node[0]},{self.dst.node[1]}"

    def dispatch(self, flit: Flit, cycle: int) -> tuple[int, Flit]:
        """Transit bookkeeping for one traversal, without queuing.

        Counts the traversal and consults the fault channel (if any),
        returning ``(arrival_cycle, flit_as_delivered)``.  ``send`` queues
        the result on this link's own in-flight list; the batch engine
        (:mod:`repro.noc.fastsim`) instead buckets it in its network-wide
        arrival calendar — both see identical arrival times and channel
        side effects.
        """
        self.traversals += 1
        if self.payload_mode != "constant":
            self.count_payload(flit)
        if self.channel is None:
            return cycle + self.latency, flit
        return self.channel.transmit(self, flit, cycle)

    def count_payload(self, flit: Flit) -> None:
        """Count the bit transitions one traversal drives onto the wires.

        ``payload_transitions`` counts wires that toggle (ground-cap
        switching); ``coupling_events`` counts adjacent wire pairs that
        toggle in *opposite* directions (the worst-case dynamic-Miller
        event of :mod:`repro.wire.coupled` — both plates of the sidewall
        capacitor swing, doubling its effective charge).  Both engines
        run this exact code at the same pipeline point, so the counters
        are part of the bitwise parity contract.
        """
        bits = self.payload_bits
        mask = (1 << bits) - 1
        if self.payload_mode == "worst_case":
            word = (~self.last_word) & mask
        else:
            payload = flit.packet.payload
            word = (payload[flit.seq] if payload else 0) & mask
        delta = word ^ self.last_word
        if delta:
            self.payload_transitions += delta.bit_count()
            opposed = delta & (delta >> 1) & (word ^ (word >> 1)) & (mask >> 1)
            if opposed:
                self.coupling_events += opposed.bit_count()
            self.last_word = word

    def send(self, flit: Flit, vc: int, cycle: int) -> None:
        """Put a flit on the wire at ``cycle``."""
        arrival, flit = self.dispatch(flit, cycle)
        self._in_flight.append((arrival, flit, vc))

    def arrivals(self, cycle: int) -> list[tuple[Flit, int]]:
        """Flits landing at the far end this cycle, as (flit, vc)."""
        landed = [(f, vc) for t, f, vc in self._in_flight if t == cycle]
        self._in_flight = [(t, f, vc) for t, f, vc in self._in_flight if t != cycle]
        return landed

    @property
    def busy(self) -> bool:
        return bool(self._in_flight)


__all__ = ["Link", "LinkEnd"]
