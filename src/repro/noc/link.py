"""Router-to-router links.

A link carries flits with a fixed latency in cycles.  Physically this is
the 1 mm wire the SRLR drives; the cycle-level simulator only needs the
latency and the traversal count (the energy model prices each traversal
with the circuit-level per-bit energy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.noc.packet import Flit
from repro.noc.topology import NodeId, Port


@dataclass
class LinkEnd:
    """Destination of a link: (router node, input port, input VC)."""

    node: NodeId
    port: Port


@dataclass
class Link:
    """A directed link with ``latency`` cycles of flight time."""

    src: NodeId
    dst: LinkEnd
    latency: int = 1
    traversals: int = field(default=0)
    _in_flight: list[tuple[int, Flit, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ConfigurationError(f"link latency must be >= 1, got {self.latency}")

    def send(self, flit: Flit, vc: int, cycle: int) -> None:
        """Put a flit on the wire at ``cycle``."""
        self.traversals += 1
        self._in_flight.append((cycle + self.latency, flit, vc))

    def arrivals(self, cycle: int) -> list[tuple[Flit, int]]:
        """Flits landing at the far end this cycle, as (flit, vc)."""
        landed = [(f, vc) for t, f, vc in self._in_flight if t == cycle]
        self._in_flight = [(t, f, vc) for t, f, vc in self._in_flight if t != cycle]
        return landed

    @property
    def busy(self) -> bool:
        return bool(self._in_flight)


__all__ = ["Link", "LinkEnd"]
