"""Router-to-router links.

A link carries flits with a fixed latency in cycles.  Physically this is
the 1 mm wire the SRLR drives; the cycle-level simulator only needs the
latency and the traversal count (the energy model prices each traversal
with the circuit-level per-bit energy).

A link may optionally carry a *fault channel*
(:class:`repro.fault.injector.FaultChannel`): when attached, every
traversal consults the channel, which can corrupt the flit, delay it by
link-level retransmissions, or mark the packet for drop-absorption at the
far end.  Without a channel (the default) the behavior is bit-for-bit the
ideal wire the rest of the repo was built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.noc.packet import Flit
from repro.noc.topology import NodeId, Port

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fault.injector import FaultChannel


@dataclass
class LinkEnd:
    """Destination of a link: (router node, input port, input VC)."""

    node: NodeId
    port: Port


@dataclass
class Link:
    """A directed link with ``latency`` cycles of flight time."""

    src: NodeId
    dst: LinkEnd
    latency: int = 1
    #: Physical length of this hop in units of the baseline link (1.0 =
    #: the paper's 1 mm NoC wire; NoI links in a chiplet topology are
    #: longer).  Energy accounting multiplies per-traversal cost by this.
    mm_scale: float = 1.0
    traversals: int = field(default=0)
    _in_flight: list[tuple[int, Flit, int]] = field(default_factory=list)
    #: Optional fault channel (attached by the fault layer); None = ideal.
    channel: "FaultChannel | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ConfigurationError(f"link latency must be >= 1, got {self.latency}")

    @property
    def token(self) -> str:
        """Stable content-addressed identity of this link (for seeds)."""
        return f"{self.src[0]},{self.src[1]}->{self.dst.node[0]},{self.dst.node[1]}"

    def dispatch(self, flit: Flit, cycle: int) -> tuple[int, Flit]:
        """Transit bookkeeping for one traversal, without queuing.

        Counts the traversal and consults the fault channel (if any),
        returning ``(arrival_cycle, flit_as_delivered)``.  ``send`` queues
        the result on this link's own in-flight list; the batch engine
        (:mod:`repro.noc.fastsim`) instead buckets it in its network-wide
        arrival calendar — both see identical arrival times and channel
        side effects.
        """
        self.traversals += 1
        if self.channel is None:
            return cycle + self.latency, flit
        return self.channel.transmit(self, flit, cycle)

    def send(self, flit: Flit, vc: int, cycle: int) -> None:
        """Put a flit on the wire at ``cycle``."""
        arrival, flit = self.dispatch(flit, cycle)
        self._in_flight.append((arrival, flit, vc))

    def arrivals(self, cycle: int) -> list[tuple[Flit, int]]:
        """Flits landing at the far end this cycle, as (flit, vc)."""
        landed = [(f, vc) for t, f, vc in self._in_flight if t == cycle]
        self._in_flight = [(t, f, vc) for t, f, vc in self._in_flight if t != cycle]
        return landed

    @property
    def busy(self) -> bool:
        return bool(self._in_flight)


__all__ = ["Link", "LinkEnd"]
