"""Cycle-level mesh NoC simulator: the system context of the SRLR."""

from repro.noc.crossbar import Crossbar
from repro.noc.indirect import (
    TopologyPoint,
    clos_point,
    crossover_locality,
    locality_sweep,
    mesh_average_hops,
    mesh_point,
)
from repro.noc.link import Link, LinkEnd
from repro.noc.packet import Flit, FlitType, Packet
from repro.noc.power import TAP_ENERGY_FRACTION, NocEnergyReport, price_stats
from repro.noc.router import NocConfig, Router
from repro.noc.routing import (
    multicast_tree_links,
    next_port,
    route_ports,
    routing_cdg_edges,
    routing_is_deadlock_free,
    tap_destinations,
    unicast_path,
    unicast_path_hops,
    xy_route,
    yx_route,
)
from repro.noc.fastsim import FastNocSimulator
from repro.noc.simulator import EngineFallbackWarning, ENGINES, Nic, NocSimulator
from repro.noc.stats import DeliveryRecord, NocStats
from repro.noc.topology import (
    OPPOSITE,
    PORT_UP,
    TOPOLOGY_KINDS,
    ChipletNoc,
    ConcentratedMesh,
    MeshTopology,
    NodeId,
    Port,
    Topology,
    TorusTopology,
    build_topology,
    updown_routing_table,
)
from repro.noc.trace import TraceEntry, TraceTraffic, record_trace
from repro.noc.traffic import (
    PATTERNS,
    SyntheticTraffic,
    endpoint_destination,
    pattern_destination,
)
from repro.noc.vc import InputPort, OutputPort, VirtualChannel

__all__ = [
    "ChipletNoc",
    "ConcentratedMesh",
    "Crossbar",
    "DeliveryRecord",
    "ENGINES",
    "EngineFallbackWarning",
    "FastNocSimulator",
    "Flit",
    "FlitType",
    "InputPort",
    "Link",
    "LinkEnd",
    "MeshTopology",
    "Nic",
    "NocConfig",
    "NocEnergyReport",
    "NocSimulator",
    "NocStats",
    "NodeId",
    "OPPOSITE",
    "OutputPort",
    "PATTERNS",
    "PORT_UP",
    "Packet",
    "Port",
    "Router",
    "SyntheticTraffic",
    "TOPOLOGY_KINDS",
    "Topology",
    "TopologyPoint",
    "TorusTopology",
    "TraceEntry",
    "clos_point",
    "crossover_locality",
    "locality_sweep",
    "mesh_average_hops",
    "mesh_point",
    "TraceTraffic",
    "record_trace",
    "TAP_ENERGY_FRACTION",
    "VirtualChannel",
    "build_topology",
    "endpoint_destination",
    "multicast_tree_links",
    "next_port",
    "pattern_destination",
    "price_stats",
    "route_ports",
    "routing_cdg_edges",
    "routing_is_deadlock_free",
    "tap_destinations",
    "unicast_path",
    "unicast_path_hops",
    "updown_routing_table",
    "xy_route",
    "yx_route",
]
