"""Cycle-level mesh NoC simulator: the system context of the SRLR."""

from repro.noc.crossbar import Crossbar
from repro.noc.indirect import (
    TopologyPoint,
    clos_point,
    crossover_locality,
    locality_sweep,
    mesh_average_hops,
    mesh_point,
)
from repro.noc.link import Link, LinkEnd
from repro.noc.packet import Flit, FlitType, Packet
from repro.noc.power import TAP_ENERGY_FRACTION, NocEnergyReport, price_stats
from repro.noc.router import NocConfig, Router
from repro.noc.routing import (
    multicast_tree_links,
    route_ports,
    tap_destinations,
    unicast_path_hops,
    xy_route,
    yx_route,
)
from repro.noc.fastsim import FastNocSimulator
from repro.noc.simulator import ENGINES, Nic, NocSimulator
from repro.noc.stats import DeliveryRecord, NocStats
from repro.noc.topology import OPPOSITE, MeshTopology, NodeId, Port
from repro.noc.trace import TraceEntry, TraceTraffic, record_trace
from repro.noc.traffic import PATTERNS, SyntheticTraffic, pattern_destination
from repro.noc.vc import InputPort, OutputPort, VirtualChannel

__all__ = [
    "Crossbar",
    "DeliveryRecord",
    "ENGINES",
    "FastNocSimulator",
    "Flit",
    "FlitType",
    "InputPort",
    "Link",
    "LinkEnd",
    "MeshTopology",
    "Nic",
    "NocConfig",
    "NocEnergyReport",
    "NocSimulator",
    "NocStats",
    "NodeId",
    "OPPOSITE",
    "OutputPort",
    "PATTERNS",
    "Packet",
    "Port",
    "Router",
    "SyntheticTraffic",
    "TopologyPoint",
    "TraceEntry",
    "clos_point",
    "crossover_locality",
    "locality_sweep",
    "mesh_average_hops",
    "mesh_point",
    "TraceTraffic",
    "record_trace",
    "TAP_ENERGY_FRACTION",
    "VirtualChannel",
    "multicast_tree_links",
    "pattern_destination",
    "price_stats",
    "route_ports",
    "tap_destinations",
    "unicast_path_hops",
    "xy_route",
    "yx_route",
]
