"""Mesh vs indirect topologies under locality: the Section I argument.

The paper's case for meshes over Clos/butterflies: "meshes support the
locality present in many applications, allowing nearby traffic to be
transported at lower delay and energy", while indirect topologies turn
*all* traffic into cross-die global traversals over long equalized links.

This module makes that argument quantitative with analytic hop/energy
models: a mesh carrying locality-parameterized traffic on 1 mm SRLR hops
versus a folded-Clos whose every packet crosses two long global links
(priced with the equalized-interconnect energy of Table I's [26]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.energy.baselines import kim2010
from repro.energy.link_energy import srlr_link_energy
from repro.units import FJ, MM


@dataclass(frozen=True)
class TopologyPoint:
    """Per-packet cost of one topology at one traffic locality."""

    topology: str
    locality: float
    avg_hops: float
    avg_wire_mm: float
    energy_per_bit: float  # joules, datapath wire energy per payload bit
    zero_load_latency_cycles: float


def mesh_average_hops(k: int, locality: float) -> float:
    """Average Manhattan distance under a locality mix.

    ``locality`` is the fraction of packets addressed to an immediate
    neighbor (1 hop); the remainder are uniform-random, whose k x k mesh
    average distance is 2(k - 1/k)/3... we use the standard 2k/3 form.
    """
    if not 0.0 <= locality <= 1.0:
        raise ConfigurationError(f"locality must lie in [0, 1], got {locality}")
    if k < 2:
        raise ConfigurationError(f"k must be >= 2, got {k}")
    uniform_avg = 2.0 * (k - 1.0 / k) / 3.0
    return locality * 1.0 + (1.0 - locality) * uniform_avg


def mesh_point(
    k: int,
    locality: float,
    hop_mm: float = 1.0,
    router_cycles: float = 3.0,
) -> TopologyPoint:
    """Mesh cost: hops of 1 mm SRLR wire plus per-hop router latency."""
    hops = mesh_average_hops(k, locality)
    srlr = srlr_link_energy()
    e_per_bit_mm = srlr.fj_per_bit_per_mm * FJ
    return TopologyPoint(
        topology="mesh (SRLR hops)",
        locality=locality,
        avg_hops=hops,
        avg_wire_mm=hops * hop_mm,
        energy_per_bit=hops * hop_mm * e_per_bit_mm,
        zero_load_latency_cycles=hops * (router_cycles + 1.0),
    )


def clos_point(
    k: int,
    locality: float,
    die_mm: float | None = None,
    router_cycles: float = 3.0,
) -> TopologyPoint:
    """Folded-Clos cost: every packet takes 2 global links to/from the
    middle stage (~half a die span each), regardless of locality.

    Global links are priced with the equalized transceiver of [26]
    (Table I): its published fJ/bit/cm covers driver + channel + receiver
    for the long repeaterless wires such topologies rely on.
    """
    if not 0.0 <= locality <= 1.0:
        raise ConfigurationError(f"locality must lie in [0, 1], got {locality}")
    if k < 2:
        raise ConfigurationError(f"k must be >= 2, got {k}")
    die_mm = float(k) if die_mm is None else die_mm  # 1 mm tiles
    link_mm = die_mm / 2.0
    eq = kim2010(high_rate=True)
    e_per_bit_mm = eq.energy_fj_per_bit_per_cm / 10.0 * FJ
    hops = 2.0  # ingress router -> middle stage -> egress router
    return TopologyPoint(
        topology="folded Clos (equalized links)",
        locality=locality,
        avg_hops=hops,
        avg_wire_mm=hops * link_mm,
        energy_per_bit=hops * link_mm * e_per_bit_mm,
        zero_load_latency_cycles=hops * (router_cycles + math.ceil(link_mm / 2.0)),
    )


def locality_sweep(
    k: int, localities: list[float]
) -> list[tuple[TopologyPoint, TopologyPoint]]:
    """(mesh, clos) cost pairs across the locality axis."""
    if not localities:
        raise ConfigurationError("localities must not be empty")
    return [(mesh_point(k, a), clos_point(k, a)) for a in localities]


def crossover_locality(k: int, tolerance: float = 1e-3) -> float:
    """The locality above which the mesh's energy beats the Clos's.

    Returns 0.0 when the mesh wins even for fully uniform traffic (the
    common outcome at mesh-scale dies: short hops are just cheaper), or
    1.0 if the Clos always wins.
    """
    lo, hi = 0.0, 1.0
    if mesh_point(k, 0.0).energy_per_bit <= clos_point(k, 0.0).energy_per_bit:
        return 0.0
    if mesh_point(k, 1.0).energy_per_bit > clos_point(k, 1.0).energy_per_bit:
        return 1.0
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if mesh_point(k, mid).energy_per_bit <= clos_point(k, mid).energy_per_bit:
            hi = mid
        else:
            lo = mid
    return hi


__all__ = [
    "TopologyPoint",
    "clos_point",
    "crossover_locality",
    "locality_sweep",
    "mesh_average_hops",
    "mesh_point",
]
