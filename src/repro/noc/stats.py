"""Simulation statistics: latency, throughput, and energy event counts.

The event counters are the interface to the energy model: every buffered,
switched, linked or tapped flit increments a counter here, and
:mod:`repro.noc.power` prices the counters with the router/circuit energy
models after the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class DeliveryRecord:
    """One (packet, destination) delivery."""

    packet_id: int
    dest: tuple[int, int]
    inject_cycle: int
    deliver_cycle: int
    via_tap: bool
    #: Source node, recorded when known (None in legacy call paths).
    src: tuple[int, int] | None = None
    #: Payload arrived corrupted (fault layer active, protection did not
    #: repair it before ejection).
    corrupted: bool = False

    @property
    def latency(self) -> int:
        return self.deliver_cycle - self.inject_cycle


@dataclass
class NocStats:
    """Counters and records accumulated over one simulation."""

    buffer_writes: int = 0
    buffer_reads: int = 0
    crossbar_traversals: int = 0
    link_traversals: int = 0
    ejections: int = 0
    tap_deliveries: int = 0
    bypassed_flits: int = 0
    injected_flits: int = 0
    injected_packets: int = 0
    #: Deliveries whose payload arrived corrupted (0 without a fault layer).
    corrupted_deliveries: int = 0
    deliveries: list[DeliveryRecord] = field(default_factory=list)
    #: Cycle range over which statistics count (set by the simulator).
    measure_start: int = 0
    measure_end: int = 0

    def record_delivery(
        self,
        packet_id: int,
        dest: tuple[int, int],
        inject_cycle: int,
        deliver_cycle: int,
        via_tap: bool,
        src: tuple[int, int] | None = None,
        corrupted: bool = False,
    ) -> None:
        self.deliveries.append(
            DeliveryRecord(
                packet_id, dest, inject_cycle, deliver_cycle, via_tap,
                src=src, corrupted=corrupted,
            )
        )
        if via_tap:
            self.tap_deliveries += 1
        if corrupted:
            self.corrupted_deliveries += 1

    # --- summary metrics -------------------------------------------------------------

    def _measured(self) -> list[DeliveryRecord]:
        return [
            d
            for d in self.deliveries
            if self.measure_start <= d.inject_cycle < self.measure_end
        ]

    @property
    def delivered_count(self) -> int:
        return len(self._measured())

    @property
    def clean_delivered_count(self) -> int:
        """Measured deliveries whose payload arrived intact."""
        return sum(1 for d in self._measured() if not d.corrupted)

    def clean_measured(self) -> list[DeliveryRecord]:
        """Intact measured deliveries (the 'useful work' of a fault run)."""
        return [d for d in self._measured() if not d.corrupted]

    @property
    def average_latency(self) -> float:
        measured = self._measured()
        if not measured:
            return float("nan")
        return sum(d.latency for d in measured) / len(measured)

    def latency_percentile(self, pct: float) -> float:
        if not 0.0 <= pct <= 100.0:
            raise ConfigurationError(f"pct must lie in [0, 100], got {pct}")
        measured = sorted(d.latency for d in self._measured())
        if not measured:
            return float("nan")
        idx = min(int(len(measured) * pct / 100.0), len(measured) - 1)
        return float(measured[idx])

    def throughput(self, n_nodes: int) -> float:
        """Delivered (packet, dest) pairs per node per cycle in the window."""
        window = self.measure_end - self.measure_start
        if window <= 0 or n_nodes <= 0:
            return 0.0
        return self.delivered_count / (window * n_nodes)


__all__ = ["DeliveryRecord", "NocStats"]
