"""Arbiters and allocators.

A mesh router needs two allocation stages per cycle: VC allocation (a
head flit acquires a virtual channel at the downstream input) and switch
allocation (buffered flits compete for crossbar input/output slots).
Both are built here from round-robin arbiters, the standard fair,
starvation-free primitive.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.errors import ConfigurationError


class RoundRobinArbiter:
    """Fair single-resource arbiter with a rotating priority pointer."""

    def __init__(self, n_requesters: int) -> None:
        if n_requesters < 1:
            raise ConfigurationError(
                f"n_requesters must be >= 1, got {n_requesters}"
            )
        self.n = n_requesters
        self._pointer = 0

    def grant(self, requests: Iterable[int]) -> int | None:
        """Grant one of the requesting indices, rotating priority.

        Returns None when nothing requests.  The pointer advances past the
        winner so it has lowest priority next time.
        """
        req = set(requests)
        if not req:
            return None
        for offset in range(self.n):
            candidate = (self._pointer + offset) % self.n
            if candidate in req:
                self._pointer = (candidate + 1) % self.n
                return candidate
        return None


class Allocator:
    """Separable input-first allocator over (requester, resource) pairs.

    Stage 1: each requester (holding possibly several candidate
    resources) picks one via its own round-robin arbiter.  Stage 2: each
    resource picks one of the requesters that selected it.  This is the
    canonical separable allocator used for both VC and switch allocation
    in 3-stage routers.
    """

    def __init__(self) -> None:
        self._requester_arbiters: dict[Hashable, RoundRobinArbiter] = {}
        self._resource_arbiters: dict[Hashable, RoundRobinArbiter] = {}

    def _arbiter(
        self, table: dict[Hashable, RoundRobinArbiter], key: Hashable, n: int
    ) -> RoundRobinArbiter:
        arbiter = table.get(key)
        if arbiter is None or arbiter.n != n:
            arbiter = RoundRobinArbiter(n)
            table[key] = arbiter
        return arbiter

    def allocate(
        self, requests: dict[Hashable, list[Hashable]]
    ) -> dict[Hashable, Hashable]:
        """Resolve {requester: [candidate resources]} to {requester: resource}.

        Each resource is granted to at most one requester; each requester
        receives at most one resource.
        """
        # Stage 1: requesters choose one candidate each.
        choices: dict[Hashable, Hashable] = {}
        for requester, resources in sorted(requests.items(), key=lambda kv: repr(kv[0])):
            if not resources:
                continue
            ordered = sorted(resources, key=repr)
            arbiter = self._arbiter(
                self._requester_arbiters, requester, max(len(ordered), 1)
            )
            idx = arbiter.grant(range(len(ordered)))
            if idx is not None:
                choices[requester] = ordered[idx]

        # Stage 2: resources choose among their suitors.
        suitors: dict[Hashable, list[Hashable]] = {}
        for requester, resource in choices.items():
            suitors.setdefault(resource, []).append(requester)
        grants: dict[Hashable, Hashable] = {}
        for resource, requesters in sorted(suitors.items(), key=lambda kv: repr(kv[0])):
            ordered = sorted(requesters, key=repr)
            arbiter = self._arbiter(
                self._resource_arbiters, resource, max(len(ordered), 1)
            )
            idx = arbiter.grant(range(len(ordered)))
            if idx is not None:
                grants[ordered[idx]] = resource
        return grants


__all__ = ["Allocator", "RoundRobinArbiter"]
