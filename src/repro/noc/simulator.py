"""The cycle-level mesh NoC simulator: wiring, NICs, and the main loop.

Per cycle, in order: link arrivals land, routers buffer-write (and apply
SRLR taps), traffic generates packets, NICs inject, routers run VC
allocation, then switch allocation + traversal.  Statistics windows
(warmup / measure / drain) follow standard NoC methodology: latency and
throughput only count packets injected during the measurement window.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, LivelockError, ProtocolError
from repro.noc.link import Link, LinkEnd
from repro.noc.packet import Flit, Packet
from repro.noc.router import NocConfig, Router
from repro.noc.stats import NocStats
from repro.noc.topology import MeshTopology, NodeId, Port, Topology
from repro.noc.traffic import SyntheticTraffic
from repro.noc.vc import OutputPort


class EngineFallbackWarning(RuntimeWarning):
    """A run silently downgraded to a slower-but-exact engine.

    Raised as a *warning*, not an error: the reference engine produces
    the same statistics, so results stay valid — but campaign authors
    sizing a run for the fast engine should hear about the slowdown.
    """


@dataclass
class Nic:
    """Network interface: queues packets and injects flits via LOCAL.

    The NIC performs the upstream half of flow control for the router's
    LOCAL input port: it picks an idle VC per packet and respects
    credits, exactly like an upstream router's output side.
    """

    node: NodeId
    router: Router
    config: NocConfig
    stats: NocStats
    seed: int = 0
    queue: deque[Packet] = field(default_factory=deque)
    out: OutputPort = field(init=False)
    _pending: list[Flit] = field(default_factory=list)
    _vc: int | None = None
    _va_ptr: int = 0

    def __post_init__(self) -> None:
        self.out = OutputPort(self.config.n_vcs, self.config.vc_capacity)
        self.router.upstream[Port.LOCAL] = self.out
        self._rng = np.random.default_rng(
            (self.seed, self.node[0], self.node[1])
        )

    def offer(self, packet: Packet) -> None:
        if self.config.routing == "o1turn" and not packet.is_multicast:
            # O1TURN: flip a fair coin per packet between the two
            # dimension orders (multicast trees stay XY).
            packet.routing = "xy" if self._rng.random() < 0.5 else "yx"
        self.queue.append(packet)
        self.stats.injected_packets += 1

    def inject(self, cycle: int) -> None:
        """Send at most one flit into the router's LOCAL port."""
        if not self._pending:
            if not self.queue:
                return
            allowed = self.router.vc_class(self.queue[0].routing)
            free = [v for v in self.out.free_vcs() if v in allowed]
            if not free:
                return
            vc = free[self._va_ptr % len(free)]
            self._va_ptr += 1
            packet = self.queue.popleft()
            self._pending = packet.flits()
            self._vc = vc
            self.out.acquire(vc, (Port.LOCAL, vc))
        assert self._vc is not None
        if self.out.credits[self._vc] <= 0:
            return
        flit = self._pending.pop(0)
        self.out.consume_credit(self._vc)
        self.router.stage(flit, Port.LOCAL, self._vc)
        self.stats.injected_flits += 1
        if not self._pending:
            self._vc = None

    @property
    def backlog(self) -> int:
        return len(self.queue) + len(self._pending)


#: Engines selectable via ``NocSimulator(..., engine=...)``.
ENGINES = ("reference", "fast")


class NocSimulator:
    """A NoC under a synthetic traffic generator.

    The first argument is either an int ``k`` (a flat k x k mesh — the
    historical constructor, kept bit-identical) or any
    :class:`~repro.noc.topology.Topology` instance (concentrated mesh,
    torus, chiplet NoC/NoI, ...).

    ``engine`` selects the cycle-loop implementation: ``"reference"``
    (this class — the per-flit golden oracle) or ``"fast"`` (the
    struct-of-arrays batch engine in :mod:`repro.noc.fastsim`, which
    produces identical end-of-run statistics for identical seeds on
    unicast traffic).
    """

    #: Which cycle-loop implementation this instance runs.
    engine = "reference"

    def __new__(cls, *args, engine: str | None = None, **kwargs):
        engine = engine or "reference"
        if engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        if engine == "fast" and cls is NocSimulator:
            topology = args[0] if args else kwargs.get("k")
            if isinstance(topology, Topology) and not topology.supports_fast_engine:
                warnings.warn(
                    f"engine='fast' does not support the {topology.kind} "
                    "topology yet; falling back to the reference engine "
                    "(identical results, slower)",
                    EngineFallbackWarning,
                    stacklevel=2,
                )
                return super().__new__(cls)
            # Deferred import: fastsim subclasses this class.
            from repro.noc.fastsim import FastNocSimulator

            return super().__new__(FastNocSimulator)
        return super().__new__(cls)

    def __init__(
        self,
        k: int | Topology,
        config: NocConfig | None = None,
        traffic: SyntheticTraffic | None = None,
        injection_rate: float = 0.05,
        pattern: str = "uniform",
        seed: int = 7,
        *,
        engine: str = "reference",
    ) -> None:
        self.topology = MeshTopology(k) if isinstance(k, int) else k
        self.config = config or NocConfig()
        self.stats = NocStats()
        if self.config.routing == "o1turn" and self.topology.table_routed:
            raise ConfigurationError(
                "o1turn routing needs two dimension orders; the "
                f"{self.topology.kind} topology is table-routed (one "
                "deadlock-free table) — use routing='xy'"
            )
        self.traffic = traffic or SyntheticTraffic(
            self.topology, injection_rate, pattern, seed=seed
        )
        if self.traffic.topology != self.topology:
            raise ConfigurationError(
                "traffic generator built for a different topology"
            )

        self.routers: dict[NodeId, Router] = {
            node: Router(node, self.topology, self.config, self.stats)
            for node in self.topology.nodes()
        }
        self.links: list[Link] = []
        for src, port, dst, in_port in self.topology.directed_links():
            link = Link(
                src=src,
                dst=LinkEnd(node=dst, port=in_port),
                latency=self.config.link_latency,
                mm_scale=self.topology.link_scale(src, port),
            )
            self.links.append(link)
            self.routers[src].connect_output(
                port, link, self.config.n_vcs, self.config.vc_capacity
            )
            self.routers[dst].upstream[in_port] = self.routers[src].outputs[port]
        # Data-dependent link energy: when the traffic source carries (or
        # synthesizes) payload bits, every link counts the transitions
        # each traversal drives onto its wires.  "constant" leaves the
        # links on the legacy zero-overhead path.
        payload_mode = getattr(self.traffic, "payload_mode", "constant")
        if payload_mode != "constant":
            payload_bits = int(getattr(self.traffic, "payload_bits", 64))
            for link in self.links:
                link.payload_mode = payload_mode
                link.payload_bits = payload_bits
        self.nics: dict[NodeId, Nic] = {
            node: Nic(node, self.routers[node], self.config, self.stats, seed=seed)
            for node in self.topology.nodes()
        }
        self.cycle = 0
        #: Optional fault-injection layer (set by ``FaultLayer.attach``).
        #: None keeps every hook below inert — the fault-free fast path.
        self.fault_layer = None

    # --- main loop -----------------------------------------------------------------------

    def step(self) -> None:
        """Advance the network by one cycle."""
        cycle = self.cycle
        ordered_nodes = sorted(self.routers)

        if self.fault_layer is not None:
            self.fault_layer.begin_cycle(cycle)

        for link in self.links:
            for flit, vc in link.arrivals(cycle):
                if link.channel is not None and link.channel.absorbs(flit):
                    self._absorb(link, flit, vc)
                else:
                    self.routers[link.dst.node].stage(flit, link.dst.port, vc)

        for node in ordered_nodes:
            self.routers[node].accept(cycle)

        for packet in self.traffic.packets_for_cycle(cycle):
            self.nics[packet.src].offer(packet)
            if self.fault_layer is not None:
                self.fault_layer.on_offer(packet, cycle)

        for node in ordered_nodes:
            self.nics[node].inject(cycle)

        for node in ordered_nodes:
            self.routers[node].vc_allocate(cycle)

        for node in ordered_nodes:
            self.routers[node].switch_and_traverse(cycle)

        self.cycle += 1

    def run(
        self,
        warmup: int = 200,
        measure: int = 600,
        drain_limit: int | None = None,
        stall_window: int | None = None,
    ) -> NocStats:
        """Warm up, measure, then drain measured packets.

        ``drain_limit`` and ``stall_window`` default to the values in
        :class:`~repro.noc.router.NocConfig` (``config.drain_limit`` /
        ``config.stall_window``); passing them here overrides the config
        for this run only.

        Raises :class:`LivelockError` (a :class:`ProtocolError`) if the
        network fails to drain within ``drain_limit`` cycles after the
        measurement window, or earlier if no component makes forward
        progress for ``stall_window`` consecutive drain cycles with no
        event scheduled (a credit deadlock, a retransmission storm, or a
        disabled-link partition — the diagnostic says which components
        are wedged).  With XY routing, correct flow control, and no fault
        layer, either indicates a protocol bug or genuine
        saturation-level livelock, both worth failing loudly on.
        """
        if drain_limit is None:
            drain_limit = self.config.drain_limit
        if stall_window is None:
            stall_window = self.config.stall_window
        if warmup < 0 or measure <= 0 or drain_limit < 0 or stall_window < 1:
            raise ConfigurationError(
                "invalid warmup/measure/drain_limit/stall_window"
            )
        self.stats.measure_start = warmup
        self.stats.measure_end = warmup + measure
        for _ in range(warmup + measure):
            self.step()

        # Stop generating, drain what's in flight — through the explicit
        # drain protocol (DrainableTraffic) every traffic source shares.
        # Ad-hoc generators without the protocol fall back to the legacy
        # rate-parking behavior.
        if hasattr(self.traffic, "begin_drain"):
            self.traffic.begin_drain()
            end_drain = self.traffic.end_drain
        else:
            rate, self.traffic.injection_rate = self.traffic.injection_rate, 0.0

            def end_drain() -> None:
                self.traffic.injection_rate = rate

        try:
            last_signature = None
            stalled_for = 0
            for _ in range(drain_limit):
                if not self._network_busy():
                    break
                self.step()
                signature = self._progress_signature()
                if signature != last_signature:
                    last_signature = signature
                    stalled_for = 0
                    continue
                stalled_for += 1
                if (
                    stalled_for >= stall_window
                    and self._next_scheduled_event() is None
                ):
                    raise LivelockError(
                        f"no forward progress for {stalled_for} drain cycles "
                        f"and no event scheduled; {self._drain_diagnostic()}"
                    )
            if self._network_busy():
                raise LivelockError(
                    f"network failed to drain within {drain_limit} cycles "
                    f"({self.stats.delivered_count} measured deliveries so "
                    f"far); {self._drain_diagnostic()}"
                )
        finally:
            end_drain()
        return self.stats

    # --- drain bookkeeping ------------------------------------------------------------

    def _absorb(self, link: Link, flit: Flit, vc: int) -> None:
        """Receiver-side absorption of a dropped flit.

        The flit is discarded instead of buffered, but its flow-control
        lifecycle completes exactly as a delivery's would: the upstream
        credit flows back, and the tail releases the VC grant — so drops
        never leak credits or wedge a worm.
        """
        upstream = self.routers[link.dst.node].upstream[link.dst.port]
        upstream.return_credit(vc)
        if flit.is_tail:
            upstream.release(vc)

    def _network_busy(self) -> bool:
        if any(link.busy for link in self.links):
            return True
        for nic in self.nics.values():
            if nic.backlog:
                return True
        for router in self.routers.values():
            if router._staged:
                return True
            for port in router.inputs.values():
                if port.occupancy:
                    return True
        if self.fault_layer is not None and self.fault_layer.busy():
            return True
        return False

    def _progress_signature(self) -> tuple[int, ...]:
        """Monotone counters that change iff some flit moved this cycle."""
        s = self.stats
        signature = (
            s.buffer_writes,
            s.buffer_reads,
            s.injected_flits,
            s.ejections,
            s.tap_deliveries,
            len(s.deliveries),
        )
        if self.fault_layer is not None:
            signature = signature + self.fault_layer.progress_token()
        return signature

    def _next_scheduled_event(self) -> int | None:
        """Earliest future cycle something is guaranteed to happen.

        A stalled signature is not a livelock while a flit is still in
        flight (e.g. serving a long retransmission delay) or a protocol
        timer is pending — those resolve on their own.
        """
        candidates = [
            t for link in self.links for t, _f, _vc in link._in_flight
        ]
        if self.fault_layer is not None:
            event = self.fault_layer.next_event_cycle()
            if event is not None:
                candidates.append(event)
        return min(candidates) if candidates else None

    def _drain_diagnostic(self) -> str:
        """Which components are wedged, for the livelock error message."""
        busy_links = [link for link in self.links if link.busy]
        backlog = sum(nic.backlog for nic in self.nics.values())
        staged = sum(len(r._staged) for r in self.routers.values())
        buffered = sum(
            port.occupancy
            for r in self.routers.values()
            for port in r.inputs.values()
        )
        parts = [
            f"cycle={self.cycle}",
            f"links_in_flight={len(busy_links)}",
            f"buffered_flits={buffered}",
            f"staged_flits={staged}",
            f"nic_backlog={backlog}",
        ]
        if busy_links:
            worst = sorted(busy_links, key=lambda l: -len(l._in_flight))[:3]
            parts.append(
                "busiest_links=" + ",".join(l.token for l in worst)
            )
        layer = self.fault_layer
        if layer is not None:
            s = layer.stats
            parts.append(
                f"fault(retransmissions={s.retransmissions}, "
                f"giveups={s.crc_giveups}, dropped={s.flits_dropped}, "
                f"links_disabled={s.links_disabled}, "
                f"undeliverable={s.undeliverable_flits})"
            )
            if layer.tracker is not None:
                parts.append(
                    f"e2e(outstanding={len(layer.tracker._transfers)}, "
                    f"acks_in_flight={len(layer.tracker._acks)}, "
                    f"retries={s.packet_retries})"
                )
        return " ".join(parts)


__all__ = ["EngineFallbackWarning", "Nic", "NocSimulator"]
