"""The cycle-level mesh NoC simulator: wiring, NICs, and the main loop.

Per cycle, in order: link arrivals land, routers buffer-write (and apply
SRLR taps), traffic generates packets, NICs inject, routers run VC
allocation, then switch allocation + traversal.  Statistics windows
(warmup / measure / drain) follow standard NoC methodology: latency and
throughput only count packets injected during the measurement window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.noc.link import Link, LinkEnd
from repro.noc.packet import Flit, Packet
from repro.noc.router import NocConfig, Router
from repro.noc.stats import NocStats
from repro.noc.topology import OPPOSITE, MeshTopology, NodeId, Port
from repro.noc.traffic import SyntheticTraffic
from repro.noc.vc import OutputPort


@dataclass
class Nic:
    """Network interface: queues packets and injects flits via LOCAL.

    The NIC performs the upstream half of flow control for the router's
    LOCAL input port: it picks an idle VC per packet and respects
    credits, exactly like an upstream router's output side.
    """

    node: NodeId
    router: Router
    config: NocConfig
    stats: NocStats
    seed: int = 0
    queue: deque[Packet] = field(default_factory=deque)
    out: OutputPort = field(init=False)
    _pending: list[Flit] = field(default_factory=list)
    _vc: int | None = None
    _va_ptr: int = 0

    def __post_init__(self) -> None:
        self.out = OutputPort(self.config.n_vcs, self.config.vc_capacity)
        self.router.upstream[Port.LOCAL] = self.out
        self._rng = np.random.default_rng(
            (self.seed, self.node[0], self.node[1])
        )

    def offer(self, packet: Packet) -> None:
        if self.config.routing == "o1turn" and not packet.is_multicast:
            # O1TURN: flip a fair coin per packet between the two
            # dimension orders (multicast trees stay XY).
            packet.routing = "xy" if self._rng.random() < 0.5 else "yx"
        self.queue.append(packet)
        self.stats.injected_packets += 1

    def inject(self, cycle: int) -> None:
        """Send at most one flit into the router's LOCAL port."""
        if not self._pending:
            if not self.queue:
                return
            allowed = self.router.vc_class(self.queue[0].routing)
            free = [v for v in self.out.free_vcs() if v in allowed]
            if not free:
                return
            vc = free[self._va_ptr % len(free)]
            self._va_ptr += 1
            packet = self.queue.popleft()
            self._pending = packet.flits()
            self._vc = vc
            self.out.acquire(vc, (Port.LOCAL, vc))
        assert self._vc is not None
        if self.out.credits[self._vc] <= 0:
            return
        flit = self._pending.pop(0)
        self.out.consume_credit(self._vc)
        self.router.stage(flit, Port.LOCAL, self._vc)
        self.stats.injected_flits += 1
        if not self._pending:
            self._vc = None

    @property
    def backlog(self) -> int:
        return len(self.queue) + len(self._pending)


class NocSimulator:
    """A k x k mesh NoC under a synthetic traffic generator."""

    def __init__(
        self,
        k: int,
        config: NocConfig | None = None,
        traffic: SyntheticTraffic | None = None,
        injection_rate: float = 0.05,
        pattern: str = "uniform",
        seed: int = 7,
    ) -> None:
        self.topology = MeshTopology(k)
        self.config = config or NocConfig()
        self.stats = NocStats()
        self.traffic = traffic or SyntheticTraffic(
            self.topology, injection_rate, pattern, seed=seed
        )
        if self.traffic.topology.k != k:
            raise ConfigurationError("traffic generator built for a different mesh")

        self.routers: dict[NodeId, Router] = {
            node: Router(node, self.topology, self.config, self.stats)
            for node in self.topology.nodes()
        }
        self.links: list[Link] = []
        for src, port, dst in self.topology.links():
            link = Link(
                src=src,
                dst=LinkEnd(node=dst, port=OPPOSITE[port]),
                latency=self.config.link_latency,
            )
            self.links.append(link)
            self.routers[src].connect_output(
                port, link, self.config.n_vcs, self.config.vc_capacity
            )
            self.routers[dst].upstream[OPPOSITE[port]] = self.routers[src].outputs[port]
        self.nics: dict[NodeId, Nic] = {
            node: Nic(node, self.routers[node], self.config, self.stats, seed=seed)
            for node in self.topology.nodes()
        }
        self.cycle = 0

    # --- main loop -----------------------------------------------------------------------

    def step(self) -> None:
        """Advance the network by one cycle."""
        cycle = self.cycle
        ordered_nodes = sorted(self.routers)

        for link in self.links:
            for flit, vc in link.arrivals(cycle):
                self.routers[link.dst.node].stage(flit, link.dst.port, vc)

        for node in ordered_nodes:
            self.routers[node].accept(cycle)

        for packet in self.traffic.packets_for_cycle(cycle):
            self.nics[packet.src].offer(packet)

        for node in ordered_nodes:
            self.nics[node].inject(cycle)

        for node in ordered_nodes:
            self.routers[node].vc_allocate(cycle)

        for node in ordered_nodes:
            self.routers[node].switch_and_traverse(cycle)

        self.cycle += 1

    def run(
        self, warmup: int = 200, measure: int = 600, drain_limit: int = 4000
    ) -> NocStats:
        """Warm up, measure, then drain measured packets.

        Raises :class:`ProtocolError` if the network fails to drain within
        ``drain_limit`` cycles after the measurement window — with XY
        routing and correct flow control that indicates a protocol bug or
        genuine saturation-level livelock, both worth failing loudly on.
        """
        if warmup < 0 or measure <= 0 or drain_limit < 0:
            raise ConfigurationError("invalid warmup/measure/drain_limit")
        self.stats.measure_start = warmup
        self.stats.measure_end = warmup + measure
        for _ in range(warmup + measure):
            self.step()

        # Stop generating, drain what's in flight.
        rate, self.traffic.injection_rate = self.traffic.injection_rate, 0.0
        for _ in range(drain_limit):
            if not self._network_busy():
                break
            self.step()
        self.traffic.injection_rate = rate
        if self._network_busy():
            raise ProtocolError(
                f"network failed to drain within {drain_limit} cycles "
                f"({self.stats.delivered_count} measured deliveries so far)"
            )
        return self.stats

    # --- drain bookkeeping ------------------------------------------------------------

    def _network_busy(self) -> bool:
        if any(link.busy for link in self.links):
            return True
        for nic in self.nics.values():
            if nic.backlog:
                return True
        for router in self.routers.values():
            if router._staged:
                return True
            for port in router.inputs.values():
                if port.occupancy:
                    return True
        return False


__all__ = ["Nic", "NocSimulator"]
