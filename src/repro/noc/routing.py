"""Routing: dimension order on grids, table dispatch elsewhere.

XY routing is the standard deadlock-free choice for meshes: traverse X
fully, then Y.  Table-routed topologies (torus, chiplet NoC/NoI) use
their precomputed up*/down* next-hop tables instead — every function
here dispatches through :func:`next_port` so both families share one
code path.  The multicast tree is the natural generalization —
destinations are partitioned by the output port the routing function
would choose, and a fork replicates the flit per needed port.  Because
every branch still follows one acyclic routing relation (XY order, or
one fixed up*/down* table), the tree is cycle-free and inherits the
underlying deadlock freedom; :func:`routing_cdg_edges` builds the
channel dependency graph so tests can verify acyclicity per topology
class.

The module also computes *tap* opportunities: the SRLR datapath exposes
full-swing data at every intermediate repeater (Section II), so a
destination lying on a straight-through segment of the tree can be
served without a separate ejection traversal.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.noc.packet import Flit
from repro.noc.topology import MeshTopology, NodeId, Port, Topology


def xy_route(current: NodeId, dest: NodeId) -> Port:
    """The output port XY dimension-order routing takes toward ``dest``."""
    if current == dest:
        return Port.LOCAL
    cx, cy = current
    dx, dy = dest
    if dx > cx:
        return Port.EAST
    if dx < cx:
        return Port.WEST
    if dy > cy:
        return Port.NORTH
    return Port.SOUTH


def yx_route(current: NodeId, dest: NodeId) -> Port:
    """The YX dimension order: traverse Y fully, then X (O1TURN's twin)."""
    if current == dest:
        return Port.LOCAL
    cx, cy = current
    dx, dy = dest
    if dy > cy:
        return Port.NORTH
    if dy < cy:
        return Port.SOUTH
    if dx > cx:
        return Port.EAST
    return Port.WEST


def next_port(
    topology: Topology, current: NodeId, dest: NodeId, order: str = "xy"
):
    """The output port routing takes toward ``dest`` at ``current``.

    Dimension order on grids (honoring ``order``), a table lookup on
    table-routed topologies (which have a single routing class).
    """
    if topology.table_routed:
        return topology.route_port(current, dest)
    return yx_route(current, dest) if order == "yx" else xy_route(current, dest)


def route_ports(
    topology: Topology, current: NodeId, flit: Flit
) -> dict[Port, frozenset[NodeId]]:
    """Partition a flit's destinations by output port at ``current``.

    Uses the packet's dimension order ("xy" or "yx") on grid
    topologies and the topology's precomputed table elsewhere.  Returns
    {port: destination subset}; LOCAL appears when this router is itself
    a destination.  Unicast flits always map to a single entry.
    """
    if not topology.contains(current):
        raise RoutingError(f"router {current} outside the {topology.kind}")
    if topology.table_routed:
        table_partition: dict = {}
        for dest in flit.dests:
            if not topology.contains(dest):
                raise RoutingError(
                    f"destination {dest} outside the {topology.kind}"
                )
            port = topology.route_port(current, dest)
            table_partition.setdefault(port, set()).add(dest)
        return {
            port: frozenset(dests) for port, dests in table_partition.items()
        }
    route = yx_route if flit.packet.routing == "yx" else xy_route
    partition: dict[Port, set[NodeId]] = {}
    for dest in flit.dests:
        if not topology.contains(dest):
            raise RoutingError(f"destination {dest} outside the mesh")
        partition.setdefault(route(current, dest), set()).add(dest)
    return {port: frozenset(dests) for port, dests in partition.items()}


def multicast_tree_links(
    topology: Topology, src: NodeId, dests: frozenset[NodeId]
) -> set[tuple[NodeId, Port]]:
    """All (router, out_port) hops of the multicast tree, counted once.

    This is the link-traversal cost of a tree multicast; the same set of
    destinations served as independent unicasts costs the *sum* of their
    paths, which double-counts every shared prefix — the multicast
    energy advantage quantified in the E11 bench.  The tree follows XY
    on grids and the up*/down* table on table-routed topologies; either
    way all branches share one acyclic routing relation, so the tree is
    cycle- and deadlock-free.
    """
    hops: set[tuple[NodeId, Port]] = set()
    for dest in dests:
        node = src
        while node != dest:
            port = next_port(topology, node, dest)
            hops.add((node, port))
            nxt = topology.neighbor(node, port)
            if nxt is None:
                raise RoutingError(
                    f"routing fell off the {topology.kind} at {node} "
                    f"toward {dest}"
                )
            node = nxt
    return hops


def unicast_path_hops(topology: Topology, src: NodeId, dest: NodeId) -> int:
    """Hop count of the unicast path (Manhattan distance on the mesh)."""
    if topology.table_routed:
        return len(unicast_path(topology, src, dest)) if src != dest else 0
    return topology.hop_distance(src, dest)


def unicast_path(
    topology: Topology, src: NodeId, dest: NodeId, order: str = "xy"
) -> list[tuple[NodeId, Port]]:
    """The (node, out_port) hops of the routed unicast path, in order."""
    path: list[tuple[NodeId, Port]] = []
    node = src
    while node != dest:
        port = next_port(topology, node, dest, order)
        path.append((node, port))
        nxt = topology.neighbor(node, port)
        if nxt is None:
            raise RoutingError(
                f"routing fell off the {topology.kind} at {node} toward {dest}"
            )
        node = nxt
        if len(path) > 4 * len(topology.nodes()):
            raise RoutingError(f"routing loop from {src} toward {dest}")
    return path


def routing_cdg_edges(
    topology: Topology, order: str = "xy"
) -> set[tuple[tuple[NodeId, Port], tuple[NodeId, Port]]]:
    """The channel dependency graph of a topology's routing relation.

    Channels are directed links (src, out_port); an edge (c1, c2) means
    some routed path holds c1 while requesting c2 — the wormhole
    dependency that deadlocks when the graph has a cycle.  Built by
    walking the routed path of every ordered router pair.
    """
    edges: set[tuple[tuple[NodeId, Port], tuple[NodeId, Port]]] = set()
    nodes = topology.nodes()
    for src in nodes:
        for dest in nodes:
            if src == dest:
                continue
            try:
                path = unicast_path(topology, src, dest, order)
            except (RoutingError, KeyError):
                continue  # unreachable pair (partitioned alive set)
            for a, b in zip(path, path[1:]):
                edges.add((a, b))
    return edges


def routing_is_deadlock_free(topology: Topology, order: str = "xy") -> bool:
    """True iff the routing channel dependency graph is acyclic."""
    edges = routing_cdg_edges(topology, order)
    out: dict = {}
    indeg: dict = {}
    for a, b in edges:
        out.setdefault(a, []).append(b)
        indeg[b] = indeg.get(b, 0) + 1
        indeg.setdefault(a, indeg.get(a, 0))
    # Kahn's algorithm: the graph is acyclic iff every vertex drains.
    ready = [v for v, d in indeg.items() if d == 0]
    seen = 0
    while ready:
        v = ready.pop()
        seen += 1
        for w in out.get(v, ()):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    return seen == len(indeg)


def tap_destinations(
    topology: Topology, src: NodeId, dests: frozenset[NodeId]
) -> frozenset[NodeId]:
    """Destinations servable as free SRLR taps on the XY tree.

    A destination is a *tap* when the tree continues straight through its
    router in the same dimension (the pulse passes its SRLR anyway, and
    the full-swing repeated data can be latched locally).  Destinations at
    tree leaves or at turn points still need a normal ejection.
    """
    tree = multicast_tree_links(topology, src, dests)
    taps: set[NodeId] = set()
    for dest in dests:
        # The port the tree uses to *enter* dest's router.
        entering = [
            port
            for (node, port) in tree
            if topology.neighbor(node, port) == dest
        ]
        if not entering:
            continue
        in_port = entering[0]
        # Straight-through continuation: the tree leaves dest on the same
        # axis it entered (E->E, W->W, N->N, S->S).
        leaving = {port for (node, port) in tree if node == dest}
        if in_port in leaving:
            taps.add(dest)
    return frozenset(taps)


__all__ = [
    "multicast_tree_links",
    "next_port",
    "route_ports",
    "routing_cdg_edges",
    "routing_is_deadlock_free",
    "tap_destinations",
    "unicast_path",
    "unicast_path_hops",
    "xy_route",
    "yx_route",
]
