"""Routing: dimension-order (XY) unicast and XY-tree multicast.

XY routing is the standard deadlock-free choice for meshes: traverse X
fully, then Y.  The multicast tree is the natural XY generalization —
destinations are partitioned by the output port XY would choose, and a
fork replicates the flit per needed port.  Because every branch still
follows XY order, the tree is cycle-free and inherits XY's deadlock
freedom.

The module also computes *tap* opportunities: the SRLR datapath exposes
full-swing data at every intermediate repeater (Section II), so a
destination lying on a straight-through segment of the tree can be
served without a separate ejection traversal.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.noc.packet import Flit
from repro.noc.topology import MeshTopology, NodeId, Port


def xy_route(current: NodeId, dest: NodeId) -> Port:
    """The output port XY dimension-order routing takes toward ``dest``."""
    if current == dest:
        return Port.LOCAL
    cx, cy = current
    dx, dy = dest
    if dx > cx:
        return Port.EAST
    if dx < cx:
        return Port.WEST
    if dy > cy:
        return Port.NORTH
    return Port.SOUTH


def yx_route(current: NodeId, dest: NodeId) -> Port:
    """The YX dimension order: traverse Y fully, then X (O1TURN's twin)."""
    if current == dest:
        return Port.LOCAL
    cx, cy = current
    dx, dy = dest
    if dy > cy:
        return Port.NORTH
    if dy < cy:
        return Port.SOUTH
    if dx > cx:
        return Port.EAST
    return Port.WEST


def route_ports(
    topology: MeshTopology, current: NodeId, flit: Flit
) -> dict[Port, frozenset[NodeId]]:
    """Partition a flit's destinations by output port at ``current``.

    Uses the packet's dimension order ("xy" or "yx").  Returns
    {port: destination subset}; LOCAL appears when this router is itself
    a destination.  Unicast flits always map to a single entry.
    """
    if not topology.contains(current):
        raise RoutingError(f"router {current} outside the mesh")
    route = yx_route if flit.packet.routing == "yx" else xy_route
    partition: dict[Port, set[NodeId]] = {}
    for dest in flit.dests:
        if not topology.contains(dest):
            raise RoutingError(f"destination {dest} outside the mesh")
        partition.setdefault(route(current, dest), set()).add(dest)
    return {port: frozenset(dests) for port, dests in partition.items()}


def multicast_tree_links(
    topology: MeshTopology, src: NodeId, dests: frozenset[NodeId]
) -> set[tuple[NodeId, Port]]:
    """All (router, out_port) hops of the XY multicast tree, counted once.

    This is the link-traversal cost of a tree multicast; the same set of
    destinations served as independent unicasts costs the *sum* of their
    XY paths, which double-counts every shared prefix — the multicast
    energy advantage quantified in the E11 bench.
    """
    hops: set[tuple[NodeId, Port]] = set()
    for dest in dests:
        node = src
        while node != dest:
            port = xy_route(node, dest)
            hops.add((node, port))
            nxt = topology.neighbor(node, port)
            if nxt is None:
                raise RoutingError(f"XY fell off the mesh at {node} toward {dest}")
            node = nxt
    return hops


def unicast_path_hops(topology: MeshTopology, src: NodeId, dest: NodeId) -> int:
    """Hop count of the XY unicast path (equals Manhattan distance)."""
    return topology.hop_distance(src, dest)


def tap_destinations(
    topology: MeshTopology, src: NodeId, dests: frozenset[NodeId]
) -> frozenset[NodeId]:
    """Destinations servable as free SRLR taps on the XY tree.

    A destination is a *tap* when the tree continues straight through its
    router in the same dimension (the pulse passes its SRLR anyway, and
    the full-swing repeated data can be latched locally).  Destinations at
    tree leaves or at turn points still need a normal ejection.
    """
    tree = multicast_tree_links(topology, src, dests)
    taps: set[NodeId] = set()
    for dest in dests:
        # The port the tree uses to *enter* dest's router.
        entering = [
            port
            for (node, port) in tree
            if topology.neighbor(node, port) == dest
        ]
        if not entering:
            continue
        in_port = entering[0]
        # Straight-through continuation: the tree leaves dest on the same
        # axis it entered (E->E, W->W, N->N, S->S).
        leaving = {port for (node, port) in tree if node == dest}
        if in_port in leaving:
            taps.add(dest)
    return frozenset(taps)


__all__ = [
    "multicast_tree_links",
    "route_ports",
    "tap_destinations",
    "unicast_path_hops",
    "xy_route",
    "yx_route",
]
