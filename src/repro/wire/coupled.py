"""Coupled two-wire model: crosstalk on the SRLR's single-ended wires.

Single-ended low-swing signaling trades the differential schemes' common-
mode rejection for density, so coupling noise from neighbors is the
robustness question to quantify (the paper notes crosstalk vulnerability
when criticizing long equalized links, and the SRLR's short 1 mm
segments + regenerative repeaters are its answer).

This module builds the exact two-line ladder — victim and aggressor with
distributed sidewall coupling capacitance — and solves it with a
generalized eigendecomposition (the coupling makes the capacitance matrix
non-diagonal), giving:

* the noise pulse a switching aggressor injects into a quiet victim, and
* the victim's received swing when the neighbor switches with or against
  it (the dynamic Miller effect).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import eigh

from repro.errors import ConfigurationError, SimulationError
from repro.wire.ladder import DEFAULT_SECTIONS
from repro.wire.rc import WireSegment


class CoupledSolver:
    """Exact transient solver for C dv/dt = -G v + B u with SPD C.

    Generalizes :class:`repro.wire.transient.TransientSolver` to a full
    (coupled) capacitance matrix and multiple inputs via the generalized
    eigenproblem G q = lambda C q.
    """

    def __init__(self, c: np.ndarray, g: np.ndarray, b: np.ndarray) -> None:
        c = np.asarray(c, float)
        g = np.asarray(g, float)
        b = np.asarray(b, float)
        n = c.shape[0]
        if c.shape != (n, n) or g.shape != (n, n) or b.shape[0] != n:
            raise ConfigurationError("inconsistent matrix shapes")
        if not np.allclose(c, c.T) or not np.allclose(g, g.T):
            raise ConfigurationError("C and G must be symmetric")
        eigenvalues, q = eigh(g, c)  # G q = lambda C q, Q^T C Q = I
        if np.any(eigenvalues <= 0.0):
            raise SimulationError("network has a non-decaying mode")
        self.n_nodes = n
        self._lam = eigenvalues
        self._q = q
        self._ct = c
        self._g = g
        self._b = b

    @property
    def slowest_time_constant(self) -> float:
        return float(1.0 / np.min(self._lam))

    def steady_state(self, u: np.ndarray) -> np.ndarray:
        return np.linalg.solve(self._g, self._b @ np.asarray(u, float))

    def evolve(self, v0: np.ndarray, u: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Node voltages at ``times`` with the inputs held at ``u``."""
        v0 = np.asarray(v0, float)
        times = np.asarray(times, float)
        v_ss = self.steady_state(u)
        modal0 = self._q.T @ (self._ct @ (v0 - v_ss))
        decay = np.exp(-np.outer(times, self._lam))
        return v_ss[None, :] + (decay * modal0[None, :]) @ self._q.T


@dataclass
class CoupledPair:
    """Victim + aggressor wires of one geometry, exactly coupled.

    Node layout: victim nodes 0..N, aggressor nodes N+1..2N+1.  Inputs:
    u[0] drives the victim through ``r_victim``, u[1] the aggressor
    through ``r_aggressor``; both lines carry ``c_load`` at the far end.
    """

    segment: WireSegment
    r_victim: float
    r_aggressor: float
    c_load: float = 0.0
    n_sections: int = DEFAULT_SECTIONS

    def __post_init__(self) -> None:
        if self.r_victim <= 0.0 or self.r_aggressor <= 0.0:
            raise ConfigurationError("drive resistances must be positive")
        if self.n_sections < 1:
            raise ConfigurationError("n_sections must be >= 1")
        n = self.n_sections
        n_nodes = n + 1
        seg = self.segment
        r_sec = seg.resistance / n
        cg_sec = seg.c_ground_per_m * seg.length / n
        cc_sec = seg.c_coupling_per_m * seg.length / n

        total = 2 * n_nodes
        c = np.zeros((total, total))
        g = np.zeros((total, total))
        b = np.zeros((total, 2))

        def node(line: int, i: int) -> int:
            return line * n_nodes + i

        for line in range(2):
            for i in range(n_nodes):
                weight = 0.5 if i in (0, n) else 1.0
                c[node(line, i), node(line, i)] += weight * cg_sec
            c[node(line, n), node(line, n)] += self.c_load
            g_sec = 1.0 / r_sec
            for i in range(n):
                a, bb = node(line, i), node(line, i + 1)
                g[a, a] += g_sec
                g[bb, bb] += g_sec
                g[a, bb] -= g_sec
                g[bb, a] -= g_sec
        # Distributed sidewall coupling between corresponding nodes.
        for i in range(n_nodes):
            weight = 0.5 if i in (0, n) else 1.0
            va, ag = node(0, i), node(1, i)
            c[va, va] += weight * cc_sec
            c[ag, ag] += weight * cc_sec
            c[va, ag] -= weight * cc_sec
            c[ag, va] -= weight * cc_sec
        # Drivers.
        g[node(0, 0), node(0, 0)] += 1.0 / self.r_victim
        b[node(0, 0), 0] = 1.0 / self.r_victim
        g[node(1, 0), node(1, 0)] += 1.0 / self.r_aggressor
        b[node(1, 0), 1] = 1.0 / self.r_aggressor

        self.solver = CoupledSolver(c, g, b)
        self._victim_far = node(0, n)
        self._aggressor_far = node(1, n)

    def _times(self, width: float) -> np.ndarray:
        tau = self.solver.slowest_time_constant
        span = width + 6.0 * tau
        return np.linspace(0.0, span, 1200)

    def _pulse_both(
        self, width: float, v_amp: float, a_amp: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Both lines driven with rectangular pulses of ``width``."""
        if width <= 0.0:
            raise ConfigurationError(f"width must be positive, got {width}")
        times = self._times(width)
        v0 = np.zeros(self.solver.n_nodes)
        high = self.solver.evolve(v0, np.array([v_amp, a_amp]), times)
        # Superpose the falling edges (linearity): subtract the shifted
        # step responses.
        shifted = np.clip(times - width, 0.0, None)
        fall = self.solver.evolve(v0, np.array([v_amp, a_amp]), shifted)
        fall[times < width] = 0.0
        return times, high - fall

    def victim_noise(self, width: float, aggressor_amplitude: float) -> float:
        """Peak far-end noise on a quiet (driven-low) victim, volts."""
        _, v = self._pulse_both(width, 0.0, aggressor_amplitude)
        return float(np.max(np.abs(v[:, self._victim_far])))

    def victim_far_peak(
        self, width: float, victim_amplitude: float, aggressor_amplitude: float
    ) -> float:
        """Victim far-end peak when both lines switch simultaneously.

        Pass a negative ``aggressor_amplitude`` for opposing transitions
        (worst-case dynamic Miller: the victim's received swing shrinks)
        or a positive one for in-phase switching (swing grows).
        """
        _, v = self._pulse_both(width, victim_amplitude, aggressor_amplitude)
        return float(np.max(v[:, self._victim_far]))


__all__ = ["CoupledPair", "CoupledSolver"]
