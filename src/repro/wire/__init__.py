"""On-chip interconnect physics: RC extraction, exact transients, pulses.

Replaces SPICE-level wire simulation with an exact linear-network solver
(see DESIGN.md substitution table).
"""

from repro.wire.attenuation import (
    AttenuationTable,
    PulseTransfer,
    ReceivedPulse,
    attenuation_table,
    log_quantize,
    pulse_transfer,
)
from repro.wire.coupled import CoupledPair, CoupledSolver
from repro.wire.elmore import (
    RepeaterDesign,
    elmore_delay,
    full_swing_energy_per_bit,
    optimal_repeaters,
    repeated_wire_delay,
    unit_inverter_c,
    unit_inverter_r,
)
from repro.wire.ladder import DEFAULT_SECTIONS, LadderNetwork, build_ladder
from repro.wire.rc import WireGeometry, WireSegment, reference_segment
from repro.wire.transient import TransientSolver

__all__ = [
    "AttenuationTable",
    "CoupledPair",
    "CoupledSolver",
    "DEFAULT_SECTIONS",
    "attenuation_table",
    "log_quantize",
    "LadderNetwork",
    "PulseTransfer",
    "ReceivedPulse",
    "RepeaterDesign",
    "TransientSolver",
    "WireGeometry",
    "WireSegment",
    "build_ladder",
    "elmore_delay",
    "full_swing_energy_per_bit",
    "optimal_repeaters",
    "pulse_transfer",
    "reference_segment",
    "repeated_wire_delay",
    "unit_inverter_c",
    "unit_inverter_r",
]
