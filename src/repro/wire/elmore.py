"""Elmore delay and classic full-swing repeater insertion.

These closed forms serve the *baseline*: a conventional full-swing repeated
wire, against which the SRLR's energy advantage is measured.  They follow
the standard Bakoglu treatment: a wire of total resistance R and
capacitance C, broken into k segments by repeaters of drive resistance Rd,
input capacitance Cg and output (diffusion) capacitance Cd, has delay

    T = k * [ 0.69 Rd (C/k + Cd + Cg) + (R/k) (0.38 C/k + 0.69 Cg) ]

minimized at the well-known optimal k and repeater size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.mosfet import nmos, pmos
from repro.tech.technology import Technology
from repro.wire.rc import WireSegment


@dataclass(frozen=True)
class RepeaterDesign:
    """A full-swing repeated-wire design point."""

    n_repeaters: int
    size_factor: float  # repeater width relative to a unit (1 um NMOS) inverter
    delay: float  # end-to-end delay, seconds
    repeater_cap: float  # total repeater input+output capacitance, farads


def unit_inverter_r(tech: Technology) -> float:
    """Drive resistance of a unit inverter (1 um NMOS, 2.2 um PMOS)."""
    n = nmos(tech, 1.0)
    p = pmos(tech, 2.2)
    # Average of pull-down and pull-up effective resistances.
    return 0.5 * (n.r_on() + p.r_on())


def unit_inverter_c(tech: Technology) -> float:
    """Input capacitance of the unit inverter (gate caps of both devices)."""
    return nmos(tech, 1.0).gate_cap + pmos(tech, 2.2).gate_cap


def elmore_delay(segment: WireSegment, r_drive: float, c_load: float) -> float:
    """Elmore delay of a driven, loaded uniform wire (0.69/0.38 coefficients)."""
    if r_drive < 0.0 or c_load < 0.0:
        raise ConfigurationError("r_drive and c_load must be non-negative")
    r, c = segment.resistance, segment.capacitance
    return 0.69 * r_drive * (c + c_load) + 0.38 * r * c + 0.69 * r * c_load


def repeated_wire_delay(
    segment: WireSegment,
    n_repeaters: int,
    size_factor: float,
    tech: Technology | None = None,
) -> float:
    """Delay of ``segment`` broken into ``n_repeaters`` equal stages."""
    if n_repeaters < 1:
        raise ConfigurationError(f"n_repeaters must be >= 1, got {n_repeaters}")
    if size_factor <= 0.0:
        raise ConfigurationError(f"size_factor must be positive, got {size_factor}")
    tech = tech or segment.tech
    rd = unit_inverter_r(tech) / size_factor
    cg = unit_inverter_c(tech) * size_factor
    cd = 0.6 * cg  # diffusion cap, a standard fraction of gate cap
    stage = segment.scaled_to_length(segment.length / n_repeaters)
    per_stage = (
        0.69 * rd * (stage.capacitance + cd + cg)
        + 0.38 * stage.resistance * stage.capacitance
        + 0.69 * stage.resistance * cg
    )
    return n_repeaters * per_stage


def optimal_repeaters(segment: WireSegment, tech: Technology | None = None) -> RepeaterDesign:
    """Delay-optimal repeater count and size for a full-swing wire.

    Classic closed forms:  k_opt = sqrt(0.38 R C / (0.69 Rd0 Cg0 (1 + cd)))
    and  h_opt = sqrt(Rd0 C / (R Cg0)), rounded/clamped to physical values.
    """
    tech = tech or segment.tech
    rd0 = unit_inverter_r(tech)
    cg0 = unit_inverter_c(tech)
    r, c = segment.resistance, segment.capacitance
    k_opt = math.sqrt((0.38 * r * c) / (0.69 * rd0 * cg0 * 1.6))
    h_opt = math.sqrt((rd0 * c) / (r * cg0))
    k = max(1, round(k_opt))
    h = max(1.0, h_opt)
    delay = repeated_wire_delay(segment, k, h, tech)
    cap = k * (1.6 * cg0 * h)  # gate + diffusion cap of all repeaters
    return RepeaterDesign(n_repeaters=k, size_factor=h, delay=delay, repeater_cap=cap)


def full_swing_energy_per_bit(
    segment: WireSegment,
    tech: Technology | None = None,
    activity: float = 0.5,
    design: RepeaterDesign | None = None,
) -> float:
    """Energy per bit of a conventional full-swing repeated wire.

    ``activity`` is the transition probability per bit (0.5 for random NRZ
    data).  Every transition charges or discharges the full wire plus
    repeater capacitance across Vdd, costing alpha * C_total * Vdd^2 per
    bit on average (each full cycle draws C Vdd^2 from the supply; one
    transition averages half a cycle... the standard alpha C V^2 accounting
    with alpha = transitions per bit already absorbs this).
    """
    if not 0.0 <= activity <= 1.0:
        raise ConfigurationError(f"activity must lie in [0, 1], got {activity}")
    tech = tech or segment.tech
    design = design or optimal_repeaters(segment, tech)
    c_total = segment.capacitance + design.repeater_cap
    return activity * c_total * tech.vdd**2
