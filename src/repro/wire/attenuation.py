"""Pulse propagation through an RC wire: the low-swing generation mechanism.

The SRLR transmits *pulses*: the driver launches a short (~100 ps)
rectangular pulse, and the RC-dominant 1 mm wire attenuates it, so the far
end sees a low-swing pulse (~200 mV from a ~0.5 V drive level) without any
second supply voltage (Section I/II of the paper).

:class:`PulseTransfer` characterizes one (wire, driver, load) combination:
it builds the exact pi-ladder transient solver once, then answers peak
swing / arrival time / output width queries for arbitrary input pulses by
sampling the closed-form mode sum.  Instances are cached so Monte Carlo
loops don't rebuild eigendecompositions.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ConfigurationError
from repro.tech.technology import Technology
from repro.wire.ladder import DEFAULT_SECTIONS, build_ladder
from repro.wire.rc import WireGeometry, WireSegment
from repro.wire.transient import TransientSolver


@dataclass(frozen=True)
class ReceivedPulse:
    """Shape summary of the pulse observed at the far end of a wire.

    Attributes
    ----------
    peak:
        Peak voltage, volts.
    t_peak:
        Time of the peak relative to the launch of the input pulse, seconds.
    width:
        Full width of the interval where the waveform exceeds half its
        peak, seconds.
    """

    peak: float
    t_peak: float
    width: float


class PulseTransfer:
    """Rectangular-pulse transfer function of a driven, loaded RC wire."""

    def __init__(
        self,
        segment: WireSegment,
        r_drive: float,
        c_load: float = 0.0,
        n_sections: int = DEFAULT_SECTIONS,
    ) -> None:
        self.segment = segment
        self.r_drive = r_drive
        self.c_load = c_load
        network = build_ladder(segment, r_drive, c_load, n_sections)
        self.solver = TransientSolver(network)
        self._far = network.far_node

    def _time_grid(self, width: float) -> np.ndarray:
        tau = self.solver.slowest_time_constant
        span = width + 6.0 * tau
        dt = min(width / 40.0, tau / 60.0)
        n = int(np.ceil(span / dt)) + 1
        return np.linspace(0.0, span, min(n, 6000))

    def far_end_waveform(
        self, width: float, amplitude: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """(times, far-node voltage) response to a rectangular input pulse."""
        if width <= 0.0:
            raise ConfigurationError(f"pulse width must be positive, got {width}")
        times = self._time_grid(width)
        v = self.solver.pulse_response(times, width, amplitude)[:, self._far]
        return times, v

    def received(self, width: float, amplitude: float) -> ReceivedPulse:
        """Peak / arrival / half-max width of the far-end pulse."""
        times, v = self.far_end_waveform(width, amplitude)
        i_peak = int(np.argmax(v))
        peak = float(v[i_peak])
        if peak <= 0.0:
            return ReceivedPulse(peak=0.0, t_peak=float(times[i_peak]), width=0.0)
        above = v >= 0.5 * peak
        idx = np.flatnonzero(above)
        width_out = float(times[idx[-1]] - times[idx[0]]) if len(idx) else 0.0
        return ReceivedPulse(peak=peak, t_peak=float(times[i_peak]), width=width_out)

    def peak_ratio(self, width: float) -> float:
        """Far-end peak as a fraction of the drive amplitude (attenuation)."""
        return self.received(width, 1.0).peak

    def delay_50(self, amplitude: float = 1.0) -> float:
        """50% step-response delay at the far end (classic wire delay)."""
        tau = self.solver.slowest_time_constant
        times = np.linspace(0.0, 10.0 * tau, 3000)
        v = self.solver.step_response(times, amplitude)[:, self._far]
        target = 0.5 * amplitude
        idx = np.searchsorted(v, target)
        if idx >= len(times):
            return float(times[-1])
        return float(times[idx])


class AttenuationTable:
    """Fast interpolated pulse-transfer characteristics of one wire/driver.

    Monte Carlo loops evaluate the stage map thousands of times; sampling
    the exact mode sum every time would dominate runtime.  This table
    samples the exact solver once on a log grid of input pulse widths and
    then answers queries by interpolation:

    * ``peak_ratio(w)`` — far-end peak per volt of drive;
    * ``width_out(w)`` — far-end half-max width;
    * ``t_peak(w)`` — far-end peak arrival time;
    * ``charge_in(w)`` — charge drawn from the driver per volt of drive
      during the pulse (the exact supply-energy integrand);
    * ``decay_tau`` — dominant discharge time constant through the
      *pull-down* path (pass the pull-down resistance as ``r_decay``).
    """

    N_GRID = 28

    def __init__(
        self,
        transfer: PulseTransfer,
        w_min: float = 10e-12,
        w_max: float = 500e-12,
        r_decay: float | None = None,
    ) -> None:
        if not 0.0 < w_min < w_max:
            raise ConfigurationError("need 0 < w_min < w_max")
        self.transfer = transfer
        self._widths = np.geomspace(w_min, w_max, self.N_GRID)
        peaks = np.empty(self.N_GRID)
        wouts = np.empty(self.N_GRID)
        tpeaks = np.empty(self.N_GRID)
        charges = np.empty(self.N_GRID)
        for i, w in enumerate(self._widths):
            times, v_far = transfer.far_end_waveform(float(w), 1.0)
            i_peak = int(np.argmax(v_far))
            peaks[i] = v_far[i_peak]
            tpeaks[i] = times[i_peak]
            if v_far[i_peak] > 0.0:
                above = np.flatnonzero(v_far >= 0.5 * v_far[i_peak])
                wouts[i] = times[above[-1]] - times[above[0]]
            else:
                wouts[i] = 0.0
            # Supply charge: integral of driver current during the high
            # phase, i(t) = (1 - v_node0(t)) / r_up for unit amplitude.
            v0 = transfer.solver.pulse_response(times, float(w), 1.0)[:, 0]
            high = times <= w
            i_drv = (1.0 - v0[high]) / transfer.r_drive
            charges[i] = float(np.trapezoid(i_drv, times[high]))
        self._peaks = peaks
        self._wouts = wouts
        self._tpeaks = tpeaks
        self._charges = charges
        # Plain-float copies for the scalar fast path: np.interp has ~4 us
        # of per-call overhead that dominates Monte Carlo loops.
        self._w_list = [float(w) for w in self._widths]
        self._tables_list = {
            id(peaks): [float(x) for x in peaks],
            id(wouts): [float(x) for x in wouts],
            id(tpeaks): [float(x) for x in tpeaks],
            id(charges): [float(x) for x in charges],
        }
        if r_decay is None:
            self.decay_tau = transfer.solver.slowest_time_constant
        else:
            net = build_ladder(transfer.segment, r_decay, transfer.c_load)
            self.decay_tau = TransientSolver(net).slowest_time_constant

    @property
    def w_min(self) -> float:
        return float(self._widths[0])

    @property
    def w_max(self) -> float:
        return float(self._widths[-1])

    def _interp(self, table: np.ndarray, width: float) -> float:
        ws = self._w_list
        ys = self._tables_list[id(table)]
        if width <= ws[0]:
            return ys[0]
        if width >= ws[-1]:
            return ys[-1]
        i = bisect_right(ws, width)
        w0, w1 = ws[i - 1], ws[i]
        y0, y1 = ys[i - 1], ys[i]
        return y0 + (y1 - y0) * (width - w0) / (w1 - w0)

    def peak_ratio(self, width: float) -> float:
        if width <= 0.0:
            return 0.0
        return self._interp(self._peaks, width)

    def width_out(self, width: float) -> float:
        if width <= 0.0:
            return 0.0
        return self._interp(self._wouts, width)

    def t_peak(self, width: float) -> float:
        return self._interp(self._tpeaks, max(width, self.w_min))

    def charge_in(self, width: float) -> float:
        if width <= 0.0:
            return 0.0
        return self._interp(self._charges, width)


def log_quantize(value: float, per_decade: int = 16) -> float:
    """Snap ``value`` to a logarithmic grid (``per_decade`` points/decade).

    Used to key transfer-table caches by driver resistance: Monte Carlo
    produces a continuum of resistances, but a 16-per-decade grid (+-7%
    rounding) keeps the cache small with negligible modeling error.
    """
    if value <= 0.0:
        raise ConfigurationError(f"value must be positive, got {value}")
    step = np.log10(value) * per_decade
    return float(10.0 ** (np.round(step) / per_decade))


@lru_cache(maxsize=256)
def _cached_table(
    tech: Technology,
    width: float,
    space: float,
    length: float,
    n_neighbors: int,
    r_drive: float,
    c_load: float,
    r_decay: float,
) -> AttenuationTable:
    segment = WireSegment(tech, WireGeometry(width, space), length, n_neighbors)
    transfer = PulseTransfer(segment, r_drive, c_load)
    return AttenuationTable(transfer, r_decay=r_decay)


def attenuation_table(
    segment: WireSegment,
    r_drive: float,
    c_load: float,
    r_decay: float,
    quantize: bool = True,
) -> AttenuationTable:
    """Cached :class:`AttenuationTable` with optional resistance quantization."""
    if quantize:
        r_drive = log_quantize(r_drive)
        r_decay = log_quantize(r_decay)
        c_load = log_quantize(c_load) if c_load > 0.0 else 0.0
    return _cached_table(
        segment.tech,
        segment.geometry.width,
        segment.geometry.space,
        segment.length,
        segment.n_neighbors,
        r_drive,
        c_load,
        r_decay,
    )


@lru_cache(maxsize=64)
def _cached_transfer(
    tech: Technology,
    width: float,
    space: float,
    length: float,
    n_neighbors: int,
    r_drive: float,
    c_load: float,
    n_sections: int,
) -> PulseTransfer:
    segment = WireSegment(tech, WireGeometry(width, space), length, n_neighbors)
    return PulseTransfer(segment, r_drive, c_load, n_sections)


def pulse_transfer(
    segment: WireSegment,
    r_drive: float,
    c_load: float = 0.0,
    n_sections: int = DEFAULT_SECTIONS,
) -> PulseTransfer:
    """Cached :class:`PulseTransfer` factory.

    Technology objects are frozen dataclasses, so the full physical
    configuration is hashable; repeated calls with identical parameters
    (the common case inside sweeps and Monte Carlo) reuse one
    eigendecomposition.
    """
    return _cached_transfer(
        segment.tech,
        segment.geometry.width,
        segment.geometry.space,
        segment.length,
        segment.n_neighbors,
        r_drive,
        c_load,
        n_sections,
    )
