"""Wire geometry and per-length RC extraction.

The bandwidth-density axis of Fig. 8 is swept by changing wire pitch:
narrower/denser wires carry more Gb/s per um of die width but have higher
resistance and higher sidewall coupling capacitance, which raises energy per
bit (Table I footnote).  This module provides that geometry -> (R, C)
mapping, anchored at each technology's reference geometry.

Scaling model (first order, adequate for the trends the paper argues):

* resistance per meter scales inversely with wire width;
* ground capacitance per meter is roughly geometry-independent (plate term
  grows with width while the fringe term shrinks);
* coupling capacitance per meter scales inversely with spacing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.technology import Technology


@dataclass(frozen=True)
class WireGeometry:
    """Drawn width and spacing of a signal wire, in meters."""

    width: float
    space: float

    def __post_init__(self) -> None:
        if self.width <= 0.0:
            raise ConfigurationError(f"wire width must be positive, got {self.width}")
        if self.space <= 0.0:
            raise ConfigurationError(f"wire space must be positive, got {self.space}")

    @property
    def pitch(self) -> float:
        return self.width + self.space

    @classmethod
    def reference(cls, tech: Technology) -> "WireGeometry":
        """The geometry at which the technology's R/C numbers are quoted."""
        return cls(tech.wire_ref_width, tech.wire_ref_space)

    @classmethod
    def from_pitch(cls, pitch: float, width_fraction: float = 0.5) -> "WireGeometry":
        """Build a geometry from a pitch, splitting it width/space."""
        if not 0.0 < width_fraction < 1.0:
            raise ConfigurationError(
                f"width_fraction must lie in (0, 1), got {width_fraction}"
            )
        return cls(pitch * width_fraction, pitch * (1.0 - width_fraction))


@dataclass(frozen=True)
class WireSegment:
    """A wire of a given geometry and length in a given technology.

    ``n_neighbors`` counts same-layer aggressors switching around this wire
    (2 inside a parallel bus).  Coupling capacitance counts fully toward
    switched energy (worst-case Miller factor is handled by the energy
    models, not here).
    """

    tech: Technology
    geometry: WireGeometry
    length: float
    n_neighbors: int = 2

    def __post_init__(self) -> None:
        if self.length <= 0.0:
            raise ConfigurationError(f"wire length must be positive, got {self.length}")
        if self.n_neighbors not in (0, 1, 2):
            raise ConfigurationError(
                f"n_neighbors must be 0, 1 or 2, got {self.n_neighbors}"
            )

    # --- per-meter quantities ---------------------------------------------------

    @property
    def r_per_m(self) -> float:
        """Resistance per meter, scaled from the reference width."""
        return self.tech.wire_r_per_m * (self.tech.wire_ref_width / self.geometry.width)

    @property
    def c_ground_per_m(self) -> float:
        return self.tech.wire_c_ground_per_m

    @property
    def c_coupling_per_m(self) -> float:
        """Per-neighbor sidewall coupling, scaled from the reference spacing."""
        return self.tech.wire_c_coupling_per_m * (
            self.tech.wire_ref_space / self.geometry.space
        )

    @property
    def c_total_per_m(self) -> float:
        return self.c_ground_per_m + self.n_neighbors * self.c_coupling_per_m

    # --- totals -------------------------------------------------------------------

    @property
    def resistance(self) -> float:
        return self.r_per_m * self.length

    @property
    def capacitance(self) -> float:
        return self.c_total_per_m * self.length

    @property
    def rc_time_constant(self) -> float:
        """Distributed RC time constant (R*C/2 for a uniform line)."""
        return 0.5 * self.resistance * self.capacitance

    def scaled_to_length(self, length: float) -> "WireSegment":
        return WireSegment(self.tech, self.geometry, length, self.n_neighbors)


def reference_segment(tech: Technology, length: float, n_neighbors: int = 2) -> WireSegment:
    """A segment at the technology's reference geometry (the paper's wires)."""
    return WireSegment(tech, WireGeometry.reference(tech), length, n_neighbors)
