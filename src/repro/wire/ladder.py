"""Pi-ladder discretization of a distributed RC wire.

A uniform RC wire driven through a Thevenin source resistance and loaded by
a lumped receiver capacitance is discretized into N pi sections.  The result
is a linear state space

    C dv/dt = -G v + b * u(t)

with diagonal capacitance matrix C, symmetric conductance Laplacian G and
source-coupling vector b, which :mod:`repro.wire.transient` solves exactly.
Twenty sections approximate the distributed line to well under 1% in delay
and peak attenuation, which is far inside the accuracy the behavioral SRLR
model needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.wire.rc import WireSegment

DEFAULT_SECTIONS = 20


@dataclass(frozen=True)
class LadderNetwork:
    """State-space matrices of a driven, loaded RC ladder.

    Attributes
    ----------
    c:
        Node capacitances, shape (n,).
    g:
        Conductance Laplacian including the driver conductance at node 0,
        shape (n, n); symmetric positive definite.
    b:
        Source coupling (conductance from the ideal source to each node),
        shape (n,).
    """

    c: np.ndarray
    g: np.ndarray
    b: np.ndarray

    @property
    def n_nodes(self) -> int:
        return len(self.c)

    @property
    def far_node(self) -> int:
        """Index of the receiver-end node."""
        return self.n_nodes - 1


def build_ladder(
    segment: WireSegment,
    r_drive: float,
    c_load: float = 0.0,
    n_sections: int = DEFAULT_SECTIONS,
) -> LadderNetwork:
    """Discretize ``segment`` into an ``n_sections`` pi ladder.

    Parameters
    ----------
    segment:
        The wire being modeled.
    r_drive:
        Thevenin resistance of the driver, ohms.  Must be positive: an
        ideal voltage source directly on a capacitive node would make the
        state matrix singular.
    c_load:
        Lumped receiver capacitance at the far end (gate cap of the next
        stage's input device), farads.
    """
    if r_drive <= 0.0:
        raise ConfigurationError(f"r_drive must be positive, got {r_drive}")
    if c_load < 0.0:
        raise ConfigurationError(f"c_load must be non-negative, got {c_load}")
    if n_sections < 1:
        raise ConfigurationError(f"n_sections must be >= 1, got {n_sections}")

    r_section = segment.resistance / n_sections
    c_section = segment.capacitance / n_sections
    n_nodes = n_sections + 1

    # Pi sections: half the section capacitance at each section boundary.
    c = np.full(n_nodes, c_section)
    c[0] = 0.5 * c_section
    c[-1] = 0.5 * c_section + c_load

    g = np.zeros((n_nodes, n_nodes))
    g_section = 1.0 / r_section
    for i in range(n_sections):
        g[i, i] += g_section
        g[i + 1, i + 1] += g_section
        g[i, i + 1] -= g_section
        g[i + 1, i] -= g_section

    b = np.zeros(n_nodes)
    g_drive = 1.0 / r_drive
    g[0, 0] += g_drive
    b[0] = g_drive

    return LadderNetwork(c=c, g=g, b=b)
