"""Exact transient solution of linear RC networks.

The network C dv/dt = -G v + b u(t) with diagonal C > 0 and symmetric
positive-definite G is solved by symmetrizing with W = diag(sqrt(C)):

    y = W v,   dy/dt = A y + W^{-1} b u,   A = -W^{-1} G W^{-1}

A is symmetric negative definite, so an eigendecomposition A = Q L Q^T with
all eigenvalues real and negative gives the exact response to any
piecewise-constant input as a finite sum of decaying exponentials:

    v(t) = v_ss + W^{-1} Q e^{L t} Q^T W (v0 - v_ss)

This replaces SPICE transient analysis for the (linear) wire portion of the
paper's circuits; it is exact, unconditionally stable, and fast enough to
sit inside Monte Carlo loops once the decomposition is cached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.wire.ladder import LadderNetwork


@dataclass(frozen=True)
class _Modes:
    """Cached eigendecomposition of the symmetrized network."""

    eigenvalues: np.ndarray  # (n,), all < 0
    modes_fwd: np.ndarray  # W^{-1} Q, maps modal -> node voltages
    modes_inv: np.ndarray  # Q^T W, maps node voltages -> modal
    v_unit_ss: np.ndarray  # steady-state node voltages for u = 1


class TransientSolver:
    """Exact linear transient solver for one :class:`LadderNetwork`.

    The decomposition is computed once at construction; every subsequent
    response evaluation is a small dense matrix-vector product.
    """

    def __init__(self, network: LadderNetwork) -> None:
        self.network = network
        self._modes = self._decompose(network)

    @staticmethod
    def _decompose(network: LadderNetwork) -> _Modes:
        c = network.c
        if np.any(c <= 0.0):
            raise ConfigurationError("all node capacitances must be positive")
        w_inv = 1.0 / np.sqrt(c)
        a_sym = -(w_inv[:, None] * network.g * w_inv[None, :])
        eigenvalues, q = np.linalg.eigh(a_sym)
        if np.any(eigenvalues >= 0.0):
            # G must be strictly positive definite (driver conductance pins
            # the DC point); a zero eigenvalue means a floating network.
            raise SimulationError(
                "network has a non-decaying mode; is the driver connected?"
            )
        v_unit_ss = np.linalg.solve(network.g, network.b)
        modes_fwd = w_inv[:, None] * q
        modes_inv = q.T * np.sqrt(c)[None, :]
        return _Modes(eigenvalues, modes_fwd, modes_inv, v_unit_ss)

    @property
    def slowest_time_constant(self) -> float:
        """1/|lambda_min|: the dominant settling time constant, seconds."""
        return float(-1.0 / np.max(self._modes.eigenvalues))

    def steady_state(self, u: float) -> np.ndarray:
        """Node voltages after the input has been held at ``u`` forever."""
        return self._modes.v_unit_ss * u

    def evolve(self, v0: np.ndarray, u: float, times: np.ndarray) -> np.ndarray:
        """Node voltages at each time in ``times`` with input held at ``u``.

        Returns an array of shape (len(times), n_nodes).  ``times`` are
        measured from the moment the input steps to ``u`` with the network
        at state ``v0``.
        """
        v0 = np.asarray(v0, dtype=float)
        if v0.shape != (self.network.n_nodes,):
            raise ConfigurationError(
                f"v0 must have shape ({self.network.n_nodes},), got {v0.shape}"
            )
        times = np.asarray(times, dtype=float)
        if np.any(times < 0.0):
            raise ConfigurationError("times must be non-negative")
        m = self._modes
        v_ss = m.v_unit_ss * u
        modal0 = m.modes_inv @ (v0 - v_ss)
        decay = np.exp(np.outer(times, m.eigenvalues))  # (t, n)
        return v_ss[None, :] + decay * modal0[None, :] @ m.modes_fwd.T

    def step_response(self, times: np.ndarray, amplitude: float = 1.0) -> np.ndarray:
        """Response from rest to a step of ``amplitude`` at t = 0."""
        v0 = np.zeros(self.network.n_nodes)
        return self.evolve(v0, amplitude, times)

    def pulse_response(
        self, times: np.ndarray, width: float, amplitude: float = 1.0
    ) -> np.ndarray:
        """Response from rest to a rectangular pulse of ``width`` seconds.

        By linearity this is step(t) - step(t - width).
        """
        if width <= 0.0:
            raise ConfigurationError(f"pulse width must be positive, got {width}")
        times = np.asarray(times, dtype=float)
        rising = self.step_response(times, amplitude)
        shifted = np.clip(times - width, 0.0, None)
        falling = self.step_response(shifted, amplitude)
        falling[times < width] = 0.0
        return rising - falling

    def simulate_piecewise(
        self,
        breakpoints: list[tuple[float, float]],
        t_end: float,
        n_samples: int = 400,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Simulate a piecewise-constant input waveform.

        ``breakpoints`` is a list of (start_time, level) pairs with strictly
        increasing start times; the first start time must be 0.  Returns
        (times, voltages) where voltages has shape (n_samples, n_nodes) on a
        uniform grid over [0, t_end].
        """
        if not breakpoints:
            raise ConfigurationError("breakpoints must not be empty")
        starts = [t for t, _ in breakpoints]
        if starts[0] != 0.0:
            raise ConfigurationError("first breakpoint must start at t = 0")
        if any(b >= a for a, b in zip(starts[1:], starts)):
            raise ConfigurationError("breakpoint times must be strictly increasing")
        if t_end <= starts[-1]:
            raise ConfigurationError("t_end must exceed the last breakpoint time")

        times = np.linspace(0.0, t_end, n_samples)
        out = np.zeros((n_samples, self.network.n_nodes))
        v = np.zeros(self.network.n_nodes)
        bounds = starts[1:] + [t_end]
        for (t0, level), t1 in zip(breakpoints, bounds):
            mask = (times >= t0) & (times <= t1)
            if np.any(mask):
                out[mask] = self.evolve(v, level, times[mask] - t0)
            v = self.evolve(v, level, np.array([t1 - t0]))[0]
        return times, out
