"""Unit constants and helpers.

All internal quantities are SI (seconds, volts, ohms, farads, joules, watts,
meters, bits/second).  These constants exist so call sites can say
``100 * PS`` or ``1.55 * KOHM_PER_MM`` instead of raw exponents, and so
reported values can be converted back into the units the paper uses
(fJ/bit/mm, Gb/s/um, ...).
"""

from __future__ import annotations

# --- time ---
S = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9
PS = 1e-12

# --- length ---
M = 1.0
MM = 1e-3
UM = 1e-6
NM = 1e-9
CM = 1e-2

# --- capacitance ---
F = 1.0
PF = 1e-12
FF = 1e-15

# --- resistance ---
OHM = 1.0
KOHM = 1e3

# --- energy / power ---
J = 1.0
PJ = 1e-12
FJ = 1e-15
W = 1.0
MW = 1e-3
UW = 1e-6

# --- voltage / current ---
V = 1.0
MV = 1e-3
A = 1.0
MA = 1e-3
UA = 1e-6

# --- data rate ---
BPS = 1.0
GBPS = 1e9
MBPS = 1e6

# Thermal voltage at 300 K (kT/q), used by subthreshold conduction models.
VT_THERMAL = 0.02585


def fj_per_bit_per_mm(energy_j_per_bit: float, length_m: float) -> float:
    """Convert a per-bit link energy in joules to the paper's fJ/bit/mm unit.

    ``energy_j_per_bit`` is the energy for one bit traversing ``length_m``
    of wire.
    """
    if length_m <= 0.0:
        raise ValueError(f"length must be positive, got {length_m}")
    return energy_j_per_bit / FJ / (length_m / MM)


def fj_per_bit_per_cm(energy_j_per_bit: float, length_m: float) -> float:
    """Convert a per-bit link energy in joules to fJ/bit/cm (Table I unit)."""
    return 10.0 * fj_per_bit_per_mm(energy_j_per_bit, length_m)


def gbps_per_um(data_rate_bps: float, pitch_m: float) -> float:
    """Bandwidth density in Gb/s/um: per-wire data rate over the wire pitch.

    The paper normalizes bandwidth by wire density given by wire width and
    space (footnote 1), i.e. one wire's data rate divided by its pitch.
    """
    if pitch_m <= 0.0:
        raise ValueError(f"pitch must be positive, got {pitch_m}")
    return (data_rate_bps / GBPS) / (pitch_m / UM)
