"""Transistor sizing methodology (Section II).

The paper states the SRLR transistors are "optimally-sized to directly
drive the 1 mm wire" and that "the size ratio of M1/M2 should be designed
to allow enough SRLR input sensitivity at a given low-swing voltage
level".  This module makes those procedures executable:

* :func:`sensitivity_vs_m1_m2_ratio` — the sensitivity floor as a function
  of the M1/M2 current ratio (the paper's sizing constraint);
* :func:`sweep_segment_length` — why ~1 mm per repeater: shorter wastes
  repeater energy, longer loses swing/attenuation margin (and no longer
  matches the router-to-router distance of a mesh);
* :func:`sweep_swing_energy` — the energy/robustness trade along the swing
  axis (the design-selection view of Fig. 6);
* :func:`optimize_driver` — driver width search for minimum energy at a
  reliability constraint.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.circuit.link import SRLRLink
from repro.circuit.prbs import PrbsGenerator, worst_case_patterns
from repro.circuit.srlr import SRLRDesignParams, SRLRStage, robust_design
from repro.tech.technology import Technology, tech_45nm_soi
from repro.tech.variation import nominal_sample
from repro.units import MM


@dataclass(frozen=True)
class SensitivityPoint:
    """Sensitivity floor of the SRLR input at one M1/M2 sizing."""

    m1_width: float
    m2_width: float
    current_ratio: float  # M1 drive at nominal swing over keeper current
    min_swing: float  # smallest sensable swing within the nominal dwell


def sensitivity_vs_m1_m2_ratio(
    m1_widths: list[float],
    design: SRLRDesignParams | None = None,
    dwell: float = 180e-12,
) -> list[SensitivityPoint]:
    """Sweep M1 width at fixed keeper: sensitivity floor vs size ratio.

    Larger M1 (bigger M1/M2 current ratio) senses smaller swings within
    the same dwell — the paper's Section II sizing statement made
    quantitative.
    """
    design = design or robust_design()
    points: list[SensitivityPoint] = []
    for width in m1_widths:
        if width <= 0.0:
            raise ConfigurationError(f"m1_width must be positive, got {width}")
        d = dataclasses.replace(design, m1_width=width)
        stage = SRLRStage(d, 0, nominal_sample(d.tech))
        floor = stage.sensitivity_swing(dwell)
        # Size ratio expressed as the current ratio at the design's nominal
        # operating swing: the quantity the paper's Section II constraint
        # actually bounds.
        from repro.circuit.srlr import DEFAULT_NOMINAL_SWING

        i_m1 = stage.net_discharge_current(DEFAULT_NOMINAL_SWING) + stage.keeper_current
        ratio = i_m1 / stage.keeper_current if stage.keeper_current > 0 else float("inf")
        points.append(
            SensitivityPoint(
                m1_width=width,
                m2_width=d.m2_width,
                current_ratio=ratio,
                min_swing=floor,
            )
        )
    return points


@dataclass(frozen=True)
class LengthPoint:
    """Link behavior at one repeater-insertion length."""

    segment_length: float
    ok: bool
    swing_at_receiver: float
    energy_per_bit_per_mm: float  # fJ/bit/mm at 50% activity


def sweep_segment_length(
    lengths: list[float],
    tech: Technology | None = None,
    total_length: float = 10 * MM,
    bit_period: float = 1.0 / 4.1e9,
) -> list[LengthPoint]:
    """Repeater-insertion-length sweep: the case for ~1 mm segments.

    Each point rebuilds a link whose N stages cover ``total_length``.
    Short segments burn repeater overhead energy; long segments attenuate
    the pulse below the sensitivity floor (not ``ok``).  The sweet spot
    sits near the mesh's 1 mm router-to-router distance — which is the
    paper's core packaging argument (Section II).
    """
    tech = tech or tech_45nm_soi()
    points: list[LengthPoint] = []
    pattern = PrbsGenerator(7).bits(96) + worst_case_patterns()
    for length in lengths:
        if length <= 0.0:
            raise ConfigurationError(f"length must be positive, got {length}")
        n_stages = max(1, round(total_length / length))
        try:
            design = robust_design(
                tech, n_stages=n_stages, segment_length=length
            )
        except ConfigurationError:
            # The swing solver could not reach the target at this length:
            # the wire attenuates too heavily.  Report as a failing point.
            points.append(
                LengthPoint(
                    segment_length=length,
                    ok=False,
                    swing_at_receiver=0.0,
                    energy_per_bit_per_mm=float("inf"),
                )
            )
            continue
        link = SRLRLink(design)
        records = link.propagate_pulse()
        ok = (
            len(records) == n_stages
            and all(r.fired for r in records)
            and link.transmit(pattern, bit_period).ok
        )
        swing = records[0].in_swing if records else 0.0
        energy = link.energy_per_pulse()["total"]
        e_norm = 0.5 * energy / 1e-15 / (n_stages * length / MM)
        points.append(
            LengthPoint(
                segment_length=length,
                ok=ok,
                swing_at_receiver=swing,
                energy_per_bit_per_mm=e_norm,
            )
        )
    return points


@dataclass(frozen=True)
class SwingEnergyPoint:
    """Energy and TT margin at one nominal swing (design-selection view)."""

    swing: float
    energy_per_bit_per_mm: float
    margin: float  # nominal swing minus the stage-0 sensitivity floor


def sweep_swing_energy(
    swings: list[float], tech: Technology | None = None
) -> list[SwingEnergyPoint]:
    """Energy vs swing with the sensing margin alongside.

    The selected swing is the knee: low enough to save energy, high enough
    that the margin covers variation plus noise (quantified properly by
    the Monte Carlo of Fig. 6).
    """
    tech = tech or tech_45nm_soi()
    points: list[SwingEnergyPoint] = []
    for swing in swings:
        design = robust_design(tech, nominal_swing=swing)
        link = SRLRLink(design)
        stage = SRLRStage(design, 0, nominal_sample(tech))
        floor = stage.sensitivity_swing(180e-12)
        energy = link.energy_per_pulse()["total"]
        e_norm = 0.5 * energy / 1e-15 / (design.n_stages * design.segment_length / MM)
        points.append(
            SwingEnergyPoint(
                swing=swing, energy_per_bit_per_mm=e_norm, margin=swing - floor
            )
        )
    return points


@dataclass(frozen=True)
class DriverChoice:
    """Outcome of the driver sizing search."""

    width_up: float
    width_down: float
    energy_per_bit_per_mm: float
    max_data_rate: float


def optimize_driver(
    scale_factors: list[float],
    tech: Technology | None = None,
    min_rate: float = 4.1e9,
) -> DriverChoice:
    """Scale the NMOS driver for minimum energy subject to a rate floor.

    Bigger drivers waste gate energy every pulse; smaller drivers attenuate
    (more launch amplitude needed) and slow the wire.  Returns the lowest
    energy point that still achieves ``min_rate`` error-free at TT.
    """
    from repro.circuit.driver import NMOSDriver

    tech = tech or tech_45nm_soi()
    if not scale_factors:
        raise ConfigurationError("scale_factors must not be empty")
    pattern = PrbsGenerator(7).bits(96) + worst_case_patterns()
    best: DriverChoice | None = None
    base = NMOSDriver()
    for factor in scale_factors:
        if factor <= 0.0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        driver = NMOSDriver(
            width_up=base.width_up * factor, width_down=base.width_down * factor
        )
        try:
            design = robust_design(tech, driver=driver)
        except ConfigurationError:
            continue
        link = SRLRLink(design)
        rate = link.max_data_rate(pattern)
        if rate < min_rate:
            continue
        energy = link.energy_per_pulse()["total"]
        e_norm = 0.5 * energy / 1e-15 / (design.n_stages * design.segment_length / MM)
        choice = DriverChoice(
            width_up=driver.width_up,
            width_down=driver.width_down,
            energy_per_bit_per_mm=e_norm,
            max_data_rate=rate,
        )
        if best is None or choice.energy_per_bit_per_mm < best.energy_per_bit_per_mm:
            best = choice
    if best is None:
        raise ConfigurationError(
            f"no driver scale in {scale_factors} meets {min_rate/1e9:.1f} Gb/s"
        )
    return best


__all__ = [
    "DriverChoice",
    "LengthPoint",
    "SensitivityPoint",
    "SwingEnergyPoint",
    "optimize_driver",
    "sensitivity_vs_m1_m2_ratio",
    "sweep_segment_length",
    "sweep_swing_energy",
]
