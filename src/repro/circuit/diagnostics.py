"""Link diagnostics: fault localization through the repeater taps.

A practical payoff of the SRLR's full-swing intermediate taps (Section
II) beyond multicast: *observability*.  Because every repeater's output
is a clean digital stream, a failing 10 mm link can be diagnosed to the
exact stage by comparing tap bit streams against the transmitted data —
the methodology an on-chip BIST would use on this datapath.

Provided here:

* :func:`diagnose_link` — transmit a stress pattern, compare every tap,
  name the first diverging stage and classify its failure mode;
* :func:`stage_margins` — per-stage sensing margin (operating swing over
  the stage's sensitivity floor), the analog health number behind the
  digital verdict;
* :func:`margin_profile` — margins under a variation sample, locating the
  weakest repeater of a die.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.circuit.link import SRLRLink
from repro.circuit.srlr import StageFailure


@dataclass(frozen=True)
class StageDiagnosis:
    """Health of one repeater under the diagnostic pattern."""

    stage_index: int
    tap_errors: int
    margin: float  # received swing minus the stage's sensitivity floor
    failure: StageFailure


@dataclass(frozen=True)
class LinkDiagnosis:
    """Outcome of a full link diagnostic run."""

    ok: bool
    failing_stage: int | None  # first stage whose tap diverges
    stages: tuple[StageDiagnosis, ...]

    @property
    def weakest_stage(self) -> int:
        """Stage with the smallest sensing margin (may still be passing)."""
        return min(self.stages, key=lambda s: s.margin).stage_index


def stage_margins(link: SRLRLink, dwell: float = 180e-12) -> list[float]:
    """Per-stage margin: incoming swing minus the sensitivity floor.

    Walks the single-pulse propagation so each stage is judged against
    the swing it actually receives on this die.
    """
    records = link.propagate_pulse()
    margins: list[float] = []
    for stage in link.stages:
        if stage.stage_index < len(records):
            swing = records[stage.stage_index].in_swing
        else:
            swing = 0.0  # the pulse never arrived
        floor = stage.sensitivity_swing(dwell)
        margins.append(swing - floor)
    return margins


def _classify(link: SRLRLink, stage_index: int) -> StageFailure:
    """Failure mode of the named stage.

    Single-pulse propagation separates static sensing faults from
    dynamic ones: a stage that repeats an isolated pulse correctly but
    still corrupts the bit-level stream is failing at speed (reset dead
    time or residual ISI) and is classified ``RATE_OR_ISI``.
    """
    records = link.propagate_pulse()
    if stage_index < len(records):
        record = records[stage_index]
        if record.fired:
            return StageFailure.RATE_OR_ISI
        return record.failure
    # The pulse died upstream; the stage itself never saw an input.
    return StageFailure.TOO_WEAK


def diagnose_link(
    link: SRLRLink,
    pattern: list[int] | None = None,
    bit_period: float = 1.0 / 4.1e9,
) -> LinkDiagnosis:
    """Run the diagnostic pattern and localize the first failing repeater.

    The sent bits are compared against every tap's observed bits: the
    first tap that diverges names the faulty stage (everything upstream
    demonstrably carried the data).  Margins are attached so a passing
    link still reports its weakest repeater.
    """
    if bit_period <= 0.0:
        raise ConfigurationError(f"bit_period must be positive, got {bit_period}")
    if pattern is None:
        from repro.mc.engine import default_stress_pattern

        pattern = default_stress_pattern()
    outcome = link.transmit(pattern, bit_period)
    margins = stage_margins(link)

    failing: int | None = None
    stages: list[StageDiagnosis] = []
    for idx, tap in enumerate(outcome.tap_bits):
        errors = sum(1 for a, b in zip(pattern, tap) if a != b)
        if errors and failing is None:
            failing = idx
        stages.append(
            StageDiagnosis(
                stage_index=idx,
                tap_errors=errors,
                margin=margins[idx],
                failure=_classify(link, idx) if errors else StageFailure.NONE,
            )
        )
    return LinkDiagnosis(
        ok=outcome.ok and failing is None,
        failing_stage=failing,
        stages=tuple(stages),
    )


def margin_profile(link: SRLRLink) -> list[tuple[int, float]]:
    """(stage, margin) pairs sorted weakest-first — the repair shortlist."""
    margins = stage_margins(link)
    return sorted(enumerate(margins), key=lambda kv: kv[1])


__all__ = [
    "LinkDiagnosis",
    "StageDiagnosis",
    "diagnose_link",
    "margin_profile",
    "stage_margins",
]
