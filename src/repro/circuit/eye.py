"""Eye analysis of the SRLR's received signal.

The classic link-characterization view behind the paper's "up to 4.1 Gb/s
with BER < 1e-9": at the input of a repeater, the received levels for 1s
(attenuated pulses plus constructive residual) and for 0s (decaying
residual baseline) must stay separated by more than the stage's
sensitivity floor plus noise.  The *voltage eye* here is

    height = min(level | sent 1) - max(level | sent 0)

measured over PRBS traffic at a chosen stage, and the margin to the
sensing floor converts directly into a Q-factor/BER.  Sweeping data rate
shows the eye collapsing at the link's maximum speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, SimulationError
from repro.circuit.link import SRLRLink
from repro.circuit.prbs import PrbsGenerator, worst_case_patterns


@dataclass(frozen=True)
class EyeReport:
    """Voltage-domain eye at one stage and data rate."""

    data_rate: float
    stage_index: int
    one_min: float  # weakest received '1' level, volts
    zero_max: float  # strongest residual on a '0', volts
    sensitivity_floor: float  # stage's minimum sensable swing at this UI
    timing_margin: float  # UI minus (trip + Wx + recovery) at the worst 1
    n_bits: int

    @property
    def height(self) -> float:
        """Separation between the worst 1 and the worst 0 level."""
        return self.one_min - self.zero_max

    @property
    def margin(self) -> float:
        """Worst-case distance of the levels from the decision floor.

        The stage 'samples' by whether the level trips X within the UI:
        1s must sit above the floor, 0s below it.
        """
        return min(self.one_min - self.sensitivity_floor,
                   self.sensitivity_floor - self.zero_max)

    @property
    def open(self) -> bool:
        """Open in *both* dimensions: voltage separation and reset timing.

        The SRLR's eye closes in time before it closes in voltage — the
        self-reset dead time (trip + Wx + recovery) must fit in the unit
        interval, which is exactly what caps the measured data rate.
        """
        return self.margin > 0.0 and self.timing_margin > 0.0

    def ber_estimate(self, noise_sigma: float = 0.004) -> float:
        """Gaussian-noise BER implied by the eye margin."""
        # Imported lazily: repro.mc imports repro.circuit, so a module-
        # level import here would be circular.
        from repro.mc.ber import q_factor_ber

        if not self.open:
            return 0.5
        return q_factor_ber(self.margin, noise_sigma)


def eye_at_rate(
    link: SRLRLink,
    data_rate: float,
    stage_index: int | None = None,
    n_bits: int = 1024,
    prbs_order: int = 15,
    seed: int = 9,
) -> EyeReport:
    """Measure the voltage eye at ``stage_index`` (default: last stage)."""
    if data_rate <= 0.0:
        raise ConfigurationError(f"data_rate must be positive, got {data_rate}")
    if n_bits < 8:
        raise ConfigurationError(f"n_bits must be >= 8, got {n_bits}")
    stage_index = len(link.stages) - 1 if stage_index is None else stage_index
    bit_period = 1.0 / data_rate
    bits = PrbsGenerator(prbs_order, seed=seed).bits(n_bits) + worst_case_patterns()
    outcome = link.transmit(bits, bit_period, probe_stage=stage_index)
    assert outcome.probe is not None
    # Align the probe with what the probed stage was *offered*: the tap
    # bits of the previous stage (or the sent bits for stage 0).
    offered = bits if stage_index == 0 else outcome.tap_bits[stage_index - 1]
    ones = [s for (s, _, _), b in zip(outcome.probe, offered) if b == 1]
    zeros = [s for (s, _, _), b in zip(outcome.probe, offered) if b == 0]
    if not ones or not zeros:
        raise SimulationError("pattern did not exercise both symbols at the probe")
    stage = link.stages[stage_index]
    floor = stage.sensitivity_swing(min(180e-12, bit_period))
    one_min = min(ones)
    timing_margin = bit_period - (
        stage.trip_time(one_min) + stage.wx + link.design.reset_recovery
    )
    return EyeReport(
        data_rate=data_rate,
        stage_index=stage_index,
        one_min=one_min,
        zero_max=max(zeros),
        sensitivity_floor=floor,
        timing_margin=timing_margin,
        n_bits=len(bits),
    )


def eye_vs_rate(
    link: SRLRLink, rates: list[float], stage_index: int | None = None, n_bits: int = 512
) -> list[EyeReport]:
    """Eye collapse curve: the eye margin shrinking toward the max rate."""
    if not rates:
        raise ConfigurationError("rates must not be empty")
    return [eye_at_rate(link, r, stage_index, n_bits) for r in rates]


__all__ = ["EyeReport", "eye_at_rate", "eye_vs_rate"]
