"""Repeaterless and FFE-equalized long links: the [25]-[27] design style.

The prior works of Table I drive 5-10 mm wires directly — no repeaters —
and recover bandwidth with equalization (capacitive pre-emphasis [25],
FFE transceivers [26], adaptive pre-emphasis [27]).  This module builds
that alternative on our exact wire solver so the Fig. 8 comparison rests
on *simulated* physics on both sides, not only on published anchors:

* the channel is linear, so a full NRZ eye follows exactly from the
  single-bit pulse response by superposition (textbook ISI analysis:
  worst-case eye = main cursor minus the summed magnitudes of all other
  cursors);
* a feed-forward equalizer (FFE) is a tap vector applied to the drive
  levels — again linear, so the equalized pulse response is the tap-
  weighted sum of shifted responses.

The headline physics this reproduces: an unequalized 10 mm wire's eye
collapses below 1 Gb/s (tau ~ 3 ns), FFE buys several Gb/s at the cost of
drive energy, and the SRLR's repeat-per-mm approach sidesteps the whole
problem — the paper's Section I argument, now measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.tech.technology import Technology
from repro.units import FF, MM, fj_per_bit_per_cm
from repro.wire.ladder import build_ladder
from repro.wire.rc import WireGeometry, WireSegment
from repro.wire.transient import TransientSolver


@dataclass
class RepeaterlessLink:
    """A directly driven (optionally FFE-equalized) long on-chip wire.

    Attributes
    ----------
    tech:
        Process technology (wire parameters).
    length:
        End-to-end wire length (the prior works drive 5-10 mm).
    r_drive:
        Driver Thevenin resistance; long-wire drivers are big (low ohms),
        which is exactly their area problem (the 1760 um^2 of [26]).
    drive_amplitude:
        Unequalized drive level, volts.
    taps:
        FFE tap vector applied to the NRZ levels; ``(1.0,)`` means no
        equalization, ``(1.3, -0.3)`` is a classic 2-tap pre-emphasis.
        Tap magnitudes > 1 boost transition energy accordingly.
    c_load:
        Receiver input capacitance.
    """

    tech: Technology
    length: float = 10 * MM
    r_drive: float = 80.0
    drive_amplitude: float = 0.4
    taps: tuple[float, ...] = (1.0,)
    c_load: float = 10 * FF
    n_sections: int = 40

    solver: TransientSolver = field(init=False)

    def __post_init__(self) -> None:
        if self.length <= 0.0:
            raise ConfigurationError(f"length must be positive, got {self.length}")
        if not self.taps:
            raise ConfigurationError("taps must not be empty")
        if self.taps[0] <= 0.0:
            raise ConfigurationError("the main FFE tap must be positive")
        if self.drive_amplitude <= 0.0:
            raise ConfigurationError("drive_amplitude must be positive")
        segment = WireSegment(
            self.tech, WireGeometry.reference(self.tech), self.length
        )
        self.segment = segment
        self.solver = TransientSolver(
            build_ladder(segment, self.r_drive, self.c_load, self.n_sections)
        )

    # --- linear ISI analysis ------------------------------------------------------------

    def _cursors(self, bit_period: float, n_post: int = None) -> np.ndarray:
        """Far-end samples of the single-bit (equalized) pulse response.

        Returns the pulse response sampled at the decision instants
        t_s + j*T for j = 0..n_post, where t_s (the sampling phase) is
        chosen at the main cursor's peak.
        """
        if bit_period <= 0.0:
            raise ConfigurationError("bit_period must be positive")
        tau = self.solver.slowest_time_constant
        horizon = max(int(np.ceil(8.0 * tau / bit_period)) + len(self.taps), 4)
        if n_post is not None:
            horizon = max(horizon, n_post + 1)
        # Unequalized single-UI pulse response on a fine grid.
        t_end = (horizon + 1) * bit_period
        times = np.linspace(0.0, t_end, 2400)
        far = self.solver.pulse_response(times, bit_period, 1.0)[:, -1]
        # FFE: weighted sum of UI-shifted responses.
        eq = np.zeros_like(far)
        for i, tap in enumerate(self.taps):
            shift = i * bit_period
            eq += tap * np.interp(times - shift, times, far, left=0.0)
        # Sampling phase: at the equalized main-cursor peak (within the
        # first couple of UIs).
        search = times <= (1 + len(self.taps)) * bit_period
        t_sample = times[search][int(np.argmax(eq[search]))]
        sample_times = t_sample + bit_period * np.arange(horizon)
        return np.interp(sample_times, times, eq, left=0.0, right=0.0)

    def eye_height(self, data_rate: float) -> float:
        """Worst-case inner eye opening at the receiver, volts.

        main cursor - sum(|other cursors|), scaled by the drive amplitude;
        negative means the eye is closed for some bit pattern (linear
        channels make this bound exact and the pattern achievable).
        """
        if data_rate <= 0.0:
            raise ConfigurationError("data_rate must be positive")
        cursors = self._cursors(1.0 / data_rate)
        main = cursors[0]
        isi = float(np.sum(np.abs(cursors[1:])))
        return self.drive_amplitude * (main - isi)

    def max_data_rate(
        self, min_eye: float = 0.05, lo: float = 5e7, hi: float = 2e10
    ) -> float:
        """Highest rate with at least ``min_eye`` volts of inner eye."""
        if self.eye_height(lo) < min_eye:
            return 0.0
        if self.eye_height(hi) >= min_eye:
            return hi
        for _ in range(40):
            mid = (lo * hi) ** 0.5
            if self.eye_height(mid) >= min_eye:
                lo = mid
            else:
                hi = mid
        return lo

    # --- energy ---------------------------------------------------------------------------

    def energy_per_bit(self, activity: float = 0.5) -> float:
        """Supply energy per bit, joules.

        Wire charging at the drive amplitude, inflated by the FFE's
        transition boosting (sum |taps| of drive excursion per transition)
        — the standard first-order cost of pre-emphasis.
        """
        if not 0.0 < activity <= 1.0:
            raise ConfigurationError("activity must lie in (0, 1]")
        c_total = self.segment.capacitance + self.c_load
        boost = float(np.sum(np.abs(self.taps)))
        return activity * c_total * self.drive_amplitude * self.tech.vdd * boost

    def energy_fj_per_bit_per_cm(self, activity: float = 0.5) -> float:
        return fj_per_bit_per_cm(self.energy_per_bit(activity), self.length)


__all__ = ["RepeaterlessLink"]
