"""Output drivers: the straightforward inverter vs. the NMOS-based driver.

Section III-B: a plain inverter at the SRLR output has *two* distinct
global-corner failure modes —

* weak PMOS: insufficient launched swing, so the next stage cannot sense;
* strong PMOS with weak NMOS: too much swing and too little discharge, so
  a run of 1s charges the wire faster than the pull-down drains it and a
  trailing 0 is lost (the '11110' failure).

The paper's NMOS-based driver supplies both pull-up and pull-down current
through NMOS devices: the pull-up is a source follower clamped at roughly
Vref - Vth, so the strong-PMOS mode disappears and the design only has to
guard the weak-NMOS corner.

Behaviorally a driver reduces to three numbers per die: the effective
launch amplitude, the Thevenin pull-up resistance during the pulse, and
the pull-down resistance that drains the wire between pulses.  The wire
solver consumes these directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.mosfet import Mosfet
from repro.tech.variation import VariationSample
from repro.units import UM


@dataclass(frozen=True)
class LaunchedDrive:
    """Electrical summary of one die's driver: what the wire model needs."""

    amplitude: float  # effective launch level during the pulse, volts
    r_up: float  # Thevenin resistance while driving high, ohms
    r_down: float  # pull-down resistance draining the wire afterwards, ohms

    def __post_init__(self) -> None:
        if self.amplitude <= 0.0:
            raise ConfigurationError(
                f"amplitude must be positive, got {self.amplitude}"
            )
        if self.r_up <= 0.0 or self.r_down <= 0.0:
            raise ConfigurationError("drive resistances must be positive")


class OutputDriver:
    """Interface for SRLR output drivers."""

    def launch(self, sample: VariationSample, name: str, vref: float) -> LaunchedDrive:
        """Drive characteristics for this die; ``vref`` is the swing reference."""
        raise NotImplementedError

    def gate_capacitance(self, sample: VariationSample) -> float:
        """Total driver input capacitance (load on the INV amplifier)."""
        raise NotImplementedError


@dataclass(frozen=True)
class NMOSDriver(OutputDriver):
    """The paper's driver: NMOS pull-up (source follower) + NMOS pull-down.

    The pull-up output clamps at Vref - Vth(pull-up): raising the global
    NMOS threshold *lowers* the launched amplitude and weakens the
    pull-down — a single coherent weak-NMOS failure mode, which the
    adaptive Vref then compensates.
    """

    width_up: float = 11.0 * UM
    width_down: float = 9.0 * UM

    def __post_init__(self) -> None:
        if self.width_up <= 0.0 or self.width_down <= 0.0:
            raise ConfigurationError("driver widths must be positive")

    def launch(self, sample: VariationSample, name: str, vref: float) -> LaunchedDrive:
        if vref <= 0.0:
            raise ConfigurationError(f"vref must be positive, got {vref}")
        tech = sample.tech
        vth_up = sample.vth(f"{name}.drv_up_n", "n", self.width_up)
        vth_dn = sample.vth(f"{name}.drv_dn_n", "n", self.width_down)
        amplitude = min(vref, tech.vdd) - vth_up
        # Clamp to a small positive floor: a dead driver is reported as a
        # (correctly failing) tiny launch, not a model error.
        amplitude = max(amplitude, 0.01)
        up = Mosfet(tech, self.width_up, vth_up, "n")
        down = Mosfet(tech, self.width_down, vth_dn, "n")
        # Source-follower effective resistance: the device conducts with
        # gate at Vref while the source rises toward the clamp; its average
        # drive is well captured by r_on at Vgs = Vref.
        r_up = up.r_on(min(vref, tech.vdd))
        r_down = down.r_on(tech.vdd)
        return LaunchedDrive(amplitude=amplitude, r_up=r_up, r_down=r_down)

    def gate_capacitance(self, sample: VariationSample) -> float:
        tech = sample.tech
        return tech.gate_c_per_m * (self.width_up + self.width_down)


@dataclass(frozen=True)
class InverterDriver(OutputDriver):
    """The straightforward driver: a CMOS inverter launching full rail.

    It launches full rail; the *low swing* at the far end comes entirely
    from driving the wire through a deliberately weak (small) PMOS — the
    swing knob of this design is ``width_p``.  That is precisely why it is
    fragile: corners modulate r_up (PMOS) and r_down (NMOS)
    *independently*, creating the two distinct failure modes of Section
    III-B (weak PMOS -> insufficient swing; strong PMOS + weak NMOS ->
    overcharge that the pull-down cannot drain before the next bit).  The
    pull-down is drawn much larger so the reset path is only weakly
    swing-setting.  Vref is ignored (there is nothing to bias), so the
    adaptive swing scheme cannot help this driver — also as in the paper.
    """

    width_p: float = 3.0 * UM
    width_n: float = 8.0 * UM
    amplitude_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.width_p <= 0.0 or self.width_n <= 0.0:
            raise ConfigurationError("driver widths must be positive")
        if not 0.0 < self.amplitude_fraction <= 1.0:
            raise ConfigurationError(
                f"amplitude_fraction must lie in (0, 1], got {self.amplitude_fraction}"
            )

    def launch(self, sample: VariationSample, name: str, vref: float) -> LaunchedDrive:
        tech = sample.tech
        vth_p = sample.vth(f"{name}.drv_p", "p", self.width_p)
        vth_n = sample.vth(f"{name}.drv_n", "n", self.width_n)
        pull_up = Mosfet(tech, self.width_p, vth_p, "p")
        pull_down = Mosfet(tech, self.width_n, vth_n, "n")
        return LaunchedDrive(
            amplitude=self.amplitude_fraction * tech.vdd,
            r_up=pull_up.r_on(tech.vdd),
            r_down=pull_down.r_on(tech.vdd),
        )

    def gate_capacitance(self, sample: VariationSample) -> float:
        tech = sample.tech
        return tech.gate_c_per_m * (self.width_p + self.width_n)
