"""The 64-bit parallel SRLR datapath (Fig. 3).

The paper's router datapath is 64 SRLR lanes side by side: every lane
shares the die's global process corner and the single adaptive-swing bias
generator, but draws its own local device mismatch.  This module models
that bus:

* word-level transmission (one bit lane per payload bit),
* lane-to-lane latency **skew** (the asynchronous repeaters' arrival
  spread, which bounds how little retiming margin the DM needs),
* bus-level **yield**: one bad lane kills the word, so a w-bit bus's die
  failure probability is roughly 1 - (1 - p_lane)^w — quantified here by
  direct Monte Carlo rather than the independence approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.circuit.link import SRLRLink
from repro.circuit.prbs import PrbsGenerator
from repro.circuit.srlr import SRLRDesignParams, robust_design
from repro.tech.variation import VariationSample, monte_carlo_sample, nominal_sample


@dataclass
class BusTransmission:
    """Outcome of sending words through the bus."""

    words_sent: list[int]
    words_received: list[int]
    n_bits: int
    lane_errors: list[int]  # bit errors per lane
    energy: float

    @property
    def word_errors(self) -> int:
        return sum(1 for a, b in zip(self.words_sent, self.words_received) if a != b)

    @property
    def ok(self) -> bool:
        return self.word_errors == 0


@dataclass
class SRLRBus:
    """``n_bits`` parallel SRLR links on one die.

    All lanes share the :class:`VariationSample` (one die, one global
    corner, one bias generator) while per-lane name prefixes give every
    lane's devices independent mismatch draws.
    """

    design: SRLRDesignParams
    n_bits: int = 64
    sample: VariationSample = None  # type: ignore[assignment]
    lanes: list[SRLRLink] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_bits < 1:
            raise ConfigurationError(f"n_bits must be >= 1, got {self.n_bits}")
        if self.sample is None:
            self.sample = nominal_sample(self.design.tech)
        self.lanes = [
            SRLRLink(self.design, self.sample, name_prefix=f"bit{j}.")
            for j in range(self.n_bits)
        ]

    # --- word transport ---------------------------------------------------------------

    def transmit_words(self, words: list[int], bit_period: float) -> BusTransmission:
        """Send ``words`` (n_bits-wide integers), one word per bit period."""
        mask = (1 << self.n_bits) - 1
        for w in words:
            if not 0 <= w <= mask:
                raise ConfigurationError(
                    f"word {w:#x} does not fit in {self.n_bits} bits"
                )
        energy = 0.0
        lane_errors = []
        received_planes = []
        for j, lane in enumerate(self.lanes):
            plane = [(w >> j) & 1 for w in words]
            outcome = lane.transmit(plane, bit_period)
            energy += outcome.energy
            lane_errors.append(outcome.n_errors)
            received_planes.append(outcome.received)
        received_words = [
            sum(received_planes[j][k] << j for j in range(self.n_bits))
            for k in range(len(words))
        ]
        return BusTransmission(
            words_sent=list(words),
            words_received=received_words,
            n_bits=self.n_bits,
            lane_errors=lane_errors,
            energy=energy,
        )

    # --- skew --------------------------------------------------------------------------

    def lane_latencies(self) -> list[float]:
        """Isolated-pulse latency of every lane (seconds)."""
        return [lane.latency() for lane in self.lanes]

    def skew(self) -> float:
        """Max - min lane latency: the DM's retiming margin requirement."""
        latencies = self.lane_latencies()
        finite = [t for t in latencies if t != float("inf")]
        if len(finite) != len(latencies):
            return float("inf")
        return max(finite) - min(finite)


def random_words(n_words: int, n_bits: int = 64, seed: int = 21) -> list[int]:
    """PRBS-derived test words (the bus equivalent of the PRBS generator)."""
    if n_words < 1:
        raise ConfigurationError(f"n_words must be >= 1, got {n_words}")
    gen = PrbsGenerator(31, seed=seed + 1)
    words = []
    for _ in range(n_words):
        bits = gen.bits(n_bits)
        words.append(sum(b << j for j, b in enumerate(bits)))
    return words


@dataclass(frozen=True)
class BusYieldReport:
    """Monte Carlo bus yield vs the single-lane baseline."""

    n_bits: int
    n_runs: int
    lane_failure_probability: float
    bus_failure_probability: float

    @property
    def independence_prediction(self) -> float:
        """1 - (1 - p_lane)^w: what independent lanes would give."""
        return 1.0 - (1.0 - self.lane_failure_probability) ** self.n_bits


def bus_yield(
    design: SRLRDesignParams | None = None,
    n_bits: int = 8,
    n_runs: int = 100,
    n_words: int = 32,
    bit_period: float = 1.0 / 4.1e9,
    base_seed: int = 3001,
) -> BusYieldReport:
    """Monte Carlo yield of an ``n_bits`` bus vs its lanes.

    Lanes on one die share the global corner, so lane failures are
    strongly correlated: the measured bus failure probability sits far
    below the independent-lanes prediction — the reason a 64-bit SRLR
    datapath is viable at all.
    """
    if n_runs < 1 or n_words < 1:
        raise ConfigurationError("n_runs and n_words must be >= 1")
    design = design or robust_design()
    words = random_words(n_words, n_bits)
    lane_fail = 0
    bus_fail = 0
    for i in range(n_runs):
        sample = monte_carlo_sample(design.tech, base_seed + i)
        bus = SRLRBus(design, n_bits=n_bits, sample=sample)
        outcome = bus.transmit_words(words, bit_period)
        failing_lanes = sum(1 for e in outcome.lane_errors if e > 0)
        lane_fail += failing_lanes
        bus_fail += 0 if outcome.ok else 1
    return BusYieldReport(
        n_bits=n_bits,
        n_runs=n_runs,
        lane_failure_probability=lane_fail / (n_runs * n_bits),
        bus_failure_probability=bus_fail / n_runs,
    )


__all__ = [
    "BusTransmission",
    "BusYieldReport",
    "SRLRBus",
    "bus_yield",
    "random_words",
]
