"""Pulse representation, pulse modulator (PM) and demodulator (DM).

The SRLR datapath is pulse-based: the only implementation overhead beyond
the repeaters themselves is a pulse modulator and demodulator at every
router (Section II).  The PM converts NRZ bits into a return-to-zero pulse
train (one pulse per '1' bit, launched at the start of the bit interval);
the DM samples each unit interval for a pulse and reconstructs the bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Pulse:
    """A rectangular pulse: start time, width and amplitude (all SI)."""

    t_start: float
    width: float
    amplitude: float

    def __post_init__(self) -> None:
        if self.width <= 0.0:
            raise ConfigurationError(f"pulse width must be positive, got {self.width}")
        if self.amplitude <= 0.0:
            raise ConfigurationError(
                f"pulse amplitude must be positive, got {self.amplitude}"
            )

    @property
    def t_end(self) -> float:
        return self.t_start + self.width

    def delayed(self, dt: float) -> "Pulse":
        return Pulse(self.t_start + dt, self.width, self.amplitude)


@dataclass
class PulseTrain:
    """An ordered sequence of non-overlapping pulses on one wire."""

    pulses: list[Pulse] = field(default_factory=list)

    def append(self, pulse: Pulse) -> None:
        if self.pulses and pulse.t_start < self.pulses[-1].t_end:
            raise ConfigurationError(
                "pulses must be appended in order and must not overlap: "
                f"{pulse.t_start} < {self.pulses[-1].t_end}"
            )
        self.pulses.append(pulse)

    def __len__(self) -> int:
        return len(self.pulses)

    def __iter__(self):
        return iter(self.pulses)


@dataclass(frozen=True)
class PulseModulator:
    """Converts NRZ bits to a pulse train (one pulse per '1').

    Attributes
    ----------
    bit_period:
        Unit interval, seconds (244 ps at the paper's 4.1 Gb/s).
    pulse_width:
        Width of each launched pulse, seconds; must fit in the UI.
    amplitude:
        Drive level of the launched pulse, volts (the driver may clamp it).
    """

    bit_period: float
    pulse_width: float
    amplitude: float

    def __post_init__(self) -> None:
        if self.bit_period <= 0.0:
            raise ConfigurationError(
                f"bit_period must be positive, got {self.bit_period}"
            )
        if not 0.0 < self.pulse_width <= self.bit_period:
            raise ConfigurationError(
                f"pulse_width must lie in (0, bit_period], got {self.pulse_width}"
            )

    @property
    def data_rate(self) -> float:
        return 1.0 / self.bit_period

    def modulate(self, bits: list[int]) -> PulseTrain:
        """One pulse at the start of each '1' bit's unit interval."""
        train = PulseTrain()
        for i, bit in enumerate(bits):
            if bit not in (0, 1):
                raise ConfigurationError(f"bits must be 0 or 1, got {bit!r} at {i}")
            if bit:
                train.append(
                    Pulse(i * self.bit_period, self.pulse_width, self.amplitude)
                )
        return train


@dataclass(frozen=True)
class Demodulator:
    """Recovers bits from a pulse train by per-UI windowing.

    A '1' is detected in unit interval k if any pulse *starts* within
    [k*T - margin, (k+1)*T - margin); the margin absorbs accumulated
    repeater latency modulo the bit period (the SRLR link is asynchronous,
    so the DM in hardware realigns with a small FIFO — here we realign
    arithmetically via ``latency`` below).
    """

    bit_period: float
    n_bits: int

    def __post_init__(self) -> None:
        if self.bit_period <= 0.0:
            raise ConfigurationError(
                f"bit_period must be positive, got {self.bit_period}"
            )
        if self.n_bits <= 0:
            raise ConfigurationError(f"n_bits must be positive, got {self.n_bits}")

    def demodulate(self, train: PulseTrain, latency: float = 0.0) -> list[int]:
        """Map pulses back to bits after removing the link ``latency``."""
        bits = [0] * self.n_bits
        for pulse in train:
            t = pulse.t_start - latency
            k = round(t / self.bit_period)
            if 0 <= k < self.n_bits:
                bits[k] = 1
        return bits
