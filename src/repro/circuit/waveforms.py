"""Waveform reconstruction for Fig. 4-style plots.

The paper's Fig. 4 shows the SRLR's simulated waveforms: the low-swing
input pulse arriving on IN, the sense node X discharging from its standby
level and snapping back on reset, and the regenerated full-swing pulse on
OUT.  This module rebuilds those three traces from the behavioral model —
the wire waveform exactly (linear solver), X and OUT piecewise from the
stage's resolved timing — so the benches can print/plot the same picture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.circuit.link import SRLRLink
from repro.units import PS


@dataclass(frozen=True)
class StageWaveforms:
    """Sampled voltage traces of one repeater processing one pulse.

    All traces share ``times`` (seconds, zero at the launch of the input
    pulse into the wire feeding this stage).
    """

    times: np.ndarray
    v_in: np.ndarray  # far-end wire voltage at the M1 gate (low swing)
    v_x: np.ndarray  # sense node X
    v_out: np.ndarray  # regenerated output pulse
    t_trip: float
    out_width: float


def _ramp(times: np.ndarray, t0: float, t1: float, v0: float, v1: float) -> np.ndarray:
    """Piecewise-linear transition helper: v0 before t0, v1 after t1."""
    if t1 <= t0:
        return np.where(times < t0, v0, v1)
    frac = np.clip((times - t0) / (t1 - t0), 0.0, 1.0)
    return v0 + (v1 - v0) * frac


def stage_waveforms(
    link: SRLRLink,
    stage_index: int = 0,
    width: float | None = None,
    n_samples: int = 1200,
) -> StageWaveforms:
    """Reconstruct Fig. 4's three traces for one stage of ``link``.

    The input pulse is whatever arrives at ``stage_index`` when the PM
    launches the link's nominal pulse (so downstream stages show the
    *repeated* low-swing input, not the original).
    """
    if not 0 <= stage_index < len(link.stages):
        raise ConfigurationError(
            f"stage_index must be in [0, {len(link.stages)}), got {stage_index}"
        )
    width = link.launch_width if width is None else width

    # Walk the launch chain down to the requested stage.
    launch = link._pm_launch
    for stage in link.stages[:stage_index]:
        table = link._table(launch.r_up, launch.r_down)
        out = stage.transfer(
            table.peak_ratio(width) * launch.amplitude, table.width_out(width)
        )
        if not out.fired:
            raise SimulationError(
                f"pulse died at stage {stage.stage_index}; no waveform to show"
            )
        width = out.out_width
        launch = out.launch

    stage = link.stages[stage_index]
    table = link._table(launch.r_up, launch.r_down)
    swing = table.peak_ratio(width) * launch.amplitude
    dwell = table.width_out(width)
    out = stage.transfer(swing, dwell)
    if not out.fired:
        raise SimulationError(f"stage {stage_index} does not fire; nothing to plot")

    # Exact input waveform from the wire solver.
    transfer = table.transfer
    t_wire, v_far = transfer.far_end_waveform(width, launch.amplitude)
    t_end = max(
        float(t_wire[-1]),
        table.t_peak(width) + out.t_trip + stage.wx + 4 * stage.t_fall,
    )
    times = np.linspace(0.0, t_end, n_samples)
    v_in = np.interp(times, t_wire, v_far)

    # Node X: standby until the input charges in, then a discharge ramp
    # crossing V_M at t_trip (measured from the input's arrival at half
    # peak), snapping back to Vdd on reset and settling to standby.
    t_arrive = max(table.t_peak(width) - 0.5 * dwell, 0.0)
    t_cross = t_arrive + out.t_trip
    v_low = stage.v_threshold - link.design.rise_sense_depth
    t_reset = t_cross + stage.wx
    tech = link.design.tech
    v_x = np.full_like(times, stage.v_standby)
    v_x = np.where(
        times >= t_arrive,
        _ramp(times, t_arrive, t_cross + 2 * PS, stage.v_standby, v_low),
        v_x,
    )
    v_x = np.where(
        times >= t_reset, _ramp(times, t_reset, t_reset + 10 * PS, v_low, tech.vdd), v_x
    )
    settle = t_reset + 10 * PS + link.design.reset_recovery
    v_x = np.where(
        times >= t_reset + 10 * PS,
        _ramp(times, t_reset + 10 * PS, settle, tech.vdd, stage.v_standby),
        v_x,
    )

    # OUT: rises after the trip (slew set by the INV rise), falls on reset.
    t_rise_mid = t_cross + stage.t_intrinsic_rise
    t_fall_mid = t_reset + stage.t_fall
    v_out = _ramp(times, t_cross, t_rise_mid + stage.t_intrinsic_rise, 0.0, tech.vdd)
    v_out = np.where(
        times >= t_fall_mid - stage.t_fall,
        _ramp(times, t_fall_mid - stage.t_fall, t_fall_mid + stage.t_fall, tech.vdd, 0.0),
        v_out,
    )

    return StageWaveforms(
        times=times,
        v_in=v_in,
        v_x=v_x,
        v_out=v_out,
        t_trip=out.t_trip,
        out_width=out.out_width,
    )


def waveform_table(
    wf: StageWaveforms, n_rows: int = 40
) -> list[tuple[float, float, float, float]]:
    """Downsample the traces into printable (t_ps, in, x, out) rows."""
    if n_rows < 2:
        raise ConfigurationError(f"n_rows must be >= 2, got {n_rows}")
    idx = np.linspace(0, len(wf.times) - 1, n_rows).astype(int)
    return [
        (
            float(wf.times[i] / PS),
            float(wf.v_in[i]),
            float(wf.v_x[i]),
            float(wf.v_out[i]),
        )
        for i in idx
    ]


__all__ = ["StageWaveforms", "stage_waveforms", "waveform_table"]
