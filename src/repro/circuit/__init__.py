"""The SRLR circuit, behaviorally: pulses, repeaters, links, test circuits."""

from repro.circuit.bus import (
    BusTransmission,
    BusYieldReport,
    SRLRBus,
    bus_yield,
    random_words,
)
from repro.circuit.bias import (
    BIAS_GENERATOR_POWER,
    AdaptiveSwingReference,
    FixedSwingReference,
    OgueyCurrentReference,
    SwingReference,
    adaptive_for_amplitude,
    fixed_for_amplitude,
)
from repro.circuit.delay_cell import (
    DEFAULT_BUFFER_DELAY,
    DelayCell,
    DelayCellPlan,
    alternating_plan,
    single_plan,
)
from repro.circuit.driver import (
    InverterDriver,
    LaunchedDrive,
    NMOSDriver,
    OutputDriver,
)
from repro.circuit.diagnostics import (
    LinkDiagnosis,
    StageDiagnosis,
    diagnose_link,
    margin_profile,
    stage_margins,
)
from repro.circuit.equalized import RepeaterlessLink
from repro.circuit.eye import EyeReport, eye_at_rate, eye_vs_rate
from repro.circuit.inv_amp import CurrentStarvedInverter
from repro.circuit.link import SRLRLink, StageRecord, TransmissionResult
from repro.circuit.prbs import (
    PRBS_TAPS,
    ErrorCounter,
    PrbsGenerator,
    worst_case_patterns,
)
from repro.circuit.pulse import Demodulator, Pulse, PulseModulator, PulseTrain
from repro.circuit.serdes import (
    SERDES_ENERGY_PER_BIT,
    SerializationPoint,
    max_feasible_ratio,
    serialization_sweep,
)
from repro.circuit.sizing import (
    DriverChoice,
    LengthPoint,
    SensitivityPoint,
    SwingEnergyPoint,
    optimize_driver,
    sensitivity_vs_m1_m2_ratio,
    sweep_segment_length,
    sweep_swing_energy,
)
from repro.circuit.srlr import (
    DEFAULT_LAUNCH_WIDTH,
    DEFAULT_NOMINAL_SWING,
    SRLRDesignParams,
    SRLRStage,
    StageFailure,
    StageOutput,
    robust_design,
    straightforward_design,
)
from repro.circuit.waveforms import StageWaveforms, stage_waveforms, waveform_table

__all__ = [
    "AdaptiveSwingReference",
    "BusTransmission",
    "BusYieldReport",
    "EyeReport",
    "LinkDiagnosis",
    "StageDiagnosis",
    "diagnose_link",
    "margin_profile",
    "stage_margins",
    "RepeaterlessLink",
    "SRLRBus",
    "bus_yield",
    "eye_at_rate",
    "eye_vs_rate",
    "random_words",
    "SERDES_ENERGY_PER_BIT",
    "SerializationPoint",
    "max_feasible_ratio",
    "serialization_sweep",
    "BIAS_GENERATOR_POWER",
    "CurrentStarvedInverter",
    "DEFAULT_BUFFER_DELAY",
    "DEFAULT_LAUNCH_WIDTH",
    "DEFAULT_NOMINAL_SWING",
    "DelayCell",
    "DriverChoice",
    "LengthPoint",
    "DelayCellPlan",
    "Demodulator",
    "ErrorCounter",
    "FixedSwingReference",
    "InverterDriver",
    "LaunchedDrive",
    "NMOSDriver",
    "OgueyCurrentReference",
    "OutputDriver",
    "PRBS_TAPS",
    "PrbsGenerator",
    "Pulse",
    "PulseModulator",
    "PulseTrain",
    "SRLRDesignParams",
    "SRLRLink",
    "SRLRStage",
    "SensitivityPoint",
    "StageFailure",
    "StageOutput",
    "StageRecord",
    "StageWaveforms",
    "SwingEnergyPoint",
    "SwingReference",
    "TransmissionResult",
    "adaptive_for_amplitude",
    "alternating_plan",
    "fixed_for_amplitude",
    "optimize_driver",
    "robust_design",
    "sensitivity_vs_m1_m2_ratio",
    "single_plan",
    "stage_waveforms",
    "straightforward_design",
    "sweep_segment_length",
    "sweep_swing_energy",
    "waveform_table",
]
