"""The self-resetting logic repeater (SRLR) stage model.

One SRLR (Fig. 4/5 of the paper) is, behaviorally, a pulse transformer:

1. A low-swing input pulse on the gate of the input NMOS **M1** (a low-Vt
   device) discharges the sense node **X** from its keeper-set standby
   voltage Vdd - Vth(M2) toward ground.  M1 conducts in subthreshold at the
   ~100-150 mV input swings, fighting the deliberately feeble keeper M2;
   the *net* current sets the discharge, so sensitivity is an M1/M2 size
   ratio as Section II says, and trip time grows exponentially as the
   swing shrinks toward the sensitivity floor.
2. When X crosses the current-starved inverter's switching threshold, OUT
   rises.  The **rising time grows as the input swing shrinks**, because a
   weakly-driven X crosses the threshold slowly.
3. The self-reset loop (delay cell) recharges X after its delay D, and OUT
   falls with the (swing-independent) falling time.

The paper's governing relation follows directly:

    Wout = Wx - (t_rising - t_falling),   Wx set by the delay cell,

with t_rising = t_trip + intrinsic rise, t_trip = C_x * dV_trip / I_M1(swing).

The stage either *fires* (produces an output pulse of width Wout at the
driver's launch amplitude) or fails in one of the diagnosed ways:
``too_weak`` (swing cannot trip X within the input dwell), ``collapsed``
(Wout below the minimum propagatable width) or ``stuck`` (keeper/INV margin
inverted, the stage fires continuously).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConfigurationError
from repro.circuit.bias import (
    FixedSwingReference,
    SwingReference,
    adaptive_for_amplitude,
)
from repro.circuit.delay_cell import DelayCellPlan, alternating_plan, single_plan
from repro.circuit.driver import (
    InverterDriver,
    LaunchedDrive,
    NMOSDriver,
    OutputDriver,
)
from repro.circuit.inv_amp import CurrentStarvedInverter
from repro.tech.mosfet import Mosfet
from repro.tech.technology import Technology, tech_45nm_soi
from repro.tech.variation import VariationSample
from repro.units import FF, MM, PS, UM
from repro.wire.rc import WireGeometry


class StageFailure(Enum):
    """Why a stage did not (correctly) repeat its input pulse."""

    NONE = "none"
    TOO_WEAK = "too_weak"  # input swing below sensitivity: pulse dropped
    COLLAPSED = "collapsed"  # output width shrank below the propagatable minimum
    STUCK = "stuck"  # standby margin inverted: stage fires continuously
    #: Bit-level-only failure: the stage repeats isolated pulses but drops
    #: or corrupts bits at speed (reset dead time / residual ISI).  Never
    #: returned by ``SRLRStage.transfer``; used by the diagnostics layer.
    RATE_OR_ISI = "rate_or_isi"


@dataclass(frozen=True)
class SRLRDesignParams:
    """Complete static description of an SRLR-based link design.

    The two named constructors :func:`robust_design` (NMOS driver +
    alternating delay cells + adaptive swing — the paper's proposal) and
    :func:`straightforward_design` (inverter driver + single delay cell +
    fixed swing — the paper's baseline) are the Fig. 6 contenders; the
    three techniques can also be toggled independently for ablations.
    """

    tech: Technology
    delay_plan: DelayCellPlan
    driver: OutputDriver
    swing_reference: SwingReference
    inv: CurrentStarvedInverter = CurrentStarvedInverter()
    n_stages: int = 10
    segment_length: float = 1 * MM
    wire_geometry: WireGeometry | None = None  # None -> technology reference
    #: M1 (input sense NMOS): a low-Vt, long-channel device.  The length
    #: factor divides drive strength and multiplies gate area (shrinking
    #: Pelgrom mismatch) — sense devices are drawn long for exactly this.
    m1_width: float = 4.0 * UM
    m1_length_factor: float = 4.0
    m1_vth_offset: float = -0.08
    #: M2 (keeper): a minute, very long channel pull-up whose current M1
    #: must out-sink to discharge X.  The M1/M2 *current* ratio is the
    #: paper's input-sensitivity sizing knob (Section II).
    m2_width: float = 0.2 * UM
    m2_length_factor: float = 20.0
    m2_vth_offset: float = -0.06
    c_node_x: float = 1.0 * FF
    min_output_width: float = 30 * PS
    #: Dead time after the self-reset completes before the stage can sense
    #: again (X recharge + delay-cell clearing).  Together with Wx this is
    #: what bounds the maximum data rate of the repeated link.
    reset_recovery: float = 30 * PS
    #: Extra X discharge (beyond the INV threshold crossing) that sets the
    #: swing-dependent part of the INV rising time, as a voltage depth.
    rise_sense_depth: float = 0.12

    def __post_init__(self) -> None:
        if self.n_stages < 1:
            raise ConfigurationError(f"n_stages must be >= 1, got {self.n_stages}")
        for key, value in (
            ("segment_length", self.segment_length),
            ("m1_width", self.m1_width),
            ("m1_length_factor", self.m1_length_factor),
            ("m2_width", self.m2_width),
            ("m2_length_factor", self.m2_length_factor),
            ("c_node_x", self.c_node_x),
            ("min_output_width", self.min_output_width),
            ("rise_sense_depth", self.rise_sense_depth),
        ):
            if value <= 0.0:
                raise ConfigurationError(f"{key} must be positive, got {value}")

    @property
    def geometry(self) -> WireGeometry:
        return self.wire_geometry or WireGeometry.reference(self.tech)

    @property
    def total_length(self) -> float:
        return self.n_stages * self.segment_length


#: Width of the pulse the PM launches into the first segment; the repeated
#: pulses along the link settle near this width by design.
DEFAULT_LAUNCH_WIDTH = 150 * PS

#: Default far-end swing target at the typical corner.  This is the
#: "voltage swing selected for test chip fabrication" of Fig. 6; both
#: contender designs are built to deliver it at TT so the comparison is
#: iso-swing (and hence iso-energy to first order).
DEFAULT_NOMINAL_SWING = 0.30


def _nmos_amplitude_for_swing(
    tech: Technology, swing: float, driver: NMOSDriver, segment_length: float
) -> float:
    """Launch amplitude so the NMOS driver delivers ``swing`` at the far end.

    The attenuation depends (weakly) on the driver's pull-up resistance,
    which depends on Vref, which depends on the amplitude — a mild fixed
    point solved by a few substitutions.
    """
    from repro.tech.variation import nominal_sample
    from repro.wire.attenuation import attenuation_table
    from repro.wire.rc import WireSegment

    sample = nominal_sample(tech)
    segment = WireSegment(tech, WireGeometry.reference(tech), segment_length)
    c_load = tech.gate_c_per_m * 4.0 * UM * 4.0  # representative M1 gate
    amplitude = swing / 0.7  # initial guess near the typical attenuation
    for _ in range(4):
        vref = amplitude + tech.vth_n
        launch = driver.launch(sample, "solve", vref)
        table = attenuation_table(segment, launch.r_up, c_load, launch.r_down)
        ratio = table.peak_ratio(DEFAULT_LAUNCH_WIDTH)
        if ratio <= 0.0:
            raise ConfigurationError("wire attenuates the pulse to nothing")
        amplitude = swing / ratio
    if amplitude + tech.vth_n > tech.vdd + 0.15:
        raise ConfigurationError(
            f"target swing {swing} V is unreachable: required Vref exceeds Vdd"
        )
    return amplitude


def _inverter_width_for_swing(
    tech: Technology, swing: float, width_n: float, segment_length: float
) -> float:
    """PMOS width so a full-rail inverter delivers ``swing`` at the far end.

    This is the straightforward design's swing knob: a weak pull-up whose
    resistance, together with the wire, attenuates the launched pulse down
    to the target.  Bisection over width (attenuation is monotone in
    drive resistance).
    """
    from repro.tech.variation import nominal_sample
    from repro.wire.attenuation import attenuation_table
    from repro.wire.rc import WireSegment

    sample = nominal_sample(tech)
    segment = WireSegment(tech, WireGeometry.reference(tech), segment_length)
    c_load = tech.gate_c_per_m * 4.0 * UM * 4.0

    def far_swing(width_p: float) -> float:
        driver = InverterDriver(width_p=width_p, width_n=width_n)
        launch = driver.launch(sample, "solve", tech.vdd)
        table = attenuation_table(segment, launch.r_up, c_load, launch.r_down)
        return table.peak_ratio(DEFAULT_LAUNCH_WIDTH) * launch.amplitude

    lo, hi = 0.2 * UM, 60.0 * UM
    if far_swing(hi) < swing:
        raise ConfigurationError(f"target swing {swing} V is unreachable at Vdd rail")
    if far_swing(lo) > swing:
        raise ConfigurationError(f"target swing {swing} V is below the weakest driver")
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        if far_swing(mid) < swing:
            lo = mid
        else:
            hi = mid
    return hi


def robust_design(
    tech: Technology | None = None,
    nominal_swing: float = DEFAULT_NOMINAL_SWING,
    n_stages: int = 10,
    **overrides,
) -> SRLRDesignParams:
    """The paper's proposed process-variation-robust SRLR design.

    NMOS-based driver + alternating delay cells + adaptive swing reference
    (Section III).  ``nominal_swing`` is the far-end swing at the typical
    corner (the Fig. 6 sweep axis); the adaptive reference biases the
    driver to deliver the launch amplitude that produces it.
    """
    tech = tech or tech_45nm_soi()
    segment_length = overrides.get("segment_length", 1 * MM)
    driver = overrides.pop("driver", NMOSDriver())
    if "swing_reference" in overrides:
        swing_reference = overrides.pop("swing_reference")
    else:
        amplitude = _nmos_amplitude_for_swing(
            tech, nominal_swing, driver, segment_length
        )
        swing_reference = adaptive_for_amplitude(tech, amplitude)
    return SRLRDesignParams(
        tech=tech,
        delay_plan=overrides.pop("delay_plan", alternating_plan()),
        driver=driver,
        swing_reference=swing_reference,
        n_stages=n_stages,
        **overrides,
    )


def straightforward_design(
    tech: Technology | None = None,
    nominal_swing: float = DEFAULT_NOMINAL_SWING,
    n_stages: int = 10,
    **overrides,
) -> SRLRDesignParams:
    """The paper's baseline: inverter driver + single (6-buffer) delay cell.

    No adaptive swing (the inverter driver has nothing to bias): the
    far-end swing is set at design time by the pull-up width, so it rides
    every process corner uncorrected.
    """
    tech = tech or tech_45nm_soi()
    segment_length = overrides.get("segment_length", 1 * MM)
    if "driver" in overrides:
        driver = overrides.pop("driver")
    else:
        width_n = 8.0 * UM
        width_p = _inverter_width_for_swing(
            tech, nominal_swing, width_n, segment_length
        )
        driver = InverterDriver(width_p=width_p, width_n=width_n)
    return SRLRDesignParams(
        tech=tech,
        delay_plan=overrides.pop("delay_plan", single_plan()),
        driver=driver,
        swing_reference=overrides.pop(
            "swing_reference", FixedSwingReference(tech.vdd)
        ),
        n_stages=n_stages,
        **overrides,
    )


@dataclass(frozen=True)
class StageOutput:
    """Result of one stage processing one input pulse."""

    fired: bool
    failure: StageFailure
    out_width: float  # seconds; 0.0 when not fired
    launch: LaunchedDrive | None  # None when not fired
    stage_delay: float  # input arrival -> output pulse start, seconds
    t_trip: float  # X threshold-crossing time, seconds (inf if never)


@dataclass
class SRLRStage:
    """One instantiated repeater: design + stage index + one die's variation.

    All per-die electrical constants are resolved at construction so the
    per-bit ``transfer`` call is a handful of scalar operations.
    """

    design: SRLRDesignParams
    stage_index: int
    sample: VariationSample
    enabled: bool = True  # the EN port (crossbar crosspoint gating)
    #: Namespace for this stage's device-mismatch draws; a 64-bit bus
    #: gives each bit lane its own prefix so lanes share the die's global
    #: corner but draw independent local mismatch.
    name_prefix: str = ""

    # Resolved per-die constants (populated in __post_init__).
    v_standby: float = field(init=False)
    v_threshold: float = field(init=False)
    dv_trip: float = field(init=False)
    wx: float = field(init=False)
    t_intrinsic_rise: float = field(init=False)
    t_fall: float = field(init=False)
    launch: LaunchedDrive = field(init=False)
    keeper_current: float = field(init=False)
    _m1: Mosfet = field(init=False)

    def __post_init__(self) -> None:
        if self.stage_index < 0:
            raise ConfigurationError(
                f"stage_index must be >= 0, got {self.stage_index}"
            )
        d = self.design
        name = f"{self.name_prefix}srlr{self.stage_index}"
        tech = d.tech

        # Mismatch scales with gate *area*: pass the area-equivalent width
        # (W * L/Lmin) to the variation sample; drive strength scales with
        # W/L, so the electrical device gets width / length_factor.
        vth_m1 = (
            self.sample.vth(f"{name}.m1", "n", d.m1_width * d.m1_length_factor)
            + d.m1_vth_offset
        )
        self._m1 = Mosfet(
            tech, d.m1_width / d.m1_length_factor, max(vth_m1, 0.02), "n"
        )

        vth_m2 = (
            self.sample.vth(f"{name}.m2", "n", d.m2_width * d.m2_length_factor)
            + d.m2_vth_offset
        )
        self.v_standby = tech.vdd - vth_m2
        self.v_threshold = d.inv.switching_threshold(self.sample, name)
        self.dv_trip = self.v_standby - self.v_threshold
        # The keeper opposes M1's discharge with the current of a minute
        # long-channel device whose gate sits at Vdd and source at X ~ V_M
        # during the descent: overdrive = Vdd - V_M - Vth(M2).
        keeper = Mosfet(
            tech, d.m2_width / d.m2_length_factor, max(vth_m2, 0.02), "n"
        )
        self.keeper_current = keeper.ids_sat(tech.vdd - self.v_threshold)

        # Scalar fast path for the Monte Carlo inner loop: M1's current at
        # (vgs=swing, vds=v_threshold) inlined as plain floats, equivalent
        # to self._m1.ids(swing, self.v_threshold).
        m1 = self._m1
        self._fp_vth = m1.vth
        self._fp_i0 = m1.I0_PER_M * m1.width
        self._fp_k = tech.k_drive * m1.width
        self._fp_alpha = tech.alpha
        self._fp_nvt = tech.subthreshold_slope_n * 0.02585
        self._fp_vds = self.v_threshold
        self._fp_vdsat_floor = 0.12 * m1.vth

        cell = d.delay_plan.cell_for_stage(self.stage_index)
        self.wx = cell.delay(self.sample, name)
        self.t_intrinsic_rise = d.inv.intrinsic_rise(self.sample, name)
        self.t_fall = d.inv.fall_time(self.sample, name)

        vref = d.swing_reference.vref(self.sample)
        self.launch = d.driver.launch(self.sample, name, vref)

    @property
    def is_stuck(self) -> bool:
        """True when the keeper/INV margin is inverted: X sits below the
        inverter threshold at standby and the stage fires continuously."""
        return self.dv_trip <= 0.0

    def net_discharge_current(self, swing: float) -> float:
        """M1's sink current minus the keeper's opposing current at ``swing``.

        Negative means the keeper wins and X never reaches the INV
        threshold: the swing is below the stage's sensitivity floor.
        (Inlined float math; equivalent to ``_m1.ids(swing, V_M)``.)
        """
        if swing <= 0.0:
            return -self.keeper_current
        overdrive = swing - self._fp_vth
        if overdrive <= 0.0:
            i_sat = self._fp_i0 * math.exp(overdrive / self._fp_nvt)
        else:
            i_sat = self._fp_i0 + self._fp_k * overdrive**self._fp_alpha
        vdsat = 0.8 * overdrive
        if vdsat < self._fp_vdsat_floor:
            vdsat = self._fp_vdsat_floor
        if self._fp_vds < vdsat:
            x = self._fp_vds / vdsat
            i_sat = i_sat * x * (2.0 - x)
        return i_sat - self.keeper_current

    def trip_time(self, swing: float) -> float:
        """Time for M1 at gate voltage ``swing`` to pull X across V_M."""
        current = self.net_discharge_current(swing)
        if current <= 0.0:
            return float("inf")
        return self.design.c_node_x * self.dv_trip / current

    def rise_lag(self, swing: float) -> float:
        """Swing-dependent extra rising time beyond the threshold crossing.

        The INV output midpoint lags X's V_M crossing by the time X takes
        to descend a further ``rise_sense_depth`` — inversely proportional
        to the net discharge current, hence growing sharply as the swing
        shrinks (the asymmetry at the heart of Section III-A).
        """
        current = self.net_discharge_current(swing)
        if current <= 0.0:
            return float("inf")
        return self.design.c_node_x * self.design.rise_sense_depth / current

    def transfer(self, in_swing: float, in_dwell: float) -> StageOutput:
        """Process one received pulse (peak ``in_swing``, dwell ``in_dwell``).

        ``in_dwell`` is the time the far-end waveform spends above half its
        peak: the window during which M1 meaningfully conducts.
        """
        no_launch = StageOutput(
            fired=False,
            failure=StageFailure.TOO_WEAK,
            out_width=0.0,
            launch=None,
            stage_delay=float("inf"),
            t_trip=float("inf"),
        )
        if not self.enabled:
            return no_launch
        if self.is_stuck:
            return StageOutput(
                fired=False,
                failure=StageFailure.STUCK,
                out_width=0.0,
                launch=None,
                stage_delay=float("inf"),
                t_trip=0.0,
            )
        t_trip = self.trip_time(in_swing)
        if t_trip > in_dwell:
            return no_launch

        t_rise = self.rise_lag(in_swing) + self.t_intrinsic_rise
        out_width = self.wx - (t_rise - self.t_fall)
        if out_width < self.design.min_output_width:
            return StageOutput(
                fired=False,
                failure=StageFailure.COLLAPSED,
                out_width=max(out_width, 0.0),
                launch=None,
                stage_delay=float("inf"),
                t_trip=t_trip,
            )
        return StageOutput(
            fired=True,
            failure=StageFailure.NONE,
            out_width=out_width,
            launch=self.launch,
            stage_delay=t_trip + t_rise,
            t_trip=t_trip,
        )

    def sensitivity_swing(self, dwell: float, tolerance: float = 1e-4) -> float:
        """Smallest input swing that trips the stage within ``dwell``.

        Bisection over the monotone trip-time curve; used by the sizing
        methodology (M1/M2 ratio vs. input sensitivity, Section II).
        """
        if dwell <= 0.0:
            raise ConfigurationError(f"dwell must be positive, got {dwell}")
        lo, hi = 1e-3, self.design.tech.vdd
        if self.trip_time(hi) > dwell:
            return float("inf")
        while hi - lo > tolerance:
            mid = 0.5 * (lo + hi)
            if self.trip_time(mid) <= dwell:
                hi = mid
            else:
                lo = mid
        return hi
