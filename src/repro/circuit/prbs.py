"""PRBS generation and error counting: the on-chip test circuit.

The fabricated link is fed by pseudo-random binary sequence data generated
on-chip, and a test circuit performs data comparison and error counting
(Section IV).  This module reproduces that measurement methodology exactly:
standard Fibonacci LFSRs (PRBS7, PRBS15, PRBS31 with their ITU polynomial
taps) and a comparator that counts mismatches against the expected stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Standard maximal-length LFSR feedback taps (1-indexed bit positions).
PRBS_TAPS: dict[int, tuple[int, int]] = {
    7: (7, 6),  # x^7 + x^6 + 1
    9: (9, 5),  # x^9 + x^5 + 1
    15: (15, 14),  # x^15 + x^14 + 1
    23: (23, 18),  # x^23 + x^18 + 1
    31: (31, 28),  # x^31 + x^28 + 1
}


@dataclass
class PrbsGenerator:
    """A Fibonacci LFSR producing a maximal-length pseudo-random bit stream.

    ``order`` selects the polynomial (7, 9, 15, 23 or 31); ``seed`` is the
    initial register contents and must be nonzero (the all-zero state is
    the LFSR's single fixed point).
    """

    order: int
    seed: int = 1

    def __post_init__(self) -> None:
        if self.order not in PRBS_TAPS:
            raise ConfigurationError(
                f"unsupported PRBS order {self.order}; choose from {sorted(PRBS_TAPS)}"
            )
        mask = (1 << self.order) - 1
        if not 0 < self.seed <= mask:
            raise ConfigurationError(
                f"seed must be a nonzero {self.order}-bit value, got {self.seed}"
            )
        self._state = self.seed
        self._mask = mask
        tap_a, tap_b = PRBS_TAPS[self.order]
        self._shift_a = tap_a - 1
        self._shift_b = tap_b - 1

    @property
    def period(self) -> int:
        """Sequence period: 2^order - 1 for a maximal-length LFSR."""
        return (1 << self.order) - 1

    def next_bit(self) -> int:
        """Advance the register one step and return the output bit."""
        new = ((self._state >> self._shift_a) ^ (self._state >> self._shift_b)) & 1
        self._state = ((self._state << 1) | new) & self._mask
        return new

    def bits(self, n: int) -> list[int]:
        """The next ``n`` output bits."""
        if n < 0:
            raise ConfigurationError(f"n must be non-negative, got {n}")
        return [self.next_bit() for _ in range(n)]

    def reset(self, seed: int | None = None) -> None:
        """Reset the register to ``seed`` (default: the construction seed)."""
        seed = self.seed if seed is None else seed
        if not 0 < seed <= self._mask:
            raise ConfigurationError(
                f"seed must be a nonzero {self.order}-bit value, got {seed}"
            )
        self._state = seed


@dataclass
class ErrorCounter:
    """Bit comparator and error counter (the receive half of the test chip)."""

    transmitted: int = 0
    errors: int = 0

    def compare(self, sent: list[int], received: list[int]) -> int:
        """Accumulate mismatches between two equal-length bit lists."""
        if len(sent) != len(received):
            raise ConfigurationError(
                f"bit streams differ in length: {len(sent)} vs {len(received)}"
            )
        new_errors = sum(1 for a, b in zip(sent, received) if a != b)
        self.transmitted += len(sent)
        self.errors += new_errors
        return new_errors

    @property
    def bit_error_rate(self) -> float:
        """Observed errors / transmitted bits (0.0 before any traffic)."""
        if self.transmitted == 0:
            return 0.0
        return self.errors / self.transmitted


def worst_case_patterns(run_length: int = 4, repeats: int = 4) -> list[int]:
    """The paper's worst-case stress sequence family.

    Section III-B identifies '11110' — a run of 1s followed by a 0 — as the
    sequence that exposes the inverter driver's baseline-wander failure.
    This helper builds repeats of (run_length 1s, then a 0) with isolated
    1s between groups, which also stresses minimum-swing sensing.
    """
    if run_length < 1 or repeats < 1:
        raise ConfigurationError("run_length and repeats must be >= 1")
    pattern: list[int] = []
    for _ in range(repeats):
        pattern.extend([1] * run_length)
        pattern.append(0)
        pattern.extend([0, 1, 0])  # isolated 1 on a quiet baseline
    return pattern
