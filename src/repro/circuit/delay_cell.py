"""Delay cells and the alternating delay cell plan (Section III-A).

The SRLR's self-reset loop closes through a delay cell: node X's low
interval Wx — and hence the output pulse width — is set by the delay cell's
propagation delay.  The paper's baseline ("single delay cell design") uses
a 6-buffer chain in every repeater; the proposed *alternating* design gives
odd and even repeaters intentionally different delays so that the
process-induced drift of the INV rising time no longer accumulates
monotonically along the link (Eq. (1)/(2)).

Buffers are modeled as current-starved (long effective delay per stage, as
delay cells in pulse circuits are) with delay proportional to the effective
switching resistance of their devices under the current variation sample.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.mosfet import Mosfet
from repro.tech.technology import Technology
from repro.tech.variation import VariationSample
from repro.units import UM

#: Default per-buffer delay at the typical corner, seconds.  Chosen so the
#: paper's 6-buffer cell gives Wx ~ 156 ps: wide enough that the repeated
#: pulse keeps a sensible swing, narrow enough that the self-reset clears
#: within the 244 ps unit interval of the 4.1 Gb/s link.
DEFAULT_BUFFER_DELAY = 26e-12

#: Gate width of the representative starved-buffer devices, meters.
_BUF_WN = 1.2 * UM
_BUF_WP = 2.6 * UM


@dataclass(frozen=True)
class DelayCell:
    """An ``n_buffers``-stage starved-buffer delay chain."""

    n_buffers: int
    buffer_delay: float = DEFAULT_BUFFER_DELAY

    def __post_init__(self) -> None:
        if self.n_buffers < 1:
            raise ConfigurationError(f"n_buffers must be >= 1, got {self.n_buffers}")
        if self.buffer_delay <= 0.0:
            raise ConfigurationError(
                f"buffer_delay must be positive, got {self.buffer_delay}"
            )

    def nominal_delay(self) -> float:
        return self.n_buffers * self.buffer_delay

    def delay(self, sample: VariationSample, name: str) -> float:
        """Propagation delay under ``sample``'s process point.

        The delay scales with the average effective resistance of the
        buffer's NMOS and PMOS relative to their typical values, so FF dies
        produce short Wx and SS dies long Wx — the global drift that
        Section III-A's analysis rides on.  Local mismatch enters through
        the per-device draws keyed by ``name``.
        """
        scale = _strength_scale(sample, name)
        return self.n_buffers * self.buffer_delay * scale


def _strength_scale(sample: VariationSample, name: str) -> float:
    """Ratio of this die's buffer RC delay to the typical-corner delay."""
    tech = sample.tech
    vth_n = sample.vth(f"{name}.buf_n", "n", _BUF_WN)
    vth_p = sample.vth(f"{name}.buf_p", "p", _BUF_WP)
    r_now = _avg_r(tech, vth_n, vth_p)
    r_nom = _avg_r(tech, tech.vth_n, tech.vth_p)
    return r_now / r_nom


def _avg_r(tech: Technology, vth_n: float, vth_p: float) -> float:
    rn = Mosfet(tech, _BUF_WN, vth_n, "n").r_on()
    rp = Mosfet(tech, _BUF_WP, vth_p, "p").r_on()
    return 0.5 * (rn + rp)


@dataclass(frozen=True)
class DelayCellPlan:
    """Assignment of delay cells to the repeaters along a link.

    ``single_plan`` reproduces the paper's baseline (every repeater gets
    the same 6-buffer cell); ``alternating_plan`` reproduces the proposed
    design (odd repeaters long, even repeaters short, same average).
    """

    cells: tuple[DelayCell, ...]  # cycled over stage indices

    def __post_init__(self) -> None:
        if not self.cells:
            raise ConfigurationError("plan must contain at least one delay cell")

    def cell_for_stage(self, stage_index: int) -> DelayCell:
        if stage_index < 0:
            raise ConfigurationError(f"stage_index must be >= 0, got {stage_index}")
        return self.cells[stage_index % len(self.cells)]

    @property
    def mean_nominal_delay(self) -> float:
        return sum(c.nominal_delay() for c in self.cells) / len(self.cells)


def single_plan(
    n_buffers: int = 6, buffer_delay: float = DEFAULT_BUFFER_DELAY
) -> DelayCellPlan:
    """The straightforward design: one delay cell everywhere (6 buffers).

    The paper notes this choice is the most reliable at the *typical*
    process condition — its weakness only appears at skewed corners.
    """
    return DelayCellPlan(cells=(DelayCell(n_buffers, buffer_delay),))


def alternating_plan(
    n_buffers: int = 6,
    delta_fraction: float = 0.03,
    buffer_delay: float = DEFAULT_BUFFER_DELAY,
    long_first: bool = True,
) -> DelayCellPlan:
    """The proposed design: odd and even SRLRs get different delay cells.

    Odd repeaters get a cell slowed by ``delta_fraction`` (up-sized loads /
    extra starving), even repeaters one sped up by the same fraction, so
    the *average* matches the single design and the typical operating
    point is unchanged; only the corner-drift behavior differs.  The
    intentional +-delta is what re-widens pulses that the accumulated
    INV rising-time drift has narrowed (and vice versa), per Section III-A.
    """
    if not 0.0 < delta_fraction < 1.0:
        raise ConfigurationError(
            f"delta_fraction must lie in (0, 1), got {delta_fraction}"
        )
    long_cell = DelayCell(n_buffers, buffer_delay * (1.0 + delta_fraction))
    short_cell = DelayCell(n_buffers, buffer_delay * (1.0 - delta_fraction))
    cells = (long_cell, short_cell) if long_first else (short_cell, long_cell)
    return DelayCellPlan(cells=cells)
