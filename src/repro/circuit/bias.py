"""Bias generation: Oguey current reference and the adaptive swing scheme.

Section III-C: a single on-chip bias generator (587 uW, shared by all
parallel links of a router) produces the gate reference Vref for every
NMOS-based driver.  The generator combines an Oguey-style current reference
— whose output current contains no threshold-voltage term to first order
[30] — with a replica of the SRLR input device M1, so Vref *tracks the M1
threshold voltage*: dies where M1 is less sensitive (high Vth) get more
swing, dies where M1 is more sensitive get less, avoiding needless energy.

A fixed reference (no tracking) is also provided; it is what the paper's
"straightforward" design uses in the Fig. 6 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.technology import Technology
from repro.tech.variation import VariationSample
from repro.units import UA, UM, UW

#: Measured bias generator power (Section IV).
BIAS_GENERATOR_POWER = 587 * UW


@dataclass(frozen=True)
class OgueyCurrentReference:
    """Threshold-independent current reference (Oguey & Aebischer, JSSC'97).

    To first order the output current depends only on mobility and a
    device-geometry ratio, not on Vth, so it is stable across process and
    temperature (footnote 3 of the paper).  We model a small residual
    process sensitivity through the drive-strength coefficient.
    """

    i_nominal: float = 20 * UA
    process_sensitivity: float = 0.05

    def __post_init__(self) -> None:
        if self.i_nominal <= 0.0:
            raise ConfigurationError(
                f"i_nominal must be positive, got {self.i_nominal}"
            )
        if not 0.0 <= self.process_sensitivity <= 1.0:
            raise ConfigurationError(
                f"process_sensitivity must lie in [0, 1], got {self.process_sensitivity}"
            )

    def current(self, sample: VariationSample) -> float:
        """Reference current under the sample: near-constant by design.

        The residual sensitivity couples weakly to the global NMOS corner
        (mobility and Vth shifts are correlated die-to-die).
        """
        skew = sample.global_corner.dvth_n / sample.tech.sigma_vth_global
        return self.i_nominal * (1.0 - self.process_sensitivity * skew / 3.0)


class SwingReference:
    """Interface: produce the driver gate reference Vref for a die."""

    def vref(self, sample: VariationSample) -> float:
        raise NotImplementedError

    @property
    def power(self) -> float:
        """Static power of the generator (0 for an off-chip fixed rail)."""
        return 0.0


@dataclass(frozen=True)
class FixedSwingReference(SwingReference):
    """A fixed Vref rail: no Vth tracking (the straightforward design).

    Because the NMOS driver delivers roughly (Vref - Vth), a fixed Vref
    means delivered swing moves opposite to the global NMOS threshold —
    excessive at strong corners (wasted energy), starved at weak corners
    (sensing failures).  Exactly the behavior the adaptive scheme removes.
    """

    vref_value: float

    def __post_init__(self) -> None:
        if self.vref_value <= 0.0:
            raise ConfigurationError(
                f"vref_value must be positive, got {self.vref_value}"
            )

    def vref(self, sample: VariationSample) -> float:
        return self.vref_value


@dataclass(frozen=True)
class AdaptiveSwingReference(SwingReference):
    """Replica-biased Vref that tracks the M1 threshold (Section III-C).

    Vref = gain * Vth(M1 replica) + overdrive, where the overdrive term is
    set by the Oguey current through the replica and is threshold-free.
    With gain = 1 the delivered swing is first-order constant across global
    corners; gain > 1 additionally grows swing at weak (high-Vth) corners
    and trims it at strong corners, which is how the scheme both saves
    energy at strong corners and protects margin at weak ones.
    """

    overdrive: float
    gain: float = 2.3
    replica_width: float = 4.0 * UM
    reference: OgueyCurrentReference = OgueyCurrentReference()
    #: Maximum reduction of Vref below its typical value.  Boosting at weak
    #: (high-Vth) corners is unlimited (up to the Vdd clamp in the driver);
    #: trimming at strong corners is limited so the energy saving never
    #: eats into the trip-time margin — a clamp in the bias generator.
    trim_limit: float = 0.03

    def __post_init__(self) -> None:
        # ``overdrive`` may be negative: the generator can subtract a
        # threshold-free offset (current-mirror ratioing) as easily as add
        # one.  Only the composed Vref must come out positive, checked at
        # evaluation time.
        if self.gain <= 0.0:
            raise ConfigurationError(f"gain must be positive, got {self.gain}")
        if self.trim_limit < 0.0:
            raise ConfigurationError(
                f"trim_limit must be non-negative, got {self.trim_limit}"
            )

    def vref(self, sample: VariationSample) -> float:
        vth_replica = sample.vth("bias.m1_replica", "n", self.replica_width)
        # The Oguey current sets the replica overdrive; its residual process
        # dependence perturbs the overdrive term only.
        i_scale = self.reference.current(sample) / self.reference.i_nominal
        tracked = self.gain * vth_replica + self.overdrive * i_scale
        vref_typical = self.gain * sample.tech.vth_n + self.overdrive
        vref = max(tracked, vref_typical - self.trim_limit)
        if vref <= 0.0:
            raise ConfigurationError(
                f"composed Vref is non-positive ({vref}); check gain/overdrive"
            )
        return vref

    @property
    def power(self) -> float:
        return BIAS_GENERATOR_POWER


def adaptive_for_amplitude(
    tech: Technology, amplitude: float, driver_vth: float | None = None, gain: float = 2.3
) -> AdaptiveSwingReference:
    """Build an adaptive reference delivering ``amplitude`` at the typical corner.

    The NMOS driver clamps its output at roughly Vref - Vth(driver), so the
    required nominal Vref is amplitude + Vth; the replica contributes
    gain * Vth of it and the overdrive supplies the rest.
    """
    if amplitude <= 0.0:
        raise ConfigurationError(f"amplitude must be positive, got {amplitude}")
    driver_vth = tech.vth_n if driver_vth is None else driver_vth
    vref_needed = amplitude + driver_vth
    overdrive = vref_needed - gain * tech.vth_n
    return AdaptiveSwingReference(overdrive=overdrive, gain=gain)


def fixed_for_amplitude(
    tech: Technology, amplitude: float, driver_vth: float | None = None
) -> FixedSwingReference:
    """Build a fixed reference delivering ``amplitude`` at the typical corner."""
    if amplitude <= 0.0:
        raise ConfigurationError(f"amplitude must be positive, got {amplitude}")
    driver_vth = tech.vth_n if driver_vth is None else driver_vth
    return FixedSwingReference(vref_value=amplitude + driver_vth)
