"""Serialization study: trading wires for per-wire data rate.

The mesh router moves 64-bit flits at the router clock while one SRLR
wire sustains multiple Gb/s — so the datapath could serialize N flit bits
onto one wire, saving wiring and repeater area at the cost of
serialization latency and SER/DES energy.  This module quantifies that
trade with the calibrated link models: which serialization ratios the
SRLR link can actually sustain, and what each costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.circuit.link import SRLRLink
from repro.circuit.prbs import PrbsGenerator, worst_case_patterns
from repro.circuit.srlr import SRLRDesignParams, robust_design
from repro.units import FJ

#: Active silicon area of one 1 mm SRLR (die photo; the same constant is
#: exported by repro.energy.router, duplicated here to avoid a circular
#: package import).
SRLR_AREA = 47.9e-12  # m^2

#: SER/DES overhead per serialized payload bit (mux/demux flops + clocking),
#: a 45 nm-class estimate.
SERDES_ENERGY_PER_BIT = 12 * FJ


@dataclass(frozen=True)
class SerializationPoint:
    """One serialization ratio's feasibility and cost."""

    ratio: int
    wire_rate: float  # b/s each physical wire must sustain
    feasible: bool  # the SRLR link carries that rate error-free at TT
    n_wires: int  # physical wires for the flit
    energy_per_flit: float  # joules: link + SER/DES for one 64-bit flit
    serialization_latency_s: float  # extra latency of the last bit
    repeater_area: float  # m^2 of SRLRs per hop for the flit


def serialization_sweep(
    ratios: list[int],
    flit_bits: int = 64,
    flit_rate: float = 1.0e9,
    design: SRLRDesignParams | None = None,
) -> list[SerializationPoint]:
    """Evaluate serialization ratios for a ``flit_bits`` @ ``flit_rate`` port.

    Ratio 1 is the paper's parallel datapath (one wire per bit at the
    flit rate); higher ratios multiplex ``ratio`` bits per wire at
    ``ratio * flit_rate``.  Feasibility is checked by actually driving
    the calibrated link at the required wire rate.
    """
    if not ratios:
        raise ConfigurationError("ratios must not be empty")
    if flit_bits < 1 or flit_rate <= 0.0:
        raise ConfigurationError("flit_bits and flit_rate must be positive")
    design = design or robust_design()
    link = SRLRLink(design)
    pattern = PrbsGenerator(7).bits(96) + worst_case_patterns()
    e_pulse_per_hop = link.energy_per_pulse()["total"] / design.n_stages
    points: list[SerializationPoint] = []
    for ratio in ratios:
        if ratio < 1 or flit_bits % ratio != 0:
            raise ConfigurationError(
                f"ratio {ratio} must be >= 1 and divide flit_bits={flit_bits}"
            )
        wire_rate = ratio * flit_rate
        feasible = link.transmit(pattern, 1.0 / wire_rate).ok
        n_wires = flit_bits // ratio
        # Per flit: every payload bit costs one wire hop (at 50% pulse
        # activity) regardless of how it is multiplexed; SER/DES applies
        # only when ratio > 1.
        e_link = flit_bits * 0.5 * e_pulse_per_hop
        e_serdes = flit_bits * SERDES_ENERGY_PER_BIT if ratio > 1 else 0.0
        points.append(
            SerializationPoint(
                ratio=ratio,
                wire_rate=wire_rate,
                feasible=feasible,
                n_wires=n_wires,
                energy_per_flit=e_link + e_serdes,
                serialization_latency_s=(ratio - 1) / wire_rate,
                repeater_area=n_wires * SRLR_AREA,
            )
        )
    return points


def max_feasible_ratio(
    flit_bits: int = 64, flit_rate: float = 1.0e9, design: SRLRDesignParams | None = None
) -> int:
    """Largest power-of-two serialization the link sustains at TT."""
    best = 1
    ratio = 1
    while ratio * 2 <= flit_bits:
        ratio *= 2
        point = serialization_sweep([ratio], flit_bits, flit_rate, design)[0]
        if not point.feasible:
            break
        best = ratio
    return best


__all__ = [
    "SERDES_ENERGY_PER_BIT",
    "SerializationPoint",
    "max_feasible_ratio",
    "serialization_sweep",
]
