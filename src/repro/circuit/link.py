"""The SRLR-based link: repeaters chained by 1 mm wire segments (Fig. 2).

A 10 mm link is the pulse modulator (PM), ten 1 mm wire segments, and an
SRLR at the end of each segment; the demodulator (DM) reads the last SRLR.
Because every SRLR regenerates a *full-swing* pulse internally, the data is
also available at every intermediate repeater — the free 1-to-N multicast
of Section II — so :meth:`SRLRLink.transmit` records the bit stream seen at
every tap, not just the last.

The bit-level model tracks, per hop and per unit interval:

* the received peak swing (wire attenuation of the launched pulse plus any
  residual inter-symbol voltage left by earlier pulses through the
  pull-down decay constant),
* the received dwell (time above half peak, bounded by the UI),
* the stage's fire/no-fire decision and regenerated output width,
* supply energy (exact charge integral through the driver) and stage
  internal energy.

Failures emerge rather than being scripted: weak corners collapse pulse
widths along the link (Eq. (1)), strong/slow-discharge corners merge bits
or fire on residual charge (Eq. (2) and the '11110' mode of Section III-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.circuit.srlr import (
    DEFAULT_LAUNCH_WIDTH,
    SRLRDesignParams,
    SRLRStage,
    StageFailure,
)
from repro.tech.variation import VariationSample, nominal_sample
from repro.wire.attenuation import AttenuationTable, attenuation_table
from repro.wire.rc import WireSegment

#: Effective switched capacitance per delay-cell buffer (energy model).
C_BUFFER_SWITCHED = 1.15e-15


@dataclass(frozen=True)
class StageRecord:
    """Per-stage trace of a single propagating pulse (Eq. (1)/(2) data)."""

    stage_index: int
    in_swing: float
    in_dwell: float
    fired: bool
    failure: StageFailure
    out_width: float


@dataclass
class TransmissionResult:
    """Outcome of transmitting a bit pattern through the link."""

    sent: list[int]
    received: list[int]
    tap_bits: list[list[int]]  # bits observed at each SRLR tap (index = stage)
    energy: float  # total supply energy, joules
    stuck: bool  # a stage's standby margin was inverted
    #: Per-UI (swing, dwell, fired) observed at the probed stage's input,
    #: populated when ``transmit`` is called with ``probe_stage``.
    probe: list[tuple[float, float, bool]] | None = None

    @property
    def n_errors(self) -> int:
        return sum(1 for a, b in zip(self.sent, self.received) if a != b)

    @property
    def ok(self) -> bool:
        return self.n_errors == 0 and not self.stuck

    @property
    def energy_per_bit(self) -> float:
        if not self.sent:
            return 0.0
        return self.energy / len(self.sent)


@dataclass
class SRLRLink:
    """An instantiated SRLR link: one design on one die (variation sample)."""

    design: SRLRDesignParams
    sample: VariationSample = None  # type: ignore[assignment]
    launch_width: float = DEFAULT_LAUNCH_WIDTH
    #: Mismatch namespace (see :class:`SRLRStage`); bit lanes of a bus
    #: pass e.g. ``"bit17."`` so each lane draws its own local mismatch.
    name_prefix: str = ""

    stages: list[SRLRStage] = field(init=False)
    segment: WireSegment = field(init=False)

    def __post_init__(self) -> None:
        if self.sample is None:
            self.sample = nominal_sample(self.design.tech)
        if self.launch_width <= 0.0:
            raise ConfigurationError(
                f"launch_width must be positive, got {self.launch_width}"
            )
        d = self.design
        self.stages = [
            SRLRStage(d, i, self.sample, name_prefix=self.name_prefix)
            for i in range(d.n_stages)
        ]
        self.segment = WireSegment(d.tech, d.geometry, d.segment_length)
        # The PM uses the same driver design as the repeaters.
        self._pm_launch = d.driver.launch(
            self.sample, f"{self.name_prefix}pm", d.swing_reference.vref(self.sample)
        )
        # M1's gate is the receiver load; a long-channel device's gate cap
        # scales with W * L.
        self._c_load = d.tech.gate_c_per_m * d.m1_width * d.m1_length_factor
        # Per-stage internal pulse energy is a per-die constant: cache it.
        self._internal_energy = [
            self._stage_internal_energy(stage) for stage in self.stages
        ]

    # --- wire transfer plumbing ---------------------------------------------------

    def _table(self, r_up: float, r_down: float) -> AttenuationTable:
        return attenuation_table(self.segment, r_up, self._c_load, r_down)

    # --- single-pulse propagation (Eq. (1)/(2) view) -------------------------------

    def propagate_pulse(
        self, width: float | None = None, dwell_limit: float | None = None
    ) -> list[StageRecord]:
        """Propagate one isolated pulse, recording per-stage widths/swings.

        This is the paper's Section III-A experiment: watching the output
        pulse width evolve stage to stage.  ``dwell_limit`` caps the usable
        input dwell (pass the bit period to model back-to-back operation;
        default unlimited, i.e. an isolated pulse).
        """
        width = self.launch_width if width is None else width
        launch = self._pm_launch
        records: list[StageRecord] = []
        for stage in self.stages:
            table = self._table(launch.r_up, launch.r_down)
            swing = table.peak_ratio(width) * launch.amplitude
            dwell = table.width_out(width)
            if dwell_limit is not None:
                dwell = min(dwell, dwell_limit)
            out = stage.transfer(swing, dwell)
            records.append(
                StageRecord(
                    stage_index=stage.stage_index,
                    in_swing=swing,
                    in_dwell=dwell,
                    fired=out.fired,
                    failure=out.failure,
                    out_width=out.out_width,
                )
            )
            if not out.fired:
                break
            width = out.out_width
            launch = out.launch
        return records

    def latency(self, width: float | None = None) -> float:
        """End-to-end latency of one isolated pulse (launch to last tap).

        Returns ``inf`` if the pulse dies before the last stage.
        """
        width = self.launch_width if width is None else width
        launch = self._pm_launch
        total = 0.0
        for stage in self.stages:
            table = self._table(launch.r_up, launch.r_down)
            swing = table.peak_ratio(width) * launch.amplitude
            dwell = table.width_out(width)
            out = stage.transfer(swing, dwell)
            if not out.fired:
                return float("inf")
            total += table.t_peak(width) + out.stage_delay
            width = out.out_width
            launch = out.launch
        return total

    # --- energy -------------------------------------------------------------------

    def _stage_internal_energy(self, stage: SRLRStage) -> float:
        """Supply energy of one fired pulse inside one repeater."""
        d = self.design
        vdd = d.tech.vdd
        # Node X: discharged by dv_trip + rise depth, recharged from Vdd.
        dv_x = max(stage.dv_trip, 0.0) + d.rise_sense_depth
        e_node_x = d.c_node_x * dv_x * vdd
        # Delay cell: every buffer node makes a full up+down excursion.
        cell = d.delay_plan.cell_for_stage(stage.stage_index)
        e_delay = cell.n_buffers * C_BUFFER_SWITCHED * vdd**2
        # INV output and the driver gates it charges.
        e_inv = d.inv.c_out * vdd**2
        e_driver_gate = d.driver.gate_capacitance(self.sample) * vdd**2
        return e_node_x + e_delay + e_inv + e_driver_gate

    def energy_per_pulse(self) -> dict[str, float]:
        """Nominal per-pulse energy breakdown over the whole link, joules.

        One '1' bit traversing all ``n_stages`` segments: wire charge at
        every hop plus internal energy at every repeater.
        """
        d = self.design
        vdd = d.tech.vdd
        launch = self._pm_launch
        width = self.launch_width
        e_wire = 0.0
        e_internal = 0.0
        for stage in self.stages:
            table = self._table(launch.r_up, launch.r_down)
            e_wire += vdd * launch.amplitude * table.charge_in(width)
            swing = table.peak_ratio(width) * launch.amplitude
            out = stage.transfer(swing, table.width_out(width))
            if not out.fired:
                break
            e_internal += self._stage_internal_energy(stage)
            width = out.out_width
            launch = out.launch
        return {
            "wire": e_wire,
            "internal": e_internal,
            "total": e_wire + e_internal,
        }

    # --- bit-level transmission -----------------------------------------------------

    def transmit(
        self,
        bits: list[int],
        bit_period: float,
        noise_sigma: float = 0.0,
        rng=None,
        probe_stage: int | None = None,
    ) -> TransmissionResult:
        """Send ``bits`` at one bit per ``bit_period`` and demodulate each tap.

        The model walks hop by hop: the full launch schedule of one hop is
        transformed into the receive schedule of the next, tracking the
        residual (incompletely discharged) far-end voltage across unit
        intervals — the mechanism behind both the '11110' failure and
        spurious residual-triggered firing.

        ``noise_sigma`` adds zero-mean Gaussian voltage noise (thermal +
        supply) to every received swing, which is what makes the BER of a
        working link finite rather than exactly zero; pass an
        ``numpy.random.Generator`` as ``rng`` for reproducibility.

        ``probe_stage`` records the per-UI received (swing, dwell, fired)
        at that stage's input — the eye-diagram observation point.
        """
        if bit_period <= 0.0:
            raise ConfigurationError(
                f"bit_period must be positive, got {bit_period}"
            )
        if any(b not in (0, 1) for b in bits):
            raise ConfigurationError("bits must be 0/1")
        if noise_sigma < 0.0:
            raise ConfigurationError(
                f"noise_sigma must be non-negative, got {noise_sigma}"
            )
        if noise_sigma > 0.0 and rng is None:
            rng = np.random.default_rng(0)
        if probe_stage is not None and not 0 <= probe_stage < len(self.stages):
            raise ConfigurationError(
                f"probe_stage must be in [0, {len(self.stages)}), got {probe_stage}"
            )
        probe: list[tuple[float, float, bool]] | None = (
            [] if probe_stage is not None else None
        )

        d = self.design
        vdd = d.tech.vdd
        n = len(bits)
        energy = 0.0
        stuck = any(s.is_stuck for s in self.stages)

        # Launch schedule entering the current hop: per-UI pulse width or 0.
        widths = [self.launch_width if b else 0.0 for b in bits]
        launch = self._pm_launch
        tap_bits: list[list[int]] = []

        if stuck:
            # A stuck stage fires continuously: every UI reads as '1'
            # downstream.  (Energy of a broken link is not meaningful.)
            ones = [1] * n
            return TransmissionResult(
                sent=list(bits),
                received=ones,
                tap_bits=[ones[:] for _ in self.stages],
                energy=0.0,
                stuck=True,
            )

        for stage in self.stages:
            table = self._table(launch.r_up, launch.r_down)
            tau = table.decay_tau
            residual = 0.0
            out_widths = [0.0] * n
            fired_bits = [0] * n
            decay_frac = math.exp(-bit_period / tau)
            # UI-average of an exponentially decaying residual, as a
            # fraction of its start-of-UI value: the effective constant
            # level M1 integrates over a pulse-free interval.
            avg_frac = (tau / bit_period) * (1.0 - decay_frac)
            # Self-reset dead time: after a fire, X must be recharged and
            # the delay cell cleared before the stage can sense again.
            busy_until = -float("inf")
            for k in range(n):
                w = widths[k]
                if w > 0.0:
                    energy += vdd * launch.amplitude * table.charge_in(w)
                    t_peak = table.t_peak(w)
                    residual_at_peak = residual * math.exp(
                        -min(t_peak, bit_period) / tau
                    )
                    swing = table.peak_ratio(w) * launch.amplitude + residual_at_peak
                    dwell = min(table.width_out(w), bit_period)
                else:
                    # No pulse launched: the stage integrates the decaying
                    # residual baseline, which may still trip it (the
                    # spurious '1' behind the '11110' failure).
                    swing = residual * avg_frac
                    dwell = bit_period
                    t_peak = 0.0
                if noise_sigma > 0.0:
                    swing += float(rng.normal(0.0, noise_sigma))
                ui_start = k * bit_period
                if ui_start >= busy_until:
                    out = stage.transfer(swing, dwell)
                    if out.fired:
                        fired_bits[k] = 1
                        out_widths[k] = out.out_width
                        energy += self._stage_internal_energy(stage)
                        busy_until = (
                            ui_start + out.t_trip + stage.wx + d.reset_recovery
                        )
                # else: the repeater is still mid-reset and the pulse is
                # lost — the overspeed failure that bounds the data rate.
                # The wire state evolves regardless of the receiver.
                if probe is not None and stage.stage_index == probe_stage:
                    probe.append((swing, dwell, bool(fired_bits[k])))
                # Residual at the start of the next UI: the far-end voltage
                # decays through the pull-down path from its peak.
                if w > 0.0 and swing > 0.0:
                    residual = swing * math.exp(-max(bit_period - t_peak, 0.0) / tau)
                else:
                    residual = residual * decay_frac
            tap_bits.append(fired_bits)
            widths = out_widths
            launch = stage.launch

        return TransmissionResult(
            sent=list(bits),
            received=tap_bits[-1][:],
            tap_bits=tap_bits,
            energy=energy,
            stuck=False,
            probe=probe,
        )

    # --- operating-point search -----------------------------------------------------

    def max_data_rate(
        self,
        pattern: list[int],
        rate_lo: float = 0.5e9,
        rate_hi: float = 12e9,
        tolerance: float = 0.05e9,
    ) -> float:
        """Highest data rate at which ``pattern`` transmits without error.

        Bisection over the bit period; returns 0.0 if even ``rate_lo``
        fails.  This reproduces the measurement methodology behind the
        paper's 4.1 Gb/s maximum data rate.
        """
        if not 0.0 < rate_lo < rate_hi:
            raise ConfigurationError("need 0 < rate_lo < rate_hi")

        def ok(rate: float) -> bool:
            return self.transmit(pattern, 1.0 / rate).ok

        if not ok(rate_lo):
            return 0.0
        if ok(rate_hi):
            return rate_hi
        lo, hi = rate_lo, rate_hi
        while hi - lo > tolerance:
            mid = 0.5 * (lo + hi)
            if ok(mid):
                lo = mid
            else:
                hi = mid
        return lo
