"""Current-starved inverter amplifier (the INV of Fig. 4/5).

The INV senses node X: its output rises when M1 has discharged X below the
inverter switching threshold, and falls again when the self-reset recharges
X.  Two of its properties drive the whole link analysis:

* its **switching threshold** V_M sets the node-X discharge depth required
  to register a pulse (together with the keeper-set standby voltage), and
* its **rising time grows as the input pulse swing shrinks** (slower X
  discharge), while its falling time barely moves — the asymmetry that
  enters the paper's pulse-width equation Wout = Wx - (t_rise - t_fall).

The EN port gates the amplifier so 3-port SRLRs can sit at crossbar
crosspoints (Fig. 3): with EN low the stage never fires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.mosfet import Mosfet
from repro.tech.variation import VariationSample
from repro.units import FF, UM


@dataclass(frozen=True)
class CurrentStarvedInverter:
    """Behavioral current-starved inverter.

    Attributes
    ----------
    width_n / width_p:
        Device widths, meters.
    starve_factor:
        Drive-current reduction from the starving stack (> 1); raises gain
        and slows edges symmetrically.
    c_out:
        Lumped output load (driver gate + self-loading), farads.
    beta_skew:
        sqrt(beta_n / beta_p) entering the switching-threshold formula; the
        paper's INV is skewed so V_M sits safely below node X's standby
        voltage Vdd - Vth.
    """

    width_n: float = 1.0 * UM
    width_p: float = 2.4 * UM
    starve_factor: float = 2.5
    c_out: float = 2.8 * FF
    beta_skew: float = 1.0

    def __post_init__(self) -> None:
        for key, value in (
            ("width_n", self.width_n),
            ("width_p", self.width_p),
            ("starve_factor", self.starve_factor),
            ("c_out", self.c_out),
            ("beta_skew", self.beta_skew),
        ):
            if value <= 0.0:
                raise ConfigurationError(f"{key} must be positive, got {value}")

    def switching_threshold(self, sample: VariationSample, name: str) -> float:
        """Inverter threshold V_M under the variation sample.

        Standard static CMOS formula with an effective beta ratio:
        V_M = (Vdd - |Vtp| + r * Vtn) / (1 + r), r = sqrt(beta_n/beta_p).
        """
        tech = sample.tech
        vth_n = sample.vth(f"{name}.inv_n", "n", self.width_n)
        vth_p = sample.vth(f"{name}.inv_p", "p", self.width_p)
        r = self.beta_skew
        return (tech.vdd - vth_p + r * vth_n) / (1.0 + r)

    def _starved_current(self, sample: VariationSample, name: str, polarity: str) -> float:
        tech = sample.tech
        if polarity == "n":
            width = self.width_n
            vth = sample.vth(f"{name}.inv_n", "n", width)
        else:
            width = self.width_p
            vth = sample.vth(f"{name}.inv_p", "p", width)
        device = Mosfet(tech, width, vth, polarity)
        return device.ids_sat(tech.vdd) / self.starve_factor

    def intrinsic_rise(self, sample: VariationSample, name: str) -> float:
        """Output rise time once X has crossed V_M (PMOS charging c_out)."""
        i_p = self._starved_current(sample, name, "p")
        if i_p <= 0.0:
            raise ConfigurationError("PMOS delivers no current; check parameters")
        return self.c_out * sample.tech.vdd / i_p

    def fall_time(self, sample: VariationSample, name: str) -> float:
        """Output fall time on reset (NMOS discharging c_out).

        This edge is launched by the full-swing reset recharging X, so it
        does not depend on the input pulse swing — the asymmetry Section
        III-A builds on.
        """
        i_n = self._starved_current(sample, name, "n")
        if i_n <= 0.0:
            raise ConfigurationError("NMOS delivers no current; check parameters")
        return self.c_out * sample.tech.vdd / i_n
