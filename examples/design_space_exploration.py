"""Design-space exploration with the `repro.dse` engine.

Run:  PYTHONPATH=src python examples/design_space_exploration.py

Walks the three layers of the DSE subsystem on the paper's own
questions:

1. the Section II sizing study as an exhaustive grid (one shared grid
   implementation with ``analysis.sweep.sweep_grid``);
2. the Fig. 8 energy/bandwidth-density study as an NSGA-II search with
   the Fig. 6 Monte Carlo yield gate, including the frontier-membership
   verdict against the Table I baselines;
3. a custom space showing constraints, Latin-hypercube sampling and the
   Pareto utilities directly.

Set ``REPRO_DSE_FULL=1`` for publication-size budgets (the default is
sized for a quick demonstration / the CI examples smoke job); set
``REPRO_DSE_JOBS=N`` to fan candidate batches across N processes.
"""

from __future__ import annotations

import os

from repro.dse import (
    GridStrategy,
    LhsStrategy,
    Nsga2Strategy,
    ParamSpace,
    Zdt1Evaluator,
    continuous,
    fig8_study,
    format_front,
    format_summary,
    hypervolume,
    run_dse,
    sizing_study,
)

FULL = os.environ.get("REPRO_DSE_FULL", "") not in ("", "0")
N_JOBS = int(os.environ.get("REPRO_DSE_JOBS", "1"))


def sizing_grid() -> None:
    """Section II sizing trade on an exhaustive grid."""
    result = sizing_study(
        strategy=GridStrategy(levels=3 if FULL else 2), n_jobs=N_JOBS
    )
    print(format_summary(result))
    print()
    print(format_front(result, title="Section II sizing: energy vs margin front"))
    best_margin = max(r.objectives["min_margin_mv"] for r in result.front)
    print(f"\nbest worst-stage margin on the front: {best_margin:.0f} mV")


def fig8_nsga2() -> None:
    """Fig. 8 frontier claim under NSGA-II search."""
    outcome = fig8_study(
        strategy=Nsga2Strategy(
            population=16 if FULL else 8, generations=6 if FULL else 2
        ),
        # The yield gate is a Monte Carlo estimate: too few dies and a
        # fragile design can pass by sampling luck, so the quick mode
        # still spends a meaningful die count here.
        mc_runs=40 if FULL else 32,
        n_jobs=N_JOBS,
    )
    print(format_summary(outcome.result))
    print()
    print(format_front(outcome.result, title="Fig. 8: energy vs bandwidth density front"))
    paper = outcome.paper_point
    print(f"\npaper operating point (reproduced): "
          f"{paper['energy_fj_per_bit_per_cm']:.0f} fJ/bit/cm at "
          f"{paper['bandwidth_density_gbps_per_um']:.2f} Gb/s/um")
    print(outcome.verdict())


def custom_space() -> None:
    """Constraints, LHS sampling and Pareto utilities on an analytic problem."""
    space = ParamSpace(
        parameters=tuple(continuous(f"x{i}", 0.0, 1.0) for i in range(3)),
        constraints=("x0 + x1 <= 1.5",),
    )
    result = run_dse(
        space,
        Zdt1Evaluator(dimension=3),
        LhsStrategy(n_samples=64 if FULL else 24),
        base_seed=7,
        n_jobs=N_JOBS,
    )
    signed = result.signed_front()
    hv = hypervolume(signed, (1.5, 10.0))
    print(format_summary(result))
    print(f"\nLHS front of ZDT1 (known ideal: f2 = 1 - sqrt(f1)); "
          f"hypervolume to (1.5, 10) = {hv:.3f}")


def main() -> None:
    print("=== 1. Section II sizing study (grid) ===")
    sizing_grid()
    print("\n=== 2. Fig. 8 frontier study (NSGA-II + yield gate) ===")
    fig8_nsga2()
    print("\n=== 3. Custom space (constraints, LHS, Pareto utilities) ===")
    custom_space()


if __name__ == "__main__":
    main()
