"""Design-space exploration with the public API.

Run:  python examples/design_space_exploration.py

Uses the sizing methodology of Section II as a library: repeater
insertion length, M1/M2 sensitivity sizing, the swing/energy/margin
trade, and driver-width optimization — then builds a custom design from
the chosen point and verifies it end to end.
"""

from __future__ import annotations

import dataclasses

from repro.analysis import format_table
from repro.circuit import (
    NMOSDriver,
    PrbsGenerator,
    SRLRLink,
    optimize_driver,
    robust_design,
    sensitivity_vs_m1_m2_ratio,
    sweep_segment_length,
    sweep_swing_energy,
    worst_case_patterns,
)
from repro.units import GBPS, MM, UM


def main() -> None:
    # 1. Why 1 mm repeater insertion (the mesh router-to-router distance).
    rows = [
        [
            f"{p.segment_length / MM:.1f}",
            "yes" if p.ok else "no",
            f"{p.swing_at_receiver * 1000:.0f}",
            "-" if p.energy_per_bit_per_mm == float("inf")
            else f"{p.energy_per_bit_per_mm:.1f}",
        ]
        for p in sweep_segment_length([0.5 * MM, 1.0 * MM, 2.0 * MM, 2.5 * MM])
    ]
    print(format_table(
        ["segment [mm]", "works", "swing [mV]", "energy [fJ/b/mm]"],
        rows, title="Repeater insertion length"))

    # 2. M1/M2 sizing: input sensitivity vs the current ratio.
    rows = [
        [f"{p.m1_width / UM:.0f}", f"{p.current_ratio:.1f}",
         f"{p.min_swing * 1000:.0f}"]
        for p in sensitivity_vs_m1_m2_ratio([2 * UM, 4 * UM, 8 * UM])
    ]
    print("\n" + format_table(
        ["M1 width [um]", "I(M1)/I(M2) at swing", "sensitivity floor [mV]"],
        rows, title="M1/M2 sizing (Section II)"))

    # 3. Swing/energy/margin trade.
    rows = [
        [f"{p.swing * 1000:.0f}", f"{p.energy_per_bit_per_mm:.1f}",
         f"{p.margin * 1000:.0f}"]
        for p in sweep_swing_energy([0.26, 0.28, 0.30, 0.32, 0.34])
    ]
    print("\n" + format_table(
        ["swing [mV]", "energy [fJ/b/mm]", "margin [mV]"],
        rows, title="Swing selection"))

    # 4. Driver sizing under a rate constraint.
    choice = optimize_driver([0.6, 0.8, 1.0, 1.3, 1.6])
    print(f"\nchosen driver: up {choice.width_up / UM:.1f} um / "
          f"down {choice.width_down / UM:.1f} um -> "
          f"{choice.energy_per_bit_per_mm:.1f} fJ/b/mm at "
          f"{choice.max_data_rate / GBPS:.2f} Gb/s")

    # 5. Build the custom design and verify it end to end.
    custom = dataclasses.replace(
        robust_design(nominal_swing=0.31),
        driver=NMOSDriver(width_up=choice.width_up, width_down=choice.width_down),
    )
    link = SRLRLink(custom)
    pattern = PrbsGenerator(7).bits(127) + worst_case_patterns()
    outcome = link.transmit(pattern, 1.0 / (4.1 * GBPS))
    print(f"\ncustom design at 4.1 Gb/s: errors {outcome.n_errors}/{len(pattern)}, "
          f"energy {0.5 * link.energy_per_pulse()['total'] * 1e15 / 10:.1f} fJ/bit/mm")


if __name__ == "__main__":
    main()
