"""Signal-integrity deep dive: eye diagrams, crosstalk, supply scaling.

Run:  python examples/signal_integrity.py

Goes beyond the paper's reported numbers with the analyses a link
designer would run next: the voltage/timing eye collapsing toward the
maximum data rate, neighbor crosstalk versus the sensing margin across
wire spacings, and the energy/performance frontier across supply
voltages (why 0.8 V).
"""

from __future__ import annotations

from repro.analysis import e15_crosstalk, format_table
from repro.circuit import SRLRLink, eye_vs_rate, robust_design
from repro.energy import sweep_vdd
from repro.units import GBPS, PS


def eye_study() -> None:
    link = SRLRLink(robust_design())
    rates = [3.0e9, 4.1e9, 4.8e9, 5.2e9, 5.6e9]
    rows = []
    for eye in eye_vs_rate(link, rates, n_bits=384):
        rows.append(
            [
                f"{eye.data_rate / GBPS:.1f}",
                f"{eye.one_min * 1000:.0f}",
                f"{eye.zero_max * 1000:.0f}",
                f"{eye.margin * 1000:.0f}",
                f"{eye.timing_margin / PS:.0f}",
                "open" if eye.open else "CLOSED",
                f"{eye.ber_estimate():.1e}",
            ]
        )
    print(
        format_table(
            [
                "rate [Gb/s]",
                "worst 1 [mV]",
                "worst 0 [mV]",
                "V margin [mV]",
                "T margin [ps]",
                "eye",
                "BER est.",
            ],
            rows,
            title="Eye collapse toward the maximum data rate "
            "(closes in TIME first: the self-reset dead time)",
        )
    )


def vdd_study() -> None:
    rows = []
    for p in sweep_vdd([0.7, 0.75, 0.8, 0.9, 1.0]):
        rows.append(
            [
                f"{p.vdd:.2f}",
                "yes" if p.ok_at_4g1 else "no",
                f"{p.max_data_rate / GBPS:.2f}" if p.max_data_rate else "-",
                "-" if p.energy_fj_per_bit_per_mm == float("inf")
                else f"{p.energy_fj_per_bit_per_mm:.1f}",
                f"{p.swing * 1000:.0f}",
            ]
        )
    print(
        "\n"
        + format_table(
            ["Vdd [V]", "4.1G ok", "max rate [Gb/s]", "energy [fJ/b/mm]", "swing [mV]"],
            rows,
            title="Supply scaling: the energy/rate frontier behind the 0.8 V choice",
        )
    )


def main() -> None:
    eye_study()
    vdd_study()
    print()
    print(e15_crosstalk().text)


if __name__ == "__main__":
    main()
