"""Mesh NoC study: latency/throughput curves and the SRLR energy payoff.

Run:  python examples/mesh_noc_traffic.py

Simulates a 4x4 mesh of the paper's routers (64 bits, 5 ports, 4 VCs, 16
buffers, 3-stage pipeline, XY routing, credit flow control) under
synthetic traffic, then prices the same event trace with the SRLR
low-swing datapath versus a conventional full-swing datapath.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.noc import NocSimulator, price_stats

K = 4
RATES = (0.05, 0.15, 0.25, 0.35)
PATTERNS = ("uniform", "transpose", "hotspot")


def main() -> None:
    rows = []
    for pattern in PATTERNS:
        for rate in RATES:
            sim = NocSimulator(K, injection_rate=rate, pattern=pattern, seed=5)
            try:
                stats = sim.run(warmup=150, measure=400)
            except Exception as exc:  # saturated hotspot loads can refuse to drain
                rows.append([pattern, rate, "saturated", "-", "-", "-"])
                continue
            srlr = price_stats(stats, datapath="srlr")
            full_swing = price_stats(stats, datapath="full_swing")
            rows.append(
                [
                    pattern,
                    rate,
                    f"{stats.average_latency:.1f}",
                    f"{stats.throughput(K * K):.3f}",
                    f"{srlr.average_power * 1e3:.1f}",
                    f"{full_swing.datapath / srlr.datapath:.2f}x",
                ]
            )
    print(
        format_table(
            [
                "pattern",
                "inj rate",
                "avg latency [cyc]",
                "throughput [pkt/node/cyc]",
                "NoC power (SRLR) [mW]",
                "datapath saving",
            ],
            rows,
            title=f"{K}x{K} mesh NoC, 64-bit flits, XY routing",
        )
    )
    print(
        "\n'datapath saving' is the crossbar+link energy ratio of a "
        "conventional full-swing datapath to the SRLR low-swing datapath "
        "for the identical traffic trace."
    )


if __name__ == "__main__":
    main()
