"""Process-variation study: corners, Monte Carlo, and the Fig. 6 sweep.

Run:  python examples/link_variation_study.py

Walks the Section III robustness story: per-stage pulse-width drift at a
skewed corner (Eq. 1), corner-plane pass maps for the two driver styles,
and a small Monte Carlo swing sweep comparing the robust and
straightforward designs (Fig. 6).
"""

from __future__ import annotations

from repro.analysis import (
    e2_pulse_width_dynamics,
    e3_driver_modes,
    format_table,
)
from repro.mc import immunity_ratio, run_monte_carlo
from repro.mc.yield_analysis import design_variants

N_RUNS = 150  # dies per Monte Carlo point (paper: 1000; keep the demo quick)


def main() -> None:
    print(e2_pulse_width_dynamics().text)
    print()
    print(e3_driver_modes().text)
    print()

    # A compact Fig. 6: error probability vs swing for both designs.
    rows = []
    selected = None
    for swing in (0.28, 0.30, 0.32):
        variants = design_variants(nominal_swing=swing)
        robust = run_monte_carlo(variants["robust"], n_runs=N_RUNS)
        straightforward = run_monte_carlo(
            variants["straightforward"], n_runs=N_RUNS
        )
        if swing == 0.30:
            selected = (straightforward, robust)
        rows.append(
            [
                f"{swing * 1000:.0f} mV",
                f"{straightforward.error_probability:.3f}",
                f"{robust.error_probability:.3f}",
            ]
        )
    print(
        format_table(
            ["nominal swing", "straightforward P(err)", "robust P(err)"],
            rows,
            title=f"Fig. 6 (compact): {N_RUNS}-die Monte Carlo per point",
        )
    )
    assert selected is not None
    ratio = immunity_ratio(*selected)
    print(f"\nimmunity ratio at the selected swing: {ratio:.2f}x (paper ~3.7x)")


if __name__ == "__main__":
    main()
