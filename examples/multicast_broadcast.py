"""Multicast study: the SRLR's free 1-to-N deliveries (Section II).

Run:  python examples/multicast_broadcast.py

Shows both levels of the claim: (1) on the link, the data is available at
every intermediate repeater tap; (2) in the NoC, XY-tree multicast with
taps beats unicast replication on hops and energy.
"""

from __future__ import annotations

from repro.analysis import e11_multicast, e11_multicast_simulated
from repro.circuit import PrbsGenerator, SRLRLink, robust_design
from repro.noc import MeshTopology, multicast_tree_links, tap_destinations


def link_level_demo() -> None:
    link = SRLRLink(robust_design())
    bits = PrbsGenerator(7).bits(64)
    outcome = link.transmit(bits, 1.0 / 4.1e9)
    print("Link level — Fig. 2's '1st SRLR to 10th SRLR' traversal:")
    print(f"  sent 64 PRBS bits; errors at the far end: {outcome.n_errors}")
    agreeing = sum(1 for tap in outcome.tap_bits if tap == bits)
    print(
        f"  intermediate repeaters carrying the identical bit stream: "
        f"{agreeing}/{len(outcome.tap_bits)} (the free 1-to-N multicast)\n"
    )


def tree_demo() -> None:
    topo = MeshTopology(4)
    src = (0, 0)
    dests = frozenset({(1, 0), (2, 0), (3, 0), (3, 2)})
    tree = multicast_tree_links(topo, src, dests)
    taps = tap_destinations(topo, src, dests)
    print("Tree level — one 1-to-4 multicast on a 4x4 mesh:")
    print(f"  XY tree link hops: {len(tree)}")
    print(f"  unicast fan-out would need: "
          f"{sum(abs(d[0]-src[0]) + abs(d[1]-src[1]) for d in dests)} hops")
    print(f"  destinations served as free straight-through taps: {sorted(taps)}\n")


def main() -> None:
    link_level_demo()
    tree_demo()
    print(e11_multicast(k=8, n_samples=120).text)
    print()
    print(e11_multicast_simulated(measure=300).text)


if __name__ == "__main__":
    main()
