"""Link diagnostics: localizing a failing repeater through its taps.

Run:  python examples/link_diagnostics.py

The SRLR's intermediate taps make the datapath *observable*: every
repeater outputs a clean full-swing stream, so a failing 10 mm link can
be diagnosed to the exact stage by comparing tap bits against the sent
data — and the per-stage sensing margins explain why that stage failed.
This script screens Monte Carlo dies, diagnoses the failing ones, and
prints the margin profile of the worst die it finds.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.circuit import SRLRLink, diagnose_link, margin_profile, robust_design
from repro.tech import monte_carlo_sample, tech_45nm_soi


def main() -> None:
    tech = tech_45nm_soi()
    design = robust_design()

    print("screening 120 Monte Carlo dies at 4.1 Gb/s...\n")
    rows = []
    worst_link = None
    worst_margin = float("inf")
    n_fail = 0
    for seed in range(2013, 2133):
        sample = monte_carlo_sample(tech, seed)
        link = SRLRLink(design, sample)
        diagnosis = diagnose_link(link)
        weakest = margin_profile(link)[0]
        if weakest[1] < worst_margin:
            worst_margin = weakest[1]
            worst_link = (seed, link, diagnosis)
        if diagnosis.ok:
            continue
        n_fail += 1
        failing = diagnosis.stages[diagnosis.failing_stage]
        rows.append(
            [
                seed,
                diagnosis.failing_stage,
                failing.failure.value,
                f"{failing.margin * 1000:.0f}",
                diagnosis.weakest_stage,
            ]
        )
    print(
        format_table(
            [
                "die (seed)",
                "first failing stage",
                "failure mode",
                "its margin [mV]",
                "weakest stage by margin",
            ],
            rows,
            title=f"failing dies: {n_fail}/120",
        )
    )

    seed, link, diagnosis = worst_link
    print(f"\nmargin profile of the weakest die (seed {seed}):")
    profile_rows = [
        [stage, f"{margin * 1000:.1f}"] for stage, margin in margin_profile(link)
    ]
    print(format_table(["stage", "sensing margin [mV]"], profile_rows))
    print(
        "\nNegative margin = the stage's sensitivity floor exceeds the swing "
        "it receives: the repair shortlist an adaptive per-stage trim (or a "
        "binning flow) would work from."
    )


if __name__ == "__main__":
    main()
