"""Quickstart: build the paper's SRLR link and measure its headline numbers.

Run:  python examples/quickstart.py

Builds the process-variation-robust 10 mm SRLR link (NMOS driver +
alternating delay cells + adaptive swing), pushes PRBS traffic through it
at 4.1 Gb/s, and reports the operating point the paper measures in
Section IV.
"""

from __future__ import annotations

from repro.analysis import format_kv
from repro.circuit import PrbsGenerator, SRLRLink, robust_design, worst_case_patterns
from repro.energy import full_swing_link_energy, srlr_link_energy
from repro.units import GBPS, MW, PS


def main() -> None:
    # 1. The paper's proposed design: every knob has a physical meaning
    #    and a default calibrated to the 45 nm SOI test chip.
    design = robust_design()
    link = SRLRLink(design)

    # 2. Drive it like the on-chip test circuit: PRBS data plus the
    #    '11110' worst-case stressors, at the paper's 4.1 Gb/s.
    pattern = PrbsGenerator(7).bits(200) + worst_case_patterns()
    outcome = link.transmit(pattern, bit_period=1.0 / (4.1 * GBPS))
    assert outcome.ok, "the calibrated link must be error-free at TT"

    # 3. Measure the headline numbers.
    max_rate = link.max_data_rate(pattern)
    energy = srlr_link_energy(design)
    full_swing = full_swing_link_energy(design)

    print(
        format_kv(
            "SRLR 1-bit 10 mm link at 0.8 V (paper values in parentheses)",
            [
                ("errors over stress pattern", f"{outcome.n_errors}/{len(pattern)}"),
                ("max data rate [Gb/s] (4.1)", f"{max_rate / GBPS:.2f}"),
                ("energy [fJ/bit/mm] (40.4)", f"{energy.fj_per_bit_per_mm:.1f}"),
                ("link power [mW] (1.66)", f"{energy.power / MW:.2f}"),
                ("bandwidth density [Gb/s/um] (6.83)",
                 f"{energy.bandwidth_density_gbps_per_um:.2f}"),
                ("10 mm latency [ps]", f"{link.latency() / PS:.0f}"),
                ("full-swing baseline [fJ/bit/mm]",
                 f"{full_swing.fj_per_bit_per_mm:.1f}"),
                ("low-swing saving",
                 f"{full_swing.fj_per_bit_per_mm / energy.fj_per_bit_per_mm:.2f}x"),
            ],
        )
    )

    # 4. Free multicast: the same bits are visible at every repeater tap.
    taps_agree = all(tap == pattern for tap in outcome.tap_bits)
    print(f"\nall {len(outcome.tap_bits)} intermediate taps carry the data: "
          f"{taps_agree}")


if __name__ == "__main__":
    main()
