"""Legacy setup shim.

The offline environment has no ``wheel`` package, so PEP 660 editable
installs fail; with this shim and no ``[build-system]`` table in
pyproject.toml, ``pip install -e .`` takes the legacy ``setup.py develop``
path, which works without network access.
"""

from setuptools import setup

setup()
