"""Run a design-space exploration study from the command line.

Run:  PYTHONPATH=src python scripts/run_dse.py [study] [options]

Studies
-------
``fig8``    Fig. 8 re-cast: energy/bit/cm vs bandwidth density over
            (swing, wire pitch) under the Fig. 6 yield gate, then the
            frontier-membership verdict against the Table I baselines.
``sizing``  Section II re-cast: energy/bit/mm vs worst-stage sensing
            margin over (M1/M2 widths, swing, driver scale).

Typical invocations::

    python scripts/run_dse.py fig8 --strategy nsga2 --jobs 4
    python scripts/run_dse.py sizing --strategy grid --levels 3
    python scripts/run_dse.py fig8 --resume          # continue after ^C

Every evaluation is appended durably to the run store (default
``results/dse/<study>-<strategy>.jsonl``) as it completes, so an
interrupted search loses at most the in-flight batch; ``--resume``
replays the store and recomputes only what is missing.  For a fixed
``--seed`` the reported front is bitwise identical for every ``--jobs``
value and for any interrupt/resume pattern (docs/DSE.md explains why).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.dse import (
    Fig8Outcome,
    format_report,
    make_strategy,
    fig8_study,
    sizing_study,
)
from repro.dse.store import RunStore, StoreError
from repro.runtime import ResultCache


def parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="run_dse.py",
        description="Multi-objective design-space exploration studies.",
    )
    parser.add_argument(
        "study", nargs="?", default="fig8", choices=["fig8", "sizing"],
        help="which paper claim to explore (default: fig8)",
    )
    parser.add_argument(
        "--strategy", default="nsga2", choices=["grid", "lhs", "nsga2"],
        help="search strategy (default: nsga2)",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (0 = all cores)")
    parser.add_argument("--seed", type=int, default=2013,
                        help="base seed (default: 2013)")
    parser.add_argument("--population", type=int, default=16,
                        help="NSGA-II population (default: 16)")
    parser.add_argument("--generations", type=int, default=6,
                        help="NSGA-II generations (default: 6)")
    parser.add_argument("--levels", type=int, default=4,
                        help="grid points per axis (default: 4)")
    parser.add_argument("--samples", type=int, default=48,
                        help="LHS sample count (default: 48)")
    parser.add_argument("--mc-runs", type=int, default=None, metavar="N",
                        help="Monte Carlo dies per candidate"
                             " (default: 40 for fig8, 0 for sizing)")
    parser.add_argument("--store", type=Path, default=None, metavar="PATH",
                        help="run store path (default:"
                             " results/dse/<study>-<strategy>.jsonl)")
    parser.add_argument("--no-store", action="store_true",
                        help="run without persisting evaluations")
    parser.add_argument("--resume", action="store_true",
                        help="continue an interrupted run from its store")
    parser.add_argument("--fresh", action="store_true",
                        help="delete an existing store and start over")
    parser.add_argument("--cache", type=Path, nargs="?", default=None,
                        const=Path("results/.dse-cache"), metavar="DIR",
                        help="cross-run result cache"
                             " (default dir: results/.dse-cache)")
    return parser.parse_args(argv)


def build_strategy(args: argparse.Namespace):
    if args.strategy == "grid":
        return make_strategy("grid", levels=args.levels)
    if args.strategy == "lhs":
        return make_strategy("lhs", n_samples=args.samples)
    return make_strategy(
        "nsga2", population=args.population, generations=args.generations
    )


def main(argv: list[str] | None = None) -> int:
    args = parse_args(sys.argv[1:] if argv is None else argv)
    store_path = args.store or Path("results/dse") / f"{args.study}-{args.strategy}.jsonl"
    if args.fresh and store_path.exists():
        store_path.unlink()
    store = None if args.no_store else RunStore(store_path)
    cache = ResultCache(args.cache) if args.cache is not None else None
    strategy = build_strategy(args)

    def progress(generation: int, fresh: int, total: int) -> None:
        print(
            f"[dse] generation {generation}: {fresh} evaluated, "
            f"{total} candidates so far",
            file=sys.stderr,
        )

    kwargs = dict(
        strategy=strategy,
        base_seed=args.seed,
        n_jobs=args.jobs,
        cache=cache,
        store=store,
        resume=args.resume,
        progress=progress,
    )
    t0 = time.time()
    try:
        if args.study == "fig8":
            mc_runs = 40 if args.mc_runs is None else args.mc_runs
            outcome = fig8_study(mc_runs=mc_runs, **kwargs)
            result = outcome.result
        else:
            mc_runs = 0 if args.mc_runs is None else args.mc_runs
            outcome = None
            result = sizing_study(mc_runs=mc_runs, **kwargs)
    except StoreError as exc:
        print(f"run store: {exc}", file=sys.stderr)
        print(
            "hint: --resume continues the stored run; --fresh discards it;"
            " --store PATH writes elsewhere",
            file=sys.stderr,
        )
        return 2
    except KeyboardInterrupt:
        if store is not None:
            print(
                f"\ninterrupted — completed evaluations are safe in {store_path};"
                f" re-run with --resume to continue",
                file=sys.stderr,
            )
        else:
            print("\ninterrupted (no store; nothing persisted)", file=sys.stderr)
        return 130
    finally:
        if store is not None:
            store.close()

    title = {
        "fig8": "Fig. 8 re-cast: energy vs bandwidth density",
        "sizing": "Section II re-cast: energy vs sensing margin",
    }[args.study]
    print(format_report(result, title=title))
    if store is not None:
        print(f"\nrun store: {store_path} ({len(store)} records)")
    if cache is not None:
        print(cache.summary())
    if isinstance(outcome, Fig8Outcome):
        print(f"\npaper operating point: "
              f"{outcome.paper_point['energy_fj_per_bit_per_cm']:.0f} fJ/bit/cm at "
              f"{outcome.paper_point['bandwidth_density_gbps_per_um']:.2f} Gb/s/um")
        print(outcome.verdict())
    print(f"total wall time: {time.time() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
