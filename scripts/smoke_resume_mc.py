"""Interrupt-and-resume smoke: SIGKILL a Monte Carlo campaign, resume it.

Run:  PYTHONPATH=src python scripts/smoke_resume_mc.py [--runs N] [--jobs N]

The end-to-end acceptance check for the resilient execution layer
(docs/RESILIENCE.md): a child process runs a checkpointed Monte Carlo
campaign and SIGKILLs itself partway through — the hardest interrupt
there is, no cleanup code runs.  The parent then resumes the campaign
from the surviving checkpoint and asserts the result is **bitwise
identical** to an uninterrupted reference run, with strictly fewer dies
recomputed than the total.  Exits nonzero on any mismatch.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.circuit.srlr import robust_design
from repro.mc.engine import run_monte_carlo
from repro.runtime import CheckpointStore

#: Dies per executor chunk in the child (small, so the kill lands
#: mid-campaign with several chunks already durable).
CHUNK = 4
#: Chunks the child completes before killing itself.
KILL_AFTER = 3


def child(path: str, n_runs: int, n_jobs: int) -> None:
    """Run the checkpointed campaign and SIGKILL ourselves mid-flight."""
    import multiprocessing

    from repro.runtime import ParallelExecutor

    state = {"chunks": 0}

    def violent_progress(metrics) -> None:
        # Fires after each chunk is checkpointed; the kill leaves a
        # valid store holding the completed chunks.
        state["chunks"] += 1
        if state["chunks"] >= KILL_AFTER:
            # Take the pool workers down first: a SIGKILL'd parent
            # orphans them blocked on their call queue forever, and an
            # orphan holding the inherited stdout pipe open would hang
            # anything reading this script's output (tail, CI log
            # capture).
            for proc in multiprocessing.active_children():
                proc.kill()
            os.kill(os.getpid(), signal.SIGKILL)

    executor = ParallelExecutor(
        n_jobs=n_jobs, chunk_size=CHUNK, progress=violent_progress
    )
    run_monte_carlo(
        robust_design(), n_runs=n_runs, executor=executor, checkpoint=path
    )
    raise SystemExit("child was supposed to die mid-campaign")


def main() -> int:
    parser = argparse.ArgumentParser(prog="smoke_resume_mc.py")
    parser.add_argument("--runs", type=int, default=48)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--child", metavar="PATH", default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.child is not None:
        child(args.child, args.runs, args.jobs)
        return 1  # unreachable

    design = robust_design()
    print(f"reference run: {args.runs} dies, jobs={args.jobs} ...")
    reference = run_monte_carlo(design, n_runs=args.runs, n_jobs=args.jobs)

    with tempfile.TemporaryDirectory() as td:
        path = str(Path(td) / "mc-checkpoint.jsonl")
        cmd = [
            sys.executable, os.path.abspath(__file__),
            "--child", path, "--runs", str(args.runs), "--jobs", str(args.jobs),
        ]
        print("spawning child campaign (will SIGKILL itself mid-run) ...")
        # DEVNULL keeps the child (and any worker it fails to reap) off
        # our stdout pipe; the child prints nothing of interest anyway.
        proc = subprocess.run(
            cmd,
            env=os.environ.copy(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        if proc.returncode != -signal.SIGKILL:
            print(f"FAIL: child exited {proc.returncode}, expected SIGKILL",
                  file=sys.stderr)
            return 1

        survivors = CheckpointStore(path)
        survivors.load()
        n_saved = len(survivors)
        if not 0 < n_saved < args.runs:
            print(f"FAIL: checkpoint holds {n_saved}/{args.runs} dies — the "
                  "kill did not land mid-campaign", file=sys.stderr)
            return 1
        print(f"child died with {n_saved}/{args.runs} dies durable; resuming ...")

        resumed = run_monte_carlo(
            design, n_runs=args.runs, n_jobs=args.jobs,
            checkpoint=path, resume=True,
        )

    if resumed.runs != reference.runs:
        print("FAIL: resumed campaign differs from uninterrupted reference",
              file=sys.stderr)
        return 1
    print(f"OK: resumed result bitwise identical to uninterrupted run "
          f"({n_saved} dies replayed, {args.runs - n_saved} recomputed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
