#!/usr/bin/env python
"""Campaign-service worker: lease tasks from a shared database and run them.

Run:  PYTHONPATH=src python scripts/run_worker.py --db campaigns.sqlite [--drain]

Start as many of these as you like (any machine that can see the
database file); each leases one task row at a time under a heartbeat +
lease-expiry protocol, executes it through the resilient executor, and
commits a bitwise-deterministic payload.  Killing a worker — even with
SIGKILL — loses nothing: its leases expire and other workers pick the
rows back up.  See docs/SERVICE.md.
"""

from __future__ import annotations

import argparse
import sys

from repro.runtime import ResilienceConfig, ResultCache
from repro.service import run_worker


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--db", required=True, metavar="PATH",
                        help="campaign database file")
    parser.add_argument("--worker-id", default=None,
                        help="stable worker name (default: host:pid)")
    parser.add_argument("--campaign", default=None,
                        help="only lease tasks of this campaign")
    parser.add_argument("--lease-seconds", type=float, default=60.0,
                        help="lease duration; a dead worker's tasks return "
                        "to the queue after this long (default 60)")
    parser.add_argument("--poll-seconds", type=float, default=0.5,
                        help="idle polling interval (default 0.5)")
    parser.add_argument("--max-tasks", type=int, default=None,
                        help="stop after executing this many tasks")
    parser.add_argument("--drain", action="store_true",
                        help="exit once every matching task row is settled "
                        "(instead of polling for new work forever)")
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="DB-level attempts before a task is parked as "
                        "failed (default 3)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-task soft timeout in seconds")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="shared ResultCache directory (content-addressed "
                        "task payload reuse across workers and campaigns)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="executor processes inside this worker "
                        "(default 1; the usual scale-out axis is more "
                        "workers, not more jobs)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    resilience = ResilienceConfig(timeout=args.timeout)
    cache = ResultCache(args.cache) if args.cache else None
    report = run_worker(
        args.db,
        worker_id=args.worker_id,
        lease_seconds=args.lease_seconds,
        poll_seconds=args.poll_seconds,
        campaign=args.campaign,
        max_tasks=args.max_tasks,
        drain=args.drain,
        max_attempts=args.max_attempts,
        resilience=resilience,
        cache=cache,
        n_jobs=args.jobs,
    )
    print(
        f"worker {report.worker_id}: {report.tasks_done} done, "
        f"{report.tasks_failed} failed, {report.lost_races} lost race(s), "
        f"{report.cache_hits} cache hit(s)"
    )
    for line in report.failures:
        print(f"  failed {line}", file=sys.stderr)
    return 1 if report.tasks_failed else 0


if __name__ == "__main__":
    sys.exit(main())
