#!/usr/bin/env python
"""Workload smoke: a trace-replay fault campaign through the service path.

Run:  PYTHONPATH=src python scripts/smoke_workload.py

The end-to-end acceptance check for the workload axis (docs/WORKLOADS.md):
a payload-carrying bursty run is recorded into a trace file, a tiny
trace-replay fault campaign is submitted through the service CLI's
``--workload``/``--trace-path`` overlay flags, drained by a worker
process, and the merged result must be **bitwise identical** to the
uninterrupted single-process ``run_fault_campaign`` baseline built from
the same config — proving that workload parameters (and the trace's
*content* identity, via the canonical ``trace_hash``) survive the
submit -> canonical-config -> task-expansion -> worker -> merge round
trip, with the replayed payload bits pricing the links
data-dependently on both sides.  Exits nonzero on any mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict
from pathlib import Path

from repro.fault.campaign import FaultCampaignConfig, run_fault_campaign
from repro.noc import MeshTopology, record_trace
from repro.service import CampaignDB, get_adapter
from repro.service.cli import main as service_main
from repro.workload import build_traffic

REPO = Path(__file__).resolve().parent.parent

#: Tiny but multi-point: 4 task rows on a 3x3 mesh replaying the trace.
CAMPAIGN = {
    "bers": [1e-3, 1e-2],
    "protocols": ["none", "crc"],
    "k": 3,
    "warmup": 20,
    "measure": 80,
    "seed": 7,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="overall smoke budget in seconds")
    args = parser.parse_args()

    tmp = Path(tempfile.mkdtemp(prefix="workload_smoke_"))
    db_path = tmp / "campaigns.sqlite"

    # Record a payload-carrying bursty run into a trace file: the
    # campaign replays real per-flit bits, so link pricing runs the
    # data-dependent model end to end.
    source = build_traffic(
        MeshTopology(CAMPAIGN["k"]), "bursty",
        injection_rate=0.08, seed=CAMPAIGN["seed"], payload_mode="random",
    )
    trace = record_trace(source, 60)
    trace_path = tmp / "workload.trace.json"
    trace.save(trace_path)

    # Submit through the real CLI so the --workload/--trace-path overlay
    # flags are on the tested path, not just FaultCampaignConfig(...).
    rc = service_main([
        "--db", str(db_path),
        "submit",
        "--name", "workload-smoke",
        "--kind", "fault",
        "--config", json.dumps(CAMPAIGN),
        "--workload", "trace",
        "--trace-path", str(trace_path),
    ])
    if rc != 0:
        print(f"FAIL: submit exited {rc}", file=sys.stderr)
        return 1

    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    worker = subprocess.Popen(
        [
            sys.executable,
            str(REPO / "scripts" / "run_worker.py"),
            "--db", str(db_path),
            "--worker-id", "workload-worker",
            "--drain",
            "--poll-seconds", "0.1",
        ],
        env=env,
    )
    deadline = time.monotonic() + args.timeout
    try:
        while worker.poll() is None:
            if time.monotonic() > deadline:
                print("FAIL: worker did not drain in time", file=sys.stderr)
                worker.kill()
                return 1
            time.sleep(0.2)
        if worker.returncode != 0:
            print(f"FAIL: worker exited {worker.returncode}", file=sys.stderr)
            return 1
    finally:
        if worker.poll() is None:
            worker.kill()

    adapter = get_adapter("fault")
    with CampaignDB(db_path) as db:
        _id, _kind, config = db.campaign("workload-smoke")
        status = db.status("workload-smoke")[0]
        payloads = db.payloads("workload-smoke")
    if not status.complete:
        print(f"FAIL: campaign incomplete: {status}", file=sys.stderr)
        return 1
    if config.get("workload") != "trace":
        print(f"FAIL: stored config lost the workload overlay: {config}",
              file=sys.stderr)
        return 1
    if config.get("trace_hash") != trace.content_hash():
        print("FAIL: canonical config does not carry the trace's content "
              f"hash: {config.get('trace_hash')}", file=sys.stderr)
        return 1
    merged = adapter.merge(config, payloads)

    baseline_cfg = FaultCampaignConfig(**{
        k: tuple(v) if isinstance(v, list) else v
        for k, v in config.items()
        if k != "trace_hash"
    })
    print(f"campaign: {baseline_cfg.describe()}, "
          f"engine {baseline_cfg.effective_engine(warn=False)}")
    baseline = run_fault_campaign(baseline_cfg)

    got = json.dumps([asdict(p) for p in merged.points], sort_keys=True)
    want = json.dumps([asdict(p) for p in baseline.points], sort_keys=True)
    if got != want:
        print("FAIL: merged service result differs from the "
              "single-process baseline", file=sys.stderr)
        return 1
    print(f"OK: {status.n_done}/{status.n_tasks} trace-replay tasks "
          f"(trace {trace.content_hash()[:12]}, {trace.n_packets} packets); "
          "merged result bitwise-identical to the single-process baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
