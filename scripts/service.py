#!/usr/bin/env python
"""Campaign-service CLI: submit | status | results | retry-failed.

Run:  PYTHONPATH=src python scripts/service.py --db campaigns.sqlite <cmd> ...

Thin entry point over :mod:`repro.service.cli`; see docs/SERVICE.md for
the workflow (submit a campaign, start workers with
``scripts/run_worker.py``, watch ``status``, merge with ``results``).
"""

from __future__ import annotations

import sys

from repro.service.cli import main

if __name__ == "__main__":
    sys.exit(main())
