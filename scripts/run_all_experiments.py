"""Run every experiment (E1-E22) and write the full report bundle.

Run:  python scripts/run_all_experiments.py [--full] [outdir]

The canonical "reproduce the paper" entry point: executes all experiment
drivers, prints each report, and saves them under ``results/`` (one text
file per experiment plus a combined REPORT.txt).  ``--full`` selects
publication-fidelity sizes.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.analysis import (
    calibration_report,
    e1_fig4_waveforms,
    e2_pulse_width_dynamics,
    e3_driver_modes,
    e4_fig6_montecarlo,
    e5_headline,
    e6_fig8_energy_density,
    e7_table1,
    e8_bias_overhead,
    e9_router_power,
    e10_noc_breakdown,
    e11_multicast,
    e11_multicast_simulated,
    e12_ablation,
    e13_sizing,
    e14_noc_traffic,
    e15_crosstalk,
    e16_bypass,
    e17_bus,
    e18_temperature,
    e19_system_studies,
    e20_routing,
    e21_tech_scaling,
    e22_equalized_baseline,
)

FULL = "--full" in sys.argv
MC_RUNS = 1000 if FULL else 250
SWINGS = (0.27, 0.285, 0.30, 0.315, 0.33) if FULL else (0.28, 0.30, 0.32)


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    outdir = Path(args[0]) if args else Path("results")
    outdir.mkdir(exist_ok=True)

    runs = [
        lambda: e1_fig4_waveforms(),
        lambda: e2_pulse_width_dynamics(),
        lambda: e3_driver_modes(),
        lambda: e4_fig6_montecarlo(swings=SWINGS, n_runs=MC_RUNS),
        lambda: e5_headline(),
        lambda: e6_fig8_energy_density(),
        lambda: e7_table1(),
        lambda: e8_bias_overhead(),
        lambda: e9_router_power(),
        lambda: e10_noc_breakdown(),
        lambda: e11_multicast(),
        lambda: e11_multicast_simulated(),
        lambda: e12_ablation(n_runs=MC_RUNS),
        lambda: e13_sizing(),
        lambda: e14_noc_traffic(),
        lambda: e15_crosstalk(),
        lambda: e16_bypass(),
        lambda: e17_bus(),
        lambda: e18_temperature(),
        lambda: e19_system_studies(),
        lambda: e20_routing(),
        lambda: e21_tech_scaling(),
        lambda: e22_equalized_baseline(),
    ]

    combined: list[str] = []
    for run in runs:
        t0 = time.time()
        result = run()
        elapsed = time.time() - t0
        header = f"=== {result.experiment_id}: {result.title} ({elapsed:.1f}s) ==="
        print(header)
        print(result.text)
        print()
        (outdir / f"{result.experiment_id}.txt").write_text(result.text + "\n")
        combined.append(header + "\n" + result.text + "\n")

    calibration = calibration_report()
    combined.append("=== calibration ===\n" + calibration + "\n")
    (outdir / "REPORT.txt").write_text("\n".join(combined))
    print(f"wrote {len(runs) + 1} reports under {outdir}/")


if __name__ == "__main__":
    main()
