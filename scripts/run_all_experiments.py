"""Run every experiment (E1-E22) and write the full report bundle.

Run:  python scripts/run_all_experiments.py [--full] [--jobs N]
                                            [--cache[=DIR]] [outdir]

The canonical "reproduce the paper" entry point: executes all experiment
drivers, prints each report, and saves them under ``results/`` (one text
file per experiment plus a combined REPORT.txt).  ``--full`` selects
publication-fidelity sizes.  ``--jobs N`` fans the Monte Carlo blocks
(E4, E12) across N worker processes — results are identical for every N
— and ``--cache`` reuses previously computed MC blocks from an on-disk
content-addressed cache (default ``results/.mc-cache``).

A failing experiment no longer aborts the suite: the remaining
experiments still run, a failure table is printed at the end, and the
process exits nonzero so CI notices.
"""

from __future__ import annotations

import sys
import time
import traceback
from pathlib import Path

from repro.analysis import (
    calibration_report,
    e1_fig4_waveforms,
    e2_pulse_width_dynamics,
    e3_driver_modes,
    e4_fig6_montecarlo,
    e5_headline,
    e6_fig8_energy_density,
    e7_table1,
    e8_bias_overhead,
    e9_router_power,
    e10_noc_breakdown,
    e11_multicast,
    e11_multicast_simulated,
    e12_ablation,
    e13_sizing,
    e14_noc_traffic,
    e15_crosstalk,
    e16_bypass,
    e17_bus,
    e18_temperature,
    e19_system_studies,
    e20_routing,
    e21_tech_scaling,
    e22_equalized_baseline,
)
from repro.runtime import ResultCache, print_progress

FULL = "--full" in sys.argv
MC_RUNS = 1000 if FULL else 250
SWINGS = (0.27, 0.285, 0.30, 0.315, 0.33) if FULL else (0.28, 0.30, 0.32)


def _parse_args(argv: list[str]) -> tuple[Path, int, Path | None]:
    """(outdir, n_jobs, cache_dir) from the command line."""
    outdir = Path("results")
    n_jobs = 1
    cache_dir: Path | None = None
    positional: list[str] = []
    for arg in argv:
        if arg == "--full":
            continue
        if arg.startswith("--jobs"):
            value = arg.split("=", 1)[1] if "=" in arg else "0"
            try:
                n_jobs = int(value)
            except ValueError:
                raise SystemExit(f"--jobs expects an integer, got {value!r}")
        elif arg.startswith("--cache"):
            cache_dir = (
                Path(arg.split("=", 1)[1]) if "=" in arg else Path("results/.mc-cache")
            )
        elif arg.startswith("--"):
            raise SystemExit(f"unknown option {arg!r} (see module docstring)")
        else:
            positional.append(arg)
    if positional:
        outdir = Path(positional[0])
    return outdir, n_jobs, cache_dir


def main() -> None:
    outdir, n_jobs, cache_dir = _parse_args(sys.argv[1:])
    outdir.mkdir(exist_ok=True)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    progress = print_progress if n_jobs != 1 else None
    mc_kwargs = {"n_jobs": n_jobs, "cache": cache, "progress": progress}

    runs = [
        ("E1", lambda: e1_fig4_waveforms()),
        ("E2", lambda: e2_pulse_width_dynamics()),
        ("E3", lambda: e3_driver_modes()),
        ("E4", lambda: e4_fig6_montecarlo(swings=SWINGS, n_runs=MC_RUNS, **mc_kwargs)),
        ("E5", lambda: e5_headline()),
        ("E6", lambda: e6_fig8_energy_density()),
        ("E7", lambda: e7_table1()),
        ("E8", lambda: e8_bias_overhead()),
        ("E9", lambda: e9_router_power()),
        ("E10", lambda: e10_noc_breakdown()),
        ("E11", lambda: e11_multicast()),
        ("E11b", lambda: e11_multicast_simulated()),
        ("E12", lambda: e12_ablation(n_runs=MC_RUNS, **mc_kwargs)),
        ("E13", lambda: e13_sizing()),
        ("E14", lambda: e14_noc_traffic()),
        ("E15", lambda: e15_crosstalk()),
        ("E16", lambda: e16_bypass()),
        ("E17", lambda: e17_bus()),
        ("E18", lambda: e18_temperature()),
        ("E19", lambda: e19_system_studies()),
        ("E20", lambda: e20_routing()),
        ("E21", lambda: e21_tech_scaling()),
        ("E22", lambda: e22_equalized_baseline()),
    ]

    t_start = time.time()
    combined: list[str] = []
    # (label, exception summary, elapsed) per failed experiment: one bad
    # experiment must not abort the other 22 — the suite continues,
    # reports a failure table, and exits nonzero at the end.
    failures: list[tuple[str, str, float]] = []
    for label, run in runs:
        t0 = time.time()
        try:
            result = run()
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            elapsed = time.time() - t0
            failures.append((label, f"{type(exc).__name__}: {exc}", elapsed))
            header = f"=== {label}: FAILED ({elapsed:.1f}s) ==="
            print(header, file=sys.stderr)
            traceback.print_exc()
            combined.append(header + "\n" + traceback.format_exc() + "\n")
            continue
        elapsed = time.time() - t0
        header = f"=== {result.experiment_id}: {result.title} ({elapsed:.1f}s) ==="
        print(header)
        print(result.text)
        print()
        (outdir / f"{result.experiment_id}.txt").write_text(result.text + "\n")
        combined.append(header + "\n" + result.text + "\n")

    calibration = calibration_report()
    combined.append("=== calibration ===\n" + calibration + "\n")
    (outdir / "REPORT.txt").write_text("\n".join(combined))
    n_ok = len(runs) - len(failures)
    print(f"wrote {n_ok + 1} reports under {outdir}/ "
          f"in {time.time() - t_start:.1f}s (jobs={n_jobs})")
    if cache is not None:
        print(cache.summary())
    if failures:
        print(f"\n{len(failures)}/{len(runs)} experiments FAILED:", file=sys.stderr)
        width = max(len(label) for label, _, _ in failures)
        for label, summary, elapsed in failures:
            print(f"  {label:<{width}}  {summary}  ({elapsed:.1f}s)", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()
