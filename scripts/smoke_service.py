#!/usr/bin/env python
"""Kill-a-worker smoke: two service workers, one SIGKILLed mid-lease.

Run:  PYTHONPATH=src python scripts/smoke_service.py [--lease-seconds S]

The end-to-end acceptance check for the campaign service
(docs/SERVICE.md): a small fault campaign is submitted to a fresh
database, two worker processes start draining it, and one is SIGKILLed
while it provably holds a lease — the hardest interrupt there is, no
cleanup code runs.  The survivor waits out the dead worker's lease
expiry, re-leases its row, and finishes the campaign.  The merged
result must be **bitwise identical** to an uninterrupted single-process
``run_fault_campaign`` baseline.  Exits nonzero on any mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict
from pathlib import Path

from repro.fault.campaign import FaultCampaignConfig, run_fault_campaign
from repro.service import CampaignDB, get_adapter

REPO = Path(__file__).resolve().parent.parent

#: Small but not instant: 16 task rows so the kill lands with work left.
CAMPAIGN = {
    "bers": [1e-4, 1e-3, 1e-2, 5e-2],
    "protocols": ["none", "crc", "e2e", "reroute"],
    "k": 2,
    "warmup": 20,
    "measure": 80,
    "seed": 7,
}


def spawn_worker(db: Path, worker_id: str, lease_seconds: float) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    return subprocess.Popen(
        [
            sys.executable,
            str(REPO / "scripts" / "run_worker.py"),
            "--db", str(db),
            "--worker-id", worker_id,
            "--drain",
            "--lease-seconds", str(lease_seconds),
            "--poll-seconds", "0.1",
        ],
        env=env,
    )


def leased_by(db_path: Path, worker_id: str) -> int:
    with CampaignDB(db_path) as db:
        return len(db.leased_keys(worker_id))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--lease-seconds", type=float, default=3.0,
                        help="victim lease duration — the recovery latency "
                        "this smoke pays once (default 3)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="overall smoke budget in seconds")
    args = parser.parse_args()

    tmp = Path(tempfile.mkdtemp(prefix="service_smoke_"))
    db_path = tmp / "campaigns.sqlite"

    adapter = get_adapter("fault")
    config = adapter.canonical_config(CAMPAIGN)
    tasks = [(t.key, t.index, t.spec) for t in adapter.expand(config)]
    with CampaignDB(db_path) as db:
        receipt = db.submit("smoke", "fault", config, tasks)
    print(f"submitted campaign {receipt.config_key[:16]}: "
          f"{receipt.n_tasks} tasks")

    deadline = time.monotonic() + args.timeout
    victim = spawn_worker(db_path, "victim", args.lease_seconds)
    survivor = spawn_worker(db_path, "survivor", args.lease_seconds)
    try:
        # Kill the victim only once it provably holds a lease, so the
        # expiry-recovery path is genuinely exercised.
        while leased_by(db_path, "victim") == 0:
            if victim.poll() is not None:
                print("FAIL: victim exited before holding a lease",
                      file=sys.stderr)
                return 1
            if time.monotonic() > deadline:
                print("FAIL: victim never leased a task", file=sys.stderr)
                return 1
            time.sleep(0.05)
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        orphaned = leased_by(db_path, "victim")
        print(f"SIGKILLed victim holding {orphaned} lease(s)")

        while survivor.poll() is None:
            if time.monotonic() > deadline:
                print("FAIL: survivor did not drain in time", file=sys.stderr)
                survivor.kill()
                return 1
            time.sleep(0.2)
        if survivor.returncode != 0:
            print(f"FAIL: survivor exited {survivor.returncode}",
                  file=sys.stderr)
            return 1
    finally:
        for proc in (victim, survivor):
            if proc.poll() is None:
                proc.kill()

    with CampaignDB(db_path) as db:
        status = db.status("smoke")[0]
        payloads = db.payloads("smoke")
    if not status.complete:
        print(f"FAIL: campaign incomplete: {status}", file=sys.stderr)
        return 1
    merged = adapter.merge(config, payloads)

    baseline_cfg = FaultCampaignConfig(**{
        k: tuple(v) if isinstance(v, list) else v for k, v in config.items()
    })
    baseline = run_fault_campaign(baseline_cfg)

    got = json.dumps([asdict(p) for p in merged.points], sort_keys=True)
    want = json.dumps([asdict(p) for p in baseline.points], sort_keys=True)
    if got != want:
        print("FAIL: merged service result differs from the "
              "single-process baseline", file=sys.stderr)
        return 1
    print(f"OK: {status.n_done}/{status.n_tasks} tasks; merged result "
          "bitwise-identical to the single-process baseline "
          "(after SIGKILLing a lease-holding worker)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
