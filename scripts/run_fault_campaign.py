"""Run the fault-injection campaign from the command line.

Run:  PYTHONPATH=src python scripts/run_fault_campaign.py [options]

The study: sweep raw per-bit link error rates against the selectable
protection schemes (none / crc / e2e / reroute) on the cycle-level mesh
and report, per point, the *effective* fJ/bit/mm (protection overheads
included, divided by intact payload bit-mm), goodput, and the raw
protocol counters — plus per-link Clopper-Pearson BER bounds recovered
from the injected error counts.

Typical invocations::

    python scripts/run_fault_campaign.py                      # default grid
    python scripts/run_fault_campaign.py --jobs 4             # parallel
    python scripts/run_fault_campaign.py --bers 1e-6 1e-4 1e-2
    python scripts/run_fault_campaign.py --protocols none crc
    python scripts/run_fault_campaign.py --smoke              # CI-sized run
    python scripts/run_fault_campaign.py --checkpoint run.jsonl
    python scripts/run_fault_campaign.py --checkpoint run.jsonl --resume
    python scripts/run_fault_campaign.py --task-timeout 300 --retries 2
    python scripts/run_fault_campaign.py --topology torus --k 4
    python scripts/run_fault_campaign.py --topology cmesh --concentration 4
    python scripts/run_fault_campaign.py --topology chiplet --k 2 \
        --chiplets-x 2 --chiplets-y 2

``--checkpoint`` persists each completed point to a crash-safe JSONL
store; after a kill (Ctrl-C, OOM, SIGKILL) re-run with ``--resume`` to
compute only the missing points — the result is bitwise identical to an
uninterrupted run.  ``--task-timeout``/``--retries`` opt points into the
resilient task layer (docs/RESILIENCE.md): a point that exhausts its
budget is quarantined and reported instead of aborting the campaign.

For a fixed ``--seed``, per-link fault counts and every summary
statistic are bitwise identical for any ``--jobs`` value (fault RNG
streams are content-addressed per link; see docs/FAULTS.md).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ConfigurationError
from repro.fault import (
    PROTOCOLS,
    FaultCampaignConfig,
    format_fault_report,
    run_fault_campaign,
)
from repro.noc.topology import TOPOLOGY_KINDS
from repro.runtime import ResilienceConfig
from repro.workload import COLLECTIVES, PAYLOAD_MODES, WORKLOADS


def parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="run_fault_campaign.py",
        description="Effective fJ/bit/mm and goodput vs raw link BER "
        "per protection scheme.",
    )
    parser.add_argument("--k", type=int, default=4,
                        help="router-grid radix; per-chiplet local mesh "
                        "radix for --topology chiplet (default: 4)")
    parser.add_argument("--topology", choices=sorted(TOPOLOGY_KINDS),
                        default="mesh",
                        help="topology family (default: mesh)")
    parser.add_argument("--concentration", type=int, default=1, metavar="C",
                        help="cores per router for --topology cmesh "
                        "(default: 1, i.e. unset)")
    parser.add_argument("--chiplets-x", type=int, default=1, metavar="N",
                        help="chiplet grid width for --topology chiplet")
    parser.add_argument("--chiplets-y", type=int, default=1, metavar="N",
                        help="chiplet grid height for --topology chiplet")
    parser.add_argument("--noi-scale", type=float, default=2.0, metavar="X",
                        help="NoI link length multiplier for --topology "
                        "chiplet (default: 2.0)")
    parser.add_argument("--rate", type=float, default=0.05, metavar="R",
                        help="injection rate, packets/node/cycle (default: 0.05)")
    parser.add_argument("--pattern", default="uniform",
                        help="traffic pattern (default: uniform)")
    parser.add_argument("--size-flits", type=int, default=2, metavar="N",
                        help="flits per packet (default: 2)")
    parser.add_argument("--warmup", type=int, default=100)
    parser.add_argument("--measure", type=int, default=400)
    parser.add_argument("--drain-limit", type=int, default=20_000)
    parser.add_argument("--bers", type=float, nargs="+", metavar="BER",
                        default=[1e-6, 1e-4, 1e-3, 1e-2],
                        help="raw per-bit error rates to sweep")
    parser.add_argument("--protocols", nargs="+", choices=PROTOCOLS,
                        default=list(PROTOCOLS),
                        help="protection schemes (default: all)")
    parser.add_argument("--datapath", choices=["srlr", "full_swing"],
                        default="srlr",
                        help="datapath energy model (default: srlr)")
    parser.add_argument("--engine", choices=["fast", "reference"],
                        default="fast",
                        help="NoC cycle-loop engine (default: fast; both "
                        "produce identical results)")
    parser.add_argument("--multicast-fraction", type=float, default=0.0,
                        metavar="F",
                        help="share of injected packets that are multicast "
                        "(default: 0; forces the reference engine with an "
                        "explicit EngineFallbackWarning when --engine fast)")
    parser.add_argument("--multicast-degree", type=int, default=4, metavar="D",
                        help="destinations per multicast packet (default: 4)")
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        default="synthetic",
                        help="workload family (default: synthetic)")
    parser.add_argument("--trace-path", default=None, metavar="FILE",
                        help="trace file to replay (--workload trace)")
    parser.add_argument("--burst-on", type=float, default=0.05, metavar="P",
                        help="Markov P(off->on) per cycle (--workload bursty)")
    parser.add_argument("--burst-off", type=float, default=0.15, metavar="P",
                        help="Markov P(on->off) per cycle (--workload bursty)")
    parser.add_argument("--collective-fraction", type=float, default=0.25,
                        metavar="F",
                        help="multicast share (--workload collective)")
    parser.add_argument("--collective", choices=sorted(COLLECTIVES),
                        default="row",
                        help="collective destination set (default: row)")
    parser.add_argument("--payload-mode", choices=sorted(PAYLOAD_MODES),
                        default="constant",
                        help="what bits flits carry; non-constant switches "
                        "link pricing to counted bit transitions "
                        "(default: constant)")
    parser.add_argument("--no-coupling", action="store_true",
                        help="drop the crosstalk coupling term from "
                        "data-dependent link pricing")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (0 = all cores)")
    parser.add_argument("--seed", type=int, default=7,
                        help="base seed (default: 7)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI-sized run: 3x3 mesh, short windows, "
                        "one high BER, every protocol once")
    parser.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="crash-safe JSONL store: each completed point "
                        "is persisted durably as it lands")
    parser.add_argument("--resume", action="store_true",
                        help="continue a checkpoint written by the same "
                        "configuration, computing only missing points")
    parser.add_argument("--task-timeout", type=float, default=None, metavar="S",
                        help="per-point soft wall-clock timeout in seconds "
                        "(enables the resilient task layer)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="retry budget per point after a failure "
                        "(enables the resilient task layer; default 2 "
                        "when --task-timeout is set)")
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint")
    return args


def build_config(args: argparse.Namespace) -> FaultCampaignConfig:
    shared = dict(
        topology=args.topology,
        concentration=args.concentration,
        chiplets_x=args.chiplets_x,
        chiplets_y=args.chiplets_y,
        noi_scale=args.noi_scale,
        workload=args.workload,
        trace_path=args.trace_path,
        burst_on=args.burst_on,
        burst_off=args.burst_off,
        collective_fraction=args.collective_fraction,
        collective=args.collective,
        payload_mode=args.payload_mode,
        coupling=not args.no_coupling,
    )
    if args.smoke:
        # --smoke shrinks windows and the BER grid but keeps the
        # requested topology, so CI can smoke any family member.
        return FaultCampaignConfig(
            k=3,
            injection_rate=0.06,
            pattern="uniform",
            size_flits=2,
            warmup=30,
            measure=150,
            drain_limit=20_000,
            bers=(2e-3,),
            protocols=tuple(args.protocols),
            datapath=args.datapath,
            seed=args.seed,
            engine=args.engine,
            multicast_fraction=args.multicast_fraction,
            multicast_degree=args.multicast_degree,
            **shared,
        )
    return FaultCampaignConfig(
        k=args.k,
        injection_rate=args.rate,
        pattern=args.pattern,
        size_flits=args.size_flits,
        warmup=args.warmup,
        measure=args.measure,
        drain_limit=args.drain_limit,
        bers=tuple(args.bers),
        protocols=tuple(args.protocols),
        datapath=args.datapath,
        seed=args.seed,
        engine=args.engine,
        multicast_fraction=args.multicast_fraction,
        multicast_degree=args.multicast_degree,
        **shared,
    )


def build_resilience(args: argparse.Namespace) -> "ResilienceConfig | None":
    if args.task_timeout is None and args.retries is None:
        return None
    return ResilienceConfig(
        timeout=args.task_timeout,
        max_retries=args.retries if args.retries is not None else 2,
    )


def main(argv: list[str] | None = None) -> int:
    args = parse_args(sys.argv[1:] if argv is None else argv)
    try:
        config = build_config(args)
    except ConfigurationError as exc:
        # Topology/builder mistakes (e.g. --topology cmesh without
        # --concentration) name the offending parameter; no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    t0 = time.time()
    result = run_fault_campaign(
        config,
        n_jobs=args.jobs,
        resilience=build_resilience(args),
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    print(format_fault_report(result))
    livelocked = [p for p in result.points if p.livelocked]
    if livelocked:
        print(
            f"\n{len(livelocked)} point(s) hit the livelock detector "
            "(partial counters; see docs/FAULTS.md)"
        )
    print(f"\n{len(result.points)} points, wall time {time.time() - t0:.1f}s")
    if result.failures:
        print(
            f"{len(result.failures)} point(s) exhausted their retry budget "
            "and were quarantined (see table above)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
