"""E14 — NoC-level: mesh latency/throughput/energy, SRLR vs full swing.

The system-level payoff: the same simulated traffic priced with the SRLR
low-swing datapath versus a conventional full-swing datapath.

This module also benchmarks the two cycle-loop engines against each
other (reference object-graph loop vs the struct-of-arrays batch engine
in :mod:`repro.noc.fastsim`) on the standard 8x8 uniform-random
workload, appending a perf-trajectory record to
``benchmarks/output/BENCH_noc_traffic.json`` so engine regressions show
up across commits.  Set ``REPRO_BENCH_CHECK=1`` (the CI smoke job does)
to fail the run when the measured speedup falls below 5x.
"""

from __future__ import annotations

import json
import os
import time

from conftest import FULL, NOC_MEASURE, OUTPUT_DIR

from repro.analysis import e14_noc_traffic
from repro.noc import NocSimulator, SyntheticTraffic, build_topology


def test_bench_noc_traffic(benchmark, save_report):
    result = benchmark.pedantic(
        e14_noc_traffic,
        kwargs={
            "k": 6 if FULL else 4,
            "rates": (0.05, 0.15, 0.25, 0.35),
            "patterns": ("uniform", "transpose"),
            "measure": NOC_MEASURE,
        },
        rounds=1,
        iterations=1,
    )
    save_report("E14_noc_traffic", result.text)
    runs = result.data["runs"]
    for run in runs:
        saving = (
            run["energy_full_swing"].datapath / run["energy_srlr"].datapath
        )
        assert saving > 2.0
    # Latency grows with injected load under each pattern.
    uniform = [r for r in runs if r["pattern"] == "uniform"]
    assert uniform[-1]["stats"].average_latency >= uniform[0]["stats"].average_latency


def _measure_engines(k, rate, pattern, seed, warm, reps, block_ref, block_fast):
    """Warm steady-state, fine-interleaved engine comparison.

    Both simulators reach steady state first, then short timed blocks of
    the two engines alternate so load spikes on the host hit both
    measurements rather than biasing the ratio.
    """
    sims = {}
    for engine in ("reference", "fast"):
        sim = NocSimulator(
            k, injection_rate=rate, pattern=pattern, seed=seed, engine=engine
        )
        sim.stats.measure_start, sim.stats.measure_end = 0, 10**9
        for _ in range(warm):
            sim.step()
        sims[engine] = sim
    elapsed = {"reference": 0.0, "fast": 0.0}
    cycles = {"reference": 0, "fast": 0}
    for _ in range(reps):
        for engine, block in (("reference", block_ref), ("fast", block_fast)):
            sim = sims[engine]
            t0 = time.perf_counter()
            for _ in range(block):
                sim.step()
            elapsed[engine] += time.perf_counter() - t0
            cycles[engine] += block
    cycles_per_sec = {e: cycles[e] / elapsed[e] for e in elapsed}
    return {
        "k": k,
        "rate": rate,
        "pattern": pattern,
        "cycles_timed": cycles,
        "cycles_per_sec": cycles_per_sec,
        "us_per_cycle": {e: 1e6 / cycles_per_sec[e] for e in cycles_per_sec},
        "speedup": cycles_per_sec["fast"] / cycles_per_sec["reference"],
    }


def test_bench_engine_speedup(benchmark, save_report):
    # The acceptance workload: 8x8 mesh, uniform-random traffic.
    record = benchmark.pedantic(
        _measure_engines,
        kwargs={
            "k": 8,
            "rate": 0.05,
            "pattern": "uniform",
            "seed": 7,
            "warm": 300 if FULL else 150,
            "reps": 60 if FULL else 25,
            "block_ref": 20 if FULL else 10,
            "block_fast": 200 if FULL else 100,
        },
        rounds=1,
        iterations=1,
    )
    record["full"] = FULL
    record["unix_time"] = round(time.time(), 1)

    # Perf trajectory: one JSON record per run, newest last.
    OUTPUT_DIR.mkdir(exist_ok=True)
    trajectory_path = OUTPUT_DIR / "BENCH_noc_traffic.json"
    trajectory = (
        json.loads(trajectory_path.read_text()) if trajectory_path.exists() else []
    )
    trajectory.append(record)
    trajectory_path.write_text(json.dumps(trajectory, indent=2) + "\n")

    lines = ["ENGINE SPEEDUP — 8x8 uniform-random, steady state"]
    for engine in ("reference", "fast"):
        lines.append(
            f"  {engine:<10} {record['us_per_cycle'][engine]:8.1f} us/cycle   "
            f"{record['cycles_per_sec'][engine]:10.0f} cycles/s"
        )
    lines.append(f"  speedup    {record['speedup']:8.2f}x")
    save_report("BENCH_engine_speedup", "\n".join(lines))

    assert record["speedup"] > 0
    if os.environ.get("REPRO_BENCH_CHECK") == "1":
        # CI gate: the batch engine must hold at least a 5x margin even
        # on noisy shared runners (typical quiet-machine ratio: ~10x).
        assert record["speedup"] >= 5.0, (
            f"fast engine speedup regressed: {record['speedup']:.2f}x < 5x"
        )


# --- topology family throughput --------------------------------------------------------
#
# One timed row per topology class at a matched 16-endpoint budget, on
# each topology's best supported engine.  Rows append to the same
# BENCH_noc_traffic.json trajectory as the engine-speedup record, so a
# routing-table or adjacency regression that slows one family member
# shows up across commits.

TOPOLOGY_BENCH = [
    ("mesh", ("mesh", 4, {}), "fast"),
    ("cmesh", ("cmesh", 2, {"concentration": 4}), "fast"),
    ("torus", ("torus", 4, {}), "fast"),
    ("chiplet", ("chiplet", 2, {"chiplets_x": 2, "chiplets_y": 2}),
     "reference"),
]


def _measure_topologies(rate, seed, warm, cycles):
    rows = {}
    for name, (kind, k, kwargs), engine in TOPOLOGY_BENCH:
        topology = build_topology(kind, k, **kwargs)
        traffic = SyntheticTraffic(topology, rate, "uniform", seed=seed)
        sim = NocSimulator(topology, traffic=traffic, seed=seed, engine=engine)
        sim.stats.measure_start, sim.stats.measure_end = 0, 10**9
        for _ in range(warm):
            sim.step()
        t0 = time.perf_counter()
        for _ in range(cycles):
            sim.step()
        elapsed = time.perf_counter() - t0
        rows[name] = {
            "engine": engine,
            "n_nodes": len(topology.nodes()),
            "cycles_per_sec": cycles / elapsed,
            "us_per_cycle": 1e6 * elapsed / cycles,
            "delivered": sim.stats.delivered_count,
        }
    return rows


def test_bench_topology_family(benchmark, save_report):
    rows = benchmark.pedantic(
        _measure_topologies,
        kwargs={
            "rate": 0.05,
            "seed": 7,
            "warm": 100 if FULL else 50,
            "cycles": 1000 if FULL else 300,
        },
        rounds=1,
        iterations=1,
    )
    record = {
        "kind": "topology-family",
        "rows": rows,
        "full": FULL,
        "unix_time": round(time.time(), 1),
    }

    OUTPUT_DIR.mkdir(exist_ok=True)
    trajectory_path = OUTPUT_DIR / "BENCH_noc_traffic.json"
    trajectory = (
        json.loads(trajectory_path.read_text()) if trajectory_path.exists() else []
    )
    trajectory.append(record)
    trajectory_path.write_text(json.dumps(trajectory, indent=2) + "\n")

    lines = ["TOPOLOGY FAMILY — uniform-random @ 0.05, matched endpoints"]
    for name, row in rows.items():
        lines.append(
            f"  {name:<8} [{row['engine']:<9}] {row['us_per_cycle']:8.1f} "
            f"us/cycle   {row['cycles_per_sec']:10.0f} cycles/s   "
            f"{row['delivered']:5d} delivered"
        )
    save_report("BENCH_topology_family", "\n".join(lines))

    for name, row in rows.items():
        assert row["delivered"] > 0, f"{name}: nothing delivered"
        assert row["cycles_per_sec"] > 0


# --- trace replay ----------------------------------------------------------------------
#
# One timed trace-replay row: a payload-carrying bursty run recorded
# into a trace, replayed on both engines with data-dependent link
# pricing live.  Appends to the same BENCH_noc_traffic.json trajectory,
# so an ingestion or transition-counting regression shows up across
# commits alongside the engine-speedup records.


def _measure_trace_replay(k, rate, record_cycles, seed, warm, cycles):
    from repro.noc import MeshTopology, TraceTraffic, record_trace
    from repro.workload import build_traffic

    topology = MeshTopology(k)
    source = build_traffic(
        topology, "bursty", injection_rate=rate, seed=seed,
        payload_mode="random",
    )
    trace = record_trace(source, record_cycles)
    rows = {}
    for engine in ("reference", "fast"):
        traffic = TraceTraffic(
            topology=topology, entries=trace.entries,
            flit_bits=trace.flit_bits,
        )
        sim = NocSimulator(topology, traffic=traffic, seed=seed, engine=engine)
        sim.stats.measure_start, sim.stats.measure_end = 0, 10**9
        for _ in range(warm):
            sim.step()
        t0 = time.perf_counter()
        for _ in range(cycles):
            sim.step()
        elapsed = time.perf_counter() - t0
        rows[engine] = {
            "cycles_per_sec": cycles / elapsed,
            "us_per_cycle": 1e6 * elapsed / cycles,
            "delivered": sim.stats.delivered_count,
            "payload_transitions": sum(
                link.payload_transitions for link in sim.links
            ),
        }
    rows["n_packets"] = trace.n_packets
    return rows


def test_bench_trace_replay(benchmark, save_report):
    rows = benchmark.pedantic(
        _measure_trace_replay,
        kwargs={
            "k": 4,
            "rate": 0.10,
            "record_cycles": 2000 if FULL else 600,
            "seed": 7,
            "warm": 100 if FULL else 50,
            "cycles": 1000 if FULL else 300,
        },
        rounds=1,
        iterations=1,
    )
    n_packets = rows.pop("n_packets")
    record = {
        "kind": "trace-replay",
        "n_packets": n_packets,
        "rows": rows,
        "full": FULL,
        "unix_time": round(time.time(), 1),
    }

    OUTPUT_DIR.mkdir(exist_ok=True)
    trajectory_path = OUTPUT_DIR / "BENCH_noc_traffic.json"
    trajectory = (
        json.loads(trajectory_path.read_text()) if trajectory_path.exists() else []
    )
    trajectory.append(record)
    trajectory_path.write_text(json.dumps(trajectory, indent=2) + "\n")

    lines = [
        f"TRACE REPLAY — 4x4 mesh, {n_packets} recorded packets, "
        "random payload, data-dependent pricing"
    ]
    for engine, row in rows.items():
        lines.append(
            f"  {engine:<10} {row['us_per_cycle']:8.1f} us/cycle   "
            f"{row['cycles_per_sec']:10.0f} cycles/s   "
            f"{row['delivered']:5d} delivered"
        )
    save_report("BENCH_trace_replay", "\n".join(lines))

    for engine, row in rows.items():
        assert row["delivered"] > 0, f"{engine}: nothing delivered"
        assert row["payload_transitions"] > 0, f"{engine}: nothing counted"
    assert (
        rows["reference"]["payload_transitions"]
        == rows["fast"]["payload_transitions"]
    )
