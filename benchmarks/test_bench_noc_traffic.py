"""E14 — NoC-level: mesh latency/throughput/energy, SRLR vs full swing.

The system-level payoff: the same simulated traffic priced with the SRLR
low-swing datapath versus a conventional full-swing datapath.
"""

from __future__ import annotations

from conftest import FULL, NOC_MEASURE

from repro.analysis import e14_noc_traffic


def test_bench_noc_traffic(benchmark, save_report):
    result = benchmark.pedantic(
        e14_noc_traffic,
        kwargs={
            "k": 6 if FULL else 4,
            "rates": (0.05, 0.15, 0.25, 0.35),
            "patterns": ("uniform", "transpose"),
            "measure": NOC_MEASURE,
        },
        rounds=1,
        iterations=1,
    )
    save_report("E14_noc_traffic", result.text)
    runs = result.data["runs"]
    for run in runs:
        saving = (
            run["energy_full_swing"].datapath / run["energy_srlr"].datapath
        )
        assert saving > 2.0
    # Latency grows with injected load under each pattern.
    uniform = [r for r in runs if r["pattern"] == "uniform"]
    assert uniform[-1]["stats"].average_latency >= uniform[0]["stats"].average_latency
