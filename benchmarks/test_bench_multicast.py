"""E11 — Section II: 1-to-N multicast for free.

Regenerates both views: the analytic XY-tree vs unicast-fanout hop
accounting (with SRLR tap deliveries), and a cycle-level simulation where
tree multicast with taps is priced against unicast replication.
"""

from __future__ import annotations

from conftest import FULL, NOC_MEASURE

from repro.analysis import e11_multicast, e11_multicast_simulated


def test_bench_multicast_analytic(benchmark, save_report):
    result = benchmark.pedantic(
        e11_multicast,
        kwargs={"n_samples": 400 if FULL else 150},
        rounds=1,
        iterations=1,
    )
    save_report("E11_multicast_analytic", result.text)
    savings = result.data["savings"]
    degrees = sorted(savings)
    assert savings[degrees[0]] > 1.0
    assert savings[degrees[-1]] > savings[degrees[0]]


def test_bench_multicast_simulated(benchmark, save_report):
    result = benchmark.pedantic(
        e11_multicast_simulated,
        kwargs={"measure": NOC_MEASURE},
        rounds=1,
        iterations=1,
    )
    save_report("E11_multicast_simulated", result.text)
    assert result.data["tree"].tap_deliveries > 0
    assert result.data["energy_saving"] > 1.2
