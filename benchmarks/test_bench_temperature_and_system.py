"""E18/E19 — extensions: temperature tracking and system-level studies."""

from __future__ import annotations

from repro.analysis import e18_temperature, e19_system_studies


def test_bench_temperature(benchmark, save_report):
    result = benchmark.pedantic(e18_temperature, rounds=1, iterations=1)
    save_report("E18_temperature", result.text)
    points = {p["temp_c"]: p for p in result.data["points"]}
    # Room temperature (the chip's measurement condition) works for both.
    assert points[25.0]["adaptive_ok"] and points[25.0]["fixed_ok"]
    # The adaptive scheme's window contains the fixed reference's window
    # and the adaptive link is never worse at any temperature.
    for p in result.data["points"]:
        assert p["adaptive_errors"] <= p["fixed_errors"]
    ad_lo, ad_hi = result.data["adaptive_window"]
    fx_lo, fx_hi = result.data["fixed_window"]
    assert ad_lo <= fx_lo and ad_hi >= fx_hi


def test_bench_system_studies(benchmark, save_report):
    result = benchmark.pedantic(e19_system_studies, rounds=1, iterations=1)
    save_report("E19_system_studies", result.text)
    chip = result.data["chip"]
    assert chip.noc_power_reduction > 0.2  # the SRLR pays at chip scale
    # Section I's topology claim: the mesh wins for all localities here
    # (short SRLR hops beat long equalized traversals outright).
    assert result.data["crossover_locality"] < 0.5
    # One wire sustains ~4x the flit rate: the measured 4.1 Gb/s band.
    assert result.data["max_ratio"] == 4
