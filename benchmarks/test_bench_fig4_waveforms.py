"""E1 — Fig. 4: SRLR circuit waveforms.

Regenerates the simulated waveform picture: low-swing IN pulse, node X
discharge/reset, regenerated full-swing OUT pulse.
"""

from __future__ import annotations

from repro.analysis import e1_fig4_waveforms


def test_bench_fig4_waveforms(benchmark, save_report):
    result = benchmark.pedantic(e1_fig4_waveforms, rounds=1, iterations=1)
    save_report("E1_fig4_waveforms", result.text)
    assert result.data["out_peak"] > 2 * result.data["in_peak"]
    assert result.data["x_standby"] > 0.5
