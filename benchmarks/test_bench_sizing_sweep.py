"""E13 — ablation: sizing sweeps (why 1 mm, swing trade, driver width)."""

from __future__ import annotations

from repro.analysis import e13_sizing
from repro.units import MM


def test_bench_sizing_sweep(benchmark, save_report):
    result = benchmark.pedantic(e13_sizing, rounds=1, iterations=1)
    save_report("E13_sizing_sweep", result.text)
    points = {round(p.segment_length / MM, 1): p for p in result.data["length_points"]}
    assert points[1.0].ok  # the paper's 1 mm insertion works
    assert not points[2.5].ok  # far beyond it, the swing collapses
    margins = [p.margin for p in result.data["swing_points"]]
    assert margins == sorted(margins)
    assert result.data["driver"].max_data_rate >= 4.1e9
