"""E10 — Section I: mesh NoC power breakdowns (RAW / TRIPS / TeraFLOPS)."""

from __future__ import annotations

import pytest

from repro.analysis import e10_noc_breakdown
from repro.energy import datapath_share


def test_bench_noc_breakdown(benchmark, save_report):
    result = benchmark.pedantic(e10_noc_breakdown, rounds=1, iterations=1)
    save_report("E10_noc_breakdown", result.text)
    assert datapath_share("RAW") == pytest.approx(69.0)
    assert datapath_share("TRIPS") == pytest.approx(64.0)
    assert datapath_share("TeraFLOPS") == pytest.approx(32.0)
    # Our full-swing router model lands in the published datapath band.
    fs = result.data["model_full_swing"]
    assert 0.3 < fs.fraction("datapath") < 0.75
